module Rng = Lion_kernel.Rng
module Txn = Lion_workload.Txn

type prediction = { parts : int list; weight : float }

type t = {
  registry : Template.t;
  forecaster : Forecaster.t;
  rng : Rng.t;
  window : int;
  beta : float;
  gamma : float;
  horizon : int;
  w_p : float;
  samples_per_class : int;
  mutable last_wv : float;
  mutable last_classes : int;
}

let create ?(seed = 17) ?(interval = 1e6) ?(window = 10) ?(beta = 0.15) ?(gamma = 0.30)
    ?(horizon = 3) ?(w_p = 1.0) ?(samples_per_class = 8) ?(use_lstm = true) () =
  {
    registry = Template.create ~interval ();
    forecaster = Forecaster.create ~seed:(seed + 1) ~window ~use_lstm ();
    rng = Rng.create seed;
    window;
    beta;
    gamma;
    horizon;
    w_p;
    samples_per_class;
    last_wv = 0.0;
    last_classes = 0;
  }

let observe t ~time txn =
  if t.w_p > 0.0 then ignore (Template.observe t.registry ~time ~parts:txn.Txn.parts)

(* Current rate of a class: mean of its last two buckets, which smooths
   the partially-filled current bucket. *)
let current_rate series =
  let n = Array.length series in
  if n = 0 then 0.0
  else if n = 1 then series.(n - 1)
  else (series.(n - 1) +. series.(n - 2)) /. 2.0

let analyze t ~time =
  if t.w_p <= 0.0 then []
  else (
    (* Exclude the in-progress bucket: its partial count would look
       like a collapse and spuriously fire the wv trigger every tick. *)
    let upto = Template.bucket_of_time t.registry time in
    let classes =
      Classify.classify ~upto t.registry ~window:(2 * t.window) ~beta:t.beta
    in
    t.last_classes <- List.length classes;
    if classes = [] then (
      t.last_wv <- 0.0;
      [])
    else (
      let per_class =
        List.map
          (fun (w : Classify.workload) ->
            let anchor = match w.templates with [] -> w.class_id | id :: _ -> id in
            let predicted =
              Forecaster.forecast t.forecaster ~key:anchor ~series:w.series
                ~horizon:t.horizon
            in
            (w, current_rate w.series, predicted))
          classes
      in
      let n = float_of_int (List.length per_class) in
      let sq_sum =
        List.fold_left
          (fun acc (_, cur, pred) -> acc +. ((pred -. cur) *. (pred -. cur)))
          0.0 per_class
      in
      let mean_rate =
        List.fold_left (fun acc (_, cur, _) -> acc +. cur) 0.0 per_class /. n
      in
      let wv = sqrt (sq_sum /. n) in
      t.last_wv <- (if mean_rate > 0.0 then wv /. mean_rate else wv);
      if t.last_wv <= t.gamma then []
      else
        (* A significant shift is imminent: emit co-access hints for
           every workload predicted to grow. *)
        List.concat_map
          (fun ((w : Classify.workload), cur, pred) ->
            if pred <= cur || pred <= 0.0 then []
            else (
              let sampled =
                Classify.sample_templates w t.registry ~rng:t.rng ~k:t.samples_per_class
              in
              List.filter_map
                (fun id ->
                  match Template.parts_of t.registry id with
                  | [] | [ _ ] -> None (* single-partition templates need no co-location *)
                  | parts ->
                      (* Weight the hint by the template's share of its
                         class so predicted edges are commensurate with
                         the observed per-window edge weights instead of
                         swamping them. *)
                      let share =
                        if w.Classify.total > 0.0 then
                          Template.total_arrivals t.registry id /. w.Classify.total
                        else 0.0
                      in
                      let weight = t.w_p *. (pred -. cur) *. share in
                      if weight <= 0.0 then None else Some { parts; weight })
                sampled))
          per_class))

let last_wv t = t.last_wv
let template_count t = Template.template_count t.registry
let class_count t = t.last_classes
let w_p t = t.w_p
