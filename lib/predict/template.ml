module Timeseries = Lion_kernel.Timeseries

type id = int

type entry = {
  parts : int list;
  series : Timeseries.t;
  mutable total : float;
}

type t = {
  capacity : int;
  interval : float;
  by_parts : (int list, id) Hashtbl.t;
  entries : (id, entry) Hashtbl.t;
  mutable next_id : id;
}

let create ?(capacity = 4096) ~interval () =
  {
    capacity;
    interval;
    by_parts = Hashtbl.create 256;
    entries = Hashtbl.create 256;
    next_id = 0;
  }

let evict_coldest t =
  let coldest = ref None in
  Hashtbl.iter
    (fun id e ->
      match !coldest with
      | Some (_, total) when total <= e.total -> ()
      | _ -> coldest := Some (id, e.total))
    t.entries;
  match !coldest with
  | None -> ()
  | Some (id, _) ->
      let e = Hashtbl.find t.entries id in
      Hashtbl.remove t.by_parts e.parts;
      Hashtbl.remove t.entries id

let observe t ~time ~parts =
  let parts = List.sort_uniq compare parts in
  let id =
    match Hashtbl.find_opt t.by_parts parts with
    | Some id -> id
    | None ->
        if Hashtbl.length t.entries >= t.capacity then evict_coldest t;
        let id = t.next_id in
        t.next_id <- id + 1;
        Hashtbl.replace t.by_parts parts id;
        Hashtbl.replace t.entries id
          { parts; series = Timeseries.create ~interval:t.interval; total = 0.0 };
        id
  in
  let e = Hashtbl.find t.entries id in
  Timeseries.incr e.series ~time;
  e.total <- e.total +. 1.0;
  id

let parts_of t id = (Hashtbl.find t.entries id).parts
let total_arrivals t id = (Hashtbl.find t.entries id).total

let arrival_rate ?upto t id ~window =
  let series = (Hashtbl.find t.entries id).series in
  match upto with
  | None -> Timeseries.last_n series window
  | Some upto -> Timeseries.range series ~lo:(upto - window) ~hi:(upto - 1)

let template_count t = Hashtbl.length t.entries

let ids t =
  Hashtbl.fold (fun id e acc -> (id, e.total) :: acc) t.entries []
  |> List.sort (fun (ida, ta) (idb, tb) ->
         let c = compare tb ta in
         if c <> 0 then c else compare ida idb)
  |> List.map fst

let bucket_of_time t time = int_of_float (Float.floor (time /. t.interval))
