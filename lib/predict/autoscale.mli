(** Forecast-driven elastic autoscaling (docs/MEMBERSHIP.md).

    Couples the workload forecaster (§IV-C1's LSTM, with its
    trend-extrapolation fallback) to the cluster-size decision: observe
    the arrival rate each control tick, forecast it [horizon] ticks
    ahead, convert to a desired member count via a per-node capacity,
    and emit a scale decision once the desire has persisted for
    [hysteresis] consecutive ticks in the same direction.

    The hysteresis matters because membership changes are expensive —
    a join or decommission triggers a rate-limited rebalance
    ({!Lion_store.Cluster.join_node}) — so a scaler that chases every
    rate wobble would thrash replicas back and forth. Deciding on the
    {e forecast} rather than the current rate is what lets provisioning
    start before a diurnal ramp arrives, hiding the rebalance latency
    inside the ramp (the Lion adaptor's bet, applied to nodes instead
    of replicas). *)

type t

type decision =
  | Hold
  | Scale_up  (** admit one standby node *)
  | Scale_down  (** decommission one member *)

val create :
  ?horizon:int ->
  ?hysteresis:int ->
  ?headroom:float ->
  ?max_history:int ->
  forecaster:Forecaster.t ->
  per_node_rate:float ->
  min_members:int ->
  max_members:int ->
  unit ->
  t
(** [per_node_rate] is the arrival rate (txns per simulated second) one
    member sustains comfortably; desired size is
    [ceil (forecast * headroom / per_node_rate)] clamped to
    [[min_members, max_members]]. [horizon] (default 3) is how many
    control ticks ahead to forecast; [hysteresis] (default 3) how many
    consecutive same-direction desires are needed before a non-[Hold]
    decision; [headroom] (default 1.2) the over-provision factor;
    [max_history] (default 64) the observation window kept for the
    forecaster. *)

val observe : t -> rate:float -> unit
(** Record one control tick's observed arrival rate (txns/s). *)

val decide : t -> members:int -> decision
(** Decision for the current tick given the live member count. Returns
    [Hold] until enough history exists (3 observations) or while the
    hysteresis streak is still building; emitting a decision resets the
    streak, so scale steps are at least [hysteresis] ticks apart. *)

val desired : t -> members:int -> int
(** The clamped member count the latest forecast asks for (= [members]
    before any history exists). Exposed for reporting. *)

val forecast_rate : t -> float
(** Latest forecast arrival rate (txns/s), 0 before any history. *)

val scale_ups : t -> int

val scale_downs : t -> int
