(** Template identification (§IV-C1).

    Transactions accessing the same set of partitions share a label and
    form one template; the predictor then tracks one arrival-rate
    history per template instead of per query. The registry buckets
    arrivals by a sampling interval (Eq. 5's i) and caps the number of
    tracked templates, evicting the coldest when full. *)

type id = int

type t

val create : ?capacity:int -> interval:float -> unit -> t
(** [interval] is the arrival-rate sampling interval in simulated µs
    (1 s by default usage). [capacity] caps distinct templates
    (default 4096). *)

val observe : t -> time:float -> parts:int list -> id
(** Record one arrival of the template for the given partition set
    (deduplicated, sorted internally) at [time]. *)

val parts_of : t -> id -> int list
val total_arrivals : t -> id -> float

val arrival_rate : ?upto:int -> t -> id -> window:int -> float array
(** The template's ar over [window] buckets ending at bucket [upto - 1]
    (exclusive). Default [upto]: past the last touched bucket — note
    that the final bucket is then partially filled; predictors should
    pass [upto = bucket_of_time now] to exclude the in-progress bucket,
    whose artificially low count would otherwise look like a workload
    collapse every tick. *)

val template_count : t -> int

val ids : t -> id list
(** Live template ids, ordered by descending total arrivals. *)

val bucket_of_time : t -> float -> int
