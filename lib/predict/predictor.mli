(** The workload prediction pipeline (§IV-C), end to end:

    observe transactions → identify templates → classify into workloads
    (cosine distance β) → forecast each workload's arrival rate with the
    LSTM → compute the workload-variation metric wv(t, h) (Eq. 6) →
    when wv exceeds γ, emit the co-accessed partition sets expected to
    become hot, each with graph weight w_p, for the planner to merge
    into its heat graph ("pre-replication"). *)

type prediction = {
  parts : int list;  (** co-accessed partitions anticipated *)
  weight : float;  (** edge weight to add to the heat graph *)
}

type t

val create :
  ?seed:int ->
  ?interval:float ->
  ?window:int ->
  ?beta:float ->
  ?gamma:float ->
  ?horizon:int ->
  ?w_p:float ->
  ?samples_per_class:int ->
  ?use_lstm:bool ->
  unit ->
  t
(** Defaults: [interval] 1 s (in µs), [window] 10 periods, [beta] 0.15,
    [gamma] 0.30 (normalised wv threshold), [horizon] 3 periods,
    [w_p] 1.0 (the paper's default; 0 disables prediction), and 8
    sampled templates per rising workload. *)

val observe : t -> time:float -> Lion_workload.Txn.t -> unit
(** Feed one executed transaction's partition set into the registry. *)

val analyze : t -> time:float -> prediction list
(** Run classification + forecasting. Returns the pre-replication hints
    (empty when [w_p = 0], when wv ≤ γ, or when nothing is predicted to
    rise). Also refreshes [last_wv]. *)

val last_wv : t -> float
(** The most recent workload-variation value (Eq. 6, normalised by the
    mean current rate so γ is scale-free). *)

val template_count : t -> int
val class_count : t -> int
(** Number of workload classes found by the last [analyze]. *)

val w_p : t -> float
