(** Per-workload time-series forecasting (§IV-C1, "Time-series
    Prediction").

    One LSTM per workload class, keyed by a stable anchor (the class's
    hottest template id). A model is (re)trained when it has no weights
    yet or when its MSE on the recent history drifts above
    [retrain_mse]; before enough history exists, a trend-extrapolation
    fallback stands in, which matches a cold-started Lion. *)

type t

val create :
  ?seed:int ->
  ?window:int ->
  ?epochs:int ->
  ?retrain_mse:float ->
  ?lr:float ->
  ?use_lstm:bool ->
  unit ->
  t
(** [window] defaults to 10 (the paper trains on the preceding ten
    periods); [epochs] 30; [retrain_mse] 0.25 (on normalised data);
    [use_lstm] false disables the neural path entirely (trend fallback
    only) — used to bound benchmark wall-clock. *)

val forecast : t -> key:int -> series:float array -> horizon:int -> float
(** Predicted arrival rate [horizon] buckets ahead, never negative.
    Multi-step forecasts feed predictions back as inputs. *)

val trained_models : t -> int
val retrain_count : t -> int
