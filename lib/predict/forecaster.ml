module Lstm = Lion_nn.Lstm
module Dataset = Lion_nn.Dataset

type model = { net : Lstm.t; mutable trained : bool }

type t = {
  seed : int;
  window : int;
  epochs : int;
  retrain_mse : float;
  lr : float;
  use_lstm : bool;
  models : (int, model) Hashtbl.t;
  mutable retrains : int;
}

let create ?(seed = 5) ?(window = 10) ?(epochs = 30) ?(retrain_mse = 0.25) ?(lr = 0.01)
    ?(use_lstm = true) () =
  { seed; window; epochs; retrain_mse; lr; use_lstm; models = Hashtbl.create 16; retrains = 0 }

(* Trend extrapolation over the last few points: robust before the
   model has data, and the only path when use_lstm is off. *)
let naive series horizon =
  let n = Array.length series in
  if n = 0 then 0.0
  else if n = 1 then series.(0)
  else (
    let last = series.(n - 1) and prev = series.(n - 2) in
    Stdlib.max 0.0 (last +. (float_of_int horizon *. (last -. prev))))

let get_model t key =
  match Hashtbl.find_opt t.models key with
  | Some m -> m
  | None ->
      let m = { net = Lstm.create ~seed:(t.seed + key) ~input:1 (); trained = false } in
      Hashtbl.replace t.models key m;
      m

let max_training_samples = 64

let forecast t ~key ~series ~horizon =
  if (not t.use_lstm) || Array.length series < (2 * t.window) + 1 then naive series horizon
  else (
    let m = get_model t key in
    let norm, samples = Dataset.windows_normalized series ~window:t.window in
    let samples =
      if Array.length samples > max_training_samples then
        Array.sub samples
          (Array.length samples - max_training_samples)
          max_training_samples
      else samples
    in
    let needs_training = (not m.trained) || Lstm.mse m.net samples > t.retrain_mse in
    if needs_training && Array.length samples > 0 then (
      ignore (Lstm.train m.net samples ~epochs:t.epochs ~lr:t.lr);
      m.trained <- true;
      t.retrains <- t.retrains + 1);
    (* Iterated multi-step forecast: predict one bucket, append it to
       the (raw-scale) history, repeat. *)
    let extended = ref (Array.copy series) in
    let pred_raw = ref 0.0 in
    for _ = 1 to Stdlib.max 1 horizon do
      let window_input = Dataset.last_window !extended ~window:t.window norm in
      let pred = Lstm.predict m.net window_input in
      pred_raw := Stdlib.max 0.0 (Dataset.denormalize norm pred);
      extended := Array.append !extended [| !pred_raw |]
    done;
    !pred_raw)

let trained_models t =
  Hashtbl.fold (fun _ m acc -> if m.trained then acc + 1 else acc) t.models 0

let retrain_count t = t.retrains
