module Stats = Lion_kernel.Stats
module Rng = Lion_kernel.Rng

type workload = {
  class_id : int;
  templates : Template.id list;
  series : float array;
  total : float;
}

type building = {
  mutable members : Template.id list; (* reversed *)
  centroid : float array;
  mutable weight : float;
}

let add_to building ar total =
  (* Running mean of member ar vectors, weighted by template heat, so a
     hot template anchors its class's shape. *)
  let w = building.weight +. total in
  if w > 0.0 then
    for i = 0 to Array.length building.centroid - 1 do
      building.centroid.(i) <-
        ((building.centroid.(i) *. building.weight) +. (ar.(i) *. total)) /. w
    done;
  building.weight <- w

let classify ?upto registry ~window ~beta =
  let classes : building list ref = ref [] in
  let idle : Template.id list ref = ref [] in
  List.iter
    (fun id ->
      let ar = Template.arrival_rate ?upto registry id ~window in
      let total = Template.total_arrivals registry id in
      let is_zero = Array.for_all (fun x -> x = 0.0) ar in
      if is_zero then idle := id :: !idle
      else (
        let matching =
          List.find_opt
            (fun b ->
              let sim = Stats.cosine_similarity b.centroid ar in
              1.0 -. sim <= beta)
            !classes
        in
        match matching with
        | Some b ->
            b.members <- id :: b.members;
            add_to b ar total
        | None ->
            let b = { members = [ id ]; centroid = Array.copy ar; weight = 0.0 } in
            b.weight <- total;
            classes := !classes @ [ b ]))
    (Template.ids registry);
  let finalize i b =
    let members = List.rev b.members in
    let series = Array.make window 0.0 in
    List.iter
      (fun id ->
        let ar = Template.arrival_rate ?upto registry id ~window in
        for k = 0 to window - 1 do
          series.(k) <- series.(k) +. ar.(k)
        done)
      members;
    {
      class_id = i;
      templates =
        List.sort
          (fun a b ->
            compare (Template.total_arrivals registry b) (Template.total_arrivals registry a))
          members;
      series;
      total = List.fold_left (fun acc id -> acc +. Template.total_arrivals registry id) 0.0 members;
    }
  in
  let live = List.mapi finalize !classes in
  match !idle with
  | [] -> live
  | idle_members ->
      live
      @ [
          {
            class_id = List.length live;
            templates = List.rev idle_members;
            series = Array.make window 0.0;
            total =
              List.fold_left
                (fun acc id -> acc +. Template.total_arrivals registry id)
                0.0 idle_members;
          };
        ]

let sample_templates workload registry ~rng ~k =
  (* Weighted reservoir (A-Res, Efraimidis–Spirakis): key = u^(1/w). *)
  let keyed =
    List.map
      (fun id ->
        let w = Stdlib.max 1e-9 (Template.total_arrivals registry id) in
        let u = Stdlib.max 1e-12 (Rng.float rng 1.0) in
        (Float.pow u (1.0 /. w), id))
      workload.templates
  in
  List.sort (fun (a, _) (b, _) -> compare b a) keyed
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd
