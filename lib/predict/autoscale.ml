type decision = Hold | Scale_up | Scale_down

type t = {
  fc : Forecaster.t;
  per_node_rate : float;
  min_members : int;
  max_members : int;
  horizon : int;
  hysteresis : int;
  headroom : float;
  max_history : int;
  mutable history : float list;  (* newest first *)
  mutable last_forecast : float;
  mutable streak_dir : int;  (* sign of the pending desire: -1 / 0 / +1 *)
  mutable streak_len : int;
  mutable ups : int;
  mutable downs : int;
}

let create ?(horizon = 3) ?(hysteresis = 3) ?(headroom = 1.2)
    ?(max_history = 64) ~forecaster ~per_node_rate ~min_members ~max_members ()
    =
  {
    fc = forecaster;
    per_node_rate = Stdlib.max 1e-6 per_node_rate;
    min_members;
    max_members;
    horizon = Stdlib.max 1 horizon;
    hysteresis = Stdlib.max 1 hysteresis;
    headroom;
    max_history = Stdlib.max 4 max_history;
    history = [];
    last_forecast = 0.0;
    streak_dir = 0;
    streak_len = 0;
    ups = 0;
    downs = 0;
  }

let observe t ~rate =
  t.history <- rate :: t.history;
  (* Bound the window: the forecaster trains on the recent past only,
     and an unbounded list would make each tick costlier than the
     last. *)
  if List.length t.history > t.max_history then
    t.history <- List.filteri (fun i _ -> i < t.max_history) t.history

let clamp t v = Stdlib.max t.min_members (Stdlib.min t.max_members v)

let desired t ~members =
  if List.length t.history < 3 then members
  else begin
    let series = Array.of_list (List.rev t.history) in
    let f =
      Forecaster.forecast t.fc ~key:0 ~series ~horizon:t.horizon
    in
    t.last_forecast <- f;
    clamp t (int_of_float (Float.ceil (f *. t.headroom /. t.per_node_rate)))
  end

let forecast_rate t = t.last_forecast

let decide t ~members =
  let want = desired t ~members in
  let dir = compare want members in
  if dir = 0 then begin
    t.streak_dir <- 0;
    t.streak_len <- 0;
    Hold
  end
  else begin
    if dir = t.streak_dir then t.streak_len <- t.streak_len + 1
    else begin
      t.streak_dir <- dir;
      t.streak_len <- 1
    end;
    if t.streak_len < t.hysteresis then Hold
    else begin
      (* Emit one step and restart the streak: the next step needs the
         desire to persist for another full hysteresis window, so a
         large ramp is absorbed as a paced sequence of single-node
         changes rather than a burst of them. *)
      t.streak_dir <- 0;
      t.streak_len <- 0;
      if dir > 0 then begin
        t.ups <- t.ups + 1;
        Scale_up
      end
      else begin
        t.downs <- t.downs + 1;
        Scale_down
      end
    end
  end

let scale_ups t = t.ups
let scale_downs t = t.downs
