(** Workload classification (§IV-C1): templates whose arrival rates
    rise and fall together — cosine distance below a threshold β — are
    merged into one workload class, so forecasting runs per class
    instead of per template. *)

type workload = {
  class_id : int;
  templates : Template.id list;  (** hottest first *)
  series : float array;  (** summed arrival rate over the window *)
  total : float;  (** summed arrivals of all member templates *)
}

val classify :
  ?upto:int -> Template.t -> window:int -> beta:float -> workload list
(** Greedy clustering: walk templates hottest-first; join the first
    class whose centroid is within cosine distance [beta]
    (distance = 1 - cosine similarity), else open a new class.
    Templates with an all-zero window join a shared idle class. *)

val sample_templates :
  workload -> Template.t -> rng:Lion_kernel.Rng.t -> k:int -> Template.id list
(** Reservoir-sample [k] member templates weighted by arrival counts —
    the partitions likely to appear when the workload activates. *)
