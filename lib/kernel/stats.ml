module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then 0.0 else t.minv
  let max t = if t.n = 0 then 0.0 else t.maxv

  let reset t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity
end

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else (
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac))

module Reservoir = struct
  type t = {
    capacity : int;
    samples : float array;
    mutable filled : int;
    mutable seen : int;
    mutable sum : float;
    rng : Rng.t;
  }

  let create ?(capacity = 8192) rng =
    { capacity; samples = Array.make capacity 0.0; filled = 0; seen = 0; sum = 0.0; rng }

  let add t x =
    t.seen <- t.seen + 1;
    t.sum <- t.sum +. x;
    if t.filled < t.capacity then (
      t.samples.(t.filled) <- x;
      t.filled <- t.filled + 1)
    else (
      let j = Rng.int t.rng t.seen in
      if j < t.capacity then t.samples.(j) <- x)

  let count t = t.seen

  let percentile t p =
    if t.filled = 0 then 0.0
    else (
      let sorted = Array.sub t.samples 0 t.filled in
      Array.sort compare sorted;
      percentile_of_sorted sorted p)

  let mean t = if t.seen = 0 then 0.0 else t.sum /. float_of_int t.seen

  let reset t =
    t.filled <- 0;
    t.seen <- 0;
    t.sum <- 0.0
end

let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let cosine_similarity a b =
  assert (Array.length a = Array.length b);
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    dot := !dot +. (a.(i) *. b.(i));
    na := !na +. (a.(i) *. a.(i));
    nb := !nb +. (b.(i) *. b.(i))
  done;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. (sqrt !na *. sqrt !nb)
