(** Mutable binary min-heap priority queue.

    Used by the discrete-event engine (events keyed by time) and by the
    workload analyzer (hottest-vertex queue uses it with negated keys).
    Ties are broken by insertion order so that simulations are fully
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key] (smaller pops first). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, FIFO among equal keys. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in ascending key order; does not modify the queue. *)
