(** Mutable 4-ary min-heap priority queue, int-keyed.

    This is the event heap under the simulator's hot loop. Keys are
    ints — an order-preserving bit-cast of the (non-negative) float
    timestamp — so every heap comparison is an immediate int compare
    and the raw API ([push_key]/[pop_min]) allocates nothing. Ties are
    broken by insertion order (FIFO) so that simulations are fully
    deterministic: the pop order is the total order (key, seq), making
    the drain sequence independent of heap shape or arity.

    The float-keyed API ([push]/[pop]/[peek]) is retained for tests and
    non-hot-path users; keys must be non-negative. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

exception Empty
(** Raised by the raw accessors ([min_key], [min_time], [pop_min]) on an
    empty queue. *)

val key_of_time : float -> int
(** Order-preserving, exactly invertible map from a non-negative float
    timestamp to an int heap key: [key_of_time a < key_of_time b] iff
    [a < b], and [time_of_key (key_of_time t) = t] bit-for-bit
    (with [-0.0] normalised to [+0.0]). *)

val time_of_key : int -> float
(** Inverse of [key_of_time]. *)

val push_key : 'a t -> int -> 'a -> unit
(** [push_key q key v] inserts [v] with int priority [key] (smaller
    pops first; FIFO among equal keys). Allocation-free except when the
    backing arrays grow. *)

val min_key : 'a t -> int
(** Smallest key in the queue. @raise Empty if the queue is empty. *)

val min_time : 'a t -> float
(** [time_of_key (min_key q)]. @raise Empty if the queue is empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the minimum-key element, FIFO among equal keys.
    Allocation-free. @raise Empty if the queue is empty. *)

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key] (smaller pops first).
    @raise Invalid_argument if [key] is negative or NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, FIFO among equal keys. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in ascending key order; does not modify the queue. *)
