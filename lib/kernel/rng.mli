(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the simulator flows from a single
    seeded root generator, split per component, so that experiments are
    reproducible bit-for-bit regardless of the order in which components
    draw numbers. The implementation is SplitMix64, which has good
    statistical quality for simulation purposes and supports O(1)
    splitting. *)

type t

val create : int -> t
(** [create seed] builds a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly pick an element of a non-empty array. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal draw. *)
