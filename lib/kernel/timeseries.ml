type t = {
  interval : float;
  mutable buckets : float array;
  mutable highest : int; (* largest touched bucket index, -1 if none *)
}

let create ~interval =
  assert (interval > 0.0);
  { interval; buckets = Array.make 64 0.0; highest = -1 }

let interval t = t.interval

let ensure t i =
  let cap = Array.length t.buckets in
  if i >= cap then (
    let ncap = ref cap in
    while i >= !ncap do
      ncap := !ncap * 2
    done;
    let nb = Array.make !ncap 0.0 in
    Array.blit t.buckets 0 nb 0 cap;
    t.buckets <- nb)

let index_of t time =
  let i = int_of_float (Float.floor (time /. t.interval)) in
  if i < 0 then 0 else i

let add t ~time v =
  let i = index_of t time in
  ensure t i;
  t.buckets.(i) <- t.buckets.(i) +. v;
  if i > t.highest then t.highest <- i

let incr t ~time = add t ~time 1.0
let bucket_count t = t.highest + 1
let get t i = if i < 0 || i > t.highest then 0.0 else t.buckets.(i)
let to_array t = Array.sub t.buckets 0 (bucket_count t)

let last_n t n =
  let out = Array.make n 0.0 in
  let total = bucket_count t in
  for k = 0 to n - 1 do
    let i = total - n + k in
    if i >= 0 then out.(k) <- get t i
  done;
  out

let range t ~lo ~hi =
  Array.init (Stdlib.max 0 (hi - lo + 1)) (fun i -> get t (lo + i))

let sum_range t lo hi =
  let acc = ref 0.0 in
  for i = Stdlib.max 0 lo to Stdlib.min hi t.highest do
    acc := !acc +. t.buckets.(i)
  done;
  !acc
