(** Fixed-interval time-series accumulator.

    Buckets samples by simulated time so experiments can report
    per-second throughput curves (Figs. 8, 10, 12) and the predictor can
    maintain arrival-rate histories (Eq. 5 of the paper). *)

type t

val create : interval:float -> t
(** [create ~interval] buckets by [interval] units of time (the
    simulator uses microseconds, so one second is [1e6]). *)

val interval : t -> float

val add : t -> time:float -> float -> unit
(** [add t ~time v] accumulates [v] into [time]'s bucket. Times may
    arrive out of order; negative times are clamped to bucket 0. *)

val incr : t -> time:float -> unit
(** [incr t ~time] is [add t ~time 1.0] — the common counting use. *)

val bucket_count : t -> int
(** Number of buckets from 0 through the latest touched bucket. *)

val get : t -> int -> float
(** Value of bucket [i]; 0 for untouched or out-of-range buckets. *)

val to_array : t -> float array
(** All buckets, 0 .. latest. *)

val last_n : t -> int -> float array
(** The trailing [n] buckets (zero-padded on the left if fewer exist). *)

val range : t -> lo:int -> hi:int -> float array
(** Buckets [lo..hi] inclusive, zero-padded outside the touched span.
    Used to read a window that excludes the current, partially-filled
    bucket. *)

val sum_range : t -> int -> int -> float
(** [sum_range t lo hi] sums buckets [lo..hi] inclusive (Eq. 5's
    ar(t,i) over a window). *)
