(** Online statistics: running moments, percentile reservoirs, counters.

    The simulator records one latency sample per committed transaction
    and per-second throughput buckets; this module provides the
    accumulators the metrics layer is built on. *)

(** Running mean/variance accumulator (Welford). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val reset : t -> unit
end

(** Bounded reservoir for percentile estimation (uniform reservoir
    sampling, Vitter's Algorithm R). Deterministic given its [Rng.t]. *)
module Reservoir : sig
  type t

  val create : ?capacity:int -> Rng.t -> t
  val add : t -> float -> unit
  val count : t -> int
  (** Total number of samples offered, not just those retained. *)

  val percentile : t -> float -> float
  (** [percentile t 95.0] — linear interpolation between order
      statistics; 0 if empty. *)

  val mean : t -> float
  val reset : t -> unit
end

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted sorted p] with [p] in [0,100]. *)

val mean_of : float list -> float
val cosine_similarity : float array -> float array -> float
(** Cosine of the angle between two equal-length vectors; 0 when either
    vector is all-zero. *)
