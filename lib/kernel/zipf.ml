type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

(* zeta(n, theta) = sum_{i=1..n} 1/i^theta, computed directly for small n
   and via the Euler–Maclaurin two-term approximation for large n, which
   keeps construction O(1)-ish while staying within a fraction of a
   percent — accuracy that only perturbs the skew marginally. *)
let zeta n theta =
  if n <= 10_000 then (
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !acc)
  else (
    let m = 10_000 in
    let acc = ref 0.0 in
    for i = 1 to m do
      acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    (* integral tail from m to n of x^-theta dx plus endpoint correction *)
    let fm = float_of_int m and fn = float_of_int n in
    let tail =
      if Float.abs (theta -. 1.0) < 1e-9 then log (fn /. fm)
      else (Float.pow fn (1.0 -. theta) -. Float.pow fm (1.0 -. theta)) /. (1.0 -. theta)
    in
    !acc +. tail)

let create ~n ~theta =
  assert (n > 0);
  assert (theta >= 0.0);
  if theta = 0.0 then
    { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; half_pow_theta = 0.0 }
  else (
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow_theta = 0.5 ** theta })

let sample t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else (
    let u = Rng.float rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else (
      let v =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
      in
      let k = int_of_float v in
      if k < 0 then 0 else if k >= t.n then t.n - 1 else k))

let n t = t.n
let theta t = t.theta
