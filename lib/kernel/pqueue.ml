(* Int-keyed 4-ary min-heap over a structure-of-arrays layout.

   This is the event heap under the simulator's hot loop, so it is
   built around three constraints:

   - Zero allocation on the push/pop fast path. Keys, FIFO sequence
     numbers and payload slot indices live in parallel flat int
     arrays; pushing writes into slots and popping reads them back —
     no per-entry record, no boxed key, no [option]/tuple on the raw
     API.

   - No write barrier while sifting. Payloads are parked once in a
     side [vals] table and the heap entries carry only their slot
     index, so the sift loops move immediates exclusively — a heap of
     pointers would pay [caml_modify] on every level of every pop.

   - Bit-exact compatibility with the float-keyed heap it replaced.
     Keys are ints: an order-preserving bit-cast of the (non-negative)
     float timestamp — [key_of_time a < key_of_time b] iff [a < b] and
     the round-trip through [time_of_key] is exact. All heap
     comparisons are immediate int compares, and the pop order (key,
     then FIFO sequence at equal keys) is a total order, so the drain
     sequence is identical to any correct stable-by-seq heap —
     including the previous binary one.

   The 4-ary shape halves the tree depth of a binary heap and keeps
   each child scan inside one cache line of the key array. The
   [unsafe_get]/[unsafe_set] in the sift loops are all on indices
   bounded by [size] (checked on entry) or a parent/child index
   derived from one. *)

type 'a t = {
  mutable keys : int array; (* primary order: int-cast timestamps *)
  mutable seqs : int array; (* FIFO tie-break at equal keys *)
  mutable slots : int array; (* index of the payload in [vals] *)
  mutable vals : 'a array; (* slot-addressed; freed slots hold stale refs *)
  mutable free : int array; (* stack of recycled slots below [used] *)
  mutable free_top : int;
  mutable used : int; (* slot high-water mark *)
  mutable size : int;
  mutable next_seq : int;
}

(* Keys must be non-negative (all engine timestamps are — the engine
   clamps). A non-negative double's bit pattern occupies exactly the 63
   low bits, and its unsigned ordering matches the float ordering; the
   [- 2^62] bias shifts that range onto OCaml's signed 63-bit int
   exactly, so the map is monotone, injective, and round-trips
   bit-for-bit. [+. 0.0] normalises -0.0 to +0.0 first so the two zero
   bit patterns cannot disagree with float ordering. *)
let[@inline] key_of_time (t : float) : int =
  Int64.to_int (Int64.sub (Int64.bits_of_float (t +. 0.0)) 0x4000000000000000L)

let[@inline] time_of_key (k : int) : float =
  Int64.float_of_bits (Int64.add (Int64.of_int k) 0x4000000000000000L)

let create () =
  {
    keys = [||];
    seqs = [||];
    slots = [||];
    vals = [||];
    free = [||];
    free_top = 0;
    used = 0;
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t v =
  let cap = Array.length t.keys in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nk = Array.make ncap 0
  and ns = Array.make ncap 0
  and nsl = Array.make ncap 0
  and nf = Array.make ncap 0 in
  let nv = Array.make ncap v in
  Array.blit t.keys 0 nk 0 t.size;
  Array.blit t.seqs 0 ns 0 t.size;
  Array.blit t.slots 0 nsl 0 t.size;
  Array.blit t.free 0 nf 0 t.free_top;
  Array.blit t.vals 0 nv 0 t.used;
  t.keys <- nk;
  t.seqs <- ns;
  t.slots <- nsl;
  t.free <- nf;
  t.vals <- nv

(* A freshly pushed entry carries the largest sequence number in the
   heap, so at equal keys it never outranks an existing entry: sift-up
   only needs the strict key compare. *)
let push_key t key v =
  if t.size = Array.length t.keys then grow t v;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let slot =
    if t.free_top > 0 then (
      let ft = t.free_top - 1 in
      t.free_top <- ft;
      Array.unsafe_get t.free ft)
    else (
      let s = t.used in
      t.used <- s + 1;
      s)
  in
  t.vals.(slot) <- v;
  let keys = t.keys and seqs = t.seqs and slots = t.slots in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) lsr 2 in
    if key < Array.unsafe_get keys p then (
      Array.unsafe_set keys !i (Array.unsafe_get keys p);
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set slots !i (Array.unsafe_get slots p);
      i := p)
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set slots !i slot

exception Empty

let[@inline] min_key t = if t.size = 0 then raise Empty else Array.unsafe_get t.keys 0

let[@inline] min_time t = time_of_key (min_key t)

let pop_min t =
  if t.size = 0 then raise Empty;
  let keys = t.keys and seqs = t.seqs and slots = t.slots in
  let slot = Array.unsafe_get slots 0 in
  let res = Array.unsafe_get t.vals slot in
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1;
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then (
    (* Re-insert the last entry from the root, moving the smallest
       child up until the entry fits. *)
    let key = Array.unsafe_get keys n
    and seq = Array.unsafe_get seqs n
    and sl = Array.unsafe_get slots n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let c1 = (!i lsl 2) + 1 in
      if c1 >= n then continue := false
      else (
        let best = ref c1 in
        let kbest = ref (Array.unsafe_get keys c1) in
        let last = if c1 + 3 < n - 1 then c1 + 3 else n - 1 in
        for c = c1 + 1 to last do
          let kc = Array.unsafe_get keys c in
          if
            kc < !kbest
            || (kc = !kbest && Array.unsafe_get seqs c < Array.unsafe_get seqs !best)
          then (
            best := c;
            kbest := kc)
        done;
        let b = !best in
        let kb = !kbest in
        if kb < key || (kb = key && Array.unsafe_get seqs b < seq) then (
          Array.unsafe_set keys !i kb;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs b);
          Array.unsafe_set slots !i (Array.unsafe_get slots b);
          i := b)
        else continue := false)
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set slots !i sl);
  res

(* ---- Float-keyed compatibility API (tests, non-hot-path users). ---- *)

let push t key value =
  if not (key >= 0.0) then invalid_arg "Pqueue.push: key must be >= 0";
  push_key t (key_of_time key) value

let pop t =
  if t.size = 0 then None
  else (
    let key = time_of_key t.keys.(0) in
    let v = pop_min t in
    Some (key, v))

let peek t =
  if t.size = 0 then None else Some (time_of_key t.keys.(0), t.vals.(t.slots.(0)))

let clear t =
  t.size <- 0;
  t.free_top <- 0;
  t.used <- 0;
  t.keys <- [||];
  t.seqs <- [||];
  t.slots <- [||];
  t.vals <- [||];
  t.free <- [||]

let to_list t =
  let copy =
    {
      keys = Array.copy t.keys;
      seqs = Array.copy t.seqs;
      slots = Array.copy t.slots;
      vals = Array.copy t.vals;
      free = Array.copy t.free;
      free_top = t.free_top;
      used = t.used;
      size = t.size;
      next_seq = t.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some (k, v) -> drain ((k, v) :: acc)
  in
  drain []
