type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v
let cell_int v = string_of_int v

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length t.columns) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = pad t.columns :: List.map pad rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header :: body ->
      render_row header;
      let rule = String.concat "" (List.init ncols (fun i -> String.make widths.(i) '-' ^ "  ")) in
      Buffer.add_string buf (String.trim rule ^ "\n");
      List.iter render_row body
  | [] -> ());
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
