type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t =
  let s = next_int64 t in
  { state = mix64 s }

(* A non-negative 62-bit integer: safe to use with [mod] on 64-bit OCaml. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  next_nonneg t mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, uniform in [0,1). *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let exponential t mean =
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
