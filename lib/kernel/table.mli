(** Plain-text table rendering for the benchmark harness.

    The harness prints each paper figure/table as an aligned textual
    table (series name per row, x-axis values per column), mimicking the
    rows the paper reports. *)

type t

val create : title:string -> columns:string list -> t
(** A table titled [title] whose header row is [columns]. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val render : t -> string
(** Render with column-aligned padding, title, and a rule line. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float for a cell ([decimals] defaults to 1). *)

val cell_int : int -> string
