(** Zipfian integer distribution over [0, n), as used by YCSB.

    The [theta] parameter matches the YCSB/Gray self-similar convention:
    [theta = 0] is uniform and larger values are more skewed (YCSB's
    default "zipfian constant" is 0.99; the paper's skew_factor 0.8 maps
    to theta = 0.8). Sampling uses the rejection-inversion-free method of
    Gray et al. ("Quickly generating billion-record synthetic databases"),
    which is exact and O(1) per draw after O(n)… — to stay O(1) in both
    time and space for very large [n], we use the analytic approximation
    with precomputed zeta constants, the same scheme YCSB itself uses. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a generator over [0, n). [theta >= 0.];
    [theta = 0.] degrades to uniform. *)

val sample : t -> Rng.t -> int
(** Draw one value in [0, n). Rank 0 is the most popular item. *)

val n : t -> int
val theta : t -> float
