(** One experiment per table/figure of the paper's evaluation (§VI).

    Every function prints the figure's data as an aligned table (series
    per row) in the same shape the paper plots, plus the headline
    observations the paper reports. [scale] multiplies all simulated
    durations (default 1.0; use < 1 for smoke runs).

    The registry maps experiment ids to runners for the CLI and the
    benchmark executable. *)

val table1_comparison : unit -> unit
(** Table I: qualitative design-dimension comparison (printed as-is). *)

val fig6_ablation : ?scale:float -> unit -> unit
(** Table II + Fig. 6: the seven Lion variants on uniform YCSB with
    100 % distributed transactions. *)

val fig7_crossratio_nonbatch : ?scale:float -> unit -> unit
(** Fig. 7: throughput vs cross-partition ratio, skewed YCSB and TPC-C,
    standard-execution protocols, remaster delay 3000 µs. *)

val fig8_dynamic_nonbatch : ?scale:float -> unit -> unit
(** Fig. 8: throughput over time under the two dynamic scenarios,
    standard-execution protocols. *)

val fig9_crossratio_batch : ?scale:float -> unit -> unit
(** Fig. 9: throughput vs cross-partition ratio, batch protocols. *)

val fig10_dynamic_batch : ?scale:float -> unit -> unit
(** Fig. 10: throughput over time, batch protocols. *)

val fig11_scalability : ?scale:float -> unit -> unit
(** Fig. 11: throughput at 4–10 executor nodes, 100 % cross-partition
    uniform workload, all protocols. *)

val fig12_migration_analysis : ?scale:float -> unit -> unit
(** Fig. 12: throughput and network bytes/transaction over time as the
    planner pre-replicates ahead of a predicted workload shift. *)

val fig13a_preplication : ?scale:float -> unit -> unit
(** Fig. 13a: adaptation speed with and without the prediction
    mechanism (time to recover steady throughput after a shift). *)

val fig13b_batch_opt : ?scale:float -> unit -> unit
(** Fig. 13b: impact of the remastering delay on standard vs batch
    Lion (asynchronous remastering hides the latency). *)

val fig14_latency : ?scale:float -> unit -> unit
(** Fig. 14: latency percentiles and per-phase breakdown for the batch
    protocols. *)

val abl_cooldown : ?scale:float -> unit -> unit
(** Extra ablation: the remaster cooldown that damps ping-pong — sweep
    it and report throughput and remaster rate. *)

val abl_replicas : ?scale:float -> unit -> unit
(** Extra ablation: the per-partition replica budget (paper §IV-B sets
    a user-configurable maximum, 4 in the evaluation). *)

val abl_wp : ?scale:float -> unit -> unit
(** Extra ablation: the prediction weight w_p of §IV-C (0 disables the
    predictor; the paper's default is 1). *)

val abl_forecaster : ?scale:float -> unit -> unit
(** Extra ablation: forecast accuracy of the LSTM against vanilla-RNN
    and linear-regression baselines on arrival-rate-shaped series
    (§IV-C1's model-choice argument). *)

val abl_failover : ?scale:float -> unit -> unit
(** Extra ablation: crash one node mid-run and recover it — exercising
    the availability machinery (leader election, failover promotion)
    that partition-based replication exists to provide. *)

val abl_read_secondary : ?scale:float -> unit -> unit
(** Extra ablation: the bounded-staleness extension serving all-read
    partition groups from locally-held secondaries (beyond the paper,
    where only primaries serve operations). *)

val overload_sweep : ?scale:float -> unit -> unit
(** Overload: open-loop offered-load sweep for lion/star/twopc, with
    and without the protection knobs — see {!Overload}. *)

val metastable : ?scale:float -> unit -> unit
(** Overload: the metastable-failure reproduction, unprotected vs
    protected — see {!Overload.metastable}. *)

val elastic_scale : ?scale:float -> unit -> unit
(** Membership: the forecast-driven autoscaler joining and
    decommissioning nodes over a diurnal open-loop cycle — see
    {!Elastic}. Any [scale] < 1 selects the smoke-sized run. *)

val registry : (string * string * (float -> unit)) list
(** (id, description, run-with-scale) for every experiment above. *)

val run_all : ?scale:float -> unit -> unit
