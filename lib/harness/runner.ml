module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Proto = Lion_protocols.Proto
module Trace = Lion_trace.Trace

type trace_sink = { fresh : unit -> Trace.t; emit : Trace.t -> unit }

(* Global sink so `--trace` on the CLI reaches every experiment without
   threading a tracer through each figure function. *)
let sink : trace_sink option ref = ref None
let set_trace_sink s = sink := Some s
let clear_trace_sink () = sink := None

type arrival =
  | Closed
  | Poisson of float
  | Uniform of float

type config = {
  clients : int;
  warmup : float;
  duration : float;
  tick_every : float;
  arrival : arrival;
}

let quick =
  { clients = 0; warmup = 2.0; duration = 6.0; tick_every = 1.0; arrival = Closed }

type result = {
  throughput : float;
  goodput : float;
  offered : float;
  commits : int;
  aborts : int;
  p50 : float;
  p75 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  mean_latency : float;
  single_node_ratio : float;
  remaster_ratio : float;
  throughput_series : float array;
  goodput_series : float array;
  bytes_series : float array;
  bytes_per_txn : float;
  phase_fractions : (Metrics.phase * float) list;
  remasters : int;
  replica_adds : int;
  timeouts : int;
  retries : int;
  drops : int;
  sheds : int;
  breaker_rejects : int;
  breaker_opens : int;
  budget_denials : int;
  deadline_giveups : int;
  deadline_misses : int;
  stale_ack_rejections : int;
  availability : float array;
  unavail_seconds : float;
  time_to_recover : float;
  goodput_under_fault : float;
  engine_events : int;
}

let degraded a = a < 0.9995

(* Fault summary over the per-second availability samples: lost
   capacity integrated over the run, the span from first to last
   degraded second (recovery time), and the throughput sustained while
   degraded. *)
let fault_summary ~availability ~throughput_series =
  let n = Array.length availability in
  let first = ref (-1) and last = ref (-1) in
  let unavail = ref 0.0 in
  for i = 0 to n - 1 do
    unavail := !unavail +. (1.0 -. Stdlib.min 1.0 availability.(i));
    if degraded availability.(i) then (
      if !first < 0 then first := i;
      last := i)
  done;
  let time_to_recover =
    if !first < 0 then 0.0
    else if !last = n - 1 then infinity (* still degraded when the run ended *)
    else float_of_int (!last - !first + 1)
  in
  let goodput =
    if !first < 0 then 0.0
    else (
      let sum = ref 0.0 and count = ref 0 in
      for i = !first to Stdlib.min !last (Array.length throughput_series - 1) do
        if degraded availability.(i) then (
          sum := !sum +. throughput_series.(i);
          incr count)
      done;
      if !count = 0 then 0.0 else !sum /. float_of_int !count)
  in
  (!unavail, time_to_recover, goodput)

let run ?(seed = 1) ?(batch = false) ?(setup = fun _ -> ()) ?tracer ?history
    ~cfg ~make ~gen rc =
  let sink_tracer =
    match (tracer, !sink) with
    | None, Some s -> Some (s.fresh ())
    | _ -> None
  in
  let tracer = match tracer with Some _ -> tracer | None -> sink_tracer in
  let cl = Cluster.create ~seed ?tracer ?history cfg in
  setup cl;
  let proto = make cl in
  let engine = cl.Cluster.engine in
  let measured_arrivals = ref 0 in
  (match rc.arrival with
  | Closed ->
      let clients =
        if rc.clients > 0 then rc.clients
        else if batch then cfg.Config.batch_size
        else 2 * Config.total_workers cfg
      in
      (* Closed-loop clients: each submits its next transaction the
         moment the previous one finishes, so the offered load tracks
         the system's own pace and can never run away from it. *)
      let rec client_loop () =
        let txn = gen ~time:(Engine.now engine) in
        proto.Proto.submit txn ~on_done:(fun () ->
            Engine.schedule engine ~delay:0.0 client_loop)
      in
      for _ = 1 to clients do
        client_loop ()
      done
  | (Poisson rate | Uniform rate) when rate > 0.0 ->
      (* Open-loop arrivals: transactions arrive on their own clock,
         oblivious to completions — the offered load stays fixed even
         when the system falls behind, which is what exposes overload
         and metastable behaviour (docs/OVERLOAD.md). A dedicated Rng
         keeps the arrival process independent of every other seeded
         stream. *)
      let arr_rng = Lion_kernel.Rng.create (seed + 0x0a51) in
      let mean_gap = 1e6 /. rate in
      let warm_end = Engine.seconds rc.warmup in
      let horizon = Engine.seconds (rc.warmup +. rc.duration) in
      let gap () =
        match rc.arrival with
        | Uniform _ -> mean_gap
        | _ ->
            (* Inverse-CDF exponential; log1p keeps u→0 exact and
               Rng.float never returns 1.0, so the draw is finite. *)
            -.mean_gap *. log1p (-.Lion_kernel.Rng.float arr_rng 1.0)
      in
      let rec arrive () =
        if Engine.now engine < horizon then (
          if Engine.now engine >= warm_end then incr measured_arrivals;
          let txn = gen ~time:(Engine.now engine) in
          proto.Proto.submit txn ~on_done:(fun () -> ());
          Engine.schedule engine ~delay:(gap ()) arrive)
      in
      Engine.schedule engine ~delay:(gap ()) arrive
  | _ -> ());
  (* Periodic protocol tick (planner / load monitor). *)
  let tick_us = Engine.seconds rc.tick_every in
  let rec ticker () =
    Engine.schedule engine ~delay:tick_us (fun () ->
        proto.Proto.tick ();
        ticker ())
  in
  ticker ();
  (* Availability sampler: one mid-bucket probe per simulated second,
     so each bucket of the series holds exactly one sample. *)
  let avail_tick = Engine.seconds 1.0 in
  let rec avail_loop () =
    Metrics.note_availability cl.Cluster.metrics ~frac:(Cluster.availability cl);
    Engine.schedule engine ~delay:avail_tick avail_loop
  in
  Engine.schedule engine ~delay:(avail_tick /. 2.0) avail_loop;
  (* Warm up, reset the summary window, then measure. *)
  Engine.run_until engine (Engine.seconds rc.warmup);
  Metrics.reset_window cl.Cluster.metrics;
  let bytes_before = Network.total_bytes cl.Cluster.network in
  Engine.run_until engine (Engine.seconds (rc.warmup +. rc.duration));
  proto.Proto.drain ();
  let metrics = cl.Cluster.metrics in
  let commits = Metrics.commits metrics in
  let bytes_delta = Network.total_bytes cl.Cluster.network - bytes_before in
  let availability = Metrics.availability_series metrics in
  let throughput_series = Metrics.throughput_series metrics in
  let unavail_seconds, time_to_recover, goodput_under_fault =
    fault_summary ~availability ~throughput_series
  in
  (match (sink_tracer, !sink) with
  | Some t, Some s -> s.emit t
  | _ -> ());
  let throughput = float_of_int commits /. rc.duration in
  {
    throughput;
    (* Goodput discounts commits that landed past their deadline: the
       client had already given up on them. Without a deadline it
       equals throughput. *)
    goodput =
      float_of_int (commits - Metrics.deadline_misses metrics) /. rc.duration;
    offered =
      (match rc.arrival with
      | Closed -> throughput
      | Poisson _ | Uniform _ ->
          float_of_int !measured_arrivals /. rc.duration);
    commits;
    aborts = Metrics.aborts metrics;
    p50 = Metrics.latency_percentile metrics 50.0;
    p75 = Metrics.latency_percentile metrics 75.0;
    p90 = Metrics.latency_percentile metrics 90.0;
    p95 = Metrics.latency_percentile metrics 95.0;
    p99 = Metrics.latency_percentile metrics 99.0;
    mean_latency = Metrics.mean_latency metrics;
    single_node_ratio =
      (if commits = 0 then 0.0
       else float_of_int (Metrics.single_node_commits metrics) /. float_of_int commits);
    remaster_ratio =
      (if commits = 0 then 0.0
       else float_of_int (Metrics.remastered_commits metrics) /. float_of_int commits);
    throughput_series;
    goodput_series = Metrics.goodput_series metrics;
    bytes_series = Lion_kernel.Timeseries.to_array (Network.bytes_series cl.Cluster.network);
    bytes_per_txn =
      (if commits = 0 then 0.0 else float_of_int bytes_delta /. float_of_int commits);
    phase_fractions =
      List.map (fun p -> (p, Metrics.phase_fraction metrics p)) Metrics.all_phases;
    remasters = cl.Cluster.remaster_count;
    replica_adds = cl.Cluster.replica_add_count;
    timeouts = Metrics.timeouts metrics;
    retries = Metrics.retries metrics;
    drops = Metrics.drops metrics;
    sheds = Metrics.sheds metrics;
    breaker_rejects = Metrics.breaker_rejects metrics;
    breaker_opens = Metrics.breaker_opens metrics;
    budget_denials = Metrics.budget_denials metrics;
    deadline_giveups = Metrics.deadline_giveups metrics;
    deadline_misses = Metrics.deadline_misses metrics;
    stale_ack_rejections = Metrics.stale_ack_rejections metrics;
    availability;
    unavail_seconds;
    time_to_recover;
    goodput_under_fault;
    engine_events = Engine.events_processed engine;
  }
