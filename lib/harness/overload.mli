(** Overload and graceful-degradation experiments (docs/OVERLOAD.md).

    Three building blocks, shared by the [overload_sweep] CLI, the
    experiment registry and the tests:
    - a closed-loop {e capacity probe} per protocol;
    - an open-loop {e offered-load sweep} through and past saturation
      (throughput / goodput / p99 vs offered load), with or without the
      overload-protection knobs of [Config.with_overload_defaults];
    - a seeded {e metastable-failure reproduction}: a 3 s single-node
      slowdown under saturation open-loop load, run once with admission
      control only (goodput stays collapsed long after the trigger
      clears — the system keeps committing transactions whose clients
      gave up) and once with retry budgets + breakers + enforced
      deadlines (the zombie backlog is shed and goodput recovers). *)

type proto_spec = {
  proto : string;
  batch : bool;
  make : Lion_store.Cluster.t -> Lion_protocols.Proto.t;
}

val lion_spec : proto_spec
val star_spec : proto_spec
val twopc_spec : proto_spec

val specs : proto_spec list
(** The protocols the sweep covers: lion, star, twopc. *)

val probe_capacity : ?seed:int -> ?scale:float -> proto_spec -> float
(** Closed-loop throughput (txn/s) on the shared overload workload —
    the saturation point the sweep ratios are relative to. *)

type point = { ratio : float;  (** offered / capacity *) result : Runner.result }

type sweep = {
  spec : proto_spec;
  protected_ : bool;  (** ran with [Config.with_overload_defaults] *)
  capacity : float;
  points : point list;
}

val default_ratios : float list
(** 0.25, 0.5, 0.75, 1.0, 1.25, 1.5 — through and past saturation. *)

val sweep_one :
  ?seed:int ->
  ?scale:float ->
  ?protect:bool ->
  ?ratios:float list ->
  proto_spec ->
  sweep
(** Probe capacity, then one open-loop Poisson run per ratio.
    [protect] (default false) turns every overload knob on. *)

val sweep :
  ?seed:int -> ?scale:float -> ?protect:bool -> ?ratios:float list -> unit -> sweep list
(** [sweep_one] over every protocol in [specs]. *)

val sweep_rows : sweep list -> string list * string list list
(** CSV header + rows (one row per protocol x ratio). *)

val print_sweeps : sweep list -> unit

type meta = {
  label : string;
  capacity : float;
  peak : float;  (** mean goodput/s before the trigger, seconds [2,6) *)
  during : float;  (** mean goodput/s while the trigger is active, [6,9) *)
  tail : float;
      (** mean goodput/s over [14,20), five seconds after the trigger
          cleared — the metastability verdict: an unprotected collapse
          holds the tail far below [peak] even though the trigger is
          long gone *)
  series : float array;  (** goodput per second, full run *)
  commit_series : float array;  (** raw commits per second, full run *)
  result : Runner.result;
}

val metastable :
  ?seed:int -> ?scale:float -> ?load:float -> protect:bool -> unit -> meta
(** One metastable run (2PC, open-loop Poisson at [load] (default 1.0)
    x probed capacity, node 0 slowed 12x from 6 s to 9 s, 20 s total,
    all times x [scale]). Both variants measure the same 200 ms client
    patience; [protect = false] keeps bounded queues but strips
    budgets and breakers and leaves the deadline unenforced
    ([Config.deadline_enforce = false]), so its goodput counts the
    stale commits it keeps producing against it. *)

val metastable_pair :
  ?seed:int -> ?scale:float -> ?load:float -> unit -> meta list
(** The unprotected and protected runs, in that order. *)

val metastable_rows : meta list -> string list * string list list
(** Per-second CSV: goodput/s and commits/s columns per variant. *)

val print_metastable : meta list -> unit
