let escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if not needs_quoting then cell
  else (
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf)

let write_csv ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let line cells = output_string oc (String.concat "," (List.map escape cells) ^ "\n") in
      line header;
      List.iter line rows)

let series_csv ~path series =
  let header = "second" :: List.map fst series in
  let len = List.fold_left (fun acc (_, a) -> Stdlib.max acc (Array.length a)) 0 series in
  let rows =
    List.init len (fun i ->
        string_of_int (i + 1)
        :: List.map
             (fun (_, a) ->
               if i < Array.length a then Printf.sprintf "%.1f" a.(i) else "")
             series)
  in
  write_csv ~path ~header ~rows

module Metrics = Lion_sim.Metrics

let result_rows results =
  let header =
    [
      "label"; "throughput_txn_s"; "commits"; "aborts"; "p50_us"; "p75_us"; "p90_us";
      "p95_us"; "mean_latency_us"; "single_node_ratio"; "remaster_ratio"; "bytes_per_txn";
      "remasters"; "replica_adds";
    ]
    @ List.map
        (fun p -> "frac_" ^ Metrics.phase_name p)
        Metrics.all_phases
    @ [
        "timeouts"; "retries"; "drops"; "unavail_s"; "time_to_recover_s";
        "goodput_under_fault"; "offered_txn_s"; "goodput_txn_s"; "p99_us";
        "sheds"; "breaker_rejects"; "breaker_opens"; "budget_denials";
        "deadline_giveups"; "deadline_misses";
      ]
  in
  let row (label, (r : Runner.result)) =
    [
      label;
      Printf.sprintf "%.1f" r.Runner.throughput;
      string_of_int r.Runner.commits;
      string_of_int r.Runner.aborts;
      Printf.sprintf "%.1f" r.Runner.p50;
      Printf.sprintf "%.1f" r.Runner.p75;
      Printf.sprintf "%.1f" r.Runner.p90;
      Printf.sprintf "%.1f" r.Runner.p95;
      Printf.sprintf "%.1f" r.Runner.mean_latency;
      Printf.sprintf "%.4f" r.Runner.single_node_ratio;
      Printf.sprintf "%.4f" r.Runner.remaster_ratio;
      Printf.sprintf "%.1f" r.Runner.bytes_per_txn;
      string_of_int r.Runner.remasters;
      string_of_int r.Runner.replica_adds;
    ]
    @ List.map
        (fun p ->
          let f =
            try List.assoc p r.Runner.phase_fractions with Not_found -> 0.0
          in
          Printf.sprintf "%.4f" f)
        Metrics.all_phases
    @ [
        string_of_int r.Runner.timeouts;
        string_of_int r.Runner.retries;
        string_of_int r.Runner.drops;
        Printf.sprintf "%.1f" r.Runner.unavail_seconds;
        (if r.Runner.time_to_recover = infinity then "inf"
         else Printf.sprintf "%.1f" r.Runner.time_to_recover);
        Printf.sprintf "%.1f" r.Runner.goodput_under_fault;
        Printf.sprintf "%.1f" r.Runner.offered;
        Printf.sprintf "%.1f" r.Runner.goodput;
        Printf.sprintf "%.1f" r.Runner.p99;
        string_of_int r.Runner.sheds;
        string_of_int r.Runner.breaker_rejects;
        string_of_int r.Runner.breaker_opens;
        string_of_int r.Runner.budget_denials;
        string_of_int r.Runner.deadline_giveups;
        string_of_int r.Runner.deadline_misses;
      ]
  in
  (header, List.map row results)

let result_csv ~path results =
  let header, rows = result_rows results in
  write_csv ~path ~header ~rows
