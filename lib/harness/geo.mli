(** Geo-replication experiments (docs/GEO.md).

    Everything here runs on the GEO preset ({!Config.with_geo_defaults}:
    2 regions, [min_regions] 2) with the region-aware two-partition
    workload of {!gen}. The headline sweep varies the fraction of
    transactions whose second partition is homed in another region and
    compares Lion, Star, 2PC and the epoch-based OCC protocol —
    reproducing the crossover where Lion's adaptive replication wins at
    0 % cross-region and epoch-based OCC wins at the high end. *)

val geo_config : ?regions:int -> unit -> Lion_store.Config.t
(** [Config.default] with the geo preset applied and [regions] regions
    (default 2). *)

val gen :
  ?seed:int ->
  ?cross:float ->
  Lion_store.Config.t ->
  time:float ->
  Lion_workload.Txn.t
(** Two-partition read-write transactions with a region-local home
    partition; [cross] (default 0) is the probability that the second
    partition is homed in a different region. Partition → region uses
    the seed placement (primary of [p] is node [p mod nodes]), so the
    mix is stable under remastering. *)

type cell = {
  ratio : float;  (** cross-region ratio of this run *)
  throughput : float;  (** commits per measured second *)
  goodput : float;
  wan_mb : float;  (** cross-region traffic over the whole run, MB *)
  wan_msgs : int;
}

val ratios : float list
(** The sweep's cross-region ratios: 0, 0.25, 0.5, 0.75, 1. *)

val sweep :
  ?seed:int -> ?scale:float -> ?regions:int -> unit -> (string * cell list) list
(** One row per protocol (Lion, Star, 2PC, EpochOCC), one cell per
    ratio. [scale] multiplies simulated durations (default 1.0). *)

val print_sweep : regions:int -> (string * cell list) list -> unit

val crossover_ok : (string * cell list) list -> bool
(** [Lion >= EpochOCC] at ratio 0 and [EpochOCC >= Lion] at ratio 1. *)

val wan_partition :
  ?seed:int -> ?scale:float -> unit -> (string * Runner.result) list
(** Goodput under a WAN partition: regions 0 and 1 are split for a
    window mid-run on a 10 % cross-region workload. [min_regions] = 2
    keeps both sides holding a replica of every partition. *)

val print_partition : ?scale:float -> (string * Runner.result) list -> unit
