module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Metrics = Lion_sim.Metrics
module Table = Lion_kernel.Table
module Proto = Lion_protocols.Proto
module Planner = Lion_core.Planner

let fmt_k v = Table.cell_float ~decimals:1 (v /. 1000.0)

(* Paper §VI-C1 stress setting for the non-batch comparisons. *)
let slow_remaster cfg =
  { cfg with Config.remaster_delay = 3000.0; remaster_cooldown = 30_000.0 }

let lion_std_config ~predict ~use_lstm =
  { Planner.default_config with Planner.predict; use_lstm }

let standard_protocols ~use_lstm =
  [
    ("2PC", false, fun cl -> Lion_protocols.Twopc.create cl);
    ("Leap", false, fun cl -> Lion_protocols.Leap.create cl);
    ("Clay", false, fun cl -> Lion_protocols.Clay.create cl);
    ( "Lion",
      false,
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:(lion_std_config ~predict:true ~use_lstm)
          cl );
  ]

let batch_protocols ~use_lstm =
  [
    ("Star", true, fun cl -> Lion_protocols.Star.create cl);
    ("Calvin", true, fun cl -> Lion_protocols.Calvin.create cl);
    ("Hermes", true, fun cl -> Lion_protocols.Hermes.create cl);
    ("Aria", true, fun cl -> Lion_protocols.Aria.create cl);
    ("Lotus", true, fun cl -> Lion_protocols.Lotus.create cl);
    ( "Lion",
      true,
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:(lion_std_config ~predict:true ~use_lstm)
          cl );
  ]

(* ------------------------------------------------------------------ *)

let table1_comparison () =
  let t =
    Table.create ~title:"Table I: comparison of Lion with existing approaches"
      ~columns:
        [ "approach"; "key design"; "adaptivity"; "migration-free"; "load balance"; "constraints" ]
  in
  List.iter (Table.add_row t)
    [
      [ "2PC"; "distributed transactions"; "n/a"; "n/a"; "no"; "none" ];
      [ "Schism"; "offline repartitioning"; "no"; "no"; "no"; "none" ];
      [ "Leap"; "aggressive migration"; "yes"; "no"; "no"; "none" ];
      [ "Clay"; "periodical migration"; "yes"; "no"; "yes"; "none" ];
      [ "Hermes"; "deterministic migration"; "yes"; "no"; "yes"; "batches" ];
      [ "Star"; "full replication"; "n/a"; "yes"; "no"; "batches" ];
      [ "Lion"; "adaptive replication"; "yes"; "yes"; "yes"; "none" ];
    ];
  Table.print t

(* ------------------------------------------------------------------ *)

let fig6_ablation ?(scale = 1.0) () =
  let cfg = Config.default in
  let rc =
    { Runner.quick with warmup = 9.0 *. scale; duration = 6.0 *. scale }
  in
  let t =
    Table.create
      ~title:
        "Fig 6 / Table II: ablation on uniform YCSB, 100% distributed transactions \
         (throughput, k txn/s)"
      ~columns:[ "variant"; "throughput"; "single-node %"; "vs 2PC" ]
  in
  let base = ref 0.0 in
  List.iter
    (fun variant ->
      let is_batch =
        match variant with
        | Lion_core.Ablation.V_rb | Lion_core.Ablation.V_full -> true
        | _ -> false
      in
      let r =
        Runner.run ~batch:is_batch ~cfg
          ~make:(fun cl -> Lion_core.Ablation.create ~use_lstm:false variant cl)
          ~gen:(Workloads.ycsb ~cross:1.0 cfg)
          rc
      in
      if variant = Lion_core.Ablation.V_2pc then base := r.Runner.throughput;
      Table.add_row t
        [
          Lion_core.Ablation.name variant;
          fmt_k r.Runner.throughput;
          Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio);
          Table.cell_float ~decimals:2
            (r.Runner.throughput /. Stdlib.max 1.0 !base);
        ])
    Lion_core.Ablation.all;
  Table.print t

(* ------------------------------------------------------------------ *)

let crossratio_sweep ~title ~protocols ~gen_of ?(cfg = Config.default) ~scale () =
  let ratios = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let t =
    Table.create ~title
      ~columns:
        ("protocol"
        :: List.map (fun r -> Printf.sprintf "%d%%" (int_of_float (100.0 *. r))) ratios)
  in
  List.iter
    (fun (name, is_batch, make) ->
      let cells =
        List.map
          (fun ratio ->
            let rc =
              {
                Runner.quick with
                warmup = 4.0 *. scale;
                duration = 5.0 *. scale;
              }
            in
            let r =
              Runner.run ~batch:is_batch ~cfg ~make
                ~gen:(gen_of ratio) rc
            in
            fmt_k r.Runner.throughput)
          ratios
      in
      Table.add_row t (name :: cells))
    protocols;
  Table.print t

let fig7_crossratio_nonbatch ?(scale = 1.0) () =
  let cfg = slow_remaster Config.default in
  crossratio_sweep
    ~title:
      "Fig 7a: skewed YCSB (skew 0.8), standard execution, remaster delay 3000us \
       (throughput, k txn/s)"
    ~protocols:(standard_protocols ~use_lstm:false)
    ~gen_of:(fun ratio -> Workloads.ycsb ~skew:0.8 ~cross:ratio cfg)
    ~cfg ~scale ();
  crossratio_sweep
    ~title:"Fig 7b: skewed TPC-C (skew 0.8), standard execution (throughput, k txn/s)"
    ~protocols:(standard_protocols ~use_lstm:false)
    ~gen_of:(fun ratio -> Workloads.tpcc ~skew:0.8 ~cross:ratio cfg)
    ~cfg ~scale ()

let fig9_crossratio_batch ?(scale = 1.0) () =
  let cfg = slow_remaster Config.default in
  crossratio_sweep
    ~title:"Fig 9a: skewed YCSB (skew 0.8), batch execution (throughput, k txn/s)"
    ~protocols:(batch_protocols ~use_lstm:false)
    ~gen_of:(fun ratio -> Workloads.ycsb ~skew:0.8 ~cross:ratio cfg)
    ~cfg ~scale ();
  crossratio_sweep
    ~title:"Fig 9b: skewed TPC-C (skew 0.8), batch execution (throughput, k txn/s)"
    ~protocols:(batch_protocols ~use_lstm:false)
    ~gen_of:(fun ratio -> Workloads.tpcc ~skew:0.8 ~cross:ratio cfg)
    ~cfg ~scale ()

(* ------------------------------------------------------------------ *)

let dynamic_sweep ~title ~protocols ~gen ~total ~cfg ~phases () =
  let t =
    Table.create ~title
      ~columns:
        ("protocol (k txn/s @ second)"
        :: List.init (int_of_float total) (fun i -> string_of_int (i + 1)))
  in
  Table.add_row t
    ("phases"
    :: List.init (int_of_float total) (fun i ->
           match List.find_opt (fun (_, start) -> int_of_float start = i) phases with
           | Some (name, _) -> name
           | None -> ""));
  List.iter
    (fun (name, is_batch, make) ->
      let rc =
        {
          Runner.quick with
          warmup = 0.0;
          duration = total;
          tick_every = 1.0;
        }
      in
      let r = Runner.run ~batch:is_batch ~cfg ~make ~gen rc in
      let series = r.Runner.throughput_series in
      let cells =
        List.init (int_of_float total) (fun i ->
            if i < Array.length series then fmt_k series.(i) else "")
      in
      Table.add_row t (name :: cells))
    protocols;
  Table.print t

let fig8_dynamic_nonbatch ?(scale = 1.0) () =
  let cfg = slow_remaster Config.default in
  let period = 10.0 *. scale in
  dynamic_sweep
    ~title:"Fig 8a: dynamic hotspot-interval scenario, standard execution"
    ~protocols:(standard_protocols ~use_lstm:true)
    ~gen:(Workloads.dynamic_interval ~period cfg)
    ~total:(3.0 *. period) ~cfg
    ~phases:
      [ ("interval-0", 0.0); ("interval-1", period); ("interval-2", 2.0 *. period) ]
    ();
  dynamic_sweep
    ~title:"Fig 8b: dynamic hotspot-position scenario (A/B/C/D), standard execution"
    ~protocols:(standard_protocols ~use_lstm:true)
    ~gen:(Workloads.dynamic_position ~period cfg)
    ~total:(4.0 *. period) ~cfg
    ~phases:(Workloads.position_phases cfg ~period)
    ()

let fig10_dynamic_batch ?(scale = 1.0) () =
  let cfg = slow_remaster Config.default in
  let period = 10.0 *. scale in
  dynamic_sweep
    ~title:"Fig 10a: dynamic hotspot-interval scenario, batch execution"
    ~protocols:(batch_protocols ~use_lstm:true)
    ~gen:(Workloads.dynamic_interval ~period cfg)
    ~total:(3.0 *. period) ~cfg
    ~phases:
      [ ("interval-0", 0.0); ("interval-1", period); ("interval-2", 2.0 *. period) ]
    ();
  dynamic_sweep
    ~title:"Fig 10b: dynamic hotspot-position scenario (A/B/C/D), batch execution"
    ~protocols:(batch_protocols ~use_lstm:true)
    ~gen:(Workloads.dynamic_position ~period cfg)
    ~total:(4.0 *. period) ~cfg
    ~phases:(Workloads.position_phases cfg ~period)
    ()

(* ------------------------------------------------------------------ *)

let fig11_scalability ?(scale = 1.0) () =
  let node_counts = [ 4; 6; 8; 10 ] in
  let t =
    Table.create
      ~title:
        "Fig 11: scalability, uniform YCSB 100% cross-partition (throughput, k txn/s)"
      ~columns:("protocol" :: List.map (fun n -> Printf.sprintf "%d nodes" n) node_counts)
  in
  let all_protocols =
    standard_protocols ~use_lstm:false @ batch_protocols ~use_lstm:false
  in
  List.iter
    (fun (name, is_batch, make) ->
      let name = if is_batch && name = "Lion" then "Lion(batch)" else name in
      let cells =
        List.map
          (fun nodes ->
            let cfg = Config.with_nodes Config.default nodes in
            let rc =
              {
                Runner.quick with
                warmup = 4.0 *. scale;
                duration = 5.0 *. scale;
              }
            in
            let r =
              Runner.run ~batch:is_batch ~cfg ~make
                ~gen:(Workloads.ycsb ~cross:1.0 cfg)
                rc
            in
            fmt_k r.Runner.throughput)
          node_counts
      in
      Table.add_row t (name :: cells))
    all_protocols;
  Table.print t

(* ------------------------------------------------------------------ *)

let fig12_migration_analysis ?(scale = 1.0) () =
  let cfg = Config.default in
  let period = 8.0 *. scale in
  (* Two full cycles of the shifting-interval scenario: the predictor
     learns the recurrence during cycle 1 and pre-replicates ahead of
     the cycle-2 shifts. *)
  let total = 6.0 *. period in
  let rc =
    { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
  in
  let r =
    Runner.run ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:(lion_std_config ~predict:true ~use_lstm:true)
          cl)
      ~gen:(Workloads.dynamic_interval ~period cfg)
      rc
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 12: adaptation across shifting hotspot intervals (period %.0fs; the \
            planner pre-replicates when wv fires ahead of each shift)"
           period)
      ~columns:[ "second"; "phase"; "throughput (k txn/s)"; "net bytes/txn" ]
  in
  let series = r.Runner.throughput_series in
  let bytes = r.Runner.bytes_series in
  Array.iteri
    (fun i tput ->
      (* Drop the partial bucket past the measurement cutoff. *)
      if i < int_of_float total then (
        let b = if i < Array.length bytes then bytes.(i) else 0.0 in
        let phase =
          if Float.rem (float_of_int i) period = 0.0 then
            Printf.sprintf "interval-%d" (int_of_float (float_of_int i /. period) mod 3)
          else ""
        in
        Table.add_row t
          [
            string_of_int (i + 1);
            phase;
            fmt_k tput;
            Table.cell_float ~decimals:0 (if tput > 0.0 then b /. tput else 0.0);
          ]))
    series;
  Table.print t;
  Printf.printf "replica additions: %d, remasters: %d\n\n"
    r.Runner.replica_adds r.Runner.remasters

(* ------------------------------------------------------------------ *)

(* Seconds from a phase switch until throughput first reaches 90% of the
   steady level it attains by the end of that phase. *)
let recovery_time series ~switch_at ~phase_end =
  let switch_at = Stdlib.min switch_at (Array.length series - 1) in
  let phase_end = Stdlib.min phase_end (Array.length series) in
  if phase_end <= switch_at + 1 then 0.0
  else (
    let steady =
      let tail = Array.sub series (phase_end - 2) (phase_end - (phase_end - 2)) in
      Array.fold_left Stdlib.max 0.0 tail
    in
    let target = 0.9 *. steady in
    let rec find i = if i >= phase_end then phase_end - switch_at else if series.(i) >= target then i - switch_at else find (i + 1) in
    float_of_int (find switch_at))

let fig13a_preplication ?(scale = 1.0) () =
  (* Costly remastering + a recurring shifting hotspot: the predictor,
     having seen cycle 1, pre-replicates before each cycle-2 shift; the
     prediction-less planner reacts only after the shift lands. *)
  let cfg = slow_remaster Config.default in
  let period = 8.0 *. scale in
  let total = 6.0 *. period in
  let run predict =
    let rc =
      { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
    in
    Runner.run ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create
          ~name:(if predict then "Lion(RW)" else "Lion(R)")
          ~config:(lion_std_config ~predict ~use_lstm:predict)
          cl)
      ~gen:(Workloads.dynamic_interval ~period cfg)
      rc
  in
  let with_pred = run true in
  let without = run false in
  let t =
    Table.create
      ~title:"Fig 13a: adaptation after the cycle-2 hotspot shifts (pre-replication impact)"
      ~columns:
        [
          "variant";
          "post-shift dip (k txn/s, lower period mean)";
          "recovery time (s)";
          "mean throughput (k txn/s)";
        ]
  in
  let report name (r : Runner.result) =
    let series = r.Runner.throughput_series in
    (* Average the 2 buckets after each cycle-2 shift (shifts at 4 and
       5 periods). *)
    let dip =
      let at p =
        let i = int_of_float (p *. period) in
        if i + 1 < Array.length series then (series.(i) +. series.(i + 1)) /. 2.0
        else 0.0
      in
      (at 4.0 +. at 5.0) /. 2.0
    in
    let rec_t =
      recovery_time series
        ~switch_at:(int_of_float (4.0 *. period))
        ~phase_end:(int_of_float (5.0 *. period))
    in
    Table.add_row t
      [
        name;
        fmt_k dip;
        Table.cell_float ~decimals:1 rec_t;
        fmt_k r.Runner.throughput;
      ]
  in
  report "Lion with prediction" with_pred;
  report "Lion without prediction" without;
  Table.print t

let fig13b_batch_opt ?(scale = 1.0) () =
  let delays = [ 300.0; 1000.0; 3000.0; 10000.0 ] in
  let t =
    Table.create
      ~title:
        "Fig 13b: impact of remastering delay — standard vs batch Lion (throughput, \
         k txn/s)"
      ~columns:
        ("variant"
        :: List.map (fun d -> Printf.sprintf "%.0fus" d) delays)
  in
  (* A continuously shifting hotspot keeps remastering on the critical
     path; standard Lion pays each delay inline, batch Lion overlaps
     them behind one barrier per epoch. *)
  let period = 6.0 *. scale in
  let run_variant name is_batch make =
    let cells =
      List.map
        (fun delay ->
          let cfg =
            {
              Config.default with
              Config.remaster_delay = delay;
              remaster_cooldown = 10.0 *. delay;
            }
          in
          let rc =
            {
              Runner.quick with
              warmup = 0.0;
              duration = 3.0 *. period;
              tick_every = 1.0;
            }
          in
          let r =
            Runner.run ~batch:is_batch ~cfg ~make
              ~gen:(Workloads.dynamic_interval ~period cfg)
              rc
          in
          fmt_k r.Runner.throughput)
        delays
    in
    Table.add_row t (name :: cells)
  in
  run_variant "Lion standard" false (fun cl ->
      Lion_core.Standard.create ~name:"Lion-std"
        ~config:(lion_std_config ~predict:false ~use_lstm:false)
        cl);
  run_variant "Lion batch" true (fun cl ->
      Lion_core.Batch_mode.create ~name:"Lion-batch"
        ~config:(lion_std_config ~predict:false ~use_lstm:false)
        cl);
  Table.print t

(* ------------------------------------------------------------------ *)

let fig14_latency ?(scale = 1.0) () =
  let cfg = slow_remaster Config.default in
  let results =
    List.map
      (fun (name, is_batch, make) ->
        let rc =
          {
            Runner.quick with
            warmup = 4.0 *. scale;
            duration = 5.0 *. scale;
          }
        in
        ( name,
          Runner.run ~batch:is_batch ~cfg ~make
            ~gen:(Workloads.ycsb ~skew:0.8 ~cross:0.5 cfg)
            rc ))
      (batch_protocols ~use_lstm:false)
  in
  let t =
    Table.create ~title:"Fig 14a: latency percentiles, batch protocols (ms)"
      ~columns:[ "protocol"; "p50"; "p75"; "p90"; "p95" ]
  in
  List.iter
    (fun (name, r) ->
      Table.add_row t
        [
          name;
          Table.cell_float ~decimals:1 (r.Runner.p50 /. 1000.0);
          Table.cell_float ~decimals:1 (r.Runner.p75 /. 1000.0);
          Table.cell_float ~decimals:1 (r.Runner.p90 /. 1000.0);
          Table.cell_float ~decimals:1 (r.Runner.p95 /. 1000.0);
        ])
    results;
  Table.print t;
  let t2 =
    Table.create ~title:"Fig 14b: latency breakdown by phase (% of transaction time)"
      ~columns:
        ("protocol" :: List.map Metrics.phase_name Metrics.all_phases)
  in
  List.iter
    (fun (name, r) ->
      Table.add_row t2
        (name
        :: List.map
             (fun (_, frac) -> Table.cell_float ~decimals:0 (100.0 *. frac))
             r.Runner.phase_fractions))
    results;
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper's figures: the design knobs DESIGN.md
   calls out — remaster ping-pong damping, the replica budget, and the
   prediction weight w_p (§IV-C's tunable).                            *)
(* ------------------------------------------------------------------ *)

let abl_cooldown ?(scale = 1.0) () =
  let cooldowns = [ 3_000.0; 10_000.0; 30_000.0; 100_000.0 ] in
  let t =
    Table.create
      ~title:
        "Ablation: remaster cooldown (ping-pong damping), Lion standard, skewed \
         YCSB 100% cross, remaster 3000us (throughput, k txn/s)"
      ~columns:("metric" :: List.map (fun c -> Printf.sprintf "%.0fms" (c /. 1000.0)) cooldowns)
  in
  let results =
    List.map
      (fun cooldown ->
        let cfg =
          {
            Config.default with
            Config.remaster_delay = 3000.0;
            remaster_cooldown = cooldown;
          }
        in
        let rc = { Runner.quick with warmup = 5.0 *. scale; duration = 5.0 *. scale } in
        Runner.run ~cfg
          ~make:(fun cl ->
            Lion_core.Standard.create ~name:"Lion"
              ~config:(lion_std_config ~predict:false ~use_lstm:false)
              cl)
          ~gen:(Workloads.ycsb ~skew:0.8 ~cross:1.0 cfg)
          rc)
      cooldowns
  in
  Table.add_row t
    ("throughput" :: List.map (fun (r : Runner.result) -> fmt_k r.Runner.throughput) results);
  Table.add_row t
    ("remasters/s"
    :: List.map
         (fun (r : Runner.result) ->
           Table.cell_int (int_of_float (float_of_int r.Runner.remasters /. (10.0 *. scale))))
         results);
  Table.print t

let abl_replicas ?(scale = 1.0) () =
  let caps = [ 2; 3; 4 ] in
  let t =
    Table.create
      ~title:
        "Ablation: max replicas per partition, Lion standard, uniform YCSB 100% \
         cross (throughput, k txn/s)"
      ~columns:("metric" :: List.map (fun c -> Printf.sprintf "max %d" c) caps)
  in
  let results =
    List.map
      (fun cap ->
        let cfg = { Config.default with Config.max_replicas = cap } in
        let rc = { Runner.quick with warmup = 6.0 *. scale; duration = 5.0 *. scale } in
        Runner.run ~cfg
          ~make:(fun cl ->
            Lion_core.Standard.create ~name:"Lion"
              ~config:(lion_std_config ~predict:false ~use_lstm:false)
              cl)
          ~gen:(Workloads.ycsb ~cross:1.0 cfg)
          rc)
      caps
  in
  Table.add_row t
    ("throughput" :: List.map (fun (r : Runner.result) -> fmt_k r.Runner.throughput) results);
  Table.add_row t
    ("single-node %"
    :: List.map
         (fun (r : Runner.result) ->
           Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio))
         results);
  Table.print t

let abl_wp ?(scale = 1.0) () =
  let weights = [ 0.0; 0.5; 1.0; 2.0 ] in
  let cfg = Config.default in
  let period = 8.0 *. scale in
  let t =
    Table.create
      ~title:
        "Ablation: prediction weight w_p (SIV-C), Lion standard on the \
         hotspot-interval scenario"
      ~columns:("metric" :: List.map (fun w -> Printf.sprintf "w_p=%.1f" w) weights)
  in
  let results =
    List.map
      (fun w_p ->
        let config =
          {
            (lion_std_config ~predict:(w_p > 0.0) ~use_lstm:false) with
            Planner.w_p;
          }
        in
        let rc =
          { Runner.quick with warmup = 0.0; duration = 2.0 *. period; tick_every = 1.0 }
        in
        Runner.run ~cfg
          ~make:(fun cl -> Lion_core.Standard.create ~name:"Lion" ~config cl)
          ~gen:(Workloads.dynamic_interval ~period cfg)
          rc)
      weights
  in
  Table.add_row t
    ("mean throughput"
    :: List.map (fun (r : Runner.result) -> fmt_k r.Runner.throughput) results);
  Table.add_row t
    ("recovery after shift (s)"
    :: List.map
         (fun (r : Runner.result) ->
           Table.cell_float ~decimals:1
             (recovery_time r.Runner.throughput_series ~switch_at:(int_of_float period)
                ~phase_end:(int_of_float (2.0 *. period))))
         results);
  Table.print t

let abl_forecaster ?(scale = 1.0) () =
  ignore scale;
  (* Forecast accuracy on synthetic arrival-rate series shaped like the
     dynamic scenarios: level shifts, ramps and a periodic pattern.
     Supports §IV-C1's claim that the LSTM beats linear regression and
     a vanilla RNN on these shapes. Reported as MSE on the trailing 20%
     of each (normalised) series. *)
  let series =
    [
      ( "level-shift",
        Array.init 120 (fun i -> if i mod 40 < 20 then 20.0 else 100.0) );
      ("ramp", Array.init 120 (fun i -> 10.0 +. (2.0 *. float_of_int (i mod 40))));
      ( "periodic",
        Array.init 120 (fun i ->
            60.0 +. (40.0 *. sin (float_of_int i /. 4.0))) );
    ]
  in
  let window = 10 in
  let t =
    Table.create
      ~title:
        "Ablation: forecaster comparison (test MSE on normalised series; lower is \
         better)"
      ~columns:[ "series"; "linear reg"; "vanilla RNN"; "LSTM" ]
  in
  List.iter
    (fun (name, raw) ->
      let _norm, samples = Lion_nn.Dataset.windows_normalized raw ~window in
      let split = Array.length samples * 8 / 10 in
      let train_set = Array.sub samples 0 split in
      let test_set = Array.sub samples split (Array.length samples - split) in
      let lr_model = Lion_nn.Linreg.create ~window in
      Lion_nn.Linreg.fit lr_model train_set;
      let rnn = Lion_nn.Rnn.create ~input:1 () in
      ignore (Lion_nn.Rnn.train rnn train_set ~epochs:120 ~lr:0.01);
      let lstm = Lion_nn.Lstm.create ~input:1 () in
      ignore (Lion_nn.Lstm.train lstm train_set ~epochs:120 ~lr:0.01);
      Table.add_row t
        [
          name;
          Table.cell_float ~decimals:4 (Lion_nn.Linreg.mse lr_model test_set);
          Table.cell_float ~decimals:4 (Lion_nn.Rnn.mse rnn test_set);
          Table.cell_float ~decimals:4 (Lion_nn.Lstm.mse lstm test_set);
        ])
    series;
  Table.print t

let abl_read_secondary ?(scale = 1.0) () =
  (* The bounded-staleness extension: on a read-mostly cross-partition
     workload, serving all-read groups at local secondaries removes the
     promotions/2PC those reads would otherwise need. *)
  let cfg = Config.default in
  let t =
    Table.create
      ~title:
        "Ablation: read-at-secondary extension, read-mostly YCSB (5% writes), \
         100% cross (throughput, k txn/s)"
      ~columns:[ "variant"; "throughput"; "single-node %" ]
  in
  let gen () =
    let params =
      {
        (Lion_workload.Ycsb.workload_mix
           ~partitions:(Config.total_partitions cfg)
           ~nodes:cfg.Config.nodes 'B')
        with
        Lion_workload.Ycsb.cross_ratio = 1.0;
      }
    in
    let g = Lion_workload.Ycsb.create ~seed:7 params in
    fun ~time:_ -> Lion_workload.Ycsb.next g
  in
  let run read_at_secondary =
    Runner.run ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create ~name:"Lion" ~read_at_secondary
          ~config:(lion_std_config ~predict:false ~use_lstm:false)
          cl)
      ~gen:(gen ())
      { Runner.quick with warmup = 6.0 *. scale; duration = 5.0 *. scale }
  in
  let base = run false and rs = run true in
  let row name (r : Runner.result) =
    Table.add_row t
      [
        name;
        fmt_k r.Runner.throughput;
        Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio);
      ]
  in
  row "Lion (primary-only reads, paper)" base;
  row "Lion + read-at-secondary" rs;
  Table.print t

let abl_failover ?(scale = 1.0) () =
  (* High availability under the replication Lion builds on: crash a
     node mid-run, watch failover promote surviving secondaries within
     the election delay, then recover the node and let the planner
     repopulate it. *)
  let cfg = Config.default in
  let fail_at = 6.0 *. scale and recover_at = 12.0 *. scale in
  let total = 18.0 *. scale in
  let r =
    Runner.run ~cfg
      ~setup:(fun cl ->
        let engine = cl.Lion_store.Cluster.engine in
        Lion_sim.Engine.at engine ~time:(Lion_sim.Engine.seconds fail_at) (fun () ->
            Lion_store.Cluster.fail_node cl 0);
        Lion_sim.Engine.at engine ~time:(Lion_sim.Engine.seconds recover_at) (fun () ->
            Lion_store.Cluster.recover_node cl 0))
      ~make:(fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:(lion_std_config ~predict:false ~use_lstm:false)
          cl)
      ~gen:(Workloads.ycsb ~cross:0.5 cfg)
      { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: node failure at %.0fs, recovery at %.0fs (Lion standard, \
            50%% cross YCSB)"
           fail_at recover_at)
      ~columns:[ "second"; "k txn/s"; "event" ]
  in
  Array.iteri
    (fun i tput ->
      (* Drop the partial bucket past the measurement cutoff. *)
      if i < int_of_float total then (
        let event =
          if i = int_of_float fail_at then "node 0 fails"
          else if i = int_of_float recover_at then "node 0 recovers"
          else ""
        in
        Table.add_row t [ string_of_int (i + 1); fmt_k tput; event ]))
    r.Runner.throughput_series;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Chaos experiments: the fault-injection engine (lib/sim/fault.ml)
   drives crashes, partitions and stragglers through [Config.fault_plan]
   — the same failover machinery as abl_failover, plus RPC timeouts,
   retries and availability accounting. See docs/FAULTS.md.             *)
(* ------------------------------------------------------------------ *)

module Fault = Lion_sim.Fault
module Engine = Lion_sim.Engine

let lion_std_make cl =
  Lion_core.Standard.create ~name:"Lion"
    ~config:(lion_std_config ~predict:false ~use_lstm:false)
    cl

let fmt_ttr v =
  if v = infinity then "not yet" else Table.cell_float ~decimals:0 v

let fault_crash_sweep ?(scale = 1.0) () =
  (* 0, 1 or 2 simultaneous crashes at 6 s, recovery at 16 s. With the
     default round-robin placement and 2 replicas, losing nodes 1 and 2
     together orphans the partitions whose both copies lived there:
     they stay unavailable (clients time out and retry) until recovery
     resynchronises the stale primary. *)
  let crash_at = 6.0 *. scale and downtime = 10.0 *. scale in
  let total = 20.0 *. scale in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Chaos: k nodes crash at %.0fs, recover at %.0fs (Lion standard, 50%% \
            cross YCSB)"
           crash_at (crash_at +. downtime))
      ~columns:
        [
          "crashed";
          "k txn/s";
          "aborts";
          "timeouts";
          "retries";
          "drops";
          "unavail (s)";
          "recovery (s)";
          "goodput under fault";
        ]
  in
  List.iter
    (fun k ->
      let plan =
        List.concat_map
          (fun node ->
            Fault.crash_recover ~node
              ~at:(Engine.seconds crash_at)
              ~downtime:(Engine.seconds downtime))
          (List.init k (fun i -> i + 1))
      in
      let cfg = { Config.default with Config.fault_plan = plan } in
      let r =
        Runner.run ~cfg ~make:lion_std_make
          ~gen:(Workloads.ycsb ~cross:0.5 cfg)
          { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
      in
      Table.add_row t
        [
          string_of_int k;
          fmt_k r.Runner.throughput;
          Table.cell_int r.Runner.aborts;
          Table.cell_int r.Runner.timeouts;
          Table.cell_int r.Runner.retries;
          Table.cell_int r.Runner.drops;
          Table.cell_float ~decimals:1 r.Runner.unavail_seconds;
          fmt_ttr r.Runner.time_to_recover;
          fmt_k r.Runner.goodput_under_fault;
        ])
    [ 0; 1; 2 ];
  Table.print t

let fault_partition ?(scale = 1.0) () =
  (* Split-brain: {0,1} | {2,3} for 5 s. No node dies, so availability
     stays nominal — the damage shows up as cross-group RPC timeouts
     (2PC keeps paying them; Lion's remastering pulls work local). *)
  let at = 5.0 *. scale and duration = 5.0 *. scale in
  let total = 15.0 *. scale in
  let plan =
    Fault.split_brain
      ~groups:[ [ 0; 1 ]; [ 2; 3 ] ]
      ~at:(Engine.seconds at)
      ~duration:(Engine.seconds duration)
  in
  let cfg = { Config.default with Config.fault_plan = plan } in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Chaos: network partition {0,1}|{2,3} from %.0fs to %.0fs (50%% cross \
            YCSB)"
           at (at +. duration))
      ~columns:
        [ "protocol"; "k txn/s"; "aborts"; "timeouts"; "retries"; "drops" ]
  in
  List.iter
    (fun (name, make) ->
      let r =
        Runner.run ~cfg ~make
          ~gen:(Workloads.ycsb ~cross:0.5 cfg)
          { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
      in
      Table.add_row t
        [
          name;
          fmt_k r.Runner.throughput;
          Table.cell_int r.Runner.aborts;
          Table.cell_int r.Runner.timeouts;
          Table.cell_int r.Runner.retries;
          Table.cell_int r.Runner.drops;
        ])
    [
      ("2PC", fun cl -> Lion_protocols.Twopc.create cl);
      ("Lion", lion_std_make);
    ];
  Table.print t

let fault_straggler ?(scale = 1.0) () =
  (* One slow node: all CPU work on node 2 stretched by the factor from
     5 s to 15 s. No messages are lost, so this isolates the latency
     and throughput cost of a straggler from the failover machinery. *)
  let from_ = 5.0 *. scale and until = 15.0 *. scale in
  let total = 20.0 *. scale in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Chaos: node 2 CPU slowed from %.0fs to %.0fs (Lion standard, 50%% \
            cross YCSB)"
           from_ until)
      ~columns:[ "slowdown"; "k txn/s"; "mean latency (ms)"; "p95 (ms)" ]
  in
  List.iter
    (fun factor ->
      let plan =
        Fault.slow_node ~node:2 ~factor
          ~from_:(Engine.seconds from_)
          ~until:(Engine.seconds until)
      in
      let cfg = { Config.default with Config.fault_plan = plan } in
      let r =
        Runner.run ~cfg ~make:lion_std_make
          ~gen:(Workloads.ycsb ~cross:0.5 cfg)
          { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
      in
      Table.add_row t
        [
          Printf.sprintf "%.0fx" factor;
          fmt_k r.Runner.throughput;
          Table.cell_float ~decimals:1 (r.Runner.mean_latency /. 1000.0);
          Table.cell_float ~decimals:1 (r.Runner.p95 /. 1000.0);
        ])
    [ 1.0; 4.0; 16.0 ];
  Table.print t

(* ------------------------------------------------------------------ *)

let overload_sweep ?(scale = 1.0) () =
  Overload.print_sweeps (Overload.sweep ~scale ());
  Overload.print_sweeps (Overload.sweep ~scale ~protect:true ())

let metastable ?(scale = 1.0) () =
  Overload.print_metastable (Overload.metastable_pair ~scale ())

let elastic_scale ?(scale = 1.0) () =
  (* The experiment has two fixed sizes (a 30 s diurnal cycle with the
     LSTM, a 10 s smoke cycle on the trend fallback) rather than a
     continuous scale — any reduced scale selects the smoke run. *)
  Elastic.print_report (Elastic.run ~smoke:(scale < 1.0) ())

(* ------------------------------------------------------------------ *)

let registry =
  [
    ("table1", "Table I: qualitative comparison", fun _ -> table1_comparison ());
    ("fig6", "Fig 6 / Table II: ablation study", fun s -> fig6_ablation ~scale:s ());
    ( "fig7",
      "Fig 7: cross-partition ratio sweep (standard)",
      fun s -> fig7_crossratio_nonbatch ~scale:s () );
    ( "fig8",
      "Fig 8: dynamic workloads (standard)",
      fun s -> fig8_dynamic_nonbatch ~scale:s () );
    ( "fig9",
      "Fig 9: cross-partition ratio sweep (batch)",
      fun s -> fig9_crossratio_batch ~scale:s () );
    ("fig10", "Fig 10: dynamic workloads (batch)", fun s -> fig10_dynamic_batch ~scale:s ());
    ("fig11", "Fig 11: scalability 4-10 nodes", fun s -> fig11_scalability ~scale:s ());
    ( "fig12",
      "Fig 12: migration/remastering analysis",
      fun s -> fig12_migration_analysis ~scale:s () );
    ( "fig13a",
      "Fig 13a: pre-replication impact",
      fun s -> fig13a_preplication ~scale:s () );
    ("fig13b", "Fig 13b: batch optimization impact", fun s -> fig13b_batch_opt ~scale:s ());
    ("fig14", "Fig 14: latency analysis", fun s -> fig14_latency ~scale:s ());
    ( "abl_cooldown",
      "Ablation: remaster cooldown damping",
      fun s -> abl_cooldown ~scale:s () );
    ("abl_replicas", "Ablation: replica budget", fun s -> abl_replicas ~scale:s ());
    ("abl_wp", "Ablation: prediction weight w_p", fun s -> abl_wp ~scale:s ());
    ( "abl_forecaster",
      "Ablation: LSTM vs RNN vs linear regression",
      fun s -> abl_forecaster ~scale:s () );
    ( "abl_failover",
      "Ablation: node failure and recovery",
      fun s -> abl_failover ~scale:s () );
    ( "abl_read_secondary",
      "Ablation: bounded-staleness reads at secondaries",
      fun s -> abl_read_secondary ~scale:s () );
    ( "fault_crash_sweep",
      "Chaos: 0/1/2 node crashes with recovery",
      fun s -> fault_crash_sweep ~scale:s () );
    ( "fault_partition",
      "Chaos: split-brain network partition",
      fun s -> fault_partition ~scale:s () );
    ( "fault_straggler",
      "Chaos: slow-node CPU straggler",
      fun s -> fault_straggler ~scale:s () );
    ( "overload_sweep",
      "Overload: open-loop offered-load sweep past saturation",
      fun s -> overload_sweep ~scale:s () );
    ( "metastable",
      "Overload: metastable-failure repro, with and without protection",
      fun s -> metastable ~scale:s () );
    ( "elastic_scale",
      "Membership: forecast-driven autoscale over a diurnal cycle",
      fun s -> elastic_scale ~scale:s () );
    ( "geo",
      "Geo: cross-region ratio sweep and WAN partition (docs/GEO.md)",
      fun s ->
        Geo.print_sweep ~regions:2 (Geo.sweep ~scale:s ());
        Geo.print_partition ~scale:s (Geo.wan_partition ~scale:s ()) );
  ]

let run_all ?(scale = 1.0) () =
  List.iter
    (fun (id, desc, f) ->
      Printf.printf ">>> %s — %s\n%!" id desc;
      f scale)
    registry
