module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Metrics = Lion_sim.Metrics
module Engine = Lion_sim.Engine
module Proto = Lion_protocols.Proto
module Planner = Lion_core.Planner
module Forecaster = Lion_predict.Forecaster
module Autoscale = Lion_predict.Autoscale

type event = { at : float; kind : string; node : int }

type report = {
  seconds : int;
  offered_series : float array;
  goodput_series : float array;
  members_series : int array;
  events : event list;
  joins : int;
  decommissions : int;
  rebalance_migrations : int;
  time_to_rebalance : float list;
  dips : (string * float * float) list;
  stale_ack_rejections : int;
  commits : int;
  aborts : int;
}

(* Diurnal offered rate: one raised-cosine cycle from trough to peak
   and back over [period] seconds. Deterministic (evenly spaced
   arrivals at the instantaneous rate), so the whole experiment —
   autoscale decisions included — replays byte-for-byte. *)
let diurnal ~trough ~peak ~period t =
  trough
  +. ((peak -. trough) *. 0.5
     *. (1.0 -. Float.cos (2.0 *. Float.pi *. t /. period)))

(* Completion-ratio dip in the [window] seconds after a scale event:
   depth is the worst commits/arrivals shortfall, duration counts the
   seconds below 98 % completion. *)
let dip_after ~offered ~goodput ~window at_s =
  let n = Stdlib.min (Array.length offered) (Array.length goodput) in
  let lo = Stdlib.max 0 at_s and hi = Stdlib.min (n - 1) (at_s + window) in
  let depth = ref 0.0 and dur = ref 0 in
  for i = lo to hi do
    if offered.(i) > 0.0 then begin
      let ratio = Stdlib.min 1.0 (goodput.(i) /. offered.(i)) in
      depth := Stdlib.max !depth (1.0 -. ratio);
      if ratio < 0.98 then incr dur
    end
  done;
  (!depth, float_of_int !dur)

let run ?(seed = 1) ?(smoke = false) () =
  let cfg = Config.with_elastic_defaults Config.default in
  let total_s = if smoke then 10 else 30 in
  let total = Engine.seconds (float_of_int total_s) in
  let period = float_of_int total_s in
  let trough = 2_000.0 and peak = 9_000.0 in
  let per_node_rate = 1_500.0 in
  let cl = Cluster.create ~seed cfg in
  let proto =
    Lion_core.Standard.create ~name:"Lion"
      ~config:{ Planner.default_config with Planner.predict = true; use_lstm = false }
      cl
  in
  let engine = cl.Cluster.engine in
  let gen = Workloads.ycsb ~seed ~skew:0.6 ~cross:0.3 cfg in
  (* Per-second arrival counts, alongside Metrics' per-second commit
     buckets, give the completion-ratio series. *)
  let offered_buckets = Array.make (total_s + 1) 0 in
  let rate_now () =
    diurnal ~trough ~peak ~period (Engine.now engine /. 1e6)
  in
  let rec arrive () =
    if Engine.now engine < total then begin
      let bucket = int_of_float (Engine.now engine /. 1e6) in
      if bucket <= total_s then
        offered_buckets.(bucket) <- offered_buckets.(bucket) + 1;
      proto.Proto.submit (gen ~time:(Engine.now engine)) ~on_done:(fun () -> ());
      Engine.schedule engine ~delay:(1e6 /. rate_now ()) arrive
    end
  in
  Engine.schedule engine ~delay:(1e6 /. rate_now ()) arrive;
  (* Planner tick, as in the benchmark runner. *)
  let rec ticker () =
    Engine.schedule engine ~delay:(Engine.seconds 1.0) (fun () ->
        if Engine.now engine < total then begin
          proto.Proto.tick ();
          ticker ()
        end)
  in
  ticker ();
  (* The autoscaler: observe the arrival rate every control tick,
     forecast ahead, and step the membership one node at a time. The
     smoke run keeps the trend-extrapolation fallback (the LSTM's
     training wall-clock is the expensive part, not the simulation). *)
  let scaler =
    Autoscale.create
      ~forecaster:(Forecaster.create ~seed ~use_lstm:(not smoke) ())
      ~per_node_rate ~min_members:cfg.Config.nodes
      ~max_members:(Config.total_slots cfg) ()
  in
  let events = ref [] in
  let control = Engine.ms 500.0 in
  let arrivals_seen = ref 0 in
  let total_arrivals () = Array.fold_left ( + ) 0 offered_buckets in
  let first_standby () =
    let n = Cluster.node_count cl in
    let rec go i = if i >= n then None
      else if not cl.Cluster.member.(i) then Some i else go (i + 1)
    in
    go 0
  in
  let last_removable () =
    let rec go i =
      if i < 0 then None
      else if cl.Cluster.member.(i) && (not cl.Cluster.draining.(i))
              && Cluster.alive cl i
      then Some i
      else go (i - 1)
    in
    go (Cluster.node_count cl - 1)
  in
  (* Draining nodes still count as members until their removal
     completes; the scaler must see the post-drain size — and only one
     drain at a time — or it keeps stepping down while the first drain
     is still in progress. *)
  let draining_count () =
    Array.fold_left (fun a d -> if d then a + 1 else a) 0 cl.Cluster.draining
  in
  let effective_members () = Cluster.member_count cl - draining_count () in
  let rec autoscale () =
    Engine.schedule engine ~delay:control (fun () ->
        if Engine.now engine < total then begin
          let seen = total_arrivals () in
          let rate =
            float_of_int (seen - !arrivals_seen) /. (control /. 1e6)
          in
          arrivals_seen := seen;
          Autoscale.observe scaler ~rate;
          let now_s = Engine.now engine /. 1e6 in
          (match Autoscale.decide scaler ~members:(effective_members ()) with
          | Autoscale.Hold -> ()
          | Autoscale.Scale_up -> (
              match first_standby () with
              | Some node when Cluster.join_node cl node ->
                  events := { at = now_s; kind = "join"; node } :: !events
              | _ -> ())
          | Autoscale.Scale_down when draining_count () = 0 -> (
              match last_removable () with
              | Some node when Cluster.decommission_node cl node ->
                  events :=
                    { at = now_s; kind = "decommission"; node } :: !events
              | _ -> ())
          | Autoscale.Scale_down -> ());
          autoscale ()
        end)
  in
  autoscale ();
  (* Samplers: member count once per second (mid-bucket), and the
     rebalancer's running flag every 100 ms so each round's
     start-to-quiescence span is captured. *)
  let members_series = Array.make total_s cfg.Config.nodes in
  let rec member_loop () =
    let bucket = int_of_float (Engine.now engine /. 1e6) in
    if bucket < total_s then begin
      members_series.(bucket) <- Cluster.member_count cl;
      Engine.schedule engine ~delay:(Engine.seconds 1.0) member_loop
    end
  in
  Engine.schedule engine ~delay:(Engine.ms 500.0) member_loop;
  let ttr = ref [] in
  let was_running = ref false in
  let rec rebalance_watch () =
    if Engine.now engine < total then begin
      let running = cl.Cluster.rebalance_running in
      if !was_running && not running then
        ttr :=
          ((cl.Cluster.rebalance_done -. cl.Cluster.rebalance_started) /. 1e6)
          :: !ttr;
      was_running := running;
      Engine.schedule engine ~delay:(Engine.ms 100.0) rebalance_watch
    end
  in
  rebalance_watch ();
  Engine.run_until engine total;
  proto.Proto.drain ();
  (* Quiesce: in-flight transactions, the rebalancer and any draining
     decommission all run to completion (the rebalance loop is
     self-terminating, so the queue empties). *)
  Engine.run_all engine ~max_events:50_000_000 ();
  if !was_running && not cl.Cluster.rebalance_running then
    ttr :=
      ((cl.Cluster.rebalance_done -. cl.Cluster.rebalance_started) /. 1e6)
      :: !ttr;
  let metrics = cl.Cluster.metrics in
  let goodput_series = Metrics.goodput_series metrics in
  let offered_series =
    Array.init total_s (fun i -> float_of_int offered_buckets.(i))
  in
  let events = List.rev !events in
  let dips =
    List.map
      (fun e ->
        let depth, dur =
          dip_after ~offered:offered_series ~goodput:goodput_series ~window:4
            (int_of_float e.at)
        in
        (e.kind, depth, dur))
      events
  in
  {
    seconds = total_s;
    offered_series;
    goodput_series;
    members_series;
    events;
    joins = cl.Cluster.join_count;
    decommissions = cl.Cluster.decommission_count;
    rebalance_migrations = cl.Cluster.rebalance_migrations;
    time_to_rebalance = List.rev !ttr;
    dips;
    stale_ack_rejections = Metrics.stale_ack_rejections metrics;
    commits = Metrics.commits metrics;
    aborts = Metrics.aborts metrics;
  }

let print_report r =
  Printf.printf
    "Elastic scale: diurnal open-loop load, forecast-driven membership\n";
  Printf.printf "%-8s %-12s %-12s %-8s %s\n" "second" "offered/s" "goodput/s"
    "members" "event";
  let evs_in i =
    List.filter_map
      (fun e ->
        if int_of_float e.at = i then
          Some (Printf.sprintf "%s node %d (t=%.1fs)" e.kind e.node e.at)
        else None)
      r.events
  in
  for i = 0 to r.seconds - 1 do
    let g =
      if i < Array.length r.goodput_series then r.goodput_series.(i) else 0.0
    in
    Printf.printf "%-8d %-12.0f %-12.0f %-8d %s\n" (i + 1)
      r.offered_series.(i) g r.members_series.(i)
      (String.concat "; " (evs_in i))
  done;
  Printf.printf "joins %d, decommissions %d, rebalance migrations %d\n"
    r.joins r.decommissions r.rebalance_migrations;
  Printf.printf "time-to-rebalance:%s\n"
    (if r.time_to_rebalance = [] then " none"
     else
       String.concat ","
         (List.map (Printf.sprintf " %.2fs") r.time_to_rebalance));
  List.iter
    (fun (kind, depth, dur) ->
      Printf.printf "goodput dip after %s: depth %.1f%%, duration %.0fs\n" kind
        (100.0 *. depth) dur)
    r.dips;
  Printf.printf "stale-ack rejections %d, commits %d, aborts %d\n"
    r.stale_ack_rejections r.commits r.aborts
