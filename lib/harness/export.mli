(** CSV export of experiment results, for external plotting.

    Cells are quoted/escaped per RFC 4180 when they contain commas,
    quotes or newlines. *)

val write_csv : path:string -> header:string list -> rows:string list list -> unit

val series_csv : path:string -> (string * float array) list -> unit
(** Per-second series, one labelled column per series (e.g. throughput
    of several protocols over the same run), one row per second.
    Shorter series pad with empty cells. *)

val result_rows : (string * Runner.result) list -> string list * string list list
(** Header + one summary row per labelled result — feed to [write_csv].
    Columns: throughput, latency percentiles, ratios, adaptation
    counters, per-phase latency fractions ([frac_execution] …
    [frac_replication]), the fault counters (timeouts, retries, drops)
    and the availability summary (unavailable seconds, time to recover
    — "inf" when the run ends degraded — and goodput under fault). *)

val result_csv : path:string -> (string * Runner.result) list -> unit
