module Config = Lion_store.Config
module Ycsb = Lion_workload.Ycsb
module Tpcc = Lion_workload.Tpcc
module Dynamic = Lion_workload.Dynamic
module Engine = Lion_sim.Engine

let base_params ?(skew = 0.0) ?(cross = 0.0) ?(neighbor = true) cfg =
  {
    (Ycsb.default_params ~partitions:(Config.total_partitions cfg)
       ~nodes:cfg.Config.nodes)
    with
    Ycsb.skew_factor = skew;
    cross_ratio = cross;
    neighbor_cross = neighbor;
  }

let ycsb ?(seed = 7) ?skew ?cross ?neighbor cfg =
  let gen = Ycsb.create ~seed (base_params ?skew ?cross ?neighbor cfg) in
  fun ~time:_ -> Ycsb.next gen

let tpcc ?(seed = 11) ?(skew = 0.0) ?(cross = 0.1) cfg =
  let params =
    {
      (Tpcc.default_params ~warehouses:(Config.total_partitions cfg)
         ~nodes:cfg.Config.nodes)
      with
      Tpcc.skew_factor = skew;
      cross_ratio = cross;
    }
  in
  let gen = Tpcc.create ~seed params in
  fun ~time:_ -> Tpcc.next gen

let dynamic_interval ?(seed = 13) ?(period = 8.0) cfg =
  let schedule =
    Dynamic.hotspot_interval ~base:(base_params cfg) ~period:(Engine.seconds period)
  in
  let driver = Dynamic.Driver.create ~schedule ~gen:(Ycsb.create ~seed (base_params cfg)) in
  fun ~time -> Dynamic.Driver.next driver ~time

let dynamic_position ?(seed = 17) ?(period = 8.0) cfg =
  let schedule =
    Dynamic.hotspot_position ~base:(base_params cfg) ~period:(Engine.seconds period)
  in
  let driver = Dynamic.Driver.create ~schedule ~gen:(Ycsb.create ~seed (base_params cfg)) in
  fun ~time -> Dynamic.Driver.next driver ~time

let position_phases cfg ~period =
  let schedule =
    Dynamic.hotspot_position ~base:(base_params cfg) ~period:(Engine.seconds period)
  in
  ignore schedule;
  [
    ("A:uniform-50", 0.0);
    ("B:skew-50", period);
    ("C:skew-100", 2.0 *. period);
    ("D:skew-100-shift", 3.0 *. period);
  ]
