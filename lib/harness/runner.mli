(** Experiment runner: builds a cluster, drives a protocol with
    closed-loop clients over a workload for a span of simulated time,
    and collects the series and summary statistics every figure needs.

    Standard protocols run with a small client pool (a multiple of the
    cluster's worker count); batch protocols run saturated with one
    client per batch slot, as in the paper's benchmarking setup. *)

type config = {
  clients : int;  (** closed-loop concurrency; 0 = auto per protocol *)
  warmup : float;  (** simulated seconds excluded from summary stats *)
  duration : float;  (** measured simulated seconds *)
  tick_every : float;  (** planner/monitor tick period, seconds *)
}

val quick : config
(** warmup 2 s, duration 6 s, tick 1 s — the benchmark default. *)

type result = {
  throughput : float;  (** commits per measured second *)
  commits : int;
  aborts : int;
  p50 : float;  (** latency percentiles over the measured window, µs *)
  p75 : float;
  p90 : float;
  p95 : float;
  mean_latency : float;
  single_node_ratio : float;  (** fraction of commits that ran single-node *)
  remaster_ratio : float;
  throughput_series : float array;  (** commits per second, incl. warmup *)
  bytes_series : float array;  (** network bytes per second, incl. warmup *)
  bytes_per_txn : float;  (** measured-window bytes / commits *)
  phase_fractions : (Lion_sim.Metrics.phase * float) list;
  remasters : int;  (** cluster-wide remaster operations *)
  replica_adds : int;
  timeouts : int;  (** RPCs that exhausted their retries (measured window) *)
  retries : int;  (** RPC retransmissions after a loss (measured window) *)
  drops : int;  (** messages killed by the fault layer (measured window) *)
  availability : float array;
      (** per-second availability samples (incl. warmup); see
          [Cluster.availability] *)
  unavail_seconds : float;
      (** integral of (1 − availability) over the run — lost
          capacity-seconds *)
  time_to_recover : float;
      (** seconds from the first to the last degraded availability
          sample; 0 when never degraded, [infinity] when the run ends
          still degraded *)
  goodput_under_fault : float;
      (** mean commits/s over the degraded seconds (0 when never
          degraded) *)
}

type trace_sink = {
  fresh : unit -> Lion_trace.Trace.t;  (** one tracer per [run] call *)
  emit : Lion_trace.Trace.t -> unit;  (** called when that run finishes *)
}
(** Hook wiring the CLI's [--trace] flag to every experiment without
    threading a tracer through each figure function: when a sink is
    installed, each [run] (that was not handed an explicit [tracer])
    builds its cluster with [fresh ()] and hands the tracer to [emit]
    after collecting results. *)

val set_trace_sink : trace_sink -> unit
val clear_trace_sink : unit -> unit

val run :
  ?seed:int ->
  ?batch:bool ->
  ?setup:(Lion_store.Cluster.t -> unit) ->
  ?tracer:Lion_trace.Trace.t ->
  ?history:Lion_store.History.t ->
  cfg:Lion_store.Config.t ->
  make:(Lion_store.Cluster.t -> Lion_protocols.Proto.t) ->
  gen:(time:float -> Lion_workload.Txn.t) ->
  config ->
  result
(** [batch] (default false) selects the auto client count: 2× workers
    for standard protocols, one per batch slot for batch protocols.
    [setup] runs after the cluster is built and before any client
    starts — fault-injection experiments use it to schedule node
    failures on the cluster's engine. [tracer] (default: ask the trace
    sink, else none) enables causal transaction tracing on the cluster;
    the caller inspects or exports it afterwards. [history] (default
    none) attaches a consistency-audit sink that the protocol engines
    fill with one event per transaction attempt — see
    {!Lion_store.History} and the [Lion_audit] checker. *)
