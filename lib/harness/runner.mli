(** Experiment runner: builds a cluster, drives a protocol over a
    workload for a span of simulated time, and collects the series and
    summary statistics every figure needs.

    The default drive is closed-loop: a small client pool (a multiple
    of the cluster's worker count for standard protocols, one client
    per batch slot for batch protocols, as in the paper's benchmarking
    setup) where each client submits its next transaction when the
    previous finishes. [arrival] switches to open-loop driving, where
    transactions arrive at a configured offered rate regardless of
    completions — the mode that can push the system past saturation
    (docs/OVERLOAD.md, EXPERIMENTS.md). *)

type arrival =
  | Closed  (** closed loop: [clients] concurrent submitters *)
  | Poisson of float
      (** open loop, Poisson arrivals at this rate (txns per simulated
          second); [clients] is ignored *)
  | Uniform of float
      (** open loop, deterministic evenly-spaced arrivals at this rate *)

type config = {
  clients : int;  (** closed-loop concurrency; 0 = auto per protocol *)
  warmup : float;  (** simulated seconds excluded from summary stats *)
  duration : float;  (** measured simulated seconds *)
  tick_every : float;  (** planner/monitor tick period, seconds *)
  arrival : arrival;  (** load drive; [Closed] is the benchmark default *)
}

val quick : config
(** warmup 2 s, duration 6 s, tick 1 s, closed loop — the benchmark
    default. *)

type result = {
  throughput : float;  (** commits per measured second *)
  goodput : float;
      (** commits that beat [Config.txn_deadline], per measured second
          (= [throughput] when no deadline is configured) *)
  offered : float;
      (** arrivals per measured second under open-loop driving; equals
          [throughput] under closed loop, where load tracks completion *)
  commits : int;
  aborts : int;
  p50 : float;  (** latency percentiles over the measured window, µs *)
  p75 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  mean_latency : float;
  single_node_ratio : float;  (** fraction of commits that ran single-node *)
  remaster_ratio : float;
  throughput_series : float array;  (** commits per second, incl. warmup *)
  goodput_series : float array;
      (** in-deadline commits per second, incl. warmup — equals
          [throughput_series] when no transaction deadline is set *)
  bytes_series : float array;  (** network bytes per second, incl. warmup *)
  bytes_per_txn : float;  (** measured-window bytes / commits *)
  phase_fractions : (Lion_sim.Metrics.phase * float) list;
  remasters : int;  (** cluster-wide remaster operations *)
  replica_adds : int;
  timeouts : int;  (** RPCs that exhausted their retries (measured window) *)
  retries : int;  (** RPC retransmissions after a loss (measured window) *)
  drops : int;  (** messages killed by the fault layer (measured window) *)
  sheds : int;
      (** requests turned away by admission control — bounded queues,
          CoDel, dead-node drains (measured window) *)
  breaker_rejects : int;  (** RPCs fast-failed by an open circuit breaker *)
  breaker_opens : int;  (** circuit-breaker trips (measured window) *)
  budget_denials : int;
      (** retransmissions abandoned for lack of retry-budget tokens *)
  deadline_giveups : int;
      (** transactions shed past their deadline instead of retried *)
  deadline_misses : int;
      (** transactions committed after their deadline (counted in
          [throughput], discounted from [goodput]) *)
  stale_ack_rejections : int;
      (** stale-session replication deliveries rejected by
          [Config.session_tagging] (measured window; always 0 with
          tagging off) *)
  availability : float array;
      (** per-second availability samples (incl. warmup); see
          [Cluster.availability] *)
  unavail_seconds : float;
      (** integral of (1 − availability) over the run — lost
          capacity-seconds *)
  time_to_recover : float;
      (** seconds from the first to the last degraded availability
          sample; 0 when never degraded, [infinity] when the run ends
          still degraded *)
  goodput_under_fault : float;
      (** mean commits/s over the degraded seconds (0 when never
          degraded) *)
  engine_events : int;
      (** total simulation events executed over the whole run (incl.
          warmup) — the denominator the perf harness uses to turn wall
          time into events/sec *)
}

type trace_sink = {
  fresh : unit -> Lion_trace.Trace.t;  (** one tracer per [run] call *)
  emit : Lion_trace.Trace.t -> unit;  (** called when that run finishes *)
}
(** Hook wiring the CLI's [--trace] flag to every experiment without
    threading a tracer through each figure function: when a sink is
    installed, each [run] (that was not handed an explicit [tracer])
    builds its cluster with [fresh ()] and hands the tracer to [emit]
    after collecting results. *)

val set_trace_sink : trace_sink -> unit
val clear_trace_sink : unit -> unit

val run :
  ?seed:int ->
  ?batch:bool ->
  ?setup:(Lion_store.Cluster.t -> unit) ->
  ?tracer:Lion_trace.Trace.t ->
  ?history:Lion_store.History.t ->
  cfg:Lion_store.Config.t ->
  make:(Lion_store.Cluster.t -> Lion_protocols.Proto.t) ->
  gen:(time:float -> Lion_workload.Txn.t) ->
  config ->
  result
(** [batch] (default false) selects the auto client count: 2× workers
    for standard protocols, one per batch slot for batch protocols.
    [setup] runs after the cluster is built and before any client
    starts — fault-injection experiments use it to schedule node
    failures on the cluster's engine. [tracer] (default: ask the trace
    sink, else none) enables causal transaction tracing on the cluster;
    the caller inspects or exports it afterwards. [history] (default
    none) attaches a consistency-audit sink that the protocol engines
    fill with one event per transaction attempt — see
    {!Lion_store.History} and the [Lion_audit] checker. *)
