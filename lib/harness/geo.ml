module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Kvstore = Lion_store.Kvstore
module Metrics = Lion_sim.Metrics
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module Table = Lion_kernel.Table
module Rng = Lion_kernel.Rng
module Txn = Lion_workload.Txn
module Planner = Lion_core.Planner

(* Geo experiments run on the GEO preset with a WAN latency two to
   three orders of magnitude above the LAN: the regime where one
   cross-region round trip dominates a transaction's budget. *)
let geo_config ?(regions = 2) () =
  { (Config.with_geo_defaults Config.default) with Config.regions }

(* Partition → region through the seed placement (primary of partition
   p is node [p mod nodes]); the generator needs a static notion of
   "where a partition lives" that does not chase remastering. *)
let partitions_by_region cfg =
  let nreg = Stdlib.max 1 cfg.Config.regions in
  let by = Array.make nreg [] in
  for p = Config.total_partitions cfg - 1 downto 0 do
    let r = Config.region_of_node cfg (p mod cfg.Config.nodes) in
    by.(r) <- p :: by.(r)
  done;
  Array.map Array.of_list by

(* Two-partition read-write transactions with a region-local home:
   [cross] is the probability that the second partition is homed in a
   different region. At 0.0 every transaction is region-local (Lion can
   clump it single-node); at 1.0 every transaction spans the WAN. *)
let gen ?(seed = 7) ?(cross = 0.0) cfg =
  let rng = Rng.create seed in
  let by = partitions_by_region cfg in
  let nreg = Array.length by in
  let next_id = ref 0 in
  let key p = Kvstore.key ~part:p ~slot:(Rng.int rng 64) in
  fun ~time:_ ->
    incr next_id;
    let home = Rng.int rng nreg in
    let p1 = Rng.choose rng by.(home) in
    let p2 =
      if nreg >= 2 && Rng.bernoulli rng cross then
        Rng.choose rng by.((home + 1 + Rng.int rng (nreg - 1)) mod nreg)
      else Rng.choose rng by.(home)
    in
    Txn.make ~id:!next_id
      [ Txn.Read (key p1); Txn.Write (key p1); Txn.Read (key p2); Txn.Write (key p2) ]

let protocols =
  [
    ( "Lion",
      false,
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Planner.default_config with Planner.predict = false; use_lstm = false }
          cl );
    ("Star", true, fun cl -> Lion_protocols.Star.create cl);
    ("2PC", false, fun cl -> Lion_protocols.Twopc.create cl);
    ("EpochOCC", false, fun cl -> Lion_protocols.Epoch.create cl);
  ]

type cell = {
  ratio : float;
  throughput : float;
  goodput : float;
  wan_mb : float;
  wan_msgs : int;
}

let ratios = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let run_one ?(seed = 7) ~scale ~batch ~cfg ~make ~cross () =
  let rc =
    { Runner.quick with Runner.warmup = 2.0 *. scale; duration = 4.0 *. scale }
  in
  let captured = ref None in
  let r =
    Runner.run ~seed ~batch ~cfg ~make
      ~setup:(fun cl -> captured := Some cl)
      ~gen:(gen ~seed ~cross cfg)
      rc
  in
  let wan_bytes, wan_msgs =
    match !captured with
    | Some cl ->
        (Metrics.wan_bytes cl.Cluster.metrics, Metrics.wan_messages cl.Cluster.metrics)
    | None -> (0, 0)
  in
  {
    ratio = cross;
    throughput = r.Runner.throughput;
    goodput = r.Runner.goodput;
    wan_mb = float_of_int wan_bytes /. 1.0e6;
    wan_msgs;
  }

let sweep ?(seed = 7) ?(scale = 1.0) ?(regions = 2) () =
  let cfg = geo_config ~regions () in
  List.map
    (fun (name, batch, make) ->
      (name, List.map (fun cross -> run_one ~seed ~scale ~batch ~cfg ~make ~cross ()) ratios))
    protocols

let fmt_k v = Table.cell_float ~decimals:1 (v /. 1000.0)

let print_sweep ~regions rows =
  let cols =
    "protocol"
    :: List.map (fun r -> Printf.sprintf "%d%%" (int_of_float (100.0 *. r))) ratios
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Geo sweep: %d regions, cross-region ratio vs throughput (k txn/s)" regions)
      ~columns:cols
  in
  List.iter (fun (name, cells) -> Table.add_row t (name :: List.map (fun c -> fmt_k c.throughput) cells)) rows;
  Table.print t;
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf "Geo sweep: %d regions, cross-region ratio vs WAN traffic (MB)"
           regions)
      ~columns:cols
  in
  List.iter
    (fun (name, cells) ->
      Table.add_row t2 (name :: List.map (fun c -> Table.cell_float ~decimals:1 c.wan_mb) cells))
    rows;
  Table.print t2

(* The headline claim of docs/GEO.md: Lion's adaptive replication wins
   while transactions stay region-local, epoch-based OCC wins once most
   of them cross the WAN. *)
let crossover_ok rows =
  match (List.assoc_opt "Lion" rows, List.assoc_opt "EpochOCC" rows) with
  | Some lion, Some epoch ->
      let at l r = (List.find (fun c -> c.ratio = r) l).throughput in
      at lion 0.0 >= at epoch 0.0 && at epoch 1.0 >= at lion 1.0
  | _ -> false

(* ------------------------------------------------------------------ *)

let region_nodes cfg r =
  List.filter
    (fun n -> Config.region_of_node cfg n = r)
    (List.init cfg.Config.nodes Fun.id)

(* Goodput while the WAN is down: split the two regions for a window
   mid-run. min_regions=2 keeps a replica of everything on both sides,
   so intra-region transactions should keep committing throughout. *)
let wan_partition ?(seed = 7) ?(scale = 1.0) () =
  let at = 4.0 *. scale and duration = 4.0 *. scale in
  let total = 12.0 *. scale in
  let base = geo_config () in
  let plan =
    Fault.split_brain
      ~groups:[ region_nodes base 0; region_nodes base 1 ]
      ~at:(Engine.seconds at)
      ~duration:(Engine.seconds duration)
  in
  let cfg = { base with Config.fault_plan = plan } in
  List.map
    (fun (name, batch, make) ->
      let r =
        Runner.run ~seed ~batch ~cfg ~make
          ~gen:(gen ~seed ~cross:0.1 cfg)
          { Runner.quick with Runner.warmup = 0.0; duration = total; tick_every = 1.0 }
      in
      (name, r))
    protocols

(* Mean of a per-second series over [from_s, until_s). No node dies in
   a pure link partition, so the availability-based goodput_under_fault
   stays at "never degraded" — the damage shows only in the series. *)
let series_mean series ~from_s ~until_s =
  let lo = int_of_float from_s and hi = int_of_float until_s in
  let hi = Stdlib.min hi (Array.length series) in
  if hi <= lo then 0.0
  else (
    let sum = ref 0.0 in
    for i = lo to hi - 1 do
      sum := !sum +. series.(i)
    done;
    !sum /. float_of_int (hi - lo))

let print_partition ?(scale = 1.0) results =
  let at = 4.0 *. scale and duration = 4.0 *. scale in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Geo: WAN partition region0|region1 from %.1fs to %.1fs (10%% cross)" at
           (at +. duration))
      ~columns:
        [ "protocol"; "k txn/s"; "k txn/s in partition"; "k txn/s after"; "timeouts"; "aborts" ]
  in
  List.iter
    (fun (name, (r : Runner.result)) ->
      let series = r.Runner.goodput_series in
      Table.add_row t
        [
          name;
          fmt_k r.Runner.throughput;
          fmt_k (series_mean series ~from_s:at ~until_s:(at +. duration));
          fmt_k
            (series_mean series ~from_s:(at +. duration)
               ~until_s:(float_of_int (Array.length series)));
          string_of_int r.Runner.timeouts;
          string_of_int r.Runner.aborts;
        ])
    results;
  Table.print t
