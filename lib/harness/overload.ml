(* Overload and graceful-degradation experiments (docs/OVERLOAD.md):
   probe each protocol's closed-loop capacity, sweep open-loop offered
   load through and past saturation, and reproduce a metastable failure
   — a short trigger that leaves the unprotected system collapsed long
   after the trigger ends, sustained by its own retry work. *)

module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module Table = Lion_kernel.Table
module Planner = Lion_core.Planner

type proto_spec = {
  proto : string;
  batch : bool;
  make : Lion_store.Cluster.t -> Lion_protocols.Proto.t;
}

let lion_spec =
  {
    proto = "lion";
    batch = false;
    make =
      (fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:
            { Planner.default_config with Planner.predict = true; use_lstm = false }
          cl);
  }

let star_spec =
  { proto = "star"; batch = true; make = (fun cl -> Lion_protocols.Star.create cl) }

let twopc_spec =
  { proto = "twopc"; batch = false; make = (fun cl -> Lion_protocols.Twopc.create cl) }

let specs = [ lion_spec; star_spec; twopc_spec ]

(* The workload shared by every overload run: moderately skewed, half
   the transactions cross partitions — enough RPC traffic for remote
   queues to matter. *)
let gen_for ~seed cfg = Workloads.ycsb ~seed ~skew:0.8 ~cross:0.5 cfg

let probe_capacity ?(seed = 1) ?(scale = 1.0) spec =
  let cfg = Config.default in
  let rc = { Runner.quick with warmup = 2.0 *. scale; duration = 4.0 *. scale } in
  let r =
    Runner.run ~seed ~batch:spec.batch ~cfg ~make:spec.make ~gen:(gen_for ~seed cfg)
      rc
  in
  r.Runner.throughput

type point = { ratio : float; result : Runner.result }

type sweep = {
  spec : proto_spec;
  protected_ : bool;
  capacity : float;
  points : point list;
}

let default_ratios = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ]

(* Unprotected baseline for goodput comparisons: every robustness knob
   stays off, but the client's 200 ms patience is still *measured*
   ([deadline_enforce = false]) so goodput means the same thing on both
   sides of the sweep. Commits the client stopped waiting for are not
   goodput, whether or not the system knows it. *)
let measured_baseline =
  {
    Config.default with
    Config.txn_deadline = 200_000.0;
    deadline_enforce = false;
  }

let sweep_one ?(seed = 1) ?(scale = 1.0) ?(protect = false)
    ?(ratios = default_ratios) spec =
  let capacity = probe_capacity ~seed ~scale spec in
  let cfg =
    if protect then Config.with_overload_defaults Config.default
    else measured_baseline
  in
  let points =
    List.map
      (fun ratio ->
        let rc =
          {
            Runner.quick with
            warmup = 2.0 *. scale;
            duration = 6.0 *. scale;
            arrival = Runner.Poisson (ratio *. capacity);
          }
        in
        let result =
          Runner.run ~seed ~batch:spec.batch ~cfg ~make:spec.make
            ~gen:(gen_for ~seed cfg) rc
        in
        { ratio; result })
      ratios
  in
  { spec; protected_ = protect; capacity; points }

let sweep ?seed ?scale ?protect ?ratios () =
  List.map (fun spec -> sweep_one ?seed ?scale ?protect ?ratios spec) specs

let sweep_rows sweeps =
  let header =
    [
      "proto"; "protected"; "ratio"; "capacity_txn_s"; "offered_txn_s";
      "throughput_txn_s"; "goodput_txn_s"; "p99_us"; "sheds"; "timeouts";
      "retries"; "breaker_rejects"; "breaker_opens"; "budget_denials";
      "deadline_giveups"; "deadline_misses";
    ]
  in
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun p ->
            let r = p.result in
            [
              s.spec.proto;
              (if s.protected_ then "1" else "0");
              Printf.sprintf "%.2f" p.ratio;
              Printf.sprintf "%.1f" s.capacity;
              Printf.sprintf "%.1f" r.Runner.offered;
              Printf.sprintf "%.1f" r.Runner.throughput;
              Printf.sprintf "%.1f" r.Runner.goodput;
              Printf.sprintf "%.1f" r.Runner.p99;
              string_of_int r.Runner.sheds;
              string_of_int r.Runner.timeouts;
              string_of_int r.Runner.retries;
              string_of_int r.Runner.breaker_rejects;
              string_of_int r.Runner.breaker_opens;
              string_of_int r.Runner.budget_denials;
              string_of_int r.Runner.deadline_giveups;
              string_of_int r.Runner.deadline_misses;
            ])
          s.points)
      sweeps
  in
  (header, rows)

let print_sweeps sweeps =
  List.iter
    (fun s ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Offered-load sweep: %s%s (closed-loop capacity %.0f txn/s)"
               s.spec.proto
               (if s.protected_ then " with overload protection" else "")
               s.capacity)
          ~columns:
            [
              "offered/capacity"; "offered"; "throughput"; "goodput"; "p99 (ms)";
              "sheds"; "timeouts"; "giveups";
            ]
      in
      List.iter
        (fun p ->
          let r = p.result in
          Table.add_row t
            [
              Printf.sprintf "%.2f" p.ratio;
              Table.cell_float ~decimals:0 r.Runner.offered;
              Table.cell_float ~decimals:0 r.Runner.throughput;
              Table.cell_float ~decimals:0 r.Runner.goodput;
              Table.cell_float ~decimals:1 (r.Runner.p99 /. 1000.0);
              Table.cell_int r.Runner.sheds;
              Table.cell_int r.Runner.timeouts;
              Table.cell_int r.Runner.deadline_giveups;
            ])
        s.points;
      Table.print t)
    sweeps

(* ------------------------------------------------------------------ *)
(* Metastable failure: run open-loop at the saturation knee, slow one
   node hard for a short window, and watch goodput after the node
   returns to full speed. During the trigger the slowed node sheds;
   shed RPCs park coordinator workers through full timeout schedules
   and the aborted transactions retry forever, so a large backlog of
   stale work accumulates. Unprotected, the system then spends the rest
   of the run dutifully committing transactions whose clients gave up
   long ago: throughput looks healthy but goodput stays collapsed —
   the trigger is gone, the failure state sustains itself. Deadline
   enforcement sheds the zombie backlog, budgets and breakers stop the
   retry storm from re-filling it, and goodput snaps back.             *)
(* ------------------------------------------------------------------ *)

type meta = {
  label : string;
  capacity : float;
  peak : float;  (* mean goodput/s before the trigger *)
  during : float;  (* mean goodput/s while the trigger is active *)
  tail : float;  (* mean goodput/s well after the trigger ended *)
  series : float array;  (* goodput/s, per second *)
  commit_series : float array;  (* raw commits/s, per second *)
  result : Runner.result;
}

let mean_range series ~from_ ~until =
  let n = Array.length series in
  let lo = Stdlib.max 0 from_ and hi = Stdlib.min n until in
  if hi <= lo then 0.0
  else (
    let sum = ref 0.0 in
    for i = lo to hi - 1 do
      sum := !sum +. series.(i)
    done;
    !sum /. float_of_int (hi - lo))

(* Timeline (x [scale]): warmup 2 s; trigger (node 0 slowed 12x) from
   6 s to 9 s; run ends at 20 s. Peak goodput is measured on [2,6), the
   tail on [14,20) — five seconds after the trigger cleared, ample time
   for a system that is going to recover to have done so. Both variants
   measure the same 200 ms client patience; only the protected one acts
   on it. *)
let metastable ?(seed = 1) ?(scale = 1.0) ?(load = 1.0) ~protect () =
  let spec = twopc_spec in
  let capacity = probe_capacity ~seed ~scale spec in
  let protected_cfg = Config.with_overload_defaults Config.default in
  let cfg =
    if protect then protected_cfg
    else
      {
        protected_cfg with
        Config.retry_budget_rate = 0.0;
        breaker_threshold = 0;
        deadline_enforce = false;
      }
  in
  let s x = x *. scale in
  let plan =
    Fault.slow_node ~node:0 ~factor:12.0
      ~from_:(Engine.seconds (s 6.0))
      ~until:(Engine.seconds (s 9.0))
  in
  let cfg = { cfg with Config.fault_plan = plan } in
  let rc =
    {
      Runner.quick with
      warmup = s 2.0;
      duration = s 18.0;
      arrival = Runner.Poisson (load *. capacity);
    }
  in
  let result =
    Runner.run ~seed ~batch:spec.batch ~cfg ~make:spec.make ~gen:(gen_for ~seed cfg)
      rc
  in
  let series = result.Runner.goodput_series in
  let sec x = int_of_float (Float.round (s x)) in
  {
    label = (if protect then "budgets+breakers+deadline" else "queue caps only");
    capacity;
    peak = mean_range series ~from_:(sec 2.0) ~until:(sec 6.0);
    during = mean_range series ~from_:(sec 6.0) ~until:(sec 9.0);
    tail = mean_range series ~from_:(sec 14.0) ~until:(sec 20.0);
    series;
    commit_series = result.Runner.throughput_series;
    result;
  }

let metastable_pair ?seed ?scale ?load () =
  [
    metastable ?seed ?scale ?load ~protect:false ();
    metastable ?seed ?scale ?load ~protect:true ();
  ]

let metastable_rows metas =
  let len =
    List.fold_left (fun acc m -> Stdlib.max acc (Array.length m.series)) 0 metas
  in
  let header =
    "second"
    :: List.concat_map
         (fun m -> [ m.label ^ "_good_txn_s"; m.label ^ "_commit_txn_s" ])
         metas
  in
  let cell arr i =
    if i < Array.length arr then Printf.sprintf "%.1f" arr.(i) else ""
  in
  let rows =
    List.init len (fun i ->
        string_of_int (i + 1)
        :: List.concat_map
             (fun m -> [ cell m.series i; cell m.commit_series i ])
             metas)
  in
  (header, rows)

let print_metastable metas =
  let t =
    Table.create
      ~title:
        "Metastable failure: open-loop at saturation, node 0 slowed 12x for \
         3 s (2PC; goodput/s, 200 ms client patience)"
      ~columns:
        [ "variant"; "peak"; "during trigger"; "after trigger"; "tail/peak"; "giveups" ]
  in
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.label;
          Table.cell_float ~decimals:0 m.peak;
          Table.cell_float ~decimals:0 m.during;
          Table.cell_float ~decimals:0 m.tail;
          Table.cell_float ~decimals:2
            (if m.peak > 0.0 then m.tail /. m.peak else 0.0);
          Table.cell_int m.result.Runner.deadline_giveups;
        ])
    metas;
  Table.print t;
  match metas with
  | [ unprot; prot ] when unprot.peak > 0.0 && prot.peak > 0.0 ->
      Printf.printf
        "Trigger cleared at 9s; unprotected goodput holds %.0f%% of peak, \
         protected recovers to %.0f%%.\n"
        (100.0 *. unprot.tail /. unprot.peak)
        (100.0 *. prot.tail /. prot.peak)
  | _ -> ()
