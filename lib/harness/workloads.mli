(** Workload builders shared by the experiment definitions — each
    returns a fresh, seeded generator closure compatible with
    {!Runner.run}'s [gen] argument. *)

val ycsb :
  ?seed:int ->
  ?skew:float ->
  ?cross:float ->
  ?neighbor:bool ->
  Lion_store.Config.t ->
  time:float ->
  Lion_workload.Txn.t
(** Static YCSB. [skew] default 0 (uniform), [cross] default 0. The
    closure is created on first partial application:
    [let gen = Workloads.ycsb cfg ~skew:0.8 in Runner.run ~gen ...]. *)

val tpcc :
  ?seed:int ->
  ?skew:float ->
  ?cross:float ->
  Lion_store.Config.t ->
  time:float ->
  Lion_workload.Txn.t
(** TPC-C NewOrder (one warehouse per partition). *)

val dynamic_interval :
  ?seed:int ->
  ?period:float ->
  Lion_store.Config.t ->
  time:float ->
  Lion_workload.Txn.t
(** The hotspot-interval scenario of §VI-C2; [period] in simulated
    seconds (default 8). *)

val dynamic_position :
  ?seed:int ->
  ?period:float ->
  Lion_store.Config.t ->
  time:float ->
  Lion_workload.Txn.t
(** The A/B/C/D hotspot-position scenario. *)

val position_phases : Lion_store.Config.t -> period:float -> (string * float) list
(** Phase labels with their start times (seconds), for annotating the
    dynamic-workload time-series tables. *)
