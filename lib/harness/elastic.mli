(** The elastic-scale experiment (docs/MEMBERSHIP.md): a diurnal
    open-loop workload drives the forecast-based autoscaler
    ({!Lion_predict.Autoscale}), which admits standby nodes on the ramp
    up and decommissions them on the ramp down, all under traffic.

    What it measures:

    - {b time-to-rebalance}: each membership change kicks the
      rate-limited rebalancer; the span from the change to the
      rebalancer running out of work is the window during which the
      cluster is shuffling replicas;
    - {b goodput dip}: per-second commits divided by per-second
      arrivals — under open-loop load the offered rate is unaffected
      by the cluster's troubles, so any completion shortfall around a
      join or decommission shows directly. The report gives the dip's
      depth (worst shortfall) and duration (seconds below 98 %
      completion) in the seconds following each scale event;
    - {b stale-ack rejections}: session tagging is on
      ({!Lion_store.Config.with_elastic_defaults}), so replication
      streams outliving a membership change are rejected, not
      applied. *)

type event = { at : float;  (** seconds *) kind : string; node : int }

type report = {
  seconds : int;  (** measured duration *)
  offered_series : float array;  (** arrivals per second *)
  goodput_series : float array;  (** commits per second *)
  members_series : int array;  (** member count sampled each second *)
  events : event list;  (** joins / decommissions, in time order *)
  joins : int;
  decommissions : int;  (** completed (fully drained) removals *)
  rebalance_migrations : int;
  time_to_rebalance : float list;
      (** seconds from each membership change to rebalancer quiescence,
          one entry per completed rebalance round *)
  dips : (string * float * float) list;
      (** per scale event: (kind, depth in [0,1], duration in s) of the
          completion-ratio dip in the following window *)
  stale_ack_rejections : int;
  commits : int;
  aborts : int;
}

val run : ?seed:int -> ?smoke:bool -> unit -> report
(** [smoke] (default false) shrinks the run (one diurnal cycle in 10
    simulated seconds, trend forecaster instead of the LSTM) so CI can
    afford it; the full run is a 30 s cycle with the LSTM on.
    Deterministic in [seed] — two runs print byte-identical reports. *)

val print_report : report -> unit
