module Proto = Lion_protocols.Proto
module Exec = Lion_protocols.Exec

let create_with_planner ?name ?(read_at_secondary = false) ?(seed = 29)
    ?(config = Planner.default_config) cl =
  let planner = Planner.create ~seed config cl in
  let router = Router.create cl (Planner.cost_model planner) in
  let name =
    match name with
    | Some n -> n
    | None -> (
        match (config.Planner.strategy, config.Planner.predict) with
        | Rearrange, true -> "Lion(RW)"
        | Rearrange, false -> "Lion(R)"
        | Schism_strategy, true -> "Lion(SW)"
        | Schism_strategy, false -> "Lion(S)")
  in
  let proto =
    Proto.make ~name
      ~submit:(fun txn ~on_done ->
        Planner.observe planner txn;
        Exec.run cl
          ~route:(fun t -> Router.route router t)
          ~flavor:{ Exec.lion_flavor with Exec.read_at_secondary }
          txn ~on_done)
      ~tick:(fun () -> Planner.tick planner)
      ()
  in
  (proto, planner)

let create ?name ?read_at_secondary ?seed ?config cl =
  fst (create_with_planner ?name ?read_at_secondary ?seed ?config cl)
