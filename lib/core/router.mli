(** Lion's transaction router (§III).

    Each router instance carries the same cost model as the planner and
    dispatches a transaction to the node where the execution cost is
    lowest — the node with the most requisite replicas: all primaries
    beats all-replicas-some-secondary (remaster cost) beats missing
    replicas (2PC cost). Ties break toward the less-loaded node so
    independent hot clumps spread across their replica sets. *)

type t

val create : Lion_store.Cluster.t -> Lion_analysis.Costmodel.t -> t

val route : t -> Lion_workload.Txn.t -> int

val cost_model : t -> Lion_analysis.Costmodel.t
