(** The Table II ablation variants of Lion. *)

type variant =
  | V_2pc  (** plain OCC + 2PC, no adaptation *)
  | V_s  (** Lion(S): Schism partitioning, no prediction, no batch *)
  | V_r  (** Lion(R): replica rearrangement only *)
  | V_sw  (** Lion(SW): Schism + workload prediction *)
  | V_rw  (** Lion(RW): rearrangement + prediction *)
  | V_rb  (** Lion(RB): rearrangement + batch optimisation *)
  | V_full  (** Lion: rearrangement + prediction + batch *)

val all : variant list
val name : variant -> string

val create :
  ?seed:int -> ?use_lstm:bool -> variant -> Lion_store.Cluster.t -> Lion_protocols.Proto.t
