module Cluster = Lion_store.Cluster
module Engine = Lion_sim.Engine
module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Costmodel = Lion_analysis.Costmodel
module Rearrange = Lion_analysis.Rearrange
module Schism = Lion_analysis.Schism
module Plan = Lion_analysis.Plan
module Predictor = Lion_predict.Predictor
module Txn = Lion_workload.Txn

let log_src = Logs.Src.create "lion.planner" ~doc:"Lion planner rounds"

module Log = (val Logs.src_log log_src : Logs.LOG)

type strategy = Rearrange | Schism_strategy

type config = {
  strategy : strategy;
  predict : bool;
  epsilon : float;
  cross_boost : float;
  alpha_factor : float;
  w_r : float;
  w_m : float;
  decay : float;
  use_lstm : bool;
  w_p : float;
}

let default_config =
  {
    strategy = Rearrange;
    predict = true;
    epsilon = 0.25;
    cross_boost = 4.0;
    alpha_factor = 2.0;
    w_r = 1.0;
    w_m = 10.0;
    decay = 0.5;
    use_lstm = true;
    w_p = 1.0;
  }

type t = {
  cl : Cluster.t;
  cfg : config;
  graph : Heatgraph.t;
  cost : Costmodel.t;
  predictor : Predictor.t option;
  mutable rounds : int;
  mutable last_plan_adds : int;
}

let create ?(seed = 23) cfg cl =
  (* WAN-aware costs (docs/GEO.md): only built under a region topology,
     so region-free planning evaluates the exact historical float
     expressions. The multiplier is the WAN/LAN latency ratio, clamped
     — enough to keep clumps region-local without making cross-region
     moves literally unthinkable. *)
  let wan =
    let c = cl.Cluster.cfg in
    if c.Lion_store.Config.regions >= 2 then
      Some
        {
          Costmodel.region_of = Cluster.region_of cl;
          factor =
            Float.min 64.0
              (Float.max 1.0
                 (c.Lion_store.Config.wan_latency
                 /. Float.max 1.0 c.Lion_store.Config.net_latency));
        }
    else None
  in
  let cost =
    Costmodel.make ~w_r:cfg.w_r ~w_m:cfg.w_m ?wan
      ~freq:(Cluster.normalized_freq cl) ()
  in
  {
    cl;
    cfg;
    graph = Heatgraph.create ~partitions:(Cluster.partition_count cl);
    cost;
    predictor =
      (if cfg.predict && cfg.w_p > 0.0 then
         Some (Predictor.create ~seed ~use_lstm:cfg.use_lstm ~w_p:cfg.w_p ())
       else None);
    rounds = 0;
    last_plan_adds = 0;
  }

let cost_model t = t.cost

let observe t (txn : Txn.t) =
  Heatgraph.add_txn t.graph ~parts:txn.Txn.parts;
  Option.iter
    (fun p -> Predictor.observe p ~time:(Cluster.now t.cl) txn)
    t.predictor

let tick t =
  t.rounds <- t.rounds + 1;
  (* Merge predicted co-access (pre-replication hints, Fig. 5c). *)
  Option.iter
    (fun p ->
      List.iter
        (fun { Predictor.parts; weight } ->
          Heatgraph.add_predicted t.graph ~parts ~weight)
        (Predictor.analyze p ~time:(Cluster.now t.cl)))
    t.predictor;
  let placement = t.cl.Cluster.placement in
  let alpha = t.cfg.alpha_factor *. Heatgraph.mean_edge_weight t.graph in
  (* Cap clump growth at a fraction of the per-node fair share so the
     rearrangement algorithm — which moves whole clumps — can always
     balance a densely co-accessed hot set. *)
  let total_weight = ref 0.0 and hottest = ref 0.0 in
  for p = 0 to Cluster.partition_count t.cl - 1 do
    let w = Heatgraph.vertex_weight t.graph p in
    total_weight := !total_weight +. w;
    if w > !hottest then hottest := w
  done;
  (* Floor at 2.2× the hottest vertex so a co-accessed pair can always
     clump even when one partition dominates the heat. *)
  let max_weight =
    Stdlib.max
      (0.35 *. !total_weight /. float_of_int (Cluster.node_count t.cl))
      (2.2 *. !hottest)
  in
  let clumps =
    Clump.generate ~max_weight t.graph ~placement ~alpha
      ~cross_boost:t.cfg.cross_boost
  in
  let plan =
    match t.cfg.strategy with
    | Rearrange ->
        (* With elastic membership on, plans must not target standby,
           draining or dead slots. The filter is only passed when the
           knob is set, so default runs evaluate the exact same code
           path as before. *)
        let eligible =
          if t.cl.Cluster.cfg.Lion_store.Config.rebalance_rate > 0.0 then
            Some (Cluster.plan_target_ok t.cl)
          else None
        in
        let result =
          Rearrange.rearrange ?eligible t.cost placement clumps
            ~epsilon:t.cfg.epsilon ()
        in
        (* Eager promotion: the plan's w_r costs are paid as the adaptor
           applies it (Example 2), so the router — which follows
           primaries — sees the rebalanced layout immediately. *)
        Plan.of_assignments placement result.Rearrange.assignments
          ~eager_remaster:true
    | Schism_strategy ->
        let assignments = Schism.assign clumps ~nodes:(Cluster.node_count t.cl) in
        Schism.plan placement assignments
  in
  t.last_plan_adds <- plan.Plan.adds;
  Log.debug (fun m ->
      m "round %d: %d clumps, plan adds=%d remasters=%d wv=%.2f" t.rounds
        (List.length clumps) plan.Plan.adds plan.Plan.remasters
        (match t.predictor with Some p -> Predictor.last_wv p | None -> 0.0));
  Lion_protocols.Apply.apply t.cl plan;
  Heatgraph.clear t.graph;
  Cluster.decay_access t.cl t.cfg.decay

let rounds t = t.rounds
let last_plan_adds t = t.last_plan_adds
let last_wv t = match t.predictor with Some p -> Predictor.last_wv p | None -> 0.0
