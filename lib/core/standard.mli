(** Lion, standard (ad-hoc) execution mode (§III).

    Transactions are routed by the cost-model router; on the executor a
    locally-held secondary is remastered (blocking that partition for
    the remaster delay) so the operation can run locally; a transaction
    whose operations all ended local commits directly, skipping the
    prepare phase, and everything else falls back to 2PC. The planner
    runs on the harness tick, adapting replica placement asynchronously. *)

val create :
  ?name:string ->
  ?read_at_secondary:bool ->
  ?seed:int ->
  ?config:Planner.config ->
  Lion_store.Cluster.t ->
  Lion_protocols.Proto.t
(** [read_at_secondary] (default false) enables the bounded-staleness
    extension: all-read partition groups are served by locally-held
    secondaries without promotion. *)

val create_with_planner :
  ?name:string ->
  ?read_at_secondary:bool ->
  ?seed:int ->
  ?config:Planner.config ->
  Lion_store.Cluster.t ->
  Lion_protocols.Proto.t * Planner.t
(** Variant exposing the planner, for experiments that inspect rounds
    and wv (Figs. 12, 13). *)
