module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Server = Lion_sim.Server
module Costmodel = Lion_analysis.Costmodel
module Txn = Lion_workload.Txn

type t = { cl : Cluster.t; cost : Costmodel.t }

let create cl cost = { cl; cost }

(* Cost ties break on a deterministic hash of the partition set, never
   on instantaneous load: transactions accessing the same partitions
   must route to the same node or remastering ping-pongs between the
   tied nodes (§III), while distinct partition sets still spread across
   their tied candidates instead of piling onto one node id. *)
let route t (txn : Txn.t) =
  let placement = t.cl.Cluster.placement in
  let nodes = Placement.nodes placement in
  let best_cost = ref infinity in
  for node = 0 to nodes - 1 do
    if Cluster.alive t.cl node then (
      let c = Costmodel.txn_route_cost t.cost placement ~parts:txn.Txn.parts ~node in
      if c < !best_cost then best_cost := c)
  done;
  let tied = ref [] in
  for node = nodes - 1 downto 0 do
    if Cluster.alive t.cl node then (
      let c = Costmodel.txn_route_cost t.cost placement ~parts:txn.Txn.parts ~node in
      if c <= !best_cost +. 1e-9 then tied := node :: !tied)
  done;
  match !tied with
  | [] -> invalid_arg "Router.route: no live node"
  | [ n ] -> n
  | candidates ->
      let h = Hashtbl.hash txn.Txn.parts in
      List.nth candidates (h mod List.length candidates)

let cost_model t = t.cost
