module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Placement = Lion_store.Placement
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Batch = Lion_protocols.Batch
module Batch_util = Lion_protocols.Batch_util
module Txn = Lion_workload.Txn


let create_with_planner ?name ?(seed = 31) ?(config = Planner.default_config) cl =
  let planner = Planner.create ~seed config cl in
  let router = Router.create cl (Planner.cost_model planner) in
  let cfg = cl.Cluster.cfg in
  let name =
    match name with
    | Some n -> n
    | None -> if config.Planner.predict then "Lion" else "Lion(RB)"
  in
  let process txns =
    let placement = cl.Cluster.placement in
    let nodes = Cluster.node_count cl in
    let node_busy = Array.make nodes 0.0 in
    let rt = Batch_util.rt_block cl in
    (* Pass 1: route with the cost model and claim remasters,
       first-wins per partition. *)
    let routed = Array.map (fun txn -> Router.route router txn) txns in
    let claims = Hashtbl.create 64 in
    let wants_remaster = Array.make (Array.length txns) false in
    Array.iteri
      (fun i txn ->
        Planner.observe planner txn;
        Batch_util.touch cl txn;
        let node = routed.(i) in
        let missing =
          List.exists
            (fun part -> not (Placement.has_replica placement ~part ~node))
            txn.Txn.parts
        in
        if not missing then (
          let needed =
            List.filter
              (fun part -> not (Placement.has_primary placement ~part ~node))
              txn.Txn.parts
          in
          let all_claimable =
            List.for_all
              (fun part ->
                match Hashtbl.find_opt claims part with
                | Some n -> n = node
                | None -> true)
              needed
          in
          if all_claimable && needed <> [] then (
            List.iter (fun part -> Hashtbl.replace claims part node) needed;
            wants_remaster.(i) <- true)))
      txns;
    (* Apply the winning promotions; their network delays overlap into
       a single barrier (§IV-D). *)
    let any_remaster = Hashtbl.length claims > 0 in
    Hashtbl.iter
      (fun part node ->
        let lag_bytes =
          Stdlib.max 256
            (Lion_store.Replication.lag cl.Cluster.replication ~part
            * cfg.Config.record_bytes)
        in
        Network.charge cl.Cluster.network ~bytes:lag_bytes;
        cl.Cluster.remaster_count <- cl.Cluster.remaster_count + 1;
        Placement.remaster placement ~part ~node;
        (* The lag ship above brings the promoted copy current. *)
        Cluster.note_replica_synced cl ~part ~node)
      claims;
    (* Pass 2: conflict analysis and execution accounting. OCC
       conflicts among overlapping executions restart within the epoch
       (double work), they do not re-queue. *)
    let window = 4 * Config.total_workers cfg in
    let ok =
      Batch.conflict_verdicts ~window ~granule:(fun k -> (k.part, k.slot)) txns
    in
    let verdicts =
      Array.mapi
        (fun i txn ->
          let node = routed.(i) in
          let single =
            List.for_all
              (fun part -> Placement.has_primary placement ~part ~node)
              txn.Txn.parts
          in
          let work = Batch_util.ops_work cfg txn in
          node_busy.(node) <-
            node_busy.(node) +. (if ok.(i) then work else 2.0 *. work);
          if not single then (
            (* 2PC fallback: the coordinator blocks on the prepare
               round; participants handle the messages. *)
            node_busy.(node) <- node_busy.(node) +. (2.0 *. rt);
            List.iter
              (fun part ->
                let owner = Placement.primary placement part in
                if owner <> node then
                  node_busy.(owner) <-
                    node_busy.(owner) +. (2.0 *. cfg.Config.msg_handle_cost))
              txn.Txn.parts);
          Batch_util.charge_replication cl txn;
          { Batch.committed = true; single_node = single; remastered = wants_remaster.(i) })
        txns
    in
    {
      Batch.verdicts;
      node_busy;
      serial_time = 0.0;
      barrier_time = (if any_remaster then cfg.Config.remaster_delay else 0.0);
      phase_split =
        [
          (Metrics.Execution, 0.45);
          (Metrics.Remaster, 0.1);
          (Metrics.Replication, 0.35);
          (Metrics.Commit, 0.1);
        ];
    }
  in
  let proto =
    Batch.create cl ~name ~process ~tick:(fun () -> Planner.tick planner)
      ~stage_labels:("sequencing", "remaster-barrier") ()
  in
  (proto, planner)

let create ?name ?seed ?config cl = fst (create_with_planner ?name ?seed ?config cl)
