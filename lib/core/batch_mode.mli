(** Lion, batch execution mode (§IV-D).

    Remastering is issued asynchronously for the whole buffered batch
    before execution starts, so the network delays of all promotions
    overlap: the epoch pays at most one remaster-delay barrier instead
    of one per transaction. Conflicting remaster claims on the same
    partition are resolved first-wins; the losers run as distributed
    transactions (§III's conflict rule). The planner keeps adapting
    replica placement on the harness tick. *)

val create :
  ?name:string ->
  ?seed:int ->
  ?config:Planner.config ->
  Lion_store.Cluster.t ->
  Lion_protocols.Proto.t

val create_with_planner :
  ?name:string ->
  ?seed:int ->
  ?config:Planner.config ->
  Lion_store.Cluster.t ->
  Lion_protocols.Proto.t * Planner.t
