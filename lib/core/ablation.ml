type variant = V_2pc | V_s | V_r | V_sw | V_rw | V_rb | V_full

let all = [ V_2pc; V_s; V_r; V_sw; V_rw; V_rb; V_full ]

let name = function
  | V_2pc -> "2PC"
  | V_s -> "Lion(S)"
  | V_r -> "Lion(R)"
  | V_sw -> "Lion(SW)"
  | V_rw -> "Lion(RW)"
  | V_rb -> "Lion(RB)"
  | V_full -> "Lion"

let config ~strategy ~predict ~use_lstm =
  { Planner.default_config with Planner.strategy; predict; use_lstm }

let create ?seed ?(use_lstm = true) variant cl =
  match variant with
  | V_2pc -> Lion_protocols.Twopc.create cl
  | V_s ->
      Standard.create ?seed
        ~config:(config ~strategy:Planner.Schism_strategy ~predict:false ~use_lstm)
        cl
  | V_r ->
      Standard.create ?seed
        ~config:(config ~strategy:Planner.Rearrange ~predict:false ~use_lstm)
        cl
  | V_sw ->
      Standard.create ?seed
        ~config:(config ~strategy:Planner.Schism_strategy ~predict:true ~use_lstm)
        cl
  | V_rw ->
      Standard.create ?seed
        ~config:(config ~strategy:Planner.Rearrange ~predict:true ~use_lstm)
        cl
  | V_rb ->
      Batch_mode.create ?seed
        ~config:(config ~strategy:Planner.Rearrange ~predict:false ~use_lstm)
        cl
  | V_full ->
      Batch_mode.create ?seed
        ~config:(config ~strategy:Planner.Rearrange ~predict:true ~use_lstm)
        cl
