(** Lion's planner node (§III): workload analyzer + plan generator.

    Each analysis round (driven by the harness tick):
    + the heat graph accumulated since the last round — plus, when
      prediction is enabled and the workload-variation trigger fires,
      the predicted co-access templates weighted by w_p — is clustered
      into clumps;
    + the rearrangement algorithm (or the Schism baseline strategy, for
      the Table II ablations) assigns clumps to nodes;
    + the resulting reconfiguration plan is applied asynchronously by
      the adaptor (replica additions in the background, remastering
      lazily at execution time unless the strategy is eager). *)

type strategy = Rearrange | Schism_strategy

type config = {
  strategy : strategy;
  predict : bool;
  epsilon : float;  (** load-imbalance tolerance of Algorithm 1 *)
  cross_boost : float;  (** e_c over e_s edge-weight priority *)
  alpha_factor : float;
      (** clump threshold α = alpha_factor × mean edge weight *)
  w_r : float;
  w_m : float;
  decay : float;  (** per-round decay of partition access counters *)
  use_lstm : bool;  (** false = trend-only forecaster (fast benches) *)
  w_p : float;
      (** weight of predicted co-access in the heat graph (§IV-C);
          0 disables the prediction algorithm, the paper's default is 1 *)
}

val default_config : config
(** Rearrange + prediction, ε = 0.25, cross boost 4, α factor 2,
    w_r = 1, w_m = 10, decay 0.5. *)

type t

val create : ?seed:int -> config -> Lion_store.Cluster.t -> t

val cost_model : t -> Lion_analysis.Costmodel.t
(** Shared with the routers. *)

val observe : t -> Lion_workload.Txn.t -> unit
(** Feed one routed transaction (graph + predictor). *)

val tick : t -> unit
(** One analysis round: analyse, plan, apply asynchronously. *)

val rounds : t -> int
val last_plan_adds : t -> int
val last_wv : t -> float
(** Workload-variation metric after the latest round (0 when prediction
    is off). *)
