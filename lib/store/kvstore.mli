(** Sparse versioned key-value store with OCC sessions.

    Keys name a (partition, slot) pair. Only versions are materialised —
    payload bytes are modelled as message sizes by the simulator — and
    only touched keys occupy memory, so a "24 M items per node" YCSB
    dataset costs nothing until accessed.

    Concurrency control is classic backward-validation OCC: a session
    records the version of every key it reads (writes are treated as
    read-modify-writes, as in YCSB and TPC-C), [validate] checks those
    versions are unchanged, and [commit_session] installs the writes by
    bumping versions. Because the simulator executes events in global
    time order, reading the table at simulated read time and validating
    at simulated commit time is exactly serializable-history OCC. *)

type key = { part : int; slot : int }

val key : part:int -> slot:int -> key
val key_compare : key -> key -> int
val pp_key : Format.formatter -> key -> unit

type t

val create : unit -> t

val version : t -> key -> int
(** Current version; unseen keys are at version 0. *)

val touched_keys : t -> int
(** Number of distinct keys ever written. *)

(** An in-flight transaction's footprint. *)
type session

val begin_session : t -> session

val read : session -> key -> unit
(** Record a read of [key] at its current version. *)

val write : session -> key -> unit
(** Record a read-modify-write of [key]. *)

val read_set : session -> key list

val observed_reads : session -> (key * int) list
(** Every recorded read with the version it observed, in access order
    (writes appear too — they are read-modify-writes). *)

val write_set : session -> key list

val validate : session -> bool
(** True iff every recorded version is still current. *)

val try_reserve : session -> bool
(** Atomic validate-and-lock at commit time: checks every recorded
    version is current {e and} no touched key carries another session's
    pending write, then marks this session's writes pending. Returns
    false (reserving nothing) on any conflict. This is the
    validation-to-install critical section real OCC engines hold — it
    prevents two concurrently-validating transactions from both
    committing conflicting writes. *)

val finalize : session -> unit
(** Install a reserved session's writes (bump versions) and clear its
    pending marks. Must follow a successful [try_reserve]. *)

val release_reservation : session -> unit
(** Clear pending marks without installing (a post-reserve abort, e.g.
    a 2PC participant voted no). *)

val commit_session : session -> unit
(** [try_reserve]-free install for single-threaded callers/tests. *)

val abort_session : session -> unit
(** Discard the footprint (no store effect; provided for symmetry). *)
