(** Replica placement: which node hosts the primary and which hold
    secondaries, per partition — the paper's "global router table".

    Invariants maintained:
    - every partition has exactly one primary;
    - the primary's node never also appears in the secondary set;
    - the replica count never exceeds [max_replicas] via [add_secondary]
      (callers evict explicitly, mirroring the delete_flag mechanism). *)

type t

val create :
  ?standby:int ->
  nodes:int ->
  partitions:int ->
  replicas:int ->
  max_replicas:int ->
  unit ->
  t
(** Round-robin initial placement (§II-C): partition [p]'s primary is
    node [p mod nodes]; its [replicas - 1] secondaries follow on
    successive nodes. [standby] (default 0) widens the node-id space by
    that many empty slots for elastic membership — [nodes t] then
    reports the total capacity, but nothing is initially placed on the
    standby ids (docs/MEMBERSHIP.md). *)

val nodes : t -> int
val partitions : t -> int
val max_replicas : t -> int

val primary : t -> int -> int
(** [primary t p] is the node hosting partition [p]'s primary. *)

val secondaries : t -> int -> int list
(** Sorted list of nodes holding a secondary of [p]. *)

val replica_count : t -> int -> int
val has_primary : t -> part:int -> node:int -> bool
val has_secondary : t -> part:int -> node:int -> bool
val has_replica : t -> part:int -> node:int -> bool

val remaster : t -> part:int -> node:int -> unit
(** Promote [node]'s secondary of [part] to primary; the old primary
    becomes a secondary. Raises [Invalid_argument] if [node] holds no
    replica of [part] (callers must add one first). No-op if [node] is
    already the primary. *)

val add_secondary : t -> part:int -> node:int -> unit
(** Add a secondary replica on [node]. No-op if a replica already
    exists there. Raises [Invalid_argument] when at [max_replicas]. *)

val remove_secondary : t -> part:int -> node:int -> unit
(** Drop [node]'s secondary. Raises [Invalid_argument] when asked to
    remove the primary or a non-existent replica. *)

val parts_primary_on : t -> int -> int list
(** All partitions whose primary lives on a node. *)

val replicas_on : t -> int -> int
(** Total replica count (primary + secondary) hosted by a node. *)

val count_primaries_at : t -> int list -> node:int -> int
(** How many of the given partitions have their primary at [node]. *)

val count_replicas_at : t -> int list -> node:int -> int
(** How many of the given partitions have any replica at [node]. *)

val best_local_node : t -> int list -> int option
(** A node holding a replica of {e every} given partition, preferring
    the one with the most primaries among them; [None] if no node covers
    all of them. Deterministic tie-break on the lower node id. *)

val regions_spanned : t -> region_of:(int -> int) -> part:int -> int
(** Distinct regions covered by [part]'s replica set (primary +
    secondaries) under the caller's node → region map — the
    [min_regions] invariant the geo tests assert (docs/GEO.md). *)

val spread_regions :
  t ->
  region_of:(int -> int) ->
  eligible:(int -> bool) ->
  min_regions:int ->
  unit
(** Deterministically relocate secondaries so every partition spans at
    least [min_regions] distinct regions (capped at the number of
    regions that exist): for each under-spread partition, the
    highest-id secondary in an over-represented region moves to the
    least-loaded [eligible] node of an uncovered region. Run once at
    cluster creation when [Config.min_regions] ≥ 2; the rebalancer
    maintains the invariant afterwards. *)

val copy : t -> t
(** Deep copy, used by planners to evaluate candidate plans. *)
