type key = { part : int; slot : int }

let key ~part ~slot = { part; slot }

let key_compare a b =
  let c = compare a.part b.part in
  if c <> 0 then c else compare a.slot b.slot

let pp_key fmt k = Format.fprintf fmt "P%d/%d" k.part k.slot

module Ktbl = Hashtbl.Make (struct
  type t = key

  let equal a b = a.part = b.part && a.slot = b.slot
  let hash k = (k.part * 1_000_003) lxor k.slot
end)

type t = { versions : int Ktbl.t; pending : int Ktbl.t; mutable next_session : int }

let create () = { versions = Ktbl.create 4096; pending = Ktbl.create 64; next_session = 0 }
let version t k = match Ktbl.find_opt t.versions k with Some v -> v | None -> 0
let touched_keys t = Ktbl.length t.versions

type session = {
  store : t;
  sid : int;
  mutable reads : (key * int) list; (* key, observed version *)
  mutable writes : key list;
}

let begin_session store =
  let sid = store.next_session in
  store.next_session <- sid + 1;
  { store; sid; reads = []; writes = [] }

let read s k = s.reads <- (k, version s.store k) :: s.reads

let write s k =
  s.reads <- (k, version s.store k) :: s.reads;
  s.writes <- k :: s.writes

let read_set s = List.rev_map fst s.reads
let observed_reads s = List.rev s.reads
let write_set s = List.rev s.writes

let validate s = List.for_all (fun (k, v) -> version s.store k = v) s.reads

let pending_by_other s k =
  match Ktbl.find_opt s.store.pending k with
  | Some sid -> sid <> s.sid
  | None -> false

let try_reserve s =
  if
    List.for_all (fun (k, v) -> version s.store k = v && not (pending_by_other s k)) s.reads
  then (
    List.iter (fun k -> Ktbl.replace s.store.pending k s.sid) s.writes;
    true)
  else false

let release_reservation s =
  List.iter
    (fun k ->
      match Ktbl.find_opt s.store.pending k with
      | Some sid when sid = s.sid -> Ktbl.remove s.store.pending k
      | _ -> ())
    s.writes

let finalize s =
  List.iter (fun k -> Ktbl.replace s.store.versions k (version s.store k + 1)) s.writes;
  release_reservation s

let commit_session s =
  List.iter (fun k -> Ktbl.replace s.store.versions k (version s.store k + 1)) s.writes

let abort_session s =
  s.reads <- [];
  s.writes <- []
