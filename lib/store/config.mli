(** System-wide cost and sizing parameters for the simulated database.

    Defaults follow the paper's testbed (§VI-A): 8 worker threads per
    executor node, 2 initial replicas per partition, a maximum of 4,
    remaster delay 3000 µs, ~1 GbE network. All costs are in simulated
    microseconds, all sizes in bytes. *)

type t = {
  nodes : int;  (** executor node count (paper default 4) *)
  partitions_per_node : int;  (** initial partitions hosted per node *)
  workers_per_node : int;  (** worker threads per node (paper: 8) *)
  replicas : int;  (** initial replicas per partition (paper: 2) *)
  max_replicas : int;  (** replica cap per partition (paper: 4) *)
  txn_setup_cost : float;  (** per-transaction CPU µs at the coordinator (parsing, context) *)
  local_op_cost : float;  (** CPU µs to execute one local read/write *)
  msg_handle_cost : float;  (** CPU µs consumed at a message receiver *)
  net_latency : float;  (** one-way network latency, µs *)
  net_per_byte : float;  (** µs per byte on the wire *)
  op_msg_bytes : int;  (** request/response size for one operation *)
  record_bytes : int;  (** payload of one data record *)
  remaster_delay : float;
      (** leader-transfer duration, µs. Default 300 (log tail sync +
          leader handover on a LAN); §VI-C1 experiments explicitly set
          the paper's stress value of 3000 *)
  remaster_cooldown : float;
      (** minimum µs between two remasters of the same partition —
          damps ping-pong; transactions losing the race fall back to 2PC *)
  partition_bytes : int;  (** bytes copied when adding a replica *)
  migration_cpu_cost : float;
      (** worker CPU µs consumed on {e each} of the source and
          destination nodes per replica addition — the interference that
          makes migration-heavy strategies pay (§II-B) *)
  replica_add_duration : float;  (** background copy duration, µs *)
  election_delay : float;
      (** leader-election span after a node failure before an affected
          partition's surviving secondary is promoted, µs *)
  replication_factor_sync : bool;
      (** if true, commit waits for replication (no group commit) *)
  group_commit_interval : float;  (** epoch length for group commit, µs *)
  batch_size : int;  (** batch execution epoch size (paper: 10k) *)
  rpc_timeout : float;
      (** µs a sender waits for an RPC reply before declaring the
          attempt lost (see docs/FAULTS.md) *)
  rpc_retries : int;
      (** bounded retransmissions after the first attempt; once
          exhausted the caller's [on_fail] fires *)
  rpc_backoff : float;
      (** base µs of the exponential backoff between RPC retries
          (doubles per attempt) *)
  fault_plan : Lion_sim.Fault.plan;
      (** scheduled crashes / partitions / drop / jitter / stragglers
          injected into this cluster (default: none) *)
  queue_cap : int;
      (** bound on each node's worker/service wait queue; 0 (default)
          = unbounded, admission control off (docs/OVERLOAD.md) *)
  shed_policy : Lion_sim.Server.shed_policy;
      (** who is turned away when a bounded queue saturates (default
          [Reject_newest]; irrelevant while [queue_cap] = 0) *)
  control_priority : bool;
      (** if true, remaster/replication control work runs at
          [Server.High] priority, ahead of user transactions and exempt
          from shedding (default false) *)
  retry_budget_rate : float;
      (** global retry-budget refill, tokens per simulated second; each
          RPC/log-ship retransmission takes one token. 0 (default) =
          unlimited retries, as before *)
  retry_budget_burst : float;  (** retry-budget bucket capacity *)
  breaker_threshold : int;
      (** consecutive terminal RPC failures to one destination that
          trip its circuit breaker; 0 (default) = breakers off *)
  breaker_cooldown : float;
      (** µs a tripped breaker stays open before half-open probing *)
  txn_deadline : float;
      (** client patience, µs from first submission: a commit landing
          later counts as a deadline miss (discounted from goodput);
          0 (default) = no deadline, goodput = throughput *)
  deadline_enforce : bool;
      (** if true (default), a transaction past [txn_deadline] is also
          {e shed} — aborted attempts stop retrying and in-flight RPCs
          stop retransmitting. false keeps the deadline as a pure
          measurement SLO: late commits are counted but the system
          still burns capacity completing them — the configuration the
          metastable-failure repro uses as its unprotected baseline
          (docs/OVERLOAD.md). Irrelevant while [txn_deadline] = 0 *)
  standby_nodes : int;
      (** pre-provisioned node slots beyond [nodes] that start outside
          the membership; [Cluster.join_node] activates them. 0
          (default) freezes the membership at [nodes], exactly the
          pre-elastic behaviour (docs/MEMBERSHIP.md) *)
  rebalance_rate : float;
      (** background migration-step rate (partitions per simulated
          second) for elastic rebalancing: join catch-up, decommission
          draining and under-replication repair. 0 (default) = elastic
          rebalancing off; joins and decommissions then only change the
          membership, never move data *)
  session_tagging : bool;
      (** if true, every replication / remaster stream carries a
          session id ([Replication.session]) and deliveries from a
          session opened before the destination left and rejoined the
          membership are rejected (counted as
          [Metrics.stale_ack_rejections]). false (default) reproduces
          the classic stale-replication-ack hazard — see
          docs/MEMBERSHIP.md for the openraft/Ra comparison *)
  reintroduce_phantom_secondary : bool;
      (** compat flag re-planting the phantom-secondary bug the
          divergence auditor originally caught: when true, a dead
          primary demoted in place by a planner remaster (racing the
          election timer) is {e not} purged — neither by the election
          callback nor at rejoin — so the recovered node serves a
          frozen copy. Exists purely as a known-bug target for the
          fault-schedule fuzzer (docs/FUZZING.md); false (default)
          keeps both purge sites active *)
  regions : int;
      (** number of geographic regions the node slots divide into
          (contiguous blocks of node ids — see [region_of_node]).
          0 (default) = region-free: the network has a single latency
          class and every geo knob below is inert (docs/GEO.md) *)
  wan_latency : float;
      (** one-way µs for a message between nodes of different regions
          (default 50 ms); irrelevant while [regions] < 2 *)
  wan_per_byte : float;
      (** µs per byte on a cross-region link (default 0.05 ≈
          160 Mbit/s); irrelevant while [regions] < 2 *)
  min_regions : int;
      (** minimum distinct regions each partition's replica set
          (primary + secondaries) must span. The placement is spread at
          cluster creation and the rebalancer keeps the invariant when
          installing or evicting secondaries. 0 (default) = no
          constraint *)
  epoch_interval : float;
      (** epoch length, µs, for the epoch-based OCC protocol
          ([Lion_protocols.Epoch]): optimistic execution parks until
          the next boundary, where validation and one cross-region
          replication round happen for the whole epoch *)
}

val default : t
(** The paper's default configuration: 4 nodes, 8 workers, 2 replicas,
    max 4, remaster 3000 µs. *)

val total_partitions : t -> int
val total_workers : t -> int

val total_slots : t -> int
(** [nodes + standby_nodes]: the size of every per-node structure in an
    elastic cluster. Equals [nodes] with the default configuration. *)

val with_nodes : t -> int -> t
(** Scale the cluster size keeping per-node density fixed (Fig. 11). *)

val with_elastic_defaults : t -> t
(** Turn elastic membership on at its documented starting point: two
    standby slots, a 50 migrations/s rebalance bound and session-tagged
    replication streams. See docs/MEMBERSHIP.md. *)

val with_overload_defaults : t -> t
(** Turn every overload-robustness knob on at its documented starting
    point: bounded queues (cap 64, reject-newest), control-traffic
    priority, a 2000 tokens/s retry budget, breakers (threshold 8,
    cooldown 50 ms) and a 200 ms transaction deadline. See
    docs/OVERLOAD.md. *)

val with_geo_defaults : t -> t
(** Turn geo-replication on at its documented starting point: two
    regions, [min_regions] = 2, and the default WAN link class (50 ms
    one-way, 0.05 µs/byte). See docs/GEO.md. *)

val region_of_node : t -> int -> int
(** Region of a node slot under the contiguous block layout: the
    [total_slots] ids divide into [regions] consecutive blocks (nodes
    0..k-1 form region 0, and so on). Always 0 while [regions] < 2. *)
