let primaries_per_node p =
  Array.init (Placement.nodes p) (fun n -> List.length (Placement.parts_primary_on p n))

let replicas_per_node p =
  Array.init (Placement.nodes p) (fun n -> Placement.replicas_on p n)

let imbalance p =
  let prim = primaries_per_node p in
  let total = Array.fold_left ( + ) 0 prim in
  if total = 0 then 1.0
  else (
    let mean = float_of_int total /. float_of_int (Array.length prim) in
    float_of_int (Array.fold_left Stdlib.max 0 prim) /. mean)

let fraction_matching pred p sets =
  match sets with
  | [] -> 0.0
  | _ ->
      let hits = List.length (List.filter (pred p) sets) in
      float_of_int hits /. float_of_int (List.length sets)

let coverage p sets =
  fraction_matching (fun p parts -> Placement.best_local_node p parts <> None) p sets

let colocated p sets =
  fraction_matching
    (fun p parts ->
      match parts with
      | [] -> true
      | first :: rest ->
          let home = Placement.primary p first in
          List.for_all (fun part -> Placement.primary p part = home) rest)
    p sets

let pp fmt p =
  for n = 0 to Placement.nodes p - 1 do
    Format.fprintf fmt "N%d:" n;
    for part = 0 to Placement.partitions p - 1 do
      if Placement.has_primary p ~part ~node:n then Format.fprintf fmt " P%d*" part
      else if Placement.has_secondary p ~part ~node:n then Format.fprintf fmt " P%d" part
    done;
    Format.pp_print_newline fmt ()
  done
