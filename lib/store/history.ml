type outcome = Committed | Aborted | Indeterminate

let outcome_name = function
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Indeterminate -> "indeterminate"

type event = {
  txn_id : int;
  attempt : int;
  reads : (Kvstore.key * int) list;
  writes : (Kvstore.key * int) list;
  outcome : outcome;
  ts : float;
  seq : int;
}

type t = {
  mutable rev_events : event list;
  mutable n : int;
  mutable next_seq : int;
  (* Shadow version table for analytic (batch) engines, which never
     touch the shared Kvstore: committed write sets of an epoch are
     applied here, in commit order, to synthesise observed/installed
     versions. Exec-style protocols ignore it and record straight from
     the real store. *)
  shadow : Kvstore.t;
}

let create () =
  { rev_events = []; n = 0; next_seq = 0; shadow = Kvstore.create () }

let record t ~txn_id ~attempt ~reads ~writes ~outcome ~ts =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.rev_events <- { txn_id; attempt; reads; writes; outcome; ts; seq } :: t.rev_events;
  t.n <- t.n + 1

let size t = t.n
let events t = List.rev t.rev_events
let shadow t = t.shadow

let event ~txn_id ?(attempt = 1) ?(reads = []) ?(writes = []) ~outcome
    ?(ts = 0.0) ~seq () =
  { txn_id; attempt; reads; writes; outcome; ts; seq }

let pp_event fmt e =
  let pp_pair tag fmt (k, v) = Format.fprintf fmt "%s(%a@@%d)" tag Kvstore.pp_key k v in
  Format.fprintf fmt "T%d/%d %s seq=%d %a %a" e.txn_id e.attempt
    (outcome_name e.outcome) e.seq
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       (pp_pair "r"))
    e.reads
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       (pp_pair "w"))
    e.writes
