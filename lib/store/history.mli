(** Transaction history recording for the consistency auditor.

    A history sink collects one {!event} per transaction {e attempt}:
    the read set with the versions the attempt observed, the write set
    with the versions it installed (empty unless the attempt actually
    installed its writes), the outcome, and the engine time of the
    record. Record order ([seq]) is the logical commit order — events
    are appended at the simulated instant the attempt's fate is
    decided, and the simulator executes instants in global time order.

    Recording follows the tracing contract (see {!Lion_trace.Trace}):
    the sink is optional everywhere ([Cluster.history]), a [None] sink
    makes every instrumentation point a constant-time no-op that
    schedules nothing, and an installed sink only {e observes} — it
    never changes a simulation outcome. The offline checker
    ({!Lion_audit.Checker}) replays the version-order dependency graph
    from these events. *)

type outcome =
  | Committed  (** writes installed, visible at the recorded instant *)
  | Aborted  (** attempt gave up before installing anything *)
  | Indeterminate
      (** the coordinator lost contact mid-protocol (e.g. a 2PC
          prepare round that exhausted its retries) and presumed
          abort without hearing every participant *)

val outcome_name : outcome -> string

type event = {
  txn_id : int;
  attempt : int;  (** 1-based attempt number within the transaction *)
  reads : (Kvstore.key * int) list;  (** key, observed version *)
  writes : (Kvstore.key * int) list;  (** key, installed version *)
  outcome : outcome;
  ts : float;  (** engine time (µs) the outcome was decided *)
  seq : int;  (** record order — the logical commit timestamp *)
}

type t

val create : unit -> t

val record :
  t ->
  txn_id:int ->
  attempt:int ->
  reads:(Kvstore.key * int) list ->
  writes:(Kvstore.key * int) list ->
  outcome:outcome ->
  ts:float ->
  unit

val size : t -> int

val events : t -> event list
(** All recorded events in [seq] order. *)

val shadow : t -> Kvstore.t
(** Private version table for analytic (batch) engines that never
    touch the shared store: the batch recorder applies committed write
    sets here, in epoch commit order, to synthesise the versions a
    real execution would have observed and installed. *)

val event :
  txn_id:int ->
  ?attempt:int ->
  ?reads:(Kvstore.key * int) list ->
  ?writes:(Kvstore.key * int) list ->
  outcome:outcome ->
  ?ts:float ->
  seq:int ->
  unit ->
  event
(** Convenience constructor for hand-built histories in tests. *)

val pp_event : Format.formatter -> event -> unit
