module Engine = Lion_sim.Engine
module Timeseries = Lion_kernel.Timeseries

type t = {
  engine : Engine.t;
  interval : float;
  sync_delay : float;
  logs : Timeseries.t array; (* appends bucketed by epoch *)
  totals : int array;
  mutable grand_total : int;
  (* Per-replica apply progress: (partition, node) -> index of the last
     log record the replica has applied. The authoritative length is
     [totals]; the divergence audit compares the two at quiescence. *)
  applied_tbl : (int * int, int) Hashtbl.t;
}

let create ?sync_delay ~interval ~partitions engine =
  assert (interval > 0.0);
  {
    engine;
    interval;
    sync_delay = (match sync_delay with Some d -> d | None -> 2.0 *. interval);
    logs = Array.init partitions (fun _ -> Timeseries.create ~interval);
    totals = Array.make partitions 0;
    grand_total = 0;
    applied_tbl = Hashtbl.create 256;
  }

let append t ~part =
  Timeseries.incr t.logs.(part) ~time:(Engine.now t.engine);
  t.totals.(part) <- t.totals.(part) + 1;
  t.grand_total <- t.grand_total + 1

let appends t ~part = t.totals.(part)

let lag t ~part =
  let now = Engine.now t.engine in
  let hi = int_of_float (Float.floor (now /. t.interval)) in
  let lo = int_of_float (Float.floor ((now -. t.sync_delay) /. t.interval)) in
  int_of_float (Timeseries.sum_range t.logs.(part) lo hi)

let total_appends t = t.grand_total
let sync_delay t = t.sync_delay

let applied t ~part ~node =
  match Hashtbl.find_opt t.applied_tbl (part, node) with
  | Some i -> i
  | None -> 0

let set_applied t ~part ~node ~upto =
  if upto > applied t ~part ~node then Hashtbl.replace t.applied_tbl (part, node) upto

let forget_applied t ~part ~node = Hashtbl.remove t.applied_tbl (part, node)
