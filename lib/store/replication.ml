module Engine = Lion_sim.Engine
module Timeseries = Lion_kernel.Timeseries

type session = { version : int; term : int; epoch : int }

type t = {
  engine : Engine.t;
  interval : float;
  sync_delay : float;
  logs : Timeseries.t array; (* appends bucketed by epoch *)
  totals : int array;
  mutable grand_total : int;
  (* Per-replica apply progress: (partition, node) -> index of the last
     log record the replica has applied. The authoritative length is
     [totals]; the divergence audit compares the two at quiescence. *)
  applied_tbl : (int * int, int) Hashtbl.t;
  (* Ground truth behind [applied_tbl]: what the replica's storage
     actually holds. The two differ only when a stale stream stamped
     the believed watermark of a node that lost its state in between —
     the divergence the session-tagging audit exists to catch
     (docs/MEMBERSHIP.md). A row exists only for replicas seeded at
     startup or installed by a full-state transfer. *)
  durable_tbl : (int * int, int) Hashtbl.t;
}

let create ?sync_delay ~interval ~partitions engine =
  assert (interval > 0.0);
  {
    engine;
    interval;
    sync_delay = (match sync_delay with Some d -> d | None -> 2.0 *. interval);
    logs = Array.init partitions (fun _ -> Timeseries.create ~interval);
    totals = Array.make partitions 0;
    grand_total = 0;
    applied_tbl = Hashtbl.create 256;
    durable_tbl = Hashtbl.create 256;
  }

let append t ~part =
  Timeseries.incr t.logs.(part) ~time:(Engine.now t.engine);
  t.totals.(part) <- t.totals.(part) + 1;
  t.grand_total <- t.grand_total + 1

let appends t ~part = t.totals.(part)

let lag t ~part =
  let now = Engine.now t.engine in
  let hi = int_of_float (Float.floor (now /. t.interval)) in
  let lo = int_of_float (Float.floor ((now -. t.sync_delay) /. t.interval)) in
  int_of_float (Timeseries.sum_range t.logs.(part) lo hi)

let total_appends t = t.grand_total
let sync_delay t = t.sync_delay

let applied t ~part ~node =
  match Hashtbl.find_opt t.applied_tbl (part, node) with
  | Some i -> i
  | None -> 0

let durable t ~part ~node =
  match Hashtbl.find_opt t.durable_tbl (part, node) with
  | Some i -> i
  | None -> 0

let set_applied t ~part ~node ~upto =
  if upto > applied t ~part ~node then Hashtbl.replace t.applied_tbl (part, node) upto;
  (* A full-state transfer is ground truth: it (re)creates the durable
     row even when the believed watermark was already ahead of it. *)
  match Hashtbl.find_opt t.durable_tbl (part, node) with
  | Some d -> if upto > d then Hashtbl.replace t.durable_tbl (part, node) upto
  | None -> Hashtbl.replace t.durable_tbl (part, node) upto

let seed_replica t ~part ~node =
  if not (Hashtbl.mem t.durable_tbl (part, node)) then
    Hashtbl.replace t.durable_tbl (part, node) 0

let ack_stream t ~part ~node ~upto ~stale ~reject =
  if not (stale && reject) then begin
    if upto > applied t ~part ~node then Hashtbl.replace t.applied_tbl (part, node) upto;
    (* An incremental stream can only extend storage that already holds
       the prefix, so the durable watermark moves only where a row
       exists — and never on a stale stream, whose bytes belong to a
       state the destination lost when it left the membership. *)
    if not stale then
      match Hashtbl.find_opt t.durable_tbl (part, node) with
      | Some d -> if upto > d then Hashtbl.replace t.durable_tbl (part, node) upto
      | None -> ()
  end

let forget_applied t ~part ~node =
  Hashtbl.remove t.applied_tbl (part, node);
  Hashtbl.remove t.durable_tbl (part, node)
