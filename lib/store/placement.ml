type t = {
  nodes : int;
  partitions : int;
  max_replicas : int;
  primary : int array;
  secondary : bool array array; (* partition -> node -> has secondary *)
}

(* [standby] widens every per-node array without placing anything on the
   extra slots: the initial layout is computed over the first [nodes]
   ids exactly as before, so the default ([standby = 0]) placement is
   unchanged bit for bit. *)
let create ?(standby = 0) ~nodes ~partitions ~replicas ~max_replicas () =
  assert (nodes > 0 && partitions > 0 && standby >= 0);
  assert (replicas >= 1 && replicas <= max_replicas && replicas <= nodes);
  let slots = nodes + standby in
  let primary = Array.init partitions (fun p -> p mod nodes) in
  let secondary = Array.init partitions (fun _ -> Array.make slots false) in
  for p = 0 to partitions - 1 do
    for r = 1 to replicas - 1 do
      secondary.(p).((p + r) mod nodes) <- true
    done
  done;
  { nodes = slots; partitions; max_replicas; primary; secondary }

let nodes t = t.nodes
let partitions t = t.partitions
let max_replicas t = t.max_replicas
let primary t p = t.primary.(p)

let secondaries t p =
  let out = ref [] in
  for n = t.nodes - 1 downto 0 do
    if t.secondary.(p).(n) then out := n :: !out
  done;
  !out

let replica_count t p = 1 + List.length (secondaries t p)
let has_primary t ~part ~node = t.primary.(part) = node
let has_secondary t ~part ~node = t.secondary.(part).(node)
let has_replica t ~part ~node = has_primary t ~part ~node || has_secondary t ~part ~node

let remaster t ~part ~node =
  if t.primary.(part) <> node then (
    if not t.secondary.(part).(node) then
      invalid_arg
        (Printf.sprintf "Placement.remaster: node %d holds no replica of partition %d" node part);
    let old = t.primary.(part) in
    t.secondary.(part).(node) <- false;
    t.secondary.(part).(old) <- true;
    t.primary.(part) <- node)

let add_secondary t ~part ~node =
  if not (has_replica t ~part ~node) then (
    if replica_count t part >= t.max_replicas then
      invalid_arg
        (Printf.sprintf "Placement.add_secondary: partition %d already at max replicas" part);
    t.secondary.(part).(node) <- true)

let remove_secondary t ~part ~node =
  if t.primary.(part) = node then
    invalid_arg "Placement.remove_secondary: cannot remove the primary";
  if not t.secondary.(part).(node) then
    invalid_arg "Placement.remove_secondary: no secondary on that node";
  t.secondary.(part).(node) <- false

let parts_primary_on t node =
  let out = ref [] in
  for p = t.partitions - 1 downto 0 do
    if t.primary.(p) = node then out := p :: !out
  done;
  !out

let replicas_on t node =
  let count = ref 0 in
  for p = 0 to t.partitions - 1 do
    if has_replica t ~part:p ~node then incr count
  done;
  !count

let count_primaries_at t parts ~node =
  List.fold_left (fun acc p -> if t.primary.(p) = node then acc + 1 else acc) 0 parts

let count_replicas_at t parts ~node =
  List.fold_left (fun acc p -> if has_replica t ~part:p ~node then acc + 1 else acc) 0 parts

let best_local_node t parts =
  let best = ref None in
  for node = t.nodes - 1 downto 0 do
    if List.for_all (fun p -> has_replica t ~part:p ~node) parts then (
      let prims = count_primaries_at t parts ~node in
      match !best with
      | Some (_, best_prims) when best_prims > prims -> ()
      | _ -> best := Some (node, prims))
  done;
  (* The loop above keeps the best seen while iterating downwards and
     prefers the later (lower-id) node on ties because `>=` would; make
     the tie-break explicit: keep lower id on equal primary counts. *)
  Option.map fst !best

let copy t =
  {
    t with
    primary = Array.copy t.primary;
    secondary = Array.map Array.copy t.secondary;
  }
