type t = {
  nodes : int;
  partitions : int;
  max_replicas : int;
  primary : int array;
  secondary : bool array array; (* partition -> node -> has secondary *)
}

(* [standby] widens every per-node array without placing anything on the
   extra slots: the initial layout is computed over the first [nodes]
   ids exactly as before, so the default ([standby = 0]) placement is
   unchanged bit for bit. *)
let create ?(standby = 0) ~nodes ~partitions ~replicas ~max_replicas () =
  assert (nodes > 0 && partitions > 0 && standby >= 0);
  assert (replicas >= 1 && replicas <= max_replicas && replicas <= nodes);
  let slots = nodes + standby in
  let primary = Array.init partitions (fun p -> p mod nodes) in
  let secondary = Array.init partitions (fun _ -> Array.make slots false) in
  for p = 0 to partitions - 1 do
    for r = 1 to replicas - 1 do
      secondary.(p).((p + r) mod nodes) <- true
    done
  done;
  { nodes = slots; partitions; max_replicas; primary; secondary }

let nodes t = t.nodes
let partitions t = t.partitions
let max_replicas t = t.max_replicas
let primary t p = t.primary.(p)

let secondaries t p =
  let out = ref [] in
  for n = t.nodes - 1 downto 0 do
    if t.secondary.(p).(n) then out := n :: !out
  done;
  !out

let replica_count t p = 1 + List.length (secondaries t p)
let has_primary t ~part ~node = t.primary.(part) = node
let has_secondary t ~part ~node = t.secondary.(part).(node)
let has_replica t ~part ~node = has_primary t ~part ~node || has_secondary t ~part ~node

let remaster t ~part ~node =
  if t.primary.(part) <> node then (
    if not t.secondary.(part).(node) then
      invalid_arg
        (Printf.sprintf "Placement.remaster: node %d holds no replica of partition %d" node part);
    let old = t.primary.(part) in
    t.secondary.(part).(node) <- false;
    t.secondary.(part).(old) <- true;
    t.primary.(part) <- node)

let add_secondary t ~part ~node =
  if not (has_replica t ~part ~node) then (
    if replica_count t part >= t.max_replicas then
      invalid_arg
        (Printf.sprintf "Placement.add_secondary: partition %d already at max replicas" part);
    t.secondary.(part).(node) <- true)

let remove_secondary t ~part ~node =
  if t.primary.(part) = node then
    invalid_arg "Placement.remove_secondary: cannot remove the primary";
  if not t.secondary.(part).(node) then
    invalid_arg "Placement.remove_secondary: no secondary on that node";
  t.secondary.(part).(node) <- false

let parts_primary_on t node =
  let out = ref [] in
  for p = t.partitions - 1 downto 0 do
    if t.primary.(p) = node then out := p :: !out
  done;
  !out

let replicas_on t node =
  let count = ref 0 in
  for p = 0 to t.partitions - 1 do
    if has_replica t ~part:p ~node then incr count
  done;
  !count

let count_primaries_at t parts ~node =
  List.fold_left (fun acc p -> if t.primary.(p) = node then acc + 1 else acc) 0 parts

let count_replicas_at t parts ~node =
  List.fold_left (fun acc p -> if has_replica t ~part:p ~node then acc + 1 else acc) 0 parts

let best_local_node t parts =
  let best = ref None in
  for node = t.nodes - 1 downto 0 do
    if List.for_all (fun p -> has_replica t ~part:p ~node) parts then (
      let prims = count_primaries_at t parts ~node in
      match !best with
      | Some (_, best_prims) when best_prims > prims -> ()
      | _ -> best := Some (node, prims))
  done;
  (* The loop above keeps the best seen while iterating downwards and
     prefers the later (lower-id) node on ties because `>=` would; make
     the tie-break explicit: keep lower id on equal primary counts. *)
  Option.map fst !best

(* --- Region spread (docs/GEO.md) -------------------------------------
   The placement itself stays region-unaware: callers hand in the node →
   region map. [regions_spanned] is the invariant the qcheck property
   asserts; [spread_regions] repairs the seed layout once at cluster
   creation. *)

let regions_spanned t ~region_of ~part =
  let seen = ref [] in
  let note n =
    let r = region_of n in
    if not (List.mem r !seen) then seen := r :: !seen
  in
  note t.primary.(part);
  for n = 0 to t.nodes - 1 do
    if t.secondary.(part).(n) then note n
  done;
  List.length !seen

let num_regions t ~region_of =
  let hi = ref 0 in
  for n = 0 to t.nodes - 1 do
    if region_of n > !hi then hi := region_of n
  done;
  !hi + 1

(* Move one secondary of [part] into a region currently holding no
   replica, if such a move exists: victim = the highest-id secondary in
   a region that holds ≥ 2 replicas of [part]; target = the least-loaded
   node (tie: lower id) of the first uncovered region. Returns whether a
   move happened. [eligible] excludes dead/standby slots. *)
let spread_one t ~region_of ~eligible ~part =
  let nreg = num_regions t ~region_of in
  let replicas_in_region r =
    let c = ref (if region_of t.primary.(part) = r then 1 else 0) in
    for n = 0 to t.nodes - 1 do
      if t.secondary.(part).(n) && region_of n = r then incr c
    done;
    !c
  in
  let victim = ref (-1) in
  for n = 0 to t.nodes - 1 do
    if t.secondary.(part).(n) && replicas_in_region (region_of n) >= 2 then
      victim := n
  done;
  let target = ref (-1) in
  (for r = nreg - 1 downto 0 do
     if replicas_in_region r = 0 then (
       (* least-loaded eligible node of region [r], lower id on ties *)
       let best = ref (-1) in
       for n = t.nodes - 1 downto 0 do
         if region_of n = r && eligible n && not (has_replica t ~part ~node:n)
         then
           if !best < 0 || replicas_on t n <= replicas_on t !best then best := n
       done;
       if !best >= 0 then target := !best)
   done);
  if !victim >= 0 && !target >= 0 then (
    t.secondary.(part).(!victim) <- false;
    t.secondary.(part).(!target) <- true;
    true)
  else false

let spread_regions t ~region_of ~eligible ~min_regions =
  for part = 0 to t.partitions - 1 do
    let want = min min_regions (num_regions t ~region_of) in
    let continue = ref true in
    while !continue && regions_spanned t ~region_of ~part < want do
      continue := spread_one t ~region_of ~eligible ~part
    done
  done

let copy t =
  {
    t with
    primary = Array.copy t.primary;
    secondary = Array.map Array.copy t.secondary;
  }
