module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Server = Lion_sim.Server
module Fault = Lion_sim.Fault
module Overload = Lion_sim.Overload
module Rng = Lion_kernel.Rng
module Trace = Lion_trace.Trace

let log_src = Logs.Src.create "lion.cluster" ~doc:"Cluster replica operations"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  cfg : Config.t;
  engine : Engine.t;
  network : Network.t;
  metrics : Metrics.t;
  fault : Fault.t;
  placement : Placement.t;
  store : Kvstore.t;
  replication : Replication.t;
  workers : Server.t array;
  services : Server.t array;
  tracer : Trace.t option;
  history : History.t option;
  rng : Rng.t;
  part_available : float array;
  part_access : float array;
  node_alive : bool array;
  part_last_remaster : float array;
  mutable remaster_count : int;
  mutable replica_add_count : int;
  mutable migration_count : int;
  mutable remaster_inflight : bool array;
  resync_inflight : (int * int, unit) Hashtbl.t;
  mutable resync_count : int;
  retry_budget : Overload.Token_bucket.t option;
  breakers : Overload.Breaker.t array;
  (* ---- Elastic membership (docs/MEMBERSHIP.md). All arrays span the
     full slot capacity ([Config.total_slots]); with no standby slots
     every field below is constant and the pre-elastic behaviour is
     preserved bit for bit. ---- *)
  member : bool array;
  draining : bool array;
  node_epoch : int array;
  primary_term : int array;
  mutable membership_version : int;
  mutable join_count : int;
  mutable decommission_count : int;
  mutable rebalance_migrations : int;
  mutable rebalance_running : bool;
  mutable rebalance_started : float;
  mutable rebalance_done : float;
  move_inflight : (int * int, unit) Hashtbl.t;
  (* ---- In-flight remaster bookkeeping so [fail_node] can cancel a
     transfer whose target just died instead of leaving the completion
     timer to find out ([remaster_gen] makes the timer a no-op). ---- *)
  remaster_target : int array;
  remaster_prev : float array;
  remaster_started_at : float array;
  remaster_gen : int array;
}

let now t = Engine.now t.engine
let node_count t = Placement.nodes t.placement
let partition_count t = Placement.partitions t.placement

let member_count t =
  let c = ref 0 in
  Array.iter (fun m -> if m then incr c) t.member;
  !c

(* Identity of a replication/remaster stream, captured when the stream
   opens. [epoch] — the destination's incarnation — is the staleness
   discriminator: a node that left and rejoined the membership has a
   new epoch, so anything still in flight from its previous life is
   recognisably stale at delivery (docs/MEMBERSHIP.md). *)
let session_for t ~part ~dst : Replication.session =
  {
    Replication.version = t.membership_version;
    term = t.primary_term.(part);
    epoch = t.node_epoch.(dst);
  }

let session_stale t ~dst (s : Replication.session) =
  t.node_epoch.(dst) <> s.Replication.epoch
let touch_partition t p = t.part_access.(p) <- t.part_access.(p) +. 1.0

let decay_access t factor =
  for p = 0 to Array.length t.part_access - 1 do
    t.part_access.(p) <- t.part_access.(p) *. factor
  done

let normalized_freq t p =
  let hottest = Array.fold_left Stdlib.max 0.0 t.part_access in
  if hottest <= 0.0 then 0.0 else t.part_access.(p) /. hottest

let partition_wait t p = Stdlib.max 0.0 (t.part_available.(p) -. now t)


let block_partition t p until =
  if until > t.part_available.(p) then t.part_available.(p) <- until

let block_partition_for t ~part ~duration = block_partition t part (now t +. duration)

(* ---- Overload controls (docs/OVERLOAD.md). Every helper collapses to
   a constant when its knob is off, so default runs stay bit-for-bit
   identical to a build without them. ---- *)

let ctl_prio t = if t.cfg.Config.control_priority then Server.High else Server.Normal

(* One retransmission = one token. Dry bucket: the caller gives up. *)
let budget_allows t =
  match t.retry_budget with
  | None -> true
  | Some b ->
      Overload.Token_bucket.try_take b ~now:(now t)
      ||
      (Metrics.record_budget_denial t.metrics;
       false)

let breaker_for t dst =
  if Array.length t.breakers = 0 then None else Some t.breakers.(dst)

(* Any breaker call may promote Open -> Half_open inside its clock
   tick; the delta on the breaker's own counter is the only way to
   observe that from outside, so every wrapper funnels through here. *)
let note_half_opens t b before =
  if Overload.Breaker.half_opens b > before then
    Metrics.record_breaker_half_open t.metrics

let breaker_allows t dst =
  match breaker_for t dst with
  | None -> true
  | Some b ->
      let ho = Overload.Breaker.half_opens b in
      let ok = Overload.Breaker.allow b ~now:(now t) in
      note_half_opens t b ho;
      ok
      ||
      (Metrics.record_breaker_reject t.metrics;
       false)

let breaker_success t dst =
  match breaker_for t dst with
  | None -> ()
  | Some b -> Overload.Breaker.record_success b

let breaker_failure t dst =
  match breaker_for t dst with
  | None -> ()
  | Some b ->
      let opens = Overload.Breaker.opens b in
      let ho = Overload.Breaker.half_opens b in
      Overload.Breaker.record_failure b ~now:(now t);
      note_half_opens t b ho;
      if Overload.Breaker.opens b > opens then Metrics.record_breaker_open t.metrics

let breaker_state t dst =
  match breaker_for t dst with
  | None -> Overload.Breaker.Closed
  | Some b ->
      let ho = Overload.Breaker.half_opens b in
      let st = Overload.Breaker.state b ~now:(now t) in
      note_half_opens t b ho;
      st

let worker_saturated t ~node =
  Server.busy t.workers.(node) >= Server.capacity t.workers.(node)

let total_sheds t =
  let sum = Array.fold_left (fun acc s -> acc + Server.sheds s) in
  sum (sum 0 t.workers) t.services

let try_begin_remaster t ~part ~node =
  if not t.node_alive.(node) then false
  else if t.remaster_inflight.(part) then false
  else if not (Placement.has_replica t.placement ~part ~node) then false
  else if Placement.has_primary t.placement ~part ~node then true
  else if
    now t -. t.part_last_remaster.(part) < t.cfg.Config.remaster_cooldown
  then false
  else (
    t.remaster_inflight.(part) <- true;
    Metrics.record_remaster_begin t.metrics;
    (* Burn the cooldown optimistically so concurrent attempts see it,
       but remember the previous stamp: a transfer that fails (target
       died mid-flight, or the lag ship was lost to a partition) must
       not consume the partition's cooldown. *)
    let started = now t in
    let prev = t.part_last_remaster.(part) in
    t.part_last_remaster.(part) <- started;
    t.remaster_target.(part) <- node;
    t.remaster_prev.(part) <- prev;
    t.remaster_started_at.(part) <- started;
    let gen = t.remaster_gen.(part) in
    let session = session_for t ~part ~dst:node in
    (* Lagging-log synchronisation: ship the records the secondary has
       not yet acknowledged (§III), not the whole partition. If the
       fault layer kills the transfer (the target is partitioned away
       mid-handover), the promotion must not happen: a primary whose
       log suffix never arrived would serve stale state. *)
    let src = Placement.primary t.placement part in
    let lag_bytes =
      Stdlib.max 256 (Replication.lag t.replication ~part * t.cfg.Config.record_bytes)
    in
    (* The WAN latency cliff (docs/GEO.md): a leader transfer whose lag
       ship crosses a region boundary cannot complete before the ship
       lands, so the handover blocks for at least the cross-region link
       delay. Intra-region (and every region-free) transfer keeps the
       calibrated LAN figure. *)
    let delay =
      if Network.cross_region t.network ~src ~dst:node then
        Stdlib.max t.cfg.Config.remaster_delay
          (Network.link_delay t.network ~src ~dst:node ~bytes:lag_bytes)
      else t.cfg.Config.remaster_delay
    in
    block_partition t part (now t +. delay);
    let transfer_lost = ref false in
    Network.send t.network ~src ~dst:node ~bytes:lag_bytes
      ~on_drop:(fun () -> transfer_lost := true)
      (fun () -> ());
    Engine.schedule t.engine ~delay (fun () ->
        (* [fail_node] cancelled this transfer (the target died and the
           cooldown was already rolled back): the timer is a no-op. *)
        if t.remaster_gen.(part) = gen then begin
          (* The placement may have changed while blocked only via this
             remaster (the inflight flag excludes races) — but the target
             may have died in the meantime. *)
          (if
             t.node_alive.(node)
             && Placement.has_replica t.placement ~part ~node
             && not !transfer_lost
           then
             let stale = session_stale t ~dst:node session in
             if stale && t.cfg.Config.session_tagging then begin
               (* The lag ship belongs to the target's previous
                  incarnation: refuse the handover rather than promote
                  a primary missing its log suffix. *)
               Metrics.record_stale_ack t.metrics;
               Metrics.beacon t.metrics "remaster-stale-refuse";
               if t.part_last_remaster.(part) = started then
                 t.part_last_remaster.(part) <- prev
             end
             else begin
               Metrics.beacon t.metrics "remaster-complete";
               Placement.remaster t.placement ~part ~node;
               t.primary_term.(part) <- t.primary_term.(part) + 1;
               (* The handover ships the lag, not the partition: an
                  incremental stream, so the durable watermark only
                  moves where durable state already exists. *)
               Replication.ack_stream t.replication ~part ~node
                 ~upto:(Replication.appends t.replication ~part)
                 ~stale ~reject:false;
               t.remaster_count <- t.remaster_count + 1;
               (* A partition parked as unavailable (lost quorum) now has
                  a live primary again: reopen it. *)
               if t.part_available.(part) = infinity then
                 t.part_available.(part) <- now t
             end
           else begin
             Metrics.beacon t.metrics "remaster-abandon";
             if t.part_last_remaster.(part) = started then
               t.part_last_remaster.(part) <- prev
           end);
          Metrics.record_remaster_end t.metrics;
          t.remaster_inflight.(part) <- false;
          t.remaster_target.(part) <- -1
        end);
    true)

let remaster_sync t ~part ~node =
  if not (Placement.has_primary t.placement ~part ~node) then
    ignore (try_begin_remaster t ~part ~node)

(* Geo helpers (docs/GEO.md): both read pure config, no state. The
   spread constraint is active only when a topology exists AND
   [min_regions] asks for one — every other configuration keeps the
   historical decisions bit for bit. *)
let region_of t n = Config.region_of_node t.cfg n

let geo_spread_on t =
  t.cfg.Config.regions >= 2 && t.cfg.Config.min_regions >= 2

(* Evict the coldest secondary: every secondary serves no reads in this
   model, so "coldest" is decided by hosting-node pressure — shed from
   the node hosting the most replicas, deterministically. *)
let evict_one_secondary t ~part ~keep =
  let secs = Placement.secondaries t.placement part in
  let candidates = List.filter (fun n -> n <> keep) secs in
  (* Under the spread constraint, never evict the last replica of a
     region when that would drop the partition below [min_regions] —
     unless every candidate would (then fall through unchanged). *)
  let candidates =
    if geo_spread_on t then (
      let prim = Placement.primary t.placement part in
      let spanned_without v =
        let rs =
          region_of t prim
          :: List.filter_map
               (fun s -> if s = v then None else Some (region_of t s))
               secs
        in
        List.length (List.sort_uniq compare rs)
      in
      let safe =
        List.filter
          (fun n -> spanned_without n >= t.cfg.Config.min_regions)
          candidates
      in
      if safe = [] then candidates else safe)
    else candidates
  in
  match candidates with
  | [] -> ()
  | _ ->
      let victim =
        List.fold_left
          (fun best n ->
            match best with
            | None -> Some n
            | Some b ->
                let load_n = Placement.replicas_on t.placement n
                and load_b = Placement.replicas_on t.placement b in
                if load_n > load_b || (load_n = load_b && n < b) then Some n else Some b)
          None candidates
      in
      Option.iter
        (fun n ->
          Placement.remove_secondary t.placement ~part ~node:n;
          Replication.forget_applied t.replication ~part ~node:n)
        victim

(* Region spread of [part] after dropping [without]'s copy and, when
   [plus] is given, adding one there instead. Callers gate on
   [geo_spread_on]. *)
let spanned_without_plus t ~part ~without ~plus =
  let prim = Placement.primary t.placement part in
  let rs =
    region_of t prim
    :: List.filter_map
         (fun s -> if s = without then None else Some (region_of t s))
         (Placement.secondaries t.placement part)
  in
  let rs = match plus with None -> rs | Some d -> region_of t d :: rs in
  List.length (List.sort_uniq compare rs)

(* Would dropping [node]'s copy of [part] (replaced by one on [dst]
   when given) keep the partition at [min_regions]? Vacuously yes
   without the spread constraint. *)
let removal_keeps_spread t ~part ~node ?dst () =
  (not (geo_spread_on t))
  || spanned_without_plus t ~part ~without:node ~plus:dst
     >= t.cfg.Config.min_regions

(* A copy source for [part]: the primary if it is live, else a live
   secondary. [None] when every replica sits on a dead node — the data
   is unreachable until one of them recovers. *)
let live_replica_source t part =
  let prim = Placement.primary t.placement part in
  if t.node_alive.(prim) then Some prim
  else List.find_opt (fun n -> t.node_alive.(n)) (Placement.secondaries t.placement part)

let add_replica t ~part ~node ~on_ready =
  if not t.node_alive.(node) then ()
  else if Placement.has_replica t.placement ~part ~node then on_ready ()
  else
    match live_replica_source t part with
    | None -> () (* no live copy to replicate from *)
    | Some src ->
        if
          Placement.replica_count t.placement part >= Placement.max_replicas t.placement
        then evict_one_secondary t ~part ~keep:node;
        Network.send t.network ~src ~dst:node ~bytes:t.cfg.Config.partition_bytes
          (fun () -> ());
        (* Snapshotting on the source and applying on the destination
           consume worker CPU, interfering with transaction processing. *)
        Server.submit t.workers.(src) ~prio:(ctl_prio t)
          ~work:t.cfg.Config.migration_cpu_cost (fun () -> ());
        Server.submit t.workers.(node) ~prio:(ctl_prio t)
          ~work:t.cfg.Config.migration_cpu_cost (fun () -> ());
        t.migration_count <- t.migration_count + 1;
        let session = session_for t ~part ~dst:node in
        Engine.schedule t.engine ~delay:t.cfg.Config.replica_add_duration (fun () ->
            if t.node_alive.(node) then (
              let stale = session_stale t ~dst:node session in
              if stale && t.cfg.Config.session_tagging then
                (* The snapshot stream was opened against the node's
                   previous incarnation — whatever it shipped landed on
                   storage that has since restarted empty. Tagged
                   sessions catch this and drop the install; the
                   planner will try again with a fresh stream. *)
                Metrics.record_stale_ack t.metrics
              else (
                (if not (Placement.has_replica t.placement ~part ~node) then begin
                   (* Re-check the cap at completion: another install for
                      this partition may have filled the budget while the
                      copy was in flight (the rebalancer and the planner
                      can race on the same partition). *)
                   if
                     Placement.replica_count t.placement part
                     >= Placement.max_replicas t.placement
                   then evict_one_secondary t ~part ~keep:node;
                   Placement.add_secondary t.placement ~part ~node;
                   (if stale then
                      (* Untagged stale install: the placement and the
                         believed watermark now claim a caught-up
                         replica whose storage never durably received
                         the snapshot — the divergence the crash-rejoin
                         audit exists to expose. *)
                      Replication.ack_stream t.replication ~part ~node
                        ~upto:(Replication.appends t.replication ~part)
                        ~stale:true ~reject:false
                    else
                      (* A fresh install carries a full snapshot: the
                         replica starts caught up with the log. *)
                      Replication.set_applied t.replication ~part ~node
                        ~upto:(Replication.appends t.replication ~part));
                   t.replica_add_count <- t.replica_add_count + 1
                 end);
                on_ready ())))

let remove_replica t ~part ~node =
  if Placement.has_secondary t.placement ~part ~node then (
    Placement.remove_secondary t.placement ~part ~node;
    Replication.forget_applied t.replication ~part ~node)

(* Routing liveness: a node must be both up and a current member —
   standby slots and decommissioned nodes are invisible to the router
   and the protocols even though their arrays exist. *)
let alive t n = t.member.(n) && t.node_alive.(n)

let alive_nodes t =
  List.filter
    (fun n -> t.member.(n) && t.node_alive.(n))
    (List.init (Placement.nodes t.placement) Fun.id)

let work_scale t node = Fault.slow_factor t.fault ~now:(now t) node

let availability t =
  let members = member_count t in
  let live = List.length (alive_nodes t) in
  let parts = Placement.partitions t.placement in
  let serveable = ref 0 in
  for p = 0 to parts - 1 do
    let prim = Placement.primary t.placement p in
    if t.node_alive.(prim) && t.part_available.(p) <= now t then incr serveable
  done;
  if members = 0 then 0.0
  else
    float_of_int live /. float_of_int members
    *. (float_of_int !serveable /. float_of_int parts)

(* ---- Elastic membership: join / decommission and the bounded
   background rebalancer (docs/MEMBERSHIP.md). The rebalancer is a
   self-terminating loop: each tick performs at most one migration step
   (so [Config.rebalance_rate] bounds the step rate), keeps ticking
   while it is making progress or moves are in flight, and otherwise
   stops — every membership or liveness event re-kicks it, so the event
   queue always drains and [Engine.run_all] terminates. ---- *)

let plan_target_ok t n = t.member.(n) && t.node_alive.(n) && not t.draining.(n)

let eligible_targets t =
  List.filter (fun n -> plan_target_ok t n)
    (List.init (Placement.nodes t.placement) Fun.id)

(* Least-loaded eligible node not yet holding [part]; first-lowest id on
   ties, so rebalancing stays deterministic. Under the region-spread
   constraint, targets in a region with no replica of [part] are
   preferred — installs then restore (or widen) the spread — with the
   unconstrained choice as fallback. *)
let best_install_target t ~part =
  let least_loaded pred =
    List.fold_left
      (fun best n ->
        if Placement.has_replica t.placement ~part ~node:n || not (pred n) then
          best
        else
          match best with
          | None -> Some n
          | Some b ->
              if
                Placement.replicas_on t.placement n
                < Placement.replicas_on t.placement b
              then Some n
              else best)
      None (eligible_targets t)
  in
  if geo_spread_on t then (
    let prim = Placement.primary t.placement part in
    (* A draining node's copies don't count as coverage: they are on
       their way out, and the install being placed here may be the one
       replacing them. *)
    let covered r =
      (region_of t prim = r && not t.draining.(prim))
      || List.exists
           (fun s -> (not t.draining.(s)) && region_of t s = r)
           (Placement.secondaries t.placement part)
    in
    match least_loaded (fun n -> not (covered (region_of t n))) with
    | Some n -> Some n
    | None -> least_loaded (fun _ -> true))
  else least_loaded (fun _ -> true)

let live_replica_holders t part =
  let prim = Placement.primary t.placement part in
  let secs =
    List.filter (fun n -> t.node_alive.(n)) (Placement.secondaries t.placement part)
  in
  if t.node_alive.(prim) then prim :: secs else secs

let rebalance_period t = 1e6 /. t.cfg.Config.rebalance_rate

let rec rebalance_tick t =
  let stepped =
    let slots = Placement.nodes t.placement in
    let rec drain n =
      if n >= slots then false
      else if t.draining.(n) && drain_node_step t n then true
      else drain (n + 1)
    in
    drain 0 || repair_step t || spread_step t || balance_step t
  in
  if stepped || Hashtbl.length t.move_inflight > 0 then
    Engine.schedule t.engine ~delay:(rebalance_period t) (fun () -> rebalance_tick t)
  else begin
    t.rebalance_running <- false;
    t.rebalance_done <- now t
  end

and kick_rebalancer t =
  if t.cfg.Config.rebalance_rate > 0.0 && not t.rebalance_running then begin
    t.rebalance_running <- true;
    Engine.schedule t.engine ~delay:(rebalance_period t) (fun () -> rebalance_tick t)
  end

(* Start one (part, dst) replica install, guarded against duplicates;
   [after] runs once the replica is in place. Returns whether a move is
   now pending for this partition. One install per partition at a time:
   the drain and repair paths pick their targets independently, so
   without this serialisation they can install the same partition onto
   two different nodes and leave it over-replicated at quiescence —
   nothing ever trims an excess copy. A caller finding another move
   pending just waits for it and re-evaluates on a later tick. *)
and start_move t ~part ~dst ~after =
  if Hashtbl.fold (fun (p, _) () pending -> pending || p = part) t.move_inflight false
  then true
  else if live_replica_holders t part = [] then false (* no live copy to pull *)
  else begin
    Hashtbl.add t.move_inflight (part, dst) ();
    t.rebalance_migrations <- t.rebalance_migrations + 1;
    add_replica t ~part ~node:dst ~on_ready:(fun () ->
        Hashtbl.remove t.move_inflight (part, dst);
        (* A parked partition (primary dead, no surviving copy at crash
           time) just received a fresh full copy: promote it now rather
           than wait for the corpse to revive. The dead old primary is
           demoted in place by the remaster — purge that phantom copy so
           the node cannot resurrect it as a live replica on recovery
           (and so the partition is not over-replicated when it does). *)
        (if t.part_available.(part) = infinity then begin
           Metrics.beacon t.metrics "parked-promote";
           let old = Placement.primary t.placement part in
           Placement.remaster t.placement ~part ~node:dst;
           t.primary_term.(part) <- t.primary_term.(part) + 1;
           (if
              (not t.node_alive.(old))
              && Placement.has_secondary t.placement ~part ~node:old
            then begin
              Placement.remove_secondary t.placement ~part ~node:old;
              Replication.forget_applied t.replication ~part ~node:old
            end);
           t.part_available.(part) <- now t +. t.cfg.Config.election_delay
         end);
        after ();
        kick_rebalancer t);
    true
  end

(* One step for a draining node, in order: move its primaries away,
   then its remaining secondaries, then finalise the removal. *)
and drain_node_step t node =
  match Placement.parts_primary_on t.placement node with
  | part :: _ -> (
      match
        List.filter (fun n -> plan_target_ok t n) (Placement.secondaries t.placement part)
      with
      | target :: _ ->
          (* A live secondary exists: hand leadership over. A false
             return here means cooldown or another in-flight remaster —
             both resolve in bounded time, so keep ticking. *)
          ignore (try_begin_remaster t ~part ~node:target);
          true
      | [] -> (
          match best_install_target t ~part with
          | Some dst ->
              start_move t ~part ~dst ~after:(fun () -> remaster_sync t ~part ~node:dst)
          | None -> false))
  | [] -> (
      let parts = Placement.partitions t.placement in
      let rec first_secondary p =
        if p >= parts then None
        else if Placement.has_secondary t.placement ~part:p ~node then Some p
        else first_secondary (p + 1)
      in
      match first_secondary 0 with
      | Some part ->
          let others =
            List.filter (fun n -> n <> node) (live_replica_holders t part)
          in
          if
            List.length others >= t.cfg.Config.replicas
            && removal_keeps_spread t ~part ~node ()
          then begin
            (* The factor holds without this copy: drop it now. *)
            remove_replica t ~part ~node;
            true
          end
          else (
            match best_install_target t ~part with
            | Some dst ->
                start_move t ~part ~dst ~after:(fun () -> remove_replica t ~part ~node)
            | None -> false)
      | None ->
          if Placement.replicas_on t.placement node = 0 then begin
            (* Drained: leave the membership for good. *)
            t.draining.(node) <- false;
            t.member.(node) <- false;
            t.node_alive.(node) <- false;
            Fault.mark_down t.fault node;
            Server.kill t.workers.(node);
            Server.kill t.services.(node);
            t.membership_version <- t.membership_version + 1;
            t.decommission_count <- t.decommission_count + 1;
            t.rebalance_done <- now t;
            Log.info (fun m -> m "node %d decommissioned at t=%.0fus" node (now t));
            Option.iter
              (fun tr -> Trace.instant ~node ~ts:(now t) tr "decommissioned")
              t.tracer;
            true
          end
          else false)

(* Re-establish the replication factor after a failure consumed copies
   (only partitions with a live source can be repaired). *)
and repair_step t =
  let parts = Placement.partitions t.placement in
  let rec go p =
    if p >= parts then false
    else
      let holders = live_replica_holders t p in
      if holders <> [] && List.length holders < t.cfg.Config.replicas then
        match best_install_target t ~part:p with
        | Some dst when not (Hashtbl.mem t.move_inflight (p, dst)) ->
            (* The factor can be restored underneath the in-flight copy:
               a dead holder counted out at initiation may revive (its
               recovery resync brings it current) before the install
               completes, and the completion would leave the partition
               over-replicated for good — nothing else ever trims. Drop
               our own copy again if it turned out redundant. *)
            start_move t ~part:p ~dst ~after:(fun () ->
                if List.length (live_replica_holders t p) > t.cfg.Config.replicas
                then
                  if removal_keeps_spread t ~part:p ~node:dst () then
                    remove_replica t ~part:p ~node:dst
                  else evict_one_secondary t ~part:p ~keep:dst)
        | _ -> go (p + 1)
      else go (p + 1)
  in
  go 0

(* Restore [min_regions] coverage that a failover remaster or a
   recovery purge consumed (docs/GEO.md): install a copy in an
   uncovered region, then trim the redundant copy from an over-covered
   one. Every other rebalance move is spread-preserving, so each repair
   here is final and the scan terminates; a partition whose uncovered
   regions have no eligible member is skipped — the next membership
   event re-kicks the rebalancer and retries. *)
and spread_step t =
  if (not (geo_spread_on t)) || Hashtbl.length t.move_inflight > 0 then false
  else
    let min_r = t.cfg.Config.min_regions in
    let parts = Placement.partitions t.placement in
    let rec go p =
      if p >= parts then false
      else if
        Placement.regions_spanned t.placement ~region_of:(region_of t) ~part:p
        >= min_r
      then go (p + 1)
      else
        let covered r =
          let prim = Placement.primary t.placement p in
          region_of t prim = r
          || List.exists
               (fun s -> region_of t s = r)
               (Placement.secondaries t.placement p)
        in
        let target =
          List.fold_left
            (fun best n ->
              if
                Placement.has_replica t.placement ~part:p ~node:n
                || covered (region_of t n)
              then best
              else
                match best with
                | None -> Some n
                | Some b ->
                    if
                      Placement.replicas_on t.placement n
                      < Placement.replicas_on t.placement b
                    then Some n
                    else best)
            None (eligible_targets t)
        in
        match target with
        | Some dst ->
            if
              start_move t ~part:p ~dst ~after:(fun () ->
                  if
                    List.length (live_replica_holders t p)
                    > t.cfg.Config.replicas
                  then evict_one_secondary t ~part:p ~keep:dst)
            then true
            else go (p + 1)
        | None -> go (p + 1)
    in
    go 0

(* Even out replica counts across eligible nodes — the catch-up path
   that populates a freshly joined node, one bounded step at a time.
   Runs only when no move is in flight: replica loads are read from the
   placement, which an in-flight install has not updated yet, so
   overlapping balance moves all target the same "underloaded" node and
   overshoot — then swing back, forever. One move at a time converges. *)
and balance_step t =
  if Hashtbl.length t.move_inflight > 0 then false
  else
  match eligible_targets t with
  | [] | [ _ ] -> false
  | elig ->
      let load n = Placement.replicas_on t.placement n in
      let hi =
        List.fold_left (fun a n -> if load n > load a then n else a) (List.hd elig) elig
      in
      let lo =
        List.fold_left (fun a n -> if load n < load a then n else a) (List.hd elig) elig
      in
      if load hi <= load lo + 1 then false
      else
        let parts = Placement.partitions t.placement in
        let rec go p =
          if p >= parts then false
          else if
            Placement.has_secondary t.placement ~part:p ~node:hi
            && (not (Placement.has_replica t.placement ~part:p ~node:lo))
            && (not (Hashtbl.mem t.move_inflight (p, lo)))
            && removal_keeps_spread t ~part:p ~node:hi ~dst:lo ()
          then
            start_move t ~part:p ~dst:lo ~after:(fun () ->
                remove_replica t ~part:p ~node:hi)
          else go (p + 1)
        in
        go 0

let join_node t node =
  if node < 0 || node >= Placement.nodes t.placement || t.member.(node) then false
  else begin
    Log.info (fun m -> m "node %d joined at t=%.0fus" node (now t));
    Metrics.beacon t.metrics "node-join";
    Option.iter (fun tr -> Trace.instant ~node ~ts:(now t) tr "join") t.tracer;
    t.member.(node) <- true;
    t.draining.(node) <- false;
    (* A fresh incarnation: anything still in flight from a previous
       life of this slot is stale from here on. *)
    t.node_epoch.(node) <- t.node_epoch.(node) + 1;
    t.node_alive.(node) <- true;
    Fault.mark_up t.fault node;
    Server.revive t.workers.(node);
    Server.revive t.services.(node);
    t.membership_version <- t.membership_version + 1;
    t.join_count <- t.join_count + 1;
    t.rebalance_started <- now t;
    kick_rebalancer t;
    true
  end

let decommission_node t node =
  let others =
    List.filter
      (fun n -> n <> node && plan_target_ok t n)
      (List.init (Placement.nodes t.placement) Fun.id)
  in
  (* Under the spread constraint, the last member of a region cannot
     leave: [min_regions] would become unsatisfiable for every
     partition (docs/GEO.md). *)
  let region_has_other_member =
    (not (geo_spread_on t))
    || List.exists
         (fun n ->
           n <> node
           && t.member.(n)
           && (not t.draining.(n))
           && region_of t n = region_of t node)
         (List.init (Placement.nodes t.placement) Fun.id)
  in
  if
    (not t.member.(node))
    || t.draining.(node)
    || List.length others < t.cfg.Config.replicas
    || not region_has_other_member
  then false
  else begin
    Log.info (fun m -> m "node %d draining at t=%.0fus" node (now t));
    Metrics.beacon t.metrics "node-decommission";
    Option.iter (fun tr -> Trace.instant ~node ~ts:(now t) tr "decommission") t.tracer;
    t.draining.(node) <- true;
    t.membership_version <- t.membership_version + 1;
    t.rebalance_started <- now t;
    kick_rebalancer t;
    true
  end

let fail_node t node =
  if t.node_alive.(node) then (
    Log.warn (fun m -> m "node %d failed at t=%.0fus" node (now t));
    Metrics.beacon t.metrics "node-crash";
    Option.iter (fun tr -> Trace.instant ~node ~ts:(now t) tr "crash") t.tracer;
    t.node_alive.(node) <- false;
    Fault.mark_down t.fault node;
    (* Fail-fast the admission queues: work parked behind the dead
       node's workers/messengers is shed now (its [on_shed] fires)
       instead of executing after a grant from a corpse. *)
    Server.kill t.workers.(node);
    Server.kill t.services.(node);
    let parts = Placement.partitions t.placement in
    (* Cancel in-flight remasters whose transfer target just died:
       clear the inflight flag and roll back the optimistically burned
       cooldown now, instead of leaving both to a completion timer that
       can only discover the death [remaster_delay] later. The
       generation bump turns that timer into a no-op on every exit
       path. *)
    for part = 0 to parts - 1 do
      if t.remaster_inflight.(part) && t.remaster_target.(part) = node then begin
        Metrics.beacon t.metrics "remaster-cancel";
        Metrics.record_remaster_end t.metrics;
        t.remaster_inflight.(part) <- false;
        if t.part_last_remaster.(part) = t.remaster_started_at.(part) then
          t.part_last_remaster.(part) <- t.remaster_prev.(part);
        t.remaster_gen.(part) <- t.remaster_gen.(part) + 1;
        t.remaster_target.(part) <- -1
      end
    done;
    (* Rebalance moves headed for the dead node will never fire their
       [on_ready]: drop their guards so the slot can be retried. *)
    let dead_moves =
      Hashtbl.fold
        (fun (p, d) () acc -> if d = node then (p, d) :: acc else acc)
        t.move_inflight []
    in
    List.iter (Hashtbl.remove t.move_inflight) dead_moves;
    if t.member.(node) then t.membership_version <- t.membership_version + 1;
    for part = 0 to parts - 1 do
      if Placement.has_secondary t.placement ~part ~node then (
        Placement.remove_secondary t.placement ~part ~node;
        Replication.forget_applied t.replication ~part ~node;
        (* This may have been the last live copy of a partition whose
           primary died earlier (cascading failure): park it until a
           replica holder recovers. *)
        let prim = Placement.primary t.placement part in
        if
          (not t.node_alive.(prim))
          && not
               (List.exists
                  (fun n -> t.node_alive.(n))
                  (Placement.secondaries t.placement part))
        then (
          Metrics.beacon t.metrics "partition-parked";
          t.part_available.(part) <- infinity))
    done;
    for part = 0 to parts - 1 do
      if Placement.has_primary t.placement ~part ~node then (
        match
          List.filter (fun n -> t.node_alive.(n)) (Placement.secondaries t.placement part)
        with
        | [] ->
            (* No surviving replica: unavailable until the node
               recovers with its (stale but only) copy. *)
            Metrics.beacon t.metrics "partition-parked";
            t.part_available.(part) <- infinity
        | _ :: _ ->
            block_partition t part (now t +. t.cfg.Config.election_delay);
            Engine.schedule t.engine ~delay:t.cfg.Config.election_delay (fun () ->
                let promoted =
                  match
                    List.filter
                      (fun n -> t.node_alive.(n))
                      (Placement.secondaries t.placement part)
                  with
                  | winner :: _ when Placement.primary t.placement part = node ->
                      Metrics.beacon t.metrics "election-promote";
                      Placement.remaster t.placement ~part ~node:winner;
                      (* Election includes catching the winner up from the
                         surviving quorum's logs. *)
                      Replication.set_applied t.replication ~part ~node:winner
                        ~upto:(Replication.appends t.replication ~part);
                      Option.iter
                        (fun tr -> Trace.instant ~node:winner ~ts:(now t) tr "election")
                        t.tracer;
                      true
                  | _ -> false
                in
                (* Whether the election above promoted a winner or a
                   planner moved mastership on its own before the timer
                   fired (batch-mode claims apply [Placement.remaster]
                   directly), the dead primary has been demoted to a
                   secondary: purge that phantom copy so it cannot
                   rejoin as a stale replica on recovery.
                   [reintroduce_phantom_secondary] re-plants the bug
                   this purge fixed: only the election's own promotion
                   cleans up after itself, so a planner remaster racing
                   the timer leaves the phantom in place. *)
                if
                  (promoted || not t.cfg.Config.reintroduce_phantom_secondary)
                  && (not t.node_alive.(node))
                  && Placement.has_secondary t.placement ~part ~node
                then (
                  Metrics.beacon t.metrics "phantom-purge";
                  Placement.remove_secondary t.placement ~part ~node;
                  Replication.forget_applied t.replication ~part ~node)))
    done;
    (* A failure consumed replicas: the elastic rebalancer (when
       enabled) restores the replication factor in the background. *)
    kick_rebalancer t)

let recover_node t node =
  if t.member.(node) && not t.node_alive.(node) then (
    Log.info (fun m -> m "node %d recovered at t=%.0fus" node (now t));
    Metrics.beacon t.metrics "node-recover";
    Option.iter (fun tr -> Trace.instant ~node ~ts:(now t) tr "recover") t.tracer;
    (* The rejoining node is a new incarnation of the slot: bump its
       epoch first, so every stream opened before the crash is
       recognisably stale from this instant (docs/MEMBERSHIP.md). *)
    t.node_epoch.(node) <- t.node_epoch.(node) + 1;
    t.node_alive.(node) <- true;
    Fault.mark_up t.fault node;
    Server.revive t.workers.(node);
    Server.revive t.services.(node);
    let parts = Placement.partitions t.placement in
    (* Purge stale secondaries: [fail_node] dropped every secondary the
       node held, so any secondary present now was left by a layer that
       remastered the partition away through [Placement] directly while
       the node was down, demoting its dead primary in place. The copy
       is stale — it missed every append since the crash — and must not
       rejoin as a live replica. *)
    if not t.cfg.Config.reintroduce_phantom_secondary then
      for part = 0 to parts - 1 do
        if Placement.has_secondary t.placement ~part ~node then begin
          Metrics.beacon t.metrics "rejoin-purge";
          Placement.remove_secondary t.placement ~part ~node;
          Replication.forget_applied t.replication ~part ~node;
          Metrics.record_replica_purge t.metrics
        end
      done;
    (* The log-shipping peer for resynchronisation: any live node can
       serve the tail of the durable log (group-commit makes every
       commit reach the log before acknowledgement). *)
    let peer =
      List.find_opt (fun n -> n <> node) (alive_nodes t)
    in
    for part = 0 to parts - 1 do
      if Placement.has_primary t.placement ~part ~node && t.part_available.(part) = infinity
      then begin
        Metrics.beacon t.metrics "orphan-resync";
        (* The orphaned primary rejoins with a stale copy: resync the
           unacknowledged log suffix through the replication model —
           the same lagging-log rule [try_begin_remaster] applies —
           and charge it to the network before serving again. *)
        let lag_bytes =
          Stdlib.max 256
            (Replication.lag t.replication ~part * t.cfg.Config.record_bytes)
        in
        (match peer with
        | Some src -> Network.send t.network ~src ~dst:node ~bytes:lag_bytes (fun () -> ())
        | None -> Network.charge t.network ~bytes:lag_bytes);
        (* The resync brings the rejoining primary's log current. *)
        Replication.set_applied t.replication ~part ~node
          ~upto:(Replication.appends t.replication ~part);
        t.part_available.(part) <-
          now t +. t.cfg.Config.election_delay
          +. Network.oneway_delay t.network ~bytes:lag_bytes
      end
    done;
    kick_rebalancer t)

let node_load t n = Server.busy_time t.workers.(n)
let reset_load_counters t = Array.iter Server.reset_counters t.workers

let submit_local t ?(on_fail = fun () -> ()) ?prio ~node ~work k =
  if t.node_alive.(node) then
    Server.submit t.workers.(node) ?prio ~on_shed:on_fail
      ~work:(work *. work_scale t node) k
  else on_fail ()

let rpc t ?(on_fail = fun () -> ()) ?ctx ?deadline ?prio ~src ~dst ~bytes ~work k =
  if src = dst then
    if t.node_alive.(dst) then
      Server.submit t.services.(dst) ?prio ~on_shed:on_fail
        ~work:(work *. work_scale t dst) k
    else on_fail ()
  else if not (breaker_allows t dst) then
    (* Open breaker: shed the call immediately — no wire traffic, no
       worker-hold through a doomed timeout. *)
    on_fail ()
  else
    let retries = t.cfg.Config.rpc_retries in
    let past_deadline at =
      match deadline with Some d -> at >= d | None -> false
    in
    let rec go attempt =
      let t0 = now t in
      (* One span per attempt; retransmissions show up as sibling spans
         with a "retry" annotation on the one that timed out. The
         [None] path builds no strings and allocates nothing. *)
      let actx =
        match ctx with
        | None -> None
        | Some _ ->
            Trace.child ~node:dst
              ~name:(Printf.sprintf "rpc %d->%d" src dst)
              ~ts:t0 ctx
      in
      (* The simulator is omniscient: a timeout only ever matters when
         the request or reply is actually lost (or shed by the remote
         admission queue), so the timer is created lazily at the moment
         of loss (healthy runs schedule no extra events — determinism
         is preserved bit-for-bit). *)
      let fail_after_timeout () =
        let remaining = Stdlib.max 0.0 (t0 +. t.cfg.Config.rpc_timeout -. now t) in
        Engine.schedule t.engine ~delay:remaining (fun () ->
            let give_up note =
              Trace.note ~ts:(now t) note actx;
              Trace.finish ~ts:(now t) actx;
              breaker_failure t dst;
              on_fail ()
            in
            if attempt >= retries then (
              Metrics.record_timeout t.metrics;
              give_up "timeout")
            else if past_deadline (now t) then (
              (* Deadline propagation: a transaction already past its
                 deadline sheds instead of retrying. *)
              Metrics.record_timeout t.metrics;
              give_up "deadline")
            else if not (budget_allows t) then give_up "budget-denied"
            else (
              Metrics.record_retry t.metrics;
              Trace.note ~ts:(now t) "retry" actx;
              Trace.finish ~ts:(now t) actx;
              let backoff =
                t.cfg.Config.rpc_backoff *. float_of_int (1 lsl attempt)
              in
              Engine.schedule t.engine ~delay:backoff (fun () -> go (attempt + 1))))
      in
      Network.send t.network ~src ~dst ~bytes ~on_drop:fail_after_timeout
        ?ctx:actx (fun () ->
          let sctx =
            match actx with
            | None -> None
            | Some _ -> Trace.child ~name:"service" ~ts:(now t) actx
          in
          Server.submit t.services.(dst) ?prio
            ~on_shed:(fun () ->
              (* The overloaded (or dead) receiver shed the request:
                 the sender can only find out by timing out. *)
              Trace.note ~ts:(now t) "shed" sctx;
              Trace.finish ~ts:(now t) sctx;
              fail_after_timeout ())
            ~work:(work *. work_scale t dst)
            (fun () ->
              Trace.finish ~ts:(now t) sctx;
              Network.send t.network ~src:dst ~dst:src ~bytes
                ~on_drop:fail_after_timeout ?ctx:actx (fun () ->
                  Trace.finish ~ts:(now t) actx;
                  breaker_success t dst;
                  k ())))
    in
    go 0

let acquire_worker t ?on_fail ~node k =
  Server.acquire t.workers.(node) ?on_shed:on_fail k
let release_worker t ~node lease = Server.release t.workers.(node) lease

(* Anti-entropy repair: a log ship that exhausted its retries (long
   partition, dead link) leaves the replica's applied watermark behind
   the authoritative log. The loop re-ships the missing suffix from a
   live replica until the target catches up, loses the replica, or
   dies; each failed round backs off exponentially from two RPC
   timeouts up to [resync_backoff_cap], bounded by [tries] so a
   permanently unreachable replica cannot keep the event queue alive
   forever. The cap matters: at a fixed two-timeout interval the whole
   budget burns in under a second, so any partition outliving it left
   the replica permanently behind — a real divergence the fault-schedule
   fuzzer found. With the capped doubling the same budget spans ~30
   simulated seconds, past any plan's heal time. It is only ever
   started after a ship actually failed, so healthy runs schedule
   nothing and stay bit-for-bit identical. *)
let resync_backoff_cap = 500_000.0

let rec resync_replica t ~part ~node ~tries ~backoff =
  let stop () = Hashtbl.remove t.resync_inflight (part, node) in
  let goal = Replication.appends t.replication ~part in
  if
    (not t.node_alive.(node))
    || (not (Placement.has_replica t.placement ~part ~node))
    || Replication.applied t.replication ~part ~node >= goal
    || tries <= 0
  then stop ()
  else
    let retry () =
      Engine.schedule t.engine ~delay:backoff (fun () ->
          resync_replica t ~part ~node ~tries:(tries - 1)
            ~backoff:(Float.min (2.0 *. backoff) resync_backoff_cap))
    in
    let live_source =
      List.find_opt
        (fun n -> n <> node && t.node_alive.(n))
        (Placement.primary t.placement part :: Placement.secondaries t.placement part)
    in
    match live_source with
    | None -> retry () (* every other replica is down: wait for a recovery *)
    | Some src ->
        let cur = Replication.applied t.replication ~part ~node in
        let bytes = Stdlib.max 256 ((goal - cur) * t.cfg.Config.record_bytes) in
        let session = session_for t ~part ~dst:node in
        Network.send t.network ~src ~dst:node ~bytes ~on_drop:retry (fun () ->
            let stale = session_stale t ~dst:node session in
            if stale && t.cfg.Config.session_tagging then begin
              (* The node rejoined while the suffix was in flight: the
                 shipped range was computed against its previous
                 incarnation. Reject and restart with a fresh session. *)
              Metrics.record_stale_ack t.metrics;
              Metrics.beacon t.metrics "resync-stale";
              resync_replica t ~part ~node ~tries:(tries - 1) ~backoff
            end
            else begin
              (* The suffix extends state from [cur]: incremental, so
                 the durable watermark moves only where durable state
                 exists — and not at all on an untagged stale ship. *)
              Replication.ack_stream t.replication ~part ~node ~upto:goal ~stale
                ~reject:false;
              Metrics.beacon t.metrics "resync-apply";
              t.resync_count <- t.resync_count + 1;
              (* More records may have landed while the suffix was in
                 flight: chase the tail before declaring victory. A
                 successful round resets the backoff: the link works. *)
              resync_replica t ~part ~node ~tries
                ~backoff:(2.0 *. t.cfg.Config.rpc_timeout)
            end)

let start_resync t ~part ~node =
  if not (Hashtbl.mem t.resync_inflight (part, node)) then (
    Hashtbl.add t.resync_inflight (part, node) ();
    Engine.schedule t.engine ~delay:(2.0 *. t.cfg.Config.rpc_timeout) (fun () ->
        resync_replica t ~part ~node ~tries:64
          ~backoff:(2.0 *. t.cfg.Config.rpc_timeout)))

let replicate_commit t ?ctx parts =
  List.iter
    (fun p ->
      Replication.append t.replication ~part:p;
      let len = Replication.appends t.replication ~part:p in
      let src = Placement.primary t.placement p in
      (* The primary's own copy applies the record at commit time — an
         incremental extension of its local log, so it advances the
         durable watermark only where durable state exists. (A primary
         promoted from a stale-session install has none: its commits
         stamp bookkeeping over state its storage never received, which
         is exactly what the divergence audit must still see.) *)
      Replication.ack_stream t.replication ~part:p ~node:src ~upto:len
        ~stale:false ~reject:false;
      List.iter
        (fun dst ->
          (* The asynchronous log ship gets its own span (phase
             "replication"): it usually outlives the transaction, so it
             shows up in the exported trace as the async tail but is
             never blamed on the critical path. *)
          let rctx =
            match ctx with
            | None -> None
            | Some _ ->
                Trace.child ~node:dst ~part:p ~phase:"replication"
                  ~name:"log-ship" ~ts:(now t) ctx
          in
          (* Log shipping retries on loss like an RPC, but needs no
             reply: the group-commit stream is idempotent, so the only
             cost of a loss is the retransmission. Retransmissions draw
             on the same retry budget as RPCs, and a destination whose
             breaker is open is handed straight to anti-entropy — the
             resync loop ships the whole missing suffix later, which is
             cheaper than feeding a black hole one record at a time. *)
          let give_up note =
            Metrics.record_timeout t.metrics;
            Trace.note ~ts:(now t) note rctx;
            Trace.finish ~ts:(now t) rctx;
            breaker_failure t dst;
            start_resync t ~part:p ~node:dst
          in
          (* The stream's session is fixed when the ship starts;
             retransmissions reuse it, exactly like a real replication
             session that outlives a destination restart. *)
          let session = session_for t ~part:p ~dst in
          let rec ship attempt =
            Network.send t.network ~src ~dst ~bytes:t.cfg.Config.record_bytes
              ~on_drop:(fun () ->
                if attempt >= t.cfg.Config.rpc_retries then give_up "timeout"
                else if not (budget_allows t) then give_up "budget-denied"
                else (
                  Metrics.record_retry t.metrics;
                  Trace.note ~ts:(now t) "retry" rctx;
                  let backoff =
                    t.cfg.Config.rpc_backoff *. float_of_int (1 lsl attempt)
                  in
                  Engine.schedule t.engine ~delay:backoff (fun () ->
                      ship (attempt + 1))))
              (fun () ->
                let stale = session_stale t ~dst session in
                if stale && t.cfg.Config.session_tagging then begin
                  (* Delivered to a node that left and rejoined while
                     the record was in flight: the ack would stamp a
                     watermark the node's storage no longer backs. *)
                  Metrics.record_stale_ack t.metrics;
                  Trace.note ~ts:(now t) "stale-session" rctx;
                  Trace.finish ~ts:(now t) rctx
                end
                else begin
                  (* The stream is cumulative: delivering the record at
                     index [len] implies everything before it arrived
                     (or was re-shipped) too — for the believed
                     watermark always, for the durable one only where
                     durable state exists and the session is fresh. *)
                  Replication.ack_stream t.replication ~part:p ~node:dst ~upto:len
                    ~stale ~reject:false;
                  Trace.finish ~ts:(now t) rctx;
                  breaker_success t dst
                end)
          in
          if breaker_allows t dst then ship 0
          else (
            Trace.note ~ts:(now t) "breaker-open" rctx;
            Trace.finish ~ts:(now t) rctx;
            start_resync t ~part:p ~node:dst))
        (Placement.secondaries t.placement p))
    parts

(* Applied-watermark bookkeeping for layers that move replicas through
   [Placement] directly (the Leap migrate path, batch-mode remasters):
   a copy installed by such a transfer is current as of the transfer. *)
let note_replica_synced t ~part ~node =
  if Placement.has_replica t.placement ~part ~node then
    Replication.set_applied t.replication ~part ~node
      ~upto:(Replication.appends t.replication ~part)

let note_replica_dropped t ~part ~node =
  Replication.forget_applied t.replication ~part ~node

(* Ground-truth liveness introspection (docs/FUZZING.md): after a run
   drains to quiescence, every leader transfer must have resolved and
   every partition must have a live primary again. The liveness auditor
   reads these directly rather than trusting the metrics gauge. *)
let remasters_inflight t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.remaster_inflight

let parked_partitions t =
  let parts = Placement.partitions t.placement in
  let rec go p acc =
    if p < 0 then acc
    else go (p - 1) (if t.part_available.(p) = infinity then p :: acc else acc)
  in
  go (parts - 1) []

let create ?(seed = 1) ?tracer ?history cfg =
  let engine = Engine.create () in
  let metrics = Metrics.create ~seed engine in
  (* Per-node structures span the full slot capacity; standby slots
     start dead, non-member and invisible until [join_node]. With no
     standby slots ([Config.default]) this equals [cfg.nodes]. *)
  let slots = Config.total_slots cfg in
  let fault = Fault.create ~seed ~nodes:slots cfg.Config.fault_plan in
  (* A region topology exists only when asked for; [None] (the default)
     leaves the network on the historical single-latency-class path,
     bit for bit (docs/GEO.md). *)
  let topology =
    if cfg.Config.regions >= 2 then
      Some
        {
          Network.regions = cfg.Config.regions;
          region_of = Array.init slots (Config.region_of_node cfg);
          wan_latency = cfg.Config.wan_latency;
          wan_per_byte = cfg.Config.wan_per_byte;
        }
    else None
  in
  let network =
    Network.create ~latency:cfg.Config.net_latency ~per_byte:cfg.Config.net_per_byte
      ?topology ~fault ~metrics engine
  in
  let parts = Config.total_partitions cfg in
  let placement =
    Placement.create ~standby:cfg.Config.standby_nodes ~nodes:cfg.Config.nodes
      ~partitions:parts ~replicas:cfg.Config.replicas
      ~max_replicas:cfg.Config.max_replicas ()
  in
  (* Region-spread constraint: repair the round-robin seed layout so
     every partition spans [min_regions] regions before any replication
     state is seeded. Standby slots are not eligible targets. *)
  if cfg.Config.regions >= 2 && cfg.Config.min_regions >= 2 then
    Placement.spread_regions placement
      ~region_of:(Config.region_of_node cfg)
      ~eligible:(fun n -> n < cfg.Config.nodes)
      ~min_regions:cfg.Config.min_regions;
  let t =
    {
      cfg;
      engine;
      network;
      metrics;
      fault;
      placement;
      store = Kvstore.create ();
      replication =
        Replication.create ~interval:cfg.Config.group_commit_interval ~partitions:parts
          engine;
      workers =
        Array.init slots (fun _ ->
            Server.create ~queue_cap:cfg.Config.queue_cap
              ~policy:cfg.Config.shed_policy
              ~on_shed:(fun () -> Metrics.record_shed metrics)
              engine ~capacity:cfg.Config.workers_per_node);
      services =
        Array.init slots (fun _ ->
            Server.create ~queue_cap:cfg.Config.queue_cap
              ~policy:cfg.Config.shed_policy
              ~on_shed:(fun () -> Metrics.record_shed metrics)
              engine ~capacity:2);
      tracer;
      history;
      rng = Rng.create seed;
      part_available = Array.make parts 0.0;
      part_access = Array.make parts 0.0;
      node_alive = Array.init slots (fun n -> n < cfg.Config.nodes);
      part_last_remaster = Array.make parts neg_infinity;
      remaster_count = 0;
      replica_add_count = 0;
      migration_count = 0;
      remaster_inflight = Array.make parts false;
      resync_inflight = Hashtbl.create 64;
      resync_count = 0;
      retry_budget =
        (if cfg.Config.retry_budget_rate > 0.0 then
           Some
             (Overload.Token_bucket.create ~rate_per_s:cfg.Config.retry_budget_rate
                ~burst:cfg.Config.retry_budget_burst)
         else None);
      breakers =
        (if cfg.Config.breaker_threshold > 0 then
           Array.init slots (fun _ ->
               Overload.Breaker.create ~threshold:cfg.Config.breaker_threshold
                 ~cooldown:cfg.Config.breaker_cooldown)
         else [||]);
      member = Array.init slots (fun n -> n < cfg.Config.nodes);
      draining = Array.make slots false;
      node_epoch = Array.make slots 0;
      primary_term = Array.make parts 0;
      membership_version = 0;
      join_count = 0;
      decommission_count = 0;
      rebalance_migrations = 0;
      rebalance_running = false;
      rebalance_started = 0.0;
      rebalance_done = 0.0;
      move_inflight = Hashtbl.create 16;
      remaster_target = Array.make parts (-1);
      remaster_prev = Array.make parts neg_infinity;
      remaster_started_at = Array.make parts neg_infinity;
      remaster_gen = Array.make parts 0;
    }
  in
  (* Standby slots are outside the membership until a join: the fault
     layer drops traffic to them and their (empty) queues are closed. *)
  for n = cfg.Config.nodes to slots - 1 do
    Fault.mark_down fault n;
    Server.kill t.workers.(n);
    Server.kill t.services.(n)
  done;
  (* Every initial replica holds its (empty) partition durably — the
     ground-truth rows the durable watermark advances through. *)
  for part = 0 to parts - 1 do
    Replication.seed_replica t.replication ~part
      ~node:(Placement.primary t.placement part);
    List.iter
      (fun n -> Replication.seed_replica t.replication ~part ~node:n)
      (Placement.secondaries t.placement part)
  done;
  (* Crash/recover events from the fault plan drive the same failover
     machinery as explicit [fail_node] / [recover_node] calls. *)
  List.iter
    (fun (time, ev) ->
      Engine.at engine ~time (fun () ->
          match ev with
          | `Crash n -> fail_node t n
          | `Recover n -> recover_node t n))
    (Fault.crash_events cfg.Config.fault_plan);
  (* Static fault windows become trace instants up front: instants are
     pure recorded data (no engine events), so tracing a faulty run
     perturbs nothing. Crash/recover instants are emitted by
     [fail_node]/[recover_node] when they actually happen. *)
  Option.iter
    (fun tr ->
      List.iter
        (function
          | Fault.Crash _ -> ()
          | Fault.Partition { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "partition-start";
              Trace.instant ~ts:until tr "partition-heal"
          | Fault.Drop { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "drop-start";
              Trace.instant ~ts:until tr "drop-end"
          | Fault.Jitter { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "jitter-start";
              Trace.instant ~ts:until tr "jitter-end"
          | Fault.Straggler { node; from_; until; _ } ->
              Trace.instant ~node ~ts:from_ tr "straggler-start";
              Trace.instant ~node ~ts:until tr "straggler-end"
          | Fault.Delay { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "delay-start";
              Trace.instant ~ts:until tr "delay-end")
        cfg.Config.fault_plan)
    tracer;
  t
