module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Server = Lion_sim.Server
module Rng = Lion_kernel.Rng

let log_src = Logs.Src.create "lion.cluster" ~doc:"Cluster replica operations"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  cfg : Config.t;
  engine : Engine.t;
  network : Network.t;
  metrics : Metrics.t;
  placement : Placement.t;
  store : Kvstore.t;
  replication : Replication.t;
  workers : Server.t array;
  services : Server.t array;
  rng : Rng.t;
  part_available : float array;
  part_access : float array;
  node_alive : bool array;
  part_last_remaster : float array;
  mutable remaster_count : int;
  mutable replica_add_count : int;
  mutable migration_count : int;
  mutable remaster_inflight : bool array;
}

let create ?(seed = 1) cfg =
  let engine = Engine.create () in
  let network = Network.create ~latency:cfg.Config.net_latency ~per_byte:cfg.Config.net_per_byte engine in
  let parts = Config.total_partitions cfg in
  {
    cfg;
    engine;
    network;
    metrics = Metrics.create ~seed engine;
    placement =
      Placement.create ~nodes:cfg.Config.nodes ~partitions:parts ~replicas:cfg.Config.replicas
        ~max_replicas:cfg.Config.max_replicas;
    store = Kvstore.create ();
    replication =
      Replication.create ~interval:cfg.Config.group_commit_interval ~partitions:parts
        engine;
    workers =
      Array.init cfg.Config.nodes (fun _ ->
          Server.create engine ~capacity:cfg.Config.workers_per_node);
    services = Array.init cfg.Config.nodes (fun _ -> Server.create engine ~capacity:2);
    rng = Rng.create seed;
    part_available = Array.make parts 0.0;
    part_access = Array.make parts 0.0;
    node_alive = Array.make cfg.Config.nodes true;
    part_last_remaster = Array.make parts neg_infinity;
    remaster_count = 0;
    replica_add_count = 0;
    migration_count = 0;
    remaster_inflight = Array.make parts false;
  }

let now t = Engine.now t.engine
let node_count t = t.cfg.Config.nodes
let partition_count t = Placement.partitions t.placement
let touch_partition t p = t.part_access.(p) <- t.part_access.(p) +. 1.0

let decay_access t factor =
  for p = 0 to Array.length t.part_access - 1 do
    t.part_access.(p) <- t.part_access.(p) *. factor
  done

let normalized_freq t p =
  let hottest = Array.fold_left Stdlib.max 0.0 t.part_access in
  if hottest <= 0.0 then 0.0 else t.part_access.(p) /. hottest

let partition_wait t p = Stdlib.max 0.0 (t.part_available.(p) -. now t)


let block_partition t p until =
  if until > t.part_available.(p) then t.part_available.(p) <- until

let block_partition_for t ~part ~duration = block_partition t part (now t +. duration)

let try_begin_remaster t ~part ~node =
  if not t.node_alive.(node) then false
  else if t.remaster_inflight.(part) then false
  else if not (Placement.has_replica t.placement ~part ~node) then false
  else if Placement.has_primary t.placement ~part ~node then true
  else if
    now t -. t.part_last_remaster.(part) < t.cfg.Config.remaster_cooldown
  then false
  else (
    t.remaster_inflight.(part) <- true;
    t.part_last_remaster.(part) <- now t;
    let delay = t.cfg.Config.remaster_delay in
    block_partition t part (now t +. delay);
    (* Lagging-log synchronisation: ship the records the secondary has
       not yet acknowledged (§III), not the whole partition. *)
    let src = Placement.primary t.placement part in
    let lag_bytes =
      Stdlib.max 256 (Replication.lag t.replication ~part * t.cfg.Config.record_bytes)
    in
    Network.send t.network ~src ~dst:node ~bytes:lag_bytes (fun () -> ());
    Engine.schedule t.engine ~delay (fun () ->
        (* The placement may have changed while blocked only via this
           remaster (the inflight flag excludes races) — but the target
           may have died in the meantime. *)
        if t.node_alive.(node) && Placement.has_replica t.placement ~part ~node then
          Placement.remaster t.placement ~part ~node;
        t.remaster_count <- t.remaster_count + 1;
        t.remaster_inflight.(part) <- false);
    true)

let remaster_sync t ~part ~node =
  if not (Placement.has_primary t.placement ~part ~node) then
    ignore (try_begin_remaster t ~part ~node)

(* Evict the coldest secondary: every secondary serves no reads in this
   model, so "coldest" is decided by hosting-node pressure — shed from
   the node hosting the most replicas, deterministically. *)
let evict_one_secondary t ~part ~keep =
  let secs = Placement.secondaries t.placement part in
  let candidates = List.filter (fun n -> n <> keep) secs in
  match candidates with
  | [] -> ()
  | _ ->
      let victim =
        List.fold_left
          (fun best n ->
            match best with
            | None -> Some n
            | Some b ->
                let load_n = Placement.replicas_on t.placement n
                and load_b = Placement.replicas_on t.placement b in
                if load_n > load_b || (load_n = load_b && n < b) then Some n else Some b)
          None candidates
      in
      Option.iter (fun n -> Placement.remove_secondary t.placement ~part ~node:n) victim

let add_replica t ~part ~node ~on_ready =
  if not t.node_alive.(node) then ()
  else if Placement.has_replica t.placement ~part ~node then on_ready ()
  else (
    if Placement.replica_count t.placement part >= Placement.max_replicas t.placement then
      evict_one_secondary t ~part ~keep:node;
    let src = Placement.primary t.placement part in
    Network.send t.network ~src ~dst:node ~bytes:t.cfg.Config.partition_bytes (fun () -> ());
    (* Snapshotting on the source and applying on the destination
       consume worker CPU, interfering with transaction processing. *)
    Server.submit t.workers.(src) ~work:t.cfg.Config.migration_cpu_cost (fun () -> ());
    Server.submit t.workers.(node) ~work:t.cfg.Config.migration_cpu_cost (fun () -> ());
    t.migration_count <- t.migration_count + 1;
    Engine.schedule t.engine ~delay:t.cfg.Config.replica_add_duration (fun () ->
        if t.node_alive.(node) then (
          if not (Placement.has_replica t.placement ~part ~node) then (
            Placement.add_secondary t.placement ~part ~node;
            t.replica_add_count <- t.replica_add_count + 1);
          on_ready ())))

let remove_replica t ~part ~node =
  if Placement.has_secondary t.placement ~part ~node then
    Placement.remove_secondary t.placement ~part ~node

let alive t n = t.node_alive.(n)

let alive_nodes t =
  List.filter (fun n -> t.node_alive.(n)) (List.init t.cfg.Config.nodes Fun.id)

let fail_node t node =
  if t.node_alive.(node) then (
    Log.warn (fun m -> m "node %d failed at t=%.0fus" node (now t));
    t.node_alive.(node) <- false;
    let parts = Placement.partitions t.placement in
    for part = 0 to parts - 1 do
      if Placement.has_secondary t.placement ~part ~node then
        Placement.remove_secondary t.placement ~part ~node
    done;
    for part = 0 to parts - 1 do
      if Placement.has_primary t.placement ~part ~node then (
        match
          List.filter (fun n -> t.node_alive.(n)) (Placement.secondaries t.placement part)
        with
        | [] ->
            (* No surviving replica: unavailable until the node
               recovers with its (stale but only) copy. *)
            t.part_available.(part) <- infinity
        | _ :: _ ->
            block_partition t part (now t +. t.cfg.Config.election_delay);
            Engine.schedule t.engine ~delay:t.cfg.Config.election_delay (fun () ->
                match
                  List.filter
                    (fun n -> t.node_alive.(n))
                    (Placement.secondaries t.placement part)
                with
                | winner :: _ when Placement.primary t.placement part = node ->
                    Placement.remaster t.placement ~part ~node:winner
                | _ -> ()))
    done)

let recover_node t node =
  if not t.node_alive.(node) then (
    Log.info (fun m -> m "node %d recovered at t=%.0fus" node (now t));
    t.node_alive.(node) <- true;
    let parts = Placement.partitions t.placement in
    for part = 0 to parts - 1 do
      if Placement.has_primary t.placement ~part ~node && t.part_available.(part) = infinity
      then t.part_available.(part) <- now t +. t.cfg.Config.election_delay
    done)

let node_load t n = Server.busy_time t.workers.(n)
let reset_load_counters t = Array.iter Server.reset_counters t.workers
let submit_local t ~node ~work k = Server.submit t.workers.(node) ~work k

let rpc t ~src ~dst ~bytes ~work k =
  if src = dst then Server.submit t.services.(dst) ~work k
  else
    Network.send t.network ~src ~dst ~bytes (fun () ->
        Server.submit t.services.(dst) ~work (fun () ->
            Network.send t.network ~src:dst ~dst:src ~bytes k))

let acquire_worker t ~node k = Server.acquire t.workers.(node) k
let release_worker t ~node lease = Server.release t.workers.(node) lease

let replicate_commit t ~parts =
  List.iter
    (fun p ->
      Replication.append t.replication ~part:p;
      let src = Placement.primary t.placement p in
      List.iter
        (fun dst ->
          Network.send t.network ~src ~dst ~bytes:t.cfg.Config.record_bytes (fun () -> ()))
        (Placement.secondaries t.placement p))
    parts
