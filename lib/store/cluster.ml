module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Server = Lion_sim.Server
module Fault = Lion_sim.Fault
module Overload = Lion_sim.Overload
module Rng = Lion_kernel.Rng
module Trace = Lion_trace.Trace

let log_src = Logs.Src.create "lion.cluster" ~doc:"Cluster replica operations"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  cfg : Config.t;
  engine : Engine.t;
  network : Network.t;
  metrics : Metrics.t;
  fault : Fault.t;
  placement : Placement.t;
  store : Kvstore.t;
  replication : Replication.t;
  workers : Server.t array;
  services : Server.t array;
  tracer : Trace.t option;
  history : History.t option;
  rng : Rng.t;
  part_available : float array;
  part_access : float array;
  node_alive : bool array;
  part_last_remaster : float array;
  mutable remaster_count : int;
  mutable replica_add_count : int;
  mutable migration_count : int;
  mutable remaster_inflight : bool array;
  resync_inflight : (int * int, unit) Hashtbl.t;
  mutable resync_count : int;
  retry_budget : Overload.Token_bucket.t option;
  breakers : Overload.Breaker.t array;
}

let now t = Engine.now t.engine
let node_count t = t.cfg.Config.nodes
let partition_count t = Placement.partitions t.placement
let touch_partition t p = t.part_access.(p) <- t.part_access.(p) +. 1.0

let decay_access t factor =
  for p = 0 to Array.length t.part_access - 1 do
    t.part_access.(p) <- t.part_access.(p) *. factor
  done

let normalized_freq t p =
  let hottest = Array.fold_left Stdlib.max 0.0 t.part_access in
  if hottest <= 0.0 then 0.0 else t.part_access.(p) /. hottest

let partition_wait t p = Stdlib.max 0.0 (t.part_available.(p) -. now t)


let block_partition t p until =
  if until > t.part_available.(p) then t.part_available.(p) <- until

let block_partition_for t ~part ~duration = block_partition t part (now t +. duration)

(* ---- Overload controls (docs/OVERLOAD.md). Every helper collapses to
   a constant when its knob is off, so default runs stay bit-for-bit
   identical to a build without them. ---- *)

let ctl_prio t = if t.cfg.Config.control_priority then Server.High else Server.Normal

(* One retransmission = one token. Dry bucket: the caller gives up. *)
let budget_allows t =
  match t.retry_budget with
  | None -> true
  | Some b ->
      Overload.Token_bucket.try_take b ~now:(now t)
      ||
      (Metrics.record_budget_denial t.metrics;
       false)

let breaker_for t dst =
  if Array.length t.breakers = 0 then None else Some t.breakers.(dst)

let breaker_allows t dst =
  match breaker_for t dst with
  | None -> true
  | Some b ->
      Overload.Breaker.allow b ~now:(now t)
      ||
      (Metrics.record_breaker_reject t.metrics;
       false)

let breaker_success t dst =
  match breaker_for t dst with
  | None -> ()
  | Some b -> Overload.Breaker.record_success b

let breaker_failure t dst =
  match breaker_for t dst with
  | None -> ()
  | Some b ->
      let opens = Overload.Breaker.opens b in
      Overload.Breaker.record_failure b ~now:(now t);
      if Overload.Breaker.opens b > opens then Metrics.record_breaker_open t.metrics

let breaker_state t dst =
  match breaker_for t dst with
  | None -> Overload.Breaker.Closed
  | Some b -> Overload.Breaker.state b ~now:(now t)

let worker_saturated t ~node =
  Server.busy t.workers.(node) >= Server.capacity t.workers.(node)

let total_sheds t =
  let sum = Array.fold_left (fun acc s -> acc + Server.sheds s) in
  sum (sum 0 t.workers) t.services

let try_begin_remaster t ~part ~node =
  if not t.node_alive.(node) then false
  else if t.remaster_inflight.(part) then false
  else if not (Placement.has_replica t.placement ~part ~node) then false
  else if Placement.has_primary t.placement ~part ~node then true
  else if
    now t -. t.part_last_remaster.(part) < t.cfg.Config.remaster_cooldown
  then false
  else (
    t.remaster_inflight.(part) <- true;
    (* Burn the cooldown optimistically so concurrent attempts see it,
       but remember the previous stamp: a transfer that fails (target
       died mid-flight, or the lag ship was lost to a partition) must
       not consume the partition's cooldown. *)
    let started = now t in
    let prev = t.part_last_remaster.(part) in
    t.part_last_remaster.(part) <- started;
    let delay = t.cfg.Config.remaster_delay in
    block_partition t part (now t +. delay);
    (* Lagging-log synchronisation: ship the records the secondary has
       not yet acknowledged (§III), not the whole partition. If the
       fault layer kills the transfer (the target is partitioned away
       mid-handover), the promotion must not happen: a primary whose
       log suffix never arrived would serve stale state. *)
    let src = Placement.primary t.placement part in
    let lag_bytes =
      Stdlib.max 256 (Replication.lag t.replication ~part * t.cfg.Config.record_bytes)
    in
    let transfer_lost = ref false in
    Network.send t.network ~src ~dst:node ~bytes:lag_bytes
      ~on_drop:(fun () -> transfer_lost := true)
      (fun () -> ());
    Engine.schedule t.engine ~delay (fun () ->
        (* The placement may have changed while blocked only via this
           remaster (the inflight flag excludes races) — but the target
           may have died in the meantime. *)
        if
          t.node_alive.(node)
          && Placement.has_replica t.placement ~part ~node
          && not !transfer_lost
        then (
          Placement.remaster t.placement ~part ~node;
          Replication.set_applied t.replication ~part ~node
            ~upto:(Replication.appends t.replication ~part);
          t.remaster_count <- t.remaster_count + 1;
          (* A partition parked as unavailable (lost quorum) now has a
             live primary again: reopen it. *)
          if t.part_available.(part) = infinity then t.part_available.(part) <- now t)
        else if t.part_last_remaster.(part) = started then
          t.part_last_remaster.(part) <- prev;
        t.remaster_inflight.(part) <- false);
    true)

let remaster_sync t ~part ~node =
  if not (Placement.has_primary t.placement ~part ~node) then
    ignore (try_begin_remaster t ~part ~node)

(* Evict the coldest secondary: every secondary serves no reads in this
   model, so "coldest" is decided by hosting-node pressure — shed from
   the node hosting the most replicas, deterministically. *)
let evict_one_secondary t ~part ~keep =
  let secs = Placement.secondaries t.placement part in
  let candidates = List.filter (fun n -> n <> keep) secs in
  match candidates with
  | [] -> ()
  | _ ->
      let victim =
        List.fold_left
          (fun best n ->
            match best with
            | None -> Some n
            | Some b ->
                let load_n = Placement.replicas_on t.placement n
                and load_b = Placement.replicas_on t.placement b in
                if load_n > load_b || (load_n = load_b && n < b) then Some n else Some b)
          None candidates
      in
      Option.iter
        (fun n ->
          Placement.remove_secondary t.placement ~part ~node:n;
          Replication.forget_applied t.replication ~part ~node:n)
        victim

(* A copy source for [part]: the primary if it is live, else a live
   secondary. [None] when every replica sits on a dead node — the data
   is unreachable until one of them recovers. *)
let live_replica_source t part =
  let prim = Placement.primary t.placement part in
  if t.node_alive.(prim) then Some prim
  else List.find_opt (fun n -> t.node_alive.(n)) (Placement.secondaries t.placement part)

let add_replica t ~part ~node ~on_ready =
  if not t.node_alive.(node) then ()
  else if Placement.has_replica t.placement ~part ~node then on_ready ()
  else
    match live_replica_source t part with
    | None -> () (* no live copy to replicate from *)
    | Some src ->
        if
          Placement.replica_count t.placement part >= Placement.max_replicas t.placement
        then evict_one_secondary t ~part ~keep:node;
        Network.send t.network ~src ~dst:node ~bytes:t.cfg.Config.partition_bytes
          (fun () -> ());
        (* Snapshotting on the source and applying on the destination
           consume worker CPU, interfering with transaction processing. *)
        Server.submit t.workers.(src) ~prio:(ctl_prio t)
          ~work:t.cfg.Config.migration_cpu_cost (fun () -> ());
        Server.submit t.workers.(node) ~prio:(ctl_prio t)
          ~work:t.cfg.Config.migration_cpu_cost (fun () -> ());
        t.migration_count <- t.migration_count + 1;
        Engine.schedule t.engine ~delay:t.cfg.Config.replica_add_duration (fun () ->
            if t.node_alive.(node) then (
              if not (Placement.has_replica t.placement ~part ~node) then (
                Placement.add_secondary t.placement ~part ~node;
                (* A fresh install carries a full snapshot: the replica
                   starts caught up with the log. *)
                Replication.set_applied t.replication ~part ~node
                  ~upto:(Replication.appends t.replication ~part);
                t.replica_add_count <- t.replica_add_count + 1);
              on_ready ()))

let remove_replica t ~part ~node =
  if Placement.has_secondary t.placement ~part ~node then (
    Placement.remove_secondary t.placement ~part ~node;
    Replication.forget_applied t.replication ~part ~node)

let alive t n = t.node_alive.(n)

let alive_nodes t =
  List.filter (fun n -> t.node_alive.(n)) (List.init t.cfg.Config.nodes Fun.id)

let work_scale t node = Fault.slow_factor t.fault ~now:(now t) node

let availability t =
  let nodes = t.cfg.Config.nodes in
  let live = List.length (alive_nodes t) in
  let parts = Placement.partitions t.placement in
  let serveable = ref 0 in
  for p = 0 to parts - 1 do
    let prim = Placement.primary t.placement p in
    if t.node_alive.(prim) && t.part_available.(p) <= now t then incr serveable
  done;
  float_of_int live /. float_of_int nodes
  *. (float_of_int !serveable /. float_of_int parts)

let fail_node t node =
  if t.node_alive.(node) then (
    Log.warn (fun m -> m "node %d failed at t=%.0fus" node (now t));
    Option.iter (fun tr -> Trace.instant ~node ~ts:(now t) tr "crash") t.tracer;
    t.node_alive.(node) <- false;
    Fault.mark_down t.fault node;
    (* Fail-fast the admission queues: work parked behind the dead
       node's workers/messengers is shed now (its [on_shed] fires)
       instead of executing after a grant from a corpse. *)
    Server.kill t.workers.(node);
    Server.kill t.services.(node);
    let parts = Placement.partitions t.placement in
    for part = 0 to parts - 1 do
      if Placement.has_secondary t.placement ~part ~node then (
        Placement.remove_secondary t.placement ~part ~node;
        Replication.forget_applied t.replication ~part ~node;
        (* This may have been the last live copy of a partition whose
           primary died earlier (cascading failure): park it until a
           replica holder recovers. *)
        let prim = Placement.primary t.placement part in
        if
          (not t.node_alive.(prim))
          && not
               (List.exists
                  (fun n -> t.node_alive.(n))
                  (Placement.secondaries t.placement part))
        then t.part_available.(part) <- infinity)
    done;
    for part = 0 to parts - 1 do
      if Placement.has_primary t.placement ~part ~node then (
        match
          List.filter (fun n -> t.node_alive.(n)) (Placement.secondaries t.placement part)
        with
        | [] ->
            (* No surviving replica: unavailable until the node
               recovers with its (stale but only) copy. *)
            t.part_available.(part) <- infinity
        | _ :: _ ->
            block_partition t part (now t +. t.cfg.Config.election_delay);
            Engine.schedule t.engine ~delay:t.cfg.Config.election_delay (fun () ->
                (match
                   List.filter
                     (fun n -> t.node_alive.(n))
                     (Placement.secondaries t.placement part)
                 with
                | winner :: _ when Placement.primary t.placement part = node ->
                    Placement.remaster t.placement ~part ~node:winner;
                    (* Election includes catching the winner up from the
                       surviving quorum's logs. *)
                    Replication.set_applied t.replication ~part ~node:winner
                      ~upto:(Replication.appends t.replication ~part);
                    Option.iter
                      (fun tr -> Trace.instant ~node:winner ~ts:(now t) tr "election")
                      t.tracer
                | _ -> ());
                (* Whether the election above promoted a winner or a
                   planner moved mastership on its own before the timer
                   fired (batch-mode claims apply [Placement.remaster]
                   directly), the dead primary has been demoted to a
                   secondary: purge that phantom copy so it cannot
                   rejoin as a stale replica on recovery. *)
                if
                  (not t.node_alive.(node))
                  && Placement.has_secondary t.placement ~part ~node
                then (
                  Placement.remove_secondary t.placement ~part ~node;
                  Replication.forget_applied t.replication ~part ~node)))
    done)

let recover_node t node =
  if not t.node_alive.(node) then (
    Log.info (fun m -> m "node %d recovered at t=%.0fus" node (now t));
    Option.iter (fun tr -> Trace.instant ~node ~ts:(now t) tr "recover") t.tracer;
    t.node_alive.(node) <- true;
    Fault.mark_up t.fault node;
    Server.revive t.workers.(node);
    Server.revive t.services.(node);
    let parts = Placement.partitions t.placement in
    (* The log-shipping peer for resynchronisation: any live node can
       serve the tail of the durable log (group-commit makes every
       commit reach the log before acknowledgement). *)
    let peer =
      List.find_opt (fun n -> n <> node) (alive_nodes t)
    in
    for part = 0 to parts - 1 do
      if Placement.has_primary t.placement ~part ~node && t.part_available.(part) = infinity
      then begin
        (* The orphaned primary rejoins with a stale copy: resync the
           unacknowledged log suffix through the replication model —
           the same lagging-log rule [try_begin_remaster] applies —
           and charge it to the network before serving again. *)
        let lag_bytes =
          Stdlib.max 256
            (Replication.lag t.replication ~part * t.cfg.Config.record_bytes)
        in
        (match peer with
        | Some src -> Network.send t.network ~src ~dst:node ~bytes:lag_bytes (fun () -> ())
        | None -> Network.charge t.network ~bytes:lag_bytes);
        (* The resync brings the rejoining primary's log current. *)
        Replication.set_applied t.replication ~part ~node
          ~upto:(Replication.appends t.replication ~part);
        t.part_available.(part) <-
          now t +. t.cfg.Config.election_delay
          +. Network.oneway_delay t.network ~bytes:lag_bytes
      end
    done)

let node_load t n = Server.busy_time t.workers.(n)
let reset_load_counters t = Array.iter Server.reset_counters t.workers

let submit_local t ?(on_fail = fun () -> ()) ?prio ~node ~work k =
  if t.node_alive.(node) then
    Server.submit t.workers.(node) ?prio ~on_shed:on_fail
      ~work:(work *. work_scale t node) k
  else on_fail ()

let rpc t ?(on_fail = fun () -> ()) ?ctx ?deadline ?prio ~src ~dst ~bytes ~work k =
  if src = dst then
    if t.node_alive.(dst) then
      Server.submit t.services.(dst) ?prio ~on_shed:on_fail
        ~work:(work *. work_scale t dst) k
    else on_fail ()
  else if not (breaker_allows t dst) then
    (* Open breaker: shed the call immediately — no wire traffic, no
       worker-hold through a doomed timeout. *)
    on_fail ()
  else
    let retries = t.cfg.Config.rpc_retries in
    let past_deadline at =
      match deadline with Some d -> at >= d | None -> false
    in
    let rec go attempt =
      let t0 = now t in
      (* One span per attempt; retransmissions show up as sibling spans
         with a "retry" annotation on the one that timed out. The
         [None] path builds no strings and allocates nothing. *)
      let actx =
        match ctx with
        | None -> None
        | Some _ ->
            Trace.child ~node:dst
              ~name:(Printf.sprintf "rpc %d->%d" src dst)
              ~ts:t0 ctx
      in
      (* The simulator is omniscient: a timeout only ever matters when
         the request or reply is actually lost (or shed by the remote
         admission queue), so the timer is created lazily at the moment
         of loss (healthy runs schedule no extra events — determinism
         is preserved bit-for-bit). *)
      let fail_after_timeout () =
        let remaining = Stdlib.max 0.0 (t0 +. t.cfg.Config.rpc_timeout -. now t) in
        Engine.schedule t.engine ~delay:remaining (fun () ->
            let give_up note =
              Trace.note ~ts:(now t) note actx;
              Trace.finish ~ts:(now t) actx;
              breaker_failure t dst;
              on_fail ()
            in
            if attempt >= retries then (
              Metrics.record_timeout t.metrics;
              give_up "timeout")
            else if past_deadline (now t) then (
              (* Deadline propagation: a transaction already past its
                 deadline sheds instead of retrying. *)
              Metrics.record_timeout t.metrics;
              give_up "deadline")
            else if not (budget_allows t) then give_up "budget-denied"
            else (
              Metrics.record_retry t.metrics;
              Trace.note ~ts:(now t) "retry" actx;
              Trace.finish ~ts:(now t) actx;
              let backoff =
                t.cfg.Config.rpc_backoff *. float_of_int (1 lsl attempt)
              in
              Engine.schedule t.engine ~delay:backoff (fun () -> go (attempt + 1))))
      in
      Network.send t.network ~src ~dst ~bytes ~on_drop:fail_after_timeout
        ?ctx:actx (fun () ->
          let sctx =
            match actx with
            | None -> None
            | Some _ -> Trace.child ~name:"service" ~ts:(now t) actx
          in
          Server.submit t.services.(dst) ?prio
            ~on_shed:(fun () ->
              (* The overloaded (or dead) receiver shed the request:
                 the sender can only find out by timing out. *)
              Trace.note ~ts:(now t) "shed" sctx;
              Trace.finish ~ts:(now t) sctx;
              fail_after_timeout ())
            ~work:(work *. work_scale t dst)
            (fun () ->
              Trace.finish ~ts:(now t) sctx;
              Network.send t.network ~src:dst ~dst:src ~bytes
                ~on_drop:fail_after_timeout ?ctx:actx (fun () ->
                  Trace.finish ~ts:(now t) actx;
                  breaker_success t dst;
                  k ())))
    in
    go 0

let acquire_worker t ?on_fail ~node k =
  Server.acquire t.workers.(node) ?on_shed:on_fail k
let release_worker t ~node lease = Server.release t.workers.(node) lease

(* Anti-entropy repair: a log ship that exhausted its retries (long
   partition, dead link) leaves the replica's applied watermark behind
   the authoritative log. The loop re-ships the missing suffix from a
   live replica until the target catches up, loses the replica, or
   dies; each round backs off by two RPC timeouts, bounded by [tries]
   so a permanently unreachable replica cannot keep the event queue
   alive forever. It is only ever started after a ship actually failed,
   so healthy runs schedule nothing and stay bit-for-bit identical. *)
let rec resync_replica t ~part ~node ~tries =
  let stop () = Hashtbl.remove t.resync_inflight (part, node) in
  let goal = Replication.appends t.replication ~part in
  if
    (not t.node_alive.(node))
    || (not (Placement.has_replica t.placement ~part ~node))
    || Replication.applied t.replication ~part ~node >= goal
    || tries <= 0
  then stop ()
  else
    let retry () =
      Engine.schedule t.engine ~delay:(2.0 *. t.cfg.Config.rpc_timeout) (fun () ->
          resync_replica t ~part ~node ~tries:(tries - 1))
    in
    let live_source =
      List.find_opt
        (fun n -> n <> node && t.node_alive.(n))
        (Placement.primary t.placement part :: Placement.secondaries t.placement part)
    in
    match live_source with
    | None -> retry () (* every other replica is down: wait for a recovery *)
    | Some src ->
        let cur = Replication.applied t.replication ~part ~node in
        let bytes = Stdlib.max 256 ((goal - cur) * t.cfg.Config.record_bytes) in
        Network.send t.network ~src ~dst:node ~bytes ~on_drop:retry (fun () ->
            Replication.set_applied t.replication ~part ~node ~upto:goal;
            t.resync_count <- t.resync_count + 1;
            (* More records may have landed while the suffix was in
               flight: chase the tail before declaring victory. *)
            resync_replica t ~part ~node ~tries)

let start_resync t ~part ~node =
  if not (Hashtbl.mem t.resync_inflight (part, node)) then (
    Hashtbl.add t.resync_inflight (part, node) ();
    Engine.schedule t.engine ~delay:(2.0 *. t.cfg.Config.rpc_timeout) (fun () ->
        resync_replica t ~part ~node ~tries:64))

let replicate_commit t ?ctx parts =
  List.iter
    (fun p ->
      Replication.append t.replication ~part:p;
      let len = Replication.appends t.replication ~part:p in
      let src = Placement.primary t.placement p in
      (* The primary's own copy applies the record at commit time. *)
      Replication.set_applied t.replication ~part:p ~node:src ~upto:len;
      List.iter
        (fun dst ->
          (* The asynchronous log ship gets its own span (phase
             "replication"): it usually outlives the transaction, so it
             shows up in the exported trace as the async tail but is
             never blamed on the critical path. *)
          let rctx =
            match ctx with
            | None -> None
            | Some _ ->
                Trace.child ~node:dst ~part:p ~phase:"replication"
                  ~name:"log-ship" ~ts:(now t) ctx
          in
          (* Log shipping retries on loss like an RPC, but needs no
             reply: the group-commit stream is idempotent, so the only
             cost of a loss is the retransmission. Retransmissions draw
             on the same retry budget as RPCs, and a destination whose
             breaker is open is handed straight to anti-entropy — the
             resync loop ships the whole missing suffix later, which is
             cheaper than feeding a black hole one record at a time. *)
          let give_up note =
            Metrics.record_timeout t.metrics;
            Trace.note ~ts:(now t) note rctx;
            Trace.finish ~ts:(now t) rctx;
            breaker_failure t dst;
            start_resync t ~part:p ~node:dst
          in
          let rec ship attempt =
            Network.send t.network ~src ~dst ~bytes:t.cfg.Config.record_bytes
              ~on_drop:(fun () ->
                if attempt >= t.cfg.Config.rpc_retries then give_up "timeout"
                else if not (budget_allows t) then give_up "budget-denied"
                else (
                  Metrics.record_retry t.metrics;
                  Trace.note ~ts:(now t) "retry" rctx;
                  let backoff =
                    t.cfg.Config.rpc_backoff *. float_of_int (1 lsl attempt)
                  in
                  Engine.schedule t.engine ~delay:backoff (fun () ->
                      ship (attempt + 1))))
              (fun () ->
                (* The stream is cumulative: delivering the record at
                   index [len] implies everything before it arrived (or
                   was re-shipped) too. *)
                Replication.set_applied t.replication ~part:p ~node:dst ~upto:len;
                Trace.finish ~ts:(now t) rctx;
                breaker_success t dst)
          in
          if breaker_allows t dst then ship 0
          else (
            Trace.note ~ts:(now t) "breaker-open" rctx;
            Trace.finish ~ts:(now t) rctx;
            start_resync t ~part:p ~node:dst))
        (Placement.secondaries t.placement p))
    parts

(* Applied-watermark bookkeeping for layers that move replicas through
   [Placement] directly (the Leap migrate path, batch-mode remasters):
   a copy installed by such a transfer is current as of the transfer. *)
let note_replica_synced t ~part ~node =
  if Placement.has_replica t.placement ~part ~node then
    Replication.set_applied t.replication ~part ~node
      ~upto:(Replication.appends t.replication ~part)

let note_replica_dropped t ~part ~node =
  Replication.forget_applied t.replication ~part ~node

let create ?(seed = 1) ?tracer ?history cfg =
  let engine = Engine.create () in
  let metrics = Metrics.create ~seed engine in
  let fault = Fault.create ~seed ~nodes:cfg.Config.nodes cfg.Config.fault_plan in
  let network =
    Network.create ~latency:cfg.Config.net_latency ~per_byte:cfg.Config.net_per_byte
      ~fault ~metrics engine
  in
  let parts = Config.total_partitions cfg in
  let t =
    {
      cfg;
      engine;
      network;
      metrics;
      fault;
      placement =
        Placement.create ~nodes:cfg.Config.nodes ~partitions:parts ~replicas:cfg.Config.replicas
          ~max_replicas:cfg.Config.max_replicas;
      store = Kvstore.create ();
      replication =
        Replication.create ~interval:cfg.Config.group_commit_interval ~partitions:parts
          engine;
      workers =
        Array.init cfg.Config.nodes (fun _ ->
            Server.create ~queue_cap:cfg.Config.queue_cap
              ~policy:cfg.Config.shed_policy
              ~on_shed:(fun () -> Metrics.record_shed metrics)
              engine ~capacity:cfg.Config.workers_per_node);
      services =
        Array.init cfg.Config.nodes (fun _ ->
            Server.create ~queue_cap:cfg.Config.queue_cap
              ~policy:cfg.Config.shed_policy
              ~on_shed:(fun () -> Metrics.record_shed metrics)
              engine ~capacity:2);
      tracer;
      history;
      rng = Rng.create seed;
      part_available = Array.make parts 0.0;
      part_access = Array.make parts 0.0;
      node_alive = Array.make cfg.Config.nodes true;
      part_last_remaster = Array.make parts neg_infinity;
      remaster_count = 0;
      replica_add_count = 0;
      migration_count = 0;
      remaster_inflight = Array.make parts false;
      resync_inflight = Hashtbl.create 64;
      resync_count = 0;
      retry_budget =
        (if cfg.Config.retry_budget_rate > 0.0 then
           Some
             (Overload.Token_bucket.create ~rate_per_s:cfg.Config.retry_budget_rate
                ~burst:cfg.Config.retry_budget_burst)
         else None);
      breakers =
        (if cfg.Config.breaker_threshold > 0 then
           Array.init cfg.Config.nodes (fun _ ->
               Overload.Breaker.create ~threshold:cfg.Config.breaker_threshold
                 ~cooldown:cfg.Config.breaker_cooldown)
         else [||]);
    }
  in
  (* Crash/recover events from the fault plan drive the same failover
     machinery as explicit [fail_node] / [recover_node] calls. *)
  List.iter
    (fun (time, ev) ->
      Engine.at engine ~time (fun () ->
          match ev with
          | `Crash n -> fail_node t n
          | `Recover n -> recover_node t n))
    (Fault.crash_events cfg.Config.fault_plan);
  (* Static fault windows become trace instants up front: instants are
     pure recorded data (no engine events), so tracing a faulty run
     perturbs nothing. Crash/recover instants are emitted by
     [fail_node]/[recover_node] when they actually happen. *)
  Option.iter
    (fun tr ->
      List.iter
        (function
          | Fault.Crash _ -> ()
          | Fault.Partition { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "partition-start";
              Trace.instant ~ts:until tr "partition-heal"
          | Fault.Drop { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "drop-start";
              Trace.instant ~ts:until tr "drop-end"
          | Fault.Jitter { from_; until; _ } ->
              Trace.instant ~ts:from_ tr "jitter-start";
              Trace.instant ~ts:until tr "jitter-end"
          | Fault.Straggler { node; from_; until; _ } ->
              Trace.instant ~node ~ts:from_ tr "straggler-start";
              Trace.instant ~node ~ts:until tr "straggler-end")
        cfg.Config.fault_plan)
    tracer;
  t
