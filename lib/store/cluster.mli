(** The simulated cluster: nodes, network, placement, store, and the
    replica-manipulation primitives (remaster / add / remove replica)
    that the paper's adaptor invokes (§III, §V MHandler functions).

    All protocol implementations run against this one substrate. *)

type t = {
  cfg : Config.t;
  engine : Lion_sim.Engine.t;
  network : Lion_sim.Network.t;
  metrics : Lion_sim.Metrics.t;
  fault : Lion_sim.Fault.t;
      (** fault-injection state shared with the network layer; crash
          and recover events from [Config.fault_plan] are scheduled at
          [create] time and drive [fail_node] / [recover_node] *)
  placement : Placement.t;
  store : Kvstore.t;
  replication : Replication.t;
      (** per-partition replication logs; remastering ships the lag *)
  workers : Lion_sim.Server.t array;  (** per-node worker pool *)
  services : Lion_sim.Server.t array;
      (** per-node messenger pool (2 threads, §VI-A) handling remote
          sub-operations — separate from workers, as in the paper's
          thread model, so coordinators holding workers cannot deadlock
          with the remote work they wait on *)
  tracer : Lion_trace.Trace.t option;
      (** causal transaction tracer; [None] (the default) disables
          tracing entirely — protocols then thread [None] contexts and
          every instrumentation point is a no-op *)
  history : History.t option;
      (** consistency-audit history sink; [None] (the default) disables
          recording — the protocol engines then skip every recording
          point, leaving runs bit-for-bit unchanged *)
  rng : Lion_kernel.Rng.t;
  part_available : float array;
      (** per-partition time before which operations block (remaster
          or migration in progress) *)
  part_access : float array;  (** decayed per-partition access counter *)
  node_alive : bool array;  (** liveness; see [fail_node] *)
  part_last_remaster : float array;
      (** start time of each partition's most recent remaster, enforcing
          [Config.remaster_cooldown] against ping-pong *)
  mutable remaster_count : int;
  mutable replica_add_count : int;
  mutable migration_count : int;
  mutable remaster_inflight : bool array;
      (** per-partition flag to serialise concurrent remaster attempts
          (the paper's remastering-conflict rule: one wins, others fall
          back to 2PC) *)
  resync_inflight : (int * int, unit) Hashtbl.t;
      (** (part, node) pairs with an anti-entropy repair in progress *)
  mutable resync_count : int;
      (** completed anti-entropy suffix ships (see [replicate_commit]) *)
  retry_budget : Lion_sim.Overload.Token_bucket.t option;
      (** global token bucket drawn on by every RPC / log-ship
          retransmission; [None] (default, [Config.retry_budget_rate]
          = 0) leaves retries unlimited *)
  breakers : Lion_sim.Overload.Breaker.t array;
      (** per-destination circuit breakers indexed by node; [[||]]
          (default, [Config.breaker_threshold] = 0) disables them *)
  member : bool array;
      (** elastic membership (docs/MEMBERSHIP.md): slots currently in
          the cluster. The first [Config.nodes] slots start as members;
          standby slots join via [join_node] *)
  draining : bool array;  (** decommission in progress on this slot *)
  node_epoch : int array;
      (** per-slot incarnation counter, bumped on every (re)join — the
          staleness discriminator carried by [Replication.session] *)
  primary_term : int array;
      (** per-partition leadership term, bumped on every promotion
          (failover election or remaster) *)
  mutable membership_version : int;
      (** bumped on every join, decommission and failover *)
  mutable join_count : int;
  mutable decommission_count : int;  (** completed (fully drained) removals *)
  mutable rebalance_migrations : int;
      (** replica installs initiated by the background rebalancer *)
  mutable rebalance_running : bool;
  mutable rebalance_started : float;
      (** time of the most recent membership change that started
          rebalancing work — with [rebalance_done], the experiment's
          time-to-rebalance measurement *)
  mutable rebalance_done : float;
      (** time the rebalancer last ran out of work and stopped *)
  move_inflight : (int * int, unit) Hashtbl.t;
      (** (part, dst) rebalance installs in flight, guarding against
          duplicate moves; cleared on completion or target death *)
  remaster_target : int array;
      (** per-partition in-flight remaster target (-1 when none) — lets
          [fail_node] cancel transfers aimed at a dying node *)
  remaster_prev : float array;
      (** cooldown stamp to restore if the in-flight remaster fails *)
  remaster_started_at : float array;
  remaster_gen : int array;
      (** generation guard turning a cancelled remaster's completion
          timer into a no-op *)
}

val create :
  ?seed:int -> ?tracer:Lion_trace.Trace.t -> ?history:History.t -> Config.t -> t

val now : t -> float

val node_count : t -> int
(** Slot capacity: [Config.nodes + Config.standby_nodes]. Per-node
    structures (worker pools, routing tables) span this; non-member
    slots are never [alive], so they are invisible to routing. Equals
    [Config.nodes] with the default configuration. *)

val member_count : t -> int
(** Slots currently in the membership (draining nodes still count until
    their removal completes). *)

val partition_count : t -> int

val region_of : t -> int -> int
(** Region of a node slot ([Config.region_of_node]); 0 for every node
    while the cluster is region-free (docs/GEO.md). *)

val touch_partition : t -> int -> unit
(** Bump the access counter used for f(v, n) in the cost model. *)

val decay_access : t -> float -> unit
(** Multiply all access counters by a factor in (0,1]; the planner calls
    this each analysis round so frequencies track the recent window. *)

val normalized_freq : t -> int -> float
(** f(v, ·) of Eq. 4: this partition's access counter divided by the
    hottest partition's (0 when nothing has been accessed). *)

val partition_wait : t -> int -> float
(** How long an operation arriving now must wait for the partition to
    come out of an in-progress remaster (0 if available). *)

val block_partition_for : t -> part:int -> duration:float -> unit
(** Make the partition unavailable for [duration] from now — used by
    migration-based protocols whose transfers block concurrent
    transactions (§II-B). *)

val try_begin_remaster : t -> part:int -> node:int -> bool
(** Attempt to start remastering [part] onto [node]. Returns false if a
    remaster of this partition is already in flight (the caller must
    fall back to 2PC) or if [node] holds no replica. On success the
    partition blocks for [cfg.remaster_delay]; at the end the placement
    is updated and lagging-log bytes are charged to the network.
    [remaster_count] and the [remaster_cooldown] stamp are only charged
    when the transfer actually completes — a target dying mid-flight
    rolls the cooldown back so the partition can retry immediately
    ([fail_node] cancels such transfers eagerly rather than waiting for
    the completion timer). With [Config.session_tagging], a handover
    whose lag ship predates the target's current incarnation is
    refused and counted as a stale-ack rejection. *)

val remaster_sync : t -> part:int -> node:int -> unit
(** Planner-side immediate remaster used when applying a plan outside
    transaction execution: blocks the partition and updates placement at
    completion time. No-op when [node] is already primary. *)

val add_replica : t -> part:int -> node:int -> on_ready:(unit -> unit) -> unit
(** Background replica addition: charges [partition_bytes] to the
    network, waits [replica_add_duration], then installs the secondary.
    If the partition is at [max_replicas], evicts the coldest secondary
    (the delete_flag mechanism) first; if [node] already holds a
    replica, fires [on_ready] immediately. Never blocks transactions.
    The install stream carries a [Replication.session]: if the target
    crashed and rejoined while the snapshot was in flight, a tagged
    session drops the install (counted as a stale-ack rejection), while
    an untagged one reproduces the stale-ack hazard — the placement
    gains a replica whose durable watermark never moved. *)

val remove_replica : t -> part:int -> node:int -> unit

val note_replica_synced : t -> part:int -> node:int -> unit
(** Stamp a replica's applied watermark to the current log length — for
    layers that install or refresh copies through [Placement] directly
    (the migration path, batch-mode remasters) rather than via
    [add_replica]/[try_begin_remaster], which stamp it themselves. *)

val note_replica_dropped : t -> part:int -> node:int -> unit
(** Forget a replica's applied watermark after dropping the copy
    through [Placement] directly. *)

val alive : t -> int -> bool
(** Routing liveness: the node is a current member and up. Standby
    slots, decommissioned nodes and crashed nodes all read false. *)

val alive_nodes : t -> int list

(** {2 Elastic membership} (docs/MEMBERSHIP.md)

    Nodes can join and leave the cluster under traffic. Both operations
    bump [membership_version] and, when [Config.rebalance_rate] > 0,
    kick a background rebalancer that performs at most one migration
    step per [1/rate] seconds: draining a decommissioned node's
    primaries (remaster away) and secondaries (copy, then drop),
    repairing under-replicated partitions, and evening replica counts
    onto a freshly joined node. The loop stops whenever it has no work
    and nothing in flight — membership and liveness events restart it —
    so quiescing via [Engine.run_all] always terminates. *)

val join_node : t -> int -> bool
(** Activate a standby (or previously removed) slot: new incarnation
    (epoch bump), marked alive and member, traffic flows to it, and the
    rebalancer starts populating it. Returns false if the slot id is
    out of range or already a member. *)

val decommission_node : t -> int -> bool
(** Begin draining a member: it keeps serving while the rebalancer
    moves its primaries and secondaries away, then it leaves the
    membership for good ([decommission_count] ticks at completion).
    Returns false if the node is not a member, already draining, or too
    few other live members would remain to hold [Config.replicas]
    copies. *)

val plan_target_ok : t -> int -> bool
(** Eligibility of a node as a replica/remaster target for planners and
    the rebalancer: a live, non-draining member. *)

val work_scale : t -> int -> float
(** CPU slowdown multiplier for a node right now: the product of active
    [Fault.Straggler] specs covering it, 1.0 when healthy. Local and
    RPC service work is stretched by this factor. *)

val availability : t -> float
(** Point-in-time availability in [0,1]: the fraction of live nodes
    times the fraction of partitions whose primary is live and not
    blocked (by an election, remaster or lost-quorum wait). A healthy
    cluster reads 1.0; a crashed node degrades both factors until
    elections finish and the node recovers. *)

val fail_node : t -> int -> unit
(** Crash a node: its replicas become unreachable (secondaries are
    dropped from the placement — including the phantom secondary that
    failover's own [Placement.remaster] would otherwise leave on the
    dead node); the fault layer starts dropping messages to and from
    it; every partition whose primary lived there blocks for
    [cfg.election_delay] and is then failed over to a surviving
    secondary. A partition with no surviving replica stays blocked
    until the node recovers (data loss is out of scope). Idempotent. *)

val recover_node : t -> int -> unit
(** Bring a node back empty: it rejoins with no replicas (its state is
    stale) and is repopulated by subsequent planner decisions. The
    rejoin is a new incarnation (epoch bump), so in-flight streams from
    before the crash are recognisably stale. Stale secondaries left on
    the node by layers that remastered partitions away through
    [Placement] directly while it was down are purged (counted as
    [Metrics.replica_purges]). Any
    partition that was blocked for lack of replicas revives on this
    node after resynchronising: the unacknowledged log suffix is
    shipped from a live peer (charged to the network, same lagging-log
    rule as [try_begin_remaster]) and the partition reopens after
    [cfg.election_delay] plus the shipping delay. *)

val worker_saturated : t -> node:int -> bool
(** True when every worker on [node] is leased right now — a fresh
    [acquire_worker] would queue. The executor uses this to decide
    whether a queue-wait span is worth opening. *)

val breaker_state : t -> int -> Lion_sim.Overload.Breaker.state
(** Current breaker state for RPCs to a node ([Closed] when breakers
    are disabled). *)

val remasters_inflight : t -> int
(** Leader transfers currently in flight. At quiescence this must read
    0 — a non-zero value after a full drain means a transfer's
    completion timer was lost, which the liveness auditor reports as
    [Remaster_wedged] (docs/FUZZING.md). *)

val parked_partitions : t -> int list
(** Partitions currently parked as unavailable (no live primary and no
    surviving copy to promote), ascending. Non-empty after a full drain
    with every node recovered is a liveness finding. *)

val total_sheds : t -> int
(** Lifetime sum of requests shed by every worker and messenger queue
    in the cluster (never reset). *)

val node_load : t -> int -> float
(** Busy-time of the node's worker pool since the last counter reset —
    Clay's overload signal and our load-balance measurements. *)

val reset_load_counters : t -> unit

val submit_local :
  t ->
  ?on_fail:(unit -> unit) ->
  ?prio:Lion_sim.Server.prio ->
  node:int -> work:float -> (unit -> unit) -> unit
(** Run [work] µs (stretched by [work_scale]) on one of [node]'s
    workers, then the continuation. A dead node refuses new work, as
    does a full bounded worker queue: [on_fail] (default: ignore) fires
    immediately instead. [prio] sets the admission class. *)

val rpc :
  t ->
  ?on_fail:(unit -> unit) ->
  ?ctx:Lion_trace.Trace.ctx ->
  ?deadline:float ->
  ?prio:Lion_sim.Server.prio ->
  src:int -> dst:int -> bytes:int -> work:float -> (unit -> unit) -> unit
(** Round trip: request message, [work] µs of service on [dst]'s
    messenger pool (stretched by [dst]'s [work_scale]), reply message;
    continuation fires at reply arrival. Local calls skip the wire but
    still consume [work]. If the request or reply is lost (fault layer:
    drop, partition, dead endpoint) or shed by [dst]'s admission queue,
    the sender times out [cfg.rpc_timeout] µs after the attempt began
    and retransmits with exponential backoff ([cfg.rpc_backoff]
    doubling per attempt), up to [cfg.rpc_retries] retries; exhausting
    them records a timeout and fires [on_fail] (default: ignore). A
    retransmission may re-execute [work] on [dst] — modelled services
    are idempotent. Timers are created lazily at the moment of loss, so
    healthy runs schedule no extra events and stay bit-for-bit
    deterministic.

    Overload controls (each off by default — docs/OVERLOAD.md):
    a retransmission is abandoned (and [on_fail] fires) once [deadline]
    — an absolute simulated time — has passed, or when the cluster
    retry budget is dry. When breakers are configured, a remote call to
    a destination whose breaker is open fails fast (no wire traffic);
    terminal failures feed the breaker, delivered replies reset it.
    [prio] sets the admission class on [dst]'s messenger queue.

    [ctx] traces the call: one child span per attempt (wire, remote
    service time and reply each nested under it), with "retry" /
    "timeout" / "deadline" / "budget-denied" / "shed" annotations — see
    {!Lion_trace.Trace}. *)

val acquire_worker :
  t -> ?on_fail:(unit -> unit) -> node:int -> (Lion_sim.Server.lease -> unit) -> unit
(** Hold one of [node]'s workers (a transaction coordinator's thread)
    until [release_worker]. With a bounded worker queue, [on_fail]
    (default: ignore — old behaviour, waits forever) fires if the
    request is shed instead of granted. *)

val release_worker : t -> node:int -> Lion_sim.Server.lease -> unit

val replicate_commit : t -> ?ctx:Lion_trace.Trace.ctx -> int list -> unit
(** [replicate_commit t parts] charges asynchronous replication traffic
    for a commit touching [parts]: one log record per secondary replica. Group-commit batching
    is modelled by the per-byte cost only (no blocking). Lost log
    records are retransmitted with the RPC backoff schedule (the stream
    is idempotent); exhausting the retries records a timeout and starts
    an anti-entropy repair that re-ships the replica's missing log
    suffix from a live peer (with backoff, bounded retries) until its
    applied watermark catches the log — so a long partition cannot
    leave a secondary permanently diverged. Retransmissions draw on the
    cluster retry budget, and a destination with an open breaker skips
    the per-record stream entirely in favour of anti-entropy. [ctx]
    traces each log ship as an async "replication" span. *)
