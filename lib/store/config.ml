type t = {
  nodes : int;
  partitions_per_node : int;
  workers_per_node : int;
  replicas : int;
  max_replicas : int;
  txn_setup_cost : float;
  local_op_cost : float;
  msg_handle_cost : float;
  net_latency : float;
  net_per_byte : float;
  op_msg_bytes : int;
  record_bytes : int;
  remaster_delay : float;
  remaster_cooldown : float;
  partition_bytes : int;
  migration_cpu_cost : float;
  replica_add_duration : float;
  election_delay : float;
  replication_factor_sync : bool;
  group_commit_interval : float;
  batch_size : int;
  rpc_timeout : float;
  rpc_retries : int;
  rpc_backoff : float;
  fault_plan : Lion_sim.Fault.plan;
}

let default =
  {
    nodes = 4;
    partitions_per_node = 12;
    workers_per_node = 8;
    replicas = 2;
    max_replicas = 4;
    txn_setup_cost = 50.0;
    local_op_cost = 15.0;
    msg_handle_cost = 4.0;
    net_latency = 60.0;
    net_per_byte = 0.0085;
    op_msg_bytes = 128;
    record_bytes = 64;
    remaster_delay = 300.0;
    remaster_cooldown = 10_000.0;
    partition_bytes = 1_000_000;
    migration_cpu_cost = 20_000.0;
    replica_add_duration = 200_000.0;
    election_delay = 10_000.0;
    replication_factor_sync = false;
    group_commit_interval = 10_000.0;
    batch_size = 10_000;
    rpc_timeout = 5_000.0;
    rpc_retries = 3;
    rpc_backoff = 200.0;
    fault_plan = Lion_sim.Fault.none;
  }

let total_partitions t = t.nodes * t.partitions_per_node
let total_workers t = t.nodes * t.workers_per_node
let with_nodes t nodes = { t with nodes }
