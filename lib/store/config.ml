type t = {
  nodes : int;
  partitions_per_node : int;
  workers_per_node : int;
  replicas : int;
  max_replicas : int;
  txn_setup_cost : float;
  local_op_cost : float;
  msg_handle_cost : float;
  net_latency : float;
  net_per_byte : float;
  op_msg_bytes : int;
  record_bytes : int;
  remaster_delay : float;
  remaster_cooldown : float;
  partition_bytes : int;
  migration_cpu_cost : float;
  replica_add_duration : float;
  election_delay : float;
  replication_factor_sync : bool;
  group_commit_interval : float;
  batch_size : int;
  rpc_timeout : float;
  rpc_retries : int;
  rpc_backoff : float;
  fault_plan : Lion_sim.Fault.plan;
  queue_cap : int;
  shed_policy : Lion_sim.Server.shed_policy;
  control_priority : bool;
  retry_budget_rate : float;
  retry_budget_burst : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  txn_deadline : float;
  deadline_enforce : bool;
  standby_nodes : int;
  rebalance_rate : float;
  session_tagging : bool;
  reintroduce_phantom_secondary : bool;
  regions : int;
  wan_latency : float;
  wan_per_byte : float;
  min_regions : int;
  epoch_interval : float;
}

let default =
  {
    nodes = 4;
    partitions_per_node = 12;
    workers_per_node = 8;
    replicas = 2;
    max_replicas = 4;
    txn_setup_cost = 50.0;
    local_op_cost = 15.0;
    msg_handle_cost = 4.0;
    net_latency = 60.0;
    net_per_byte = 0.0085;
    op_msg_bytes = 128;
    record_bytes = 64;
    remaster_delay = 300.0;
    remaster_cooldown = 10_000.0;
    partition_bytes = 1_000_000;
    migration_cpu_cost = 20_000.0;
    replica_add_duration = 200_000.0;
    election_delay = 10_000.0;
    replication_factor_sync = false;
    group_commit_interval = 10_000.0;
    batch_size = 10_000;
    rpc_timeout = 5_000.0;
    rpc_retries = 3;
    rpc_backoff = 200.0;
    fault_plan = Lion_sim.Fault.none;
    queue_cap = 0;
    shed_policy = Lion_sim.Server.Reject_newest;
    control_priority = false;
    retry_budget_rate = 0.0;
    retry_budget_burst = 32.0;
    breaker_threshold = 0;
    breaker_cooldown = 50_000.0;
    txn_deadline = 0.0;
    deadline_enforce = true;
    standby_nodes = 0;
    rebalance_rate = 0.0;
    session_tagging = false;
    reintroduce_phantom_secondary = false;
    regions = 0;
    wan_latency = 50_000.0;
    wan_per_byte = 0.05;
    min_regions = 0;
    epoch_interval = 20_000.0;
  }

(* The graceful-degradation preset (docs/OVERLOAD.md): bounded queues
   with reject-newest shedding, control traffic ahead of user work, a
   global retry budget, per-destination breakers and a transaction
   deadline. Every value is a starting point — the overload experiments
   sweep around them. *)
let with_overload_defaults t =
  {
    t with
    queue_cap = 64;
    shed_policy = Lion_sim.Server.Reject_newest;
    control_priority = true;
    retry_budget_rate = 2_000.0;
    retry_budget_burst = 64.0;
    breaker_threshold = 8;
    breaker_cooldown = 50_000.0;
    txn_deadline = 200_000.0;
  }

(* Elastic-membership preset (docs/MEMBERSHIP.md): two standby slots to
   join into, a bounded background migration rate, and session tagging
   so streams from before a crash/rejoin cannot corrupt watermarks. *)
let with_elastic_defaults t =
  { t with standby_nodes = 2; rebalance_rate = 50.0; session_tagging = true }

(* Geo-replication preset (docs/GEO.md): two regions, every partition
   forced to span at least two of them, and the WAN link class at its
   documented starting point (50 ms one-way, ~160 Mbit/s). *)
let with_geo_defaults t = { t with regions = 2; min_regions = 2 }

let total_partitions t = t.nodes * t.partitions_per_node
let total_workers t = t.nodes * t.workers_per_node
let total_slots t = t.nodes + t.standby_nodes
let with_nodes t nodes = { t with nodes }

(* Contiguous block layout: a region is a datacenter of consecutive
   node ids (nodes 0..k-1 = region 0, ...). Deliberately NOT
   round-robin — the seed placement puts partition [p]'s secondaries on
   the nodes right after its primary, so a round-robin map would make
   every partition span regions for free and [min_regions] would never
   bite. *)
let region_of_node t n =
  if t.regions <= 1 then 0
  else
    let slots = total_slots t in
    min (t.regions - 1) (n * t.regions / slots)
