(** Per-partition replication log with epoch-based group commit lag.

    Primaries append one log record per committed write set; secondaries
    acknowledge asynchronously, one group-commit epoch (plus wire time)
    behind. The {e lag} of a partition — records appended in the last
    [sync_delay] — is what a remastering must ship to the promoted
    secondary before the leader handover (§III's "lagging logs will be
    synchronized from the leader to the target secondary"), so the
    cluster charges remaster bytes proportional to it. *)

type t

val create :
  ?sync_delay:float -> interval:float -> partitions:int -> Lion_sim.Engine.t -> t
(** [interval]: group-commit epoch length in µs (bucket granularity of
    the lag window). [sync_delay] defaults to 2 × interval: one epoch
    of buffering plus the replication round trip. *)

val append : t -> part:int -> unit
(** Record one committed write set on the partition's log. *)

val appends : t -> part:int -> int
(** Total records ever appended to the partition's log. *)

val lag : t -> part:int -> int
(** Records appended within the trailing [sync_delay] — not yet
    acknowledged by the secondaries. *)

val total_appends : t -> int
val sync_delay : t -> float
