(** Per-partition replication log with epoch-based group commit lag.

    Primaries append one log record per committed write set; secondaries
    acknowledge asynchronously, one group-commit epoch (plus wire time)
    behind. The {e lag} of a partition — records appended in the last
    [sync_delay] — is what a remastering must ship to the promoted
    secondary before the leader handover (§III's "lagging logs will be
    synchronized from the leader to the target secondary"), so the
    cluster charges remaster bytes proportional to it. *)

type t

val create :
  ?sync_delay:float -> interval:float -> partitions:int -> Lion_sim.Engine.t -> t
(** [interval]: group-commit epoch length in µs (bucket granularity of
    the lag window). [sync_delay] defaults to 2 × interval: one epoch
    of buffering plus the replication round trip. *)

val append : t -> part:int -> unit
(** Record one committed write set on the partition's log. *)

val appends : t -> part:int -> int
(** Total records ever appended to the partition's log. *)

val lag : t -> part:int -> int
(** Records appended within the trailing [sync_delay] — not yet
    acknowledged by the secondaries. *)

val total_appends : t -> int
val sync_delay : t -> float

(** {2 Per-replica apply progress}

    The cluster stamps how far each replica of a partition has applied
    the log: log-ship deliveries, remaster transfers, failover
    elections, replica installs and recovery resyncs all advance it.
    At quiescence every live replica must have applied the full log —
    that is exactly what {!Lion_audit.Divergence} verifies. *)

val applied : t -> part:int -> node:int -> int
(** Last log index [node] has applied for [part] (0 if never stamped —
    the initial placement starts with empty logs). *)

val set_applied : t -> part:int -> node:int -> upto:int -> unit
(** Advance the replica's apply watermark (monotonic: lower values are
    ignored, so late-arriving ships cannot rewind it). *)

val forget_applied : t -> part:int -> node:int -> unit
(** Drop the watermark — the node no longer holds this replica. *)
