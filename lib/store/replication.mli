(** Per-partition replication log with epoch-based group commit lag.

    Primaries append one log record per committed write set; secondaries
    acknowledge asynchronously, one group-commit epoch (plus wire time)
    behind. The {e lag} of a partition — records appended in the last
    [sync_delay] — is what a remastering must ship to the promoted
    secondary before the leader handover (§III's "lagging logs will be
    synchronized from the leader to the target secondary"), so the
    cluster charges remaster bytes proportional to it. *)

type session = { version : int; term : int; epoch : int }
(** Identity of one replication/remaster stream, captured when the
    stream is opened (docs/MEMBERSHIP.md). [version] is the cluster's
    membership version and [term] the partition's primary term — the
    pair openraft calls a [ReplicationSessionId]; [epoch] is the
    destination node's incarnation number, the field that actually
    detects staleness: if the destination crashed and rejoined after
    the stream was opened, its epoch has moved on and the stream's
    bytes describe state the node no longer holds. *)

type t

val create :
  ?sync_delay:float -> interval:float -> partitions:int -> Lion_sim.Engine.t -> t
(** [interval]: group-commit epoch length in µs (bucket granularity of
    the lag window). [sync_delay] defaults to 2 × interval: one epoch
    of buffering plus the replication round trip. *)

val append : t -> part:int -> unit
(** Record one committed write set on the partition's log. *)

val appends : t -> part:int -> int
(** Total records ever appended to the partition's log. *)

val lag : t -> part:int -> int
(** Records appended within the trailing [sync_delay] — not yet
    acknowledged by the secondaries. *)

val total_appends : t -> int
val sync_delay : t -> float

(** {2 Per-replica apply progress}

    The cluster stamps how far each replica of a partition has applied
    the log: log-ship deliveries, remaster transfers, failover
    elections, replica installs and recovery resyncs all advance it.
    At quiescence every live replica must have applied the full log —
    that is exactly what {!Lion_audit.Divergence} verifies. *)

val applied : t -> part:int -> node:int -> int
(** Last log index [node] has applied for [part] (0 if never stamped —
    the initial placement starts with empty logs). *)

val set_applied : t -> part:int -> node:int -> upto:int -> unit
(** Advance the replica's apply watermark (monotonic: lower values are
    ignored, so late-arriving ships cannot rewind it). This is
    {e full-state-transfer} semantics: the durable watermark advances
    (and its row is created) alongside the believed one — use it for
    replica installs, remaster lag sync, failover promotion and
    recovery resync, where the replica really receives the state. *)

val durable : t -> part:int -> node:int -> int
(** Ground truth behind [applied]: the log index the replica's storage
    actually holds (0 if never seeded or installed). Always ≤ the
    believed watermark except transiently; the divergence audit flags
    any live replica whose durable watermark trails the log while the
    believed one claims it is caught up — the stale-stream corruption
    signature (docs/MEMBERSHIP.md). *)

val seed_replica : t -> part:int -> node:int -> unit
(** Create the durable row (at 0) for a replica that exists from the
    start — the cluster seeds every initial holder at creation. *)

val ack_stream : t -> part:int -> node:int -> upto:int -> stale:bool -> reject:bool -> unit
(** Apply one {e incremental} stream delivery (per-commit log ship or
    legacy-session message). [stale] says the stream's session predates
    the destination's current incarnation; [reject] (the
    [Config.session_tagging] behaviour) refuses such a delivery
    outright. An accepted delivery always advances the believed
    watermark; the durable watermark advances only when the stream is
    fresh {e and} a durable row exists — an incremental stream cannot
    conjure up the prefix it extends. A stale accepted delivery is thus
    exactly the hazard: bookkeeping says caught-up, storage says
    nothing. *)

val forget_applied : t -> part:int -> node:int -> unit
(** Drop both watermarks — the node no longer holds this replica. *)
