(** Diagnostics over a replica placement: how replicas and primaries are
    distributed, how balanced the layout is, and how well a set of
    co-access pairs is served — used by examples, tests and the
    operator-facing CLI to explain what the planner did. *)

val primaries_per_node : Placement.t -> int array
val replicas_per_node : Placement.t -> int array

val imbalance : Placement.t -> float
(** max/mean ratio of primaries per node; 1.0 = perfectly even. *)

val coverage : Placement.t -> int list list -> float
(** Fraction of the given partition sets for which some single node
    holds a replica of every member (i.e. convertible to single-node
    execution by remastering at most). *)

val colocated : Placement.t -> int list list -> float
(** Fraction of the given partition sets whose members' primaries
    already share a node (single-node without any remastering). *)

val pp : Format.formatter -> Placement.t -> unit
(** Compact per-node layout dump ("N0: P0* P3 P7* ..."; * marks a
    primary). *)
