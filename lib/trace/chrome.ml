let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pid_of_node node = node + 1

let add_event buf ~first fmt =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_string buf "    ";
  Printf.ksprintf (Buffer.add_string buf) fmt

let emit_trace buf ~first (data : Trace.trace) =
  let spans = Trace.spans_in_order data in
  let tid = data.Trace.trace_id in
  Array.iter
    (fun (s : Trace.span) ->
      let dur = Trace.span_duration s in
      add_event buf ~first
        {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"txn":%d,"span":%d,"part":%d%s}}|}
        (escape s.Trace.name) (escape s.Trace.phase) s.Trace.start_ts dur
        (pid_of_node s.Trace.node) tid data.Trace.txn_id s.Trace.id
        s.Trace.part
        (if Trace.is_open s then {|,"open":true|} else "");
      List.iter
        (fun (ts, msg) ->
          add_event buf ~first
            {|{"name":"%s","cat":"%s","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t"}|}
            (escape msg) (escape s.Trace.phase) ts (pid_of_node s.Trace.node)
            tid)
        (List.rev s.Trace.notes))
    spans

let to_json ?(label = "lion") ?(instants = []) traces =
  let traces =
    List.sort (fun a b -> compare a.Trace.trace_id b.Trace.trace_id) traces
  in
  (* Metadata: name every node track that appears. *)
  let nodes = Hashtbl.create 8 in
  List.iter
    (fun data ->
      Array.iter
        (fun (s : Trace.span) -> Hashtbl.replace nodes s.Trace.node ())
        (Trace.spans_in_order data))
    traces;
  List.iter (fun (_, node, _) -> Hashtbl.replace nodes node ()) instants;
  let node_list = List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes []) in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun node ->
      let name = if node < 0 then "clients" else Printf.sprintf "node %d" node in
      add_event buf ~first
        {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}|}
        (pid_of_node node) name)
    node_list;
  (* Cluster-level fault/lifecycle instants: global scope ("s":"g")
     draws them as full-height markers across every track, so crashes
     and partition windows line up visually with the spans they
     disrupt. *)
  List.iter
    (fun (ts, node, name) ->
      add_event buf ~first
        {|{"name":"%s","cat":"fault","ph":"i","ts":%.3f,"pid":%d,"tid":0,"s":"g"}|}
        (escape name) ts (pid_of_node node))
    instants;
  List.iter
    (fun data ->
      (* One thread-name metadata row per trace so Perfetto labels the
         row with the transaction it follows. *)
      List.iter
        (fun node ->
          add_event buf ~first
            {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"trace %d (txn %d)"}}|}
            (pid_of_node node) data.Trace.trace_id data.Trace.trace_id
            data.Trace.txn_id)
        node_list;
      emit_trace buf ~first data)
    traces;
  Buffer.add_string buf
    (Printf.sprintf
       "\n  ],\n\"displayTimeUnit\":\"ms\",\"otherData\":{\"label\":\"%s\",\"traces\":%d}}\n"
       (escape label) (List.length traces));
  Buffer.contents buf

let write ~path ?label ?instants traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?label ?instants traces))
