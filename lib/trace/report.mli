(** Top-K slow-transaction report with per-phase critical-path blame.

    Renders, for the slowest retained traces of a tracer, where each
    transaction's latency went: total duration, abort count, and the
    critical-path attribution per phase ({!Critical_path}), plus the
    chain of gating spans. The per-phase blame of each trace sums to
    its recorded latency — the report is the textual companion of the
    Chrome/Perfetto export. *)

val top_slowest : ?k:int -> Trace.t -> Trace.trace list
(** The [k] (default 10) slowest retained traces, slowest first;
    deterministic tie-break on trace id. *)

val pp_trace : Format.formatter -> Trace.trace -> unit
(** One trace: header, phase blame table, critical-path chain. *)

val print : ?top:int -> ?label:string -> Trace.t -> unit
(** Print the tracer summary (sampled/finished counts, policy) and the
    [top] (default 5) slowest traces to stdout. *)
