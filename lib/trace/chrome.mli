(** Chrome [trace_event] JSON export.

    Produces the legacy JSON trace format that both
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}
    load directly: one complete ("ph":"X") event per span, instant
    ("ph":"i") events for span annotations (retries, timeouts, drops,
    aborts), and process-name metadata so tracks group by node.
    Timestamps are engine µs verbatim.

    Track mapping: pid = node + 1 (pid 0 is the "clients" track for
    client-side / cluster-wide spans), tid = trace id — each traced
    transaction gets its own row within each node it touched.

    Output is deterministic: traces ordered by trace id, spans by span
    id, fixed float formatting — the same run produces a byte-identical
    file. *)

val to_json :
  ?label:string ->
  ?instants:(float * int * string) list ->
  Trace.trace list ->
  string
(** The full JSON document. [label] is stored as trace-level metadata
    (shown by Perfetto in the process list). [instants] — cluster
    lifecycle events as [(ts, node, name)], e.g. {!Trace.instants} —
    are emitted as global-scope instant markers ("ph":"i", "s":"g")
    that draw across all tracks, lining fault injections up with the
    transaction spans they disrupt. *)

val write :
  path:string ->
  ?label:string ->
  ?instants:(float * int * string) list ->
  Trace.trace list ->
  unit
(** [to_json] straight to a file. *)
