let top_slowest ?(k = 10) t =
  let by_slowest (a : Trace.trace) (b : Trace.trace) =
    match compare b.Trace.duration a.Trace.duration with
    | 0 -> compare a.Trace.trace_id b.Trace.trace_id
    | c -> c
  in
  let sorted = List.sort by_slowest (Trace.retained t) in
  List.filteri (fun i _ -> i < k) sorted

let pp_trace fmt (data : Trace.trace) =
  Format.fprintf fmt "trace %d (txn %d): %.1f us, %d span(s), %d abort(s)%s@."
    data.Trace.trace_id data.Trace.txn_id data.Trace.duration
    data.Trace.n_spans data.Trace.aborts
    (if data.Trace.ok then "" else " [gave up]");
  let totals = Critical_path.phase_totals data in
  let sum = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 totals in
  Format.fprintf fmt "  critical path by phase (sums to latency):@.";
  List.iter
    (fun (phase, d) ->
      Format.fprintf fmt "    %-12s %10.1f us  %5.1f%%@." phase d
        (if sum > 0.0 then 100.0 *. d /. sum else 0.0))
    totals;
  let chain = Critical_path.path_spans data in
  let shown = List.filteri (fun i _ -> i < 12) chain in
  Format.fprintf fmt "  gating chain (%d step(s)%s):@." (List.length chain)
    (if List.length chain > 12 then ", first 12" else "");
  List.iter
    (fun (s : Trace.span) ->
      Format.fprintf fmt "    [%10.1f .. %10.1f] %-18s %-11s node=%d%s%s@."
        s.Trace.start_ts s.Trace.end_ts s.Trace.name s.Trace.phase
        s.Trace.node
        (if s.Trace.part >= 0 then Printf.sprintf " part=%d" s.Trace.part
         else "")
        (match s.Trace.notes with
        | [] -> ""
        | ns ->
            " {"
            ^ String.concat ", " (List.rev_map (fun (_, m) -> m) ns)
            ^ "}"))
    shown

let print ?(top = 5) ?(label = "") t =
  let policy_name =
    match Trace.policy t with
    | Trace.All -> "all"
    | Trace.Every n -> Printf.sprintf "every %d" n
    | Trace.Slowest k -> Printf.sprintf "slowest %d" k
    | Trace.On_abort -> "on-abort"
  in
  Printf.printf "--- trace report%s: %d txn(s) seen, %d sampled, %d finished, policy %s ---\n"
    (if label = "" then "" else " " ^ label)
    (Trace.started t) (Trace.sampled t) (Trace.finished t) policy_name;
  let fmt = Format.std_formatter in
  List.iter (fun data -> pp_trace fmt data) (top_slowest ~k:top t);
  Format.pp_print_flush fmt ()
