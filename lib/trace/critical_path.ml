type segment = { span : Trace.span; from_ts : float; until_ts : float }

(* Backwards walk: to explain [lo, hi] of span [s], find the child that
   finished last within the window — that completion gated [s] — blame
   [child.end .. hi] on [s] itself (it ran alone there), recurse into
   the child for its own interval, and continue left of the child's
   start. Children still open, ending outside the window, or
   zero-length can never be the gating step. The result partitions
   [lo, hi] exactly. *)
let segments data =
  let spans = Trace.spans_in_order data in
  let n = Array.length spans in
  if n = 0 then []
  else (
    let children = Array.make n [] in
    for i = n - 1 downto 1 do
      let p = spans.(i).Trace.parent in
      if p >= 0 && p < n then children.(p) <- i :: children.(p)
    done;
    let acc = ref [] in
    let rec walk (s : Trace.span) ~lo ~hi =
      if hi > lo then (
        let best = ref None in
        List.iter
          (fun ci ->
            let c = spans.(ci) in
            if
              (not (Trace.is_open c))
              && c.Trace.end_ts <= hi
              && c.Trace.end_ts > lo
              && c.Trace.start_ts < c.Trace.end_ts
            then
              match !best with
              | None -> best := Some c
              | Some b ->
                  if
                    c.Trace.end_ts > b.Trace.end_ts
                    || (c.Trace.end_ts = b.Trace.end_ts && c.Trace.id > b.Trace.id)
                  then best := Some c)
          children.(s.Trace.id);
        match !best with
        | None -> acc := { span = s; from_ts = lo; until_ts = hi } :: !acc
        | Some c ->
            let c_hi = c.Trace.end_ts in
            let c_lo = Stdlib.max lo c.Trace.start_ts in
            if hi > c_hi then
              acc := { span = s; from_ts = c_hi; until_ts = hi } :: !acc;
            walk c ~lo:c_lo ~hi:c_hi;
            walk s ~lo ~hi:c_lo)
    in
    let root = spans.(0) in
    let root_end =
      if Trace.is_open root then root.Trace.start_ts else root.Trace.end_ts
    in
    walk root ~lo:root.Trace.start_ts ~hi:root_end;
    List.sort (fun a b -> compare a.from_ts b.from_ts) !acc)

let phase_totals data =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun seg ->
      let p = seg.span.Trace.phase in
      let d = seg.until_ts -. seg.from_ts in
      match Hashtbl.find_opt tbl p with
      | Some acc -> Hashtbl.replace tbl p (acc +. d)
      | None ->
          Hashtbl.add tbl p d;
          order := p :: !order)
    (segments data);
  List.rev !order
  |> List.map (fun p -> (p, Hashtbl.find tbl p))
  |> List.stable_sort (fun (_, a) (_, b) -> compare b a)

let path_spans data =
  let segs = segments data in
  List.rev
    (List.fold_left
       (fun acc seg ->
         match acc with
         | prev :: _ when prev.Trace.id = seg.span.Trace.id -> acc
         | _ -> seg.span :: acc)
       [] segs)
