(** Causal transaction tracing for the discrete-event substrate.

    A trace follows one transaction through every causally-linked step
    of its life — execution groups, remaster transfers, 2PC rounds,
    individual network messages, retries and group-commit waits — as a
    tree of timed {!span}s. The instrumented layers ([Network.send],
    [Cluster.rpc], the protocol engines) each open a child span under
    the context they were handed and close it when their step
    completes, so a finished trace is a faithful causal record of where
    the transaction's latency went.

    Design constraints (and how they are met):
    - {b Zero cost when disabled.} Instrumented code holds a
      [ctx option]; with tracing off every context is [None] and every
      combinator is a constant-time no-op that allocates nothing. No
      extra simulation events are ever scheduled — spans only read the
      clock — so a disabled tracer leaves experiment output bit-for-bit
      unchanged, and an enabled one changes no simulation outcome.
    - {b Determinism.} Span and trace ids are sequential, timestamps
      come from the deterministic engine clock, and retention breaks
      ties on trace id: the same seed yields a byte-identical exported
      trace file.
    - {b Bounded memory.} Sampling policies bound how many transactions
      are traced or retained; a per-trace span cap stops pathological
      retry storms from accumulating unbounded spans. *)

(** One timed step of a transaction, linked to its causal parent.
    Timestamps are engine time (µs). [end_ts] is [neg_infinity] while
    the span is still open. *)
type span = {
  id : int;  (** per-trace, in creation order; 0 is the root *)
  parent : int;  (** parent span id, -1 for the root *)
  name : string;
  phase : string;
      (** latency-taxonomy bucket, matching [Metrics.phase_name]:
          "execution", "prepare", "commit", "remaster", "scheduling" or
          "replication" *)
  node : int;  (** node the step ran on, -1 for client/cluster-wide *)
  part : int;  (** partition involved, -1 when not partition-specific *)
  start_ts : float;
  mutable end_ts : float;
  mutable notes : (float * string) list;
      (** timestamped instant annotations (retries, timeouts, drops,
          aborts), newest first *)
}

(** A completed (or in-flight) transaction trace: the span tree plus
    outcome metadata. *)
type trace = {
  trace_id : int;  (** sequential per tracer *)
  txn_id : int;
  mutable spans : span list;  (** newest first; reverse for id order *)
  mutable n_spans : int;
  mutable aborts : int;  (** aborted attempts / epoch re-queues *)
  mutable ok : bool;  (** final verdict, set at [finish_txn] *)
  mutable duration : float;  (** root latency, µs; set at [finish_txn] *)
}

(** Which transactions are traced, and which finished traces are kept:
    - [All]: trace and keep everything (up to [max_keep]);
    - [Every n]: head sampling — trace every [n]th submitted
      transaction (up to [max_keep] kept);
    - [Slowest k]: trace everything, retain only the [k] slowest
      completed transactions (reservoir of size [k]);
    - [On_abort]: trace everything, retain only transactions that
      suffered at least one abort/re-queue (up to [max_keep]). *)
type policy = All | Every of int | Slowest of int | On_abort

type t
(** A tracer: sampling state plus the retained traces of one run. *)

type ctx
(** A trace context: one open span within one trace. Instrumented code
    passes [ctx option] down the causal chain; [None] means "not
    traced" and makes every operation free. *)

val create : ?policy:policy -> ?max_keep:int -> ?span_cap:int -> unit -> t
(** Fresh tracer. [policy] defaults to [Slowest 10]; [max_keep]
    (default 10_000) bounds retention for [All]/[Every]/[On_abort];
    [span_cap] (default 4096) bounds spans per trace — beyond it, child
    creation returns [None] (deeper steps go untraced). *)

val policy : t -> policy

val started : t -> int
(** Transactions offered to [start_txn]. *)

val sampled : t -> int
(** Transactions actually traced. *)

val finished : t -> int
(** Traced transactions that completed. *)

val retained : t -> trace list
(** Kept traces, ascending trace id (deterministic). *)

val instant : ?node:int -> ts:float -> t -> string -> unit
(** Record a cluster-level instant event — a fault injection, an
    election, a partition heal — independent of any transaction.
    [node] is the node concerned, [-1] (the default) for cluster-wide
    events. Exported as Perfetto instant markers. *)

val instants : t -> (float * int * string) list
(** All recorded instants as [(ts, node, label)], sorted by timestamp
    (stable: same-time events keep recording order). *)

val start_txn : t -> ts:float -> txn_id:int -> ctx option
(** Sampling decision for one transaction. [Some ctx] opens the root
    span (name "txn", phase "scheduling"); [None] means skip. *)

val child :
  ?node:int ->
  ?part:int ->
  ?phase:string ->
  name:string ->
  ts:float ->
  ctx option ->
  ctx option
(** Open a child span under the context's span. [node]/[part]/[phase]
    default to the parent's. Returns [None] on [None] input or when the
    trace hit its span cap. *)

val finish : ts:float -> ctx option -> unit
(** Close the context's span. No-op on [None] or an already-closed
    span. *)

val note : ts:float -> string -> ctx option -> unit
(** Attach a timestamped annotation (e.g. "retry", "timeout", "drop")
    to the context's span. *)

val note_abort : ts:float -> ctx option -> unit
(** Record an aborted attempt: bumps the trace's abort counter (the
    [On_abort] retention signal) and annotates the span. *)

val finish_txn : ts:float -> ok:bool -> ctx option -> unit
(** Close the trace: ends the root span (the context must be the root),
    stamps duration and verdict, and applies the retention policy. *)

val is_open : span -> bool
val span_duration : span -> float
(** [end_ts - start_ts], 0 for open spans. *)

val spans_in_order : trace -> span array
(** The trace's spans indexed by span id (creation order). *)
