type span = {
  id : int;
  parent : int;
  name : string;
  phase : string;
  node : int;
  part : int;
  start_ts : float;
  mutable end_ts : float;
  mutable notes : (float * string) list;
}

type trace = {
  trace_id : int;
  txn_id : int;
  mutable spans : span list;
  mutable n_spans : int;
  mutable aborts : int;
  mutable ok : bool;
  mutable duration : float;
}

type policy = All | Every of int | Slowest of int | On_abort

type t = {
  pol : policy;
  max_keep : int;
  span_cap : int;
  mutable n_started : int;
  mutable n_sampled : int;
  mutable n_finished : int;
  mutable next_trace_id : int;
  (* For [Slowest k]: ascending by (duration, trace_id) so the head is
     the first evicted. Otherwise insertion order (ascending trace id). *)
  mutable kept : trace list;
  mutable n_kept : int;
  (* Cluster-level instant events (fault injections, elections…):
     (ts, node, label), newest first; node -1 = cluster-wide. *)
  mutable rev_instants : (float * int * string) list;
}

type ctx = { tracer : t; data : trace; span : span }

let create ?(policy = Slowest 10) ?(max_keep = 10_000) ?(span_cap = 4096) () =
  {
    pol = policy;
    max_keep;
    span_cap;
    n_started = 0;
    n_sampled = 0;
    n_finished = 0;
    next_trace_id = 0;
    kept = [];
    n_kept = 0;
    rev_instants = [];
  }

let policy t = t.pol
let started t = t.n_started
let sampled t = t.n_sampled
let finished t = t.n_finished

let retained t =
  List.sort (fun a b -> compare a.trace_id b.trace_id) t.kept

let instant ?(node = -1) ~ts t name = t.rev_instants <- (ts, node, name) :: t.rev_instants

let instants t =
  List.stable_sort
    (fun (a, _, _) (b, _, _) -> compare a b)
    (List.rev t.rev_instants)

let is_open s = s.end_ts = neg_infinity
let span_duration s = if is_open s then 0.0 else s.end_ts -. s.start_ts

let spans_in_order data =
  let arr = Array.of_list data.spans in
  let n = Array.length arr in
  (* spans is newest-first and ids are 0..n-1: reverse into id order. *)
  Array.init n (fun i -> arr.(n - 1 - i))

let start_txn t ~ts ~txn_id =
  let take =
    match t.pol with
    | All | Slowest _ | On_abort -> true
    | Every n -> n <= 1 || t.n_started mod n = 0
  in
  t.n_started <- t.n_started + 1;
  if not take then None
  else (
    t.n_sampled <- t.n_sampled + 1;
    let root =
      {
        id = 0;
        parent = -1;
        name = "txn";
        phase = "scheduling";
        node = -1;
        part = -1;
        start_ts = ts;
        end_ts = neg_infinity;
        notes = [];
      }
    in
    let data =
      {
        trace_id = t.next_trace_id;
        txn_id;
        spans = [ root ];
        n_spans = 1;
        aborts = 0;
        ok = false;
        duration = 0.0;
      }
    in
    t.next_trace_id <- t.next_trace_id + 1;
    Some { tracer = t; data; span = root })

let child ?node ?part ?phase ~name ~ts octx =
  match octx with
  | None -> None
  | Some { tracer; data; span = parent } ->
      if data.n_spans >= tracer.span_cap then None
      else (
        let s =
          {
            id = data.n_spans;
            parent = parent.id;
            name;
            phase = (match phase with Some p -> p | None -> parent.phase);
            node = (match node with Some n -> n | None -> parent.node);
            part = (match part with Some p -> p | None -> parent.part);
            start_ts = ts;
            end_ts = neg_infinity;
            notes = [];
          }
        in
        data.spans <- s :: data.spans;
        data.n_spans <- data.n_spans + 1;
        Some { tracer; data; span = s })

let finish ~ts octx =
  match octx with
  | None -> ()
  | Some { span; _ } -> if is_open span then span.end_ts <- ts

let note ~ts msg octx =
  match octx with
  | None -> ()
  | Some { span; _ } -> span.notes <- (ts, msg) :: span.notes

let note_abort ~ts octx =
  match octx with
  | None -> ()
  | Some { data; span; _ } ->
      data.aborts <- data.aborts + 1;
      span.notes <- (ts, "abort") :: span.notes

(* Slowest-k reservoir: [kept] ascending by (duration, trace_id); evict
   the head (fastest) when over capacity. Deterministic tie-break on
   trace id keeps exports byte-identical across identical runs. *)
let insert_slowest t data k =
  let before (a : trace) (b : trace) =
    a.duration < b.duration
    || (a.duration = b.duration && a.trace_id < b.trace_id)
  in
  let rec ins = function
    | [] -> [ data ]
    | x :: rest -> if before data x then data :: x :: rest else x :: ins rest
  in
  t.kept <- ins t.kept;
  t.n_kept <- t.n_kept + 1;
  if t.n_kept > k then (
    (match t.kept with [] -> () | _ :: rest -> t.kept <- rest);
    t.n_kept <- t.n_kept - 1)

let finish_txn ~ts ~ok octx =
  match octx with
  | None -> ()
  | Some { tracer; data; span } ->
      if is_open span then span.end_ts <- ts;
      data.ok <- ok;
      data.duration <- span.end_ts -. span.start_ts;
      tracer.n_finished <- tracer.n_finished + 1;
      let keep_plain () =
        if tracer.n_kept < tracer.max_keep then (
          tracer.kept <- data :: tracer.kept;
          tracer.n_kept <- tracer.n_kept + 1)
      in
      (match tracer.pol with
      | All | Every _ -> keep_plain ()
      | On_abort -> if data.aborts > 0 then keep_plain ()
      | Slowest k -> insert_slowest tracer data (Stdlib.max 1 k))
