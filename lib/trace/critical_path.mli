(** Critical-path extraction over a finished trace.

    The critical path is the longest causal chain through the span
    tree: walking backwards from the root's end, each instant of the
    transaction's lifetime is attributed to the deepest span that was
    actually gating progress at that instant — the child whose
    completion the parent was waiting on, recursively. Concurrent
    children (e.g. a 2PC prepare fan-out) resolve to the one that
    finished last before the parent could proceed; time no child
    accounts for (setup, retry backoff, queueing) falls to the parent
    span itself.

    The produced segments exactly partition the root interval, so the
    per-phase totals sum to the transaction's recorded latency (up to
    float-addition rounding) — the invariant the top-K slow-transaction
    report relies on. *)

type segment = {
  span : Trace.span;  (** the span blamed for this slice of time *)
  from_ts : float;
  until_ts : float;
}

val segments : Trace.trace -> segment list
(** Critical-path segments in chronological order; they partition
    [[root.start_ts, root.end_ts]]. Open spans (never finished — e.g.
    async replication still in flight) and spans outliving the window
    under inspection are never blamed. *)

val phase_totals : Trace.trace -> (string * float) list
(** Total critical-path time per phase name, descending by time.
    Sums to the trace's duration within float tolerance. *)

val path_spans : Trace.trace -> Trace.span list
(** The distinct spans on the critical path, chronological by first
    appearance (consecutive duplicate segments merged). *)
