(* Frozen copy of the seed DES engine (commit 61f7240) over
   [Seed_pqueue]; see that file. Also serves as a machine-speed probe:
   its ns/op against a committed baseline calibrates wall-time
   regression gates across machines. Do not optimize. *)

module Pqueue = Seed_pqueue

type t = { mutable clock : float; events : (unit -> unit) Pqueue.t }

let create () = { clock = 0.0; events = Pqueue.create () }
let now t = t.clock

let at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Pqueue.push t.events time f

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(t.clock +. delay) f

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.events with
    | Some (time, _) when time <= deadline -> (
        match Pqueue.pop t.events with
        | Some (time, f) ->
            t.clock <- time;
            f ()
        | None -> continue := false)
    | _ -> continue := false
  done;
  if deadline > t.clock then t.clock <- deadline

let run_all t ?(max_events = 100_000_000) () =
  let remaining = ref max_events in
  let continue = ref true in
  while !continue && !remaining > 0 do
    match Pqueue.pop t.events with
    | Some (time, f) ->
        t.clock <- time;
        f ();
        decr remaining
    | None -> continue := false
  done

let pending t = Pqueue.length t.events
let seconds s = s *. 1e6
let ms x = x *. 1e3
