(* The named perf scenarios behind [bin/perf_run.exe] / `make perf`.

   Three layers, mirroring where the simulator spends its time:

   - kernel micro: raw event-heap churn ([pqueue_churn]);
   - engine micro: event-loop drains ([engine_drain] on the optimized
     engine, [engine_drain_seed] on the frozen pre-optimization copy —
     their ratio is the tracked speedup, and the seed scenario doubles
     as a machine-speed probe for cross-machine baseline comparison),
     plus [network_storm] and [metrics_record] for the two per-event
     service layers;
   - end-to-end: one small uniform-YCSB cell per protocol family
     ([ycsb_2pc], [ycsb_star], [ycsb_lion]), where simulated txns/sec
     is the headline number.

   Scenario shapes are part of the BENCH_*.json contract: changing a
   shape (chain count, op size, cell scale) invalidates comparison
   against older files, so bump the scenario name if you must change
   its shape. *)

module Engine = Lion_sim.Engine
module Pqueue = Lion_kernel.Pqueue
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Config = Lion_store.Config

(* ---- engine drain ------------------------------------------------ *)

(* 16384 concurrent self-rescheduling timer chains — a cluster-scale
   in-flight event population — hopping pseudo-randomly 1..8 µs ahead.
   One op drains [drain_events] events. The same shape runs on both
   engines; only the scheduling API differs (pre-allocated handler +
   int payload vs the seed's closure per event, which is exactly the
   per-event cost the optimization removed). *)
let drain_chains = 16384
let drain_events = 400_000
let delays = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |]

let engine_drain () =
  let e = Engine.create () in
  let hops = ref 0 in
  let handler = ref (fun _ -> ()) in
  (handler :=
     fun (i : int) ->
       incr hops;
       if !hops < drain_events then
         Engine.schedule_apply e ~delay:(Array.unsafe_get delays (i land 7)) !handler i);
  for i = 0 to drain_chains - 1 do
    Engine.schedule_apply e ~delay:(Array.unsafe_get delays (i land 7)) !handler i
  done;
  Engine.run_all e ();
  (Engine.events_processed e, 0)

let engine_drain_seed () =
  let e = Seed_engine.create () in
  let hops = ref 0 in
  let processed = ref 0 in
  let handler = ref (fun _ -> ()) in
  (handler :=
     fun (i : int) ->
       incr processed;
       incr hops;
       if !hops < drain_events then
         Seed_engine.schedule e
           ~delay:(Array.unsafe_get delays (i land 7))
           (fun () -> !handler i));
  for i = 0 to drain_chains - 1 do
    Seed_engine.schedule e
      ~delay:(Array.unsafe_get delays (i land 7))
      (fun () -> !handler i)
  done;
  Seed_engine.run_all e ();
  (!processed, 0)

(* ---- pqueue churn ------------------------------------------------ *)

(* Steady-state heap: pop the minimum, push it back a window ahead so
   it lands near the leaves (the DES access pattern). Raw int-keyed
   API; events = ops. *)
let churn_occupancy = 16384
let churn_ops = 400_000

let pqueue_churn () =
  let q = Pqueue.create () in
  for i = 0 to churn_occupancy - 1 do
    Pqueue.push_key q (i * 7) i
  done;
  for _ = 1 to churn_ops do
    let v = Pqueue.pop_min q in
    Pqueue.push_key q (Pqueue.min_key q + (churn_occupancy * 8)) v
  done;
  (churn_ops, 0)

(* ---- network storm ----------------------------------------------- *)

(* Relay ring: every delivery forwards to the next node until the
   message budget is spent. Exercises [Network.send]'s pooled delivery
   path (alloc/release of message records, fault-free branch). *)
let storm_nodes = 64
let storm_msgs = 200_000

let network_storm () =
  let e = Engine.create () in
  let net = Network.create e in
  let sent = ref 0 in
  let rec relay src =
    if !sent < storm_msgs then (
      incr sent;
      let dst = (src + 1) mod storm_nodes in
      Network.send net ~src ~dst ~bytes:128 (fun () -> relay dst))
  in
  for i = 0 to storm_nodes - 1 do
    relay (i * 7 mod storm_nodes)
  done;
  Engine.run_all e ();
  (Engine.events_processed e, 0)

(* ---- geo network ------------------------------------------------- *)

(* The relay ring again, with a 4-region topology and metrics installed
   and a stride that crosses a region boundary on most hops: every send
   takes the region-classification branch, pays the WAN latency model
   and bumps the wan/lan byte counters. Gated against baseline like the
   region-free storm, bounding what the geo branch may allocate on the
   per-message path. *)
let geo_network () =
  let e = Engine.create () in
  let m = Metrics.create e in
  let topology =
    {
      Network.regions = 4;
      region_of = Array.init storm_nodes (fun n -> n * 4 / storm_nodes);
      wan_latency = 50_000.0;
      wan_per_byte = 0.05;
    }
  in
  let net = Network.create ~topology ~metrics:m e in
  let sent = ref 0 in
  let rec relay src =
    if !sent < storm_msgs then (
      incr sent;
      let dst = (src + 17) mod storm_nodes in
      Network.send net ~src ~dst ~bytes:128 (fun () -> relay dst))
  in
  for i = 0 to storm_nodes - 1 do
    relay (i * 7 mod storm_nodes)
  done;
  Engine.run_all e ();
  (Engine.events_processed e, 0)

(* ---- metrics record ---------------------------------------------- *)

(* The per-commit accounting path: latency reservoir, phase breakdown,
   per-second series. One op = [metrics_commits] record_commit calls
   (plus a sprinkling of the cheap counters). *)
let metrics_commits = 200_000

let metrics_record () =
  let e = Engine.create () in
  let m = Metrics.create e in
  let phases =
    [ (Metrics.Execution, 120.0); (Metrics.Prepare, 60.0); (Metrics.Commit, 45.0) ]
  in
  for i = 1 to metrics_commits do
    Metrics.record_commit m
      ~latency:(200.0 +. float_of_int (i land 1023))
      ~single_node:(i land 3 = 0) ~remastered:(i land 15 = 0) ~phases;
    if i land 7 = 0 then Metrics.record_retry m;
    if i land 31 = 0 then Metrics.record_abort m
  done;
  (metrics_commits, metrics_commits)

(* ---- end-to-end YCSB cells --------------------------------------- *)

(* One small uniform-YCSB cell (all-distributed transactions, as in
   the fig6 ablation) per protocol family: blocking 2PC, Star's
   batched full replication, and Lion's adaptive replica provision.
   Scaled so one op is a few hundred ms of wall time. *)
let ycsb_cell ~batch make () =
  let cfg = Config.default in
  let rc = { Runner.quick with warmup = 0.3; duration = 0.7 } in
  let r =
    Runner.run ~batch ~cfg ~make ~gen:(Workloads.ycsb ~cross:1.0 cfg) rc
  in
  (r.Runner.engine_events, r.Runner.commits)

let ycsb_2pc = ycsb_cell ~batch:false (fun cl -> Lion_protocols.Twopc.create cl)
let ycsb_star = ycsb_cell ~batch:true (fun cl -> Lion_protocols.Star.create cl)

let ycsb_lion =
  ycsb_cell ~batch:true (fun cl ->
      Lion_core.Batch_mode.create ~name:"Lion"
        ~config:{ Lion_core.Planner.default_config with Lion_core.Planner.predict = true; use_lstm = false }
        cl)

(* ------------------------------------------------------------------ *)

let all : Scenario.spec list =
  [
    {
      Scenario.name = "engine_drain";
      descr =
        Printf.sprintf
          "optimized engine: drain %d events across %d timer chains"
          drain_events drain_chains;
      run = engine_drain;
    };
    {
      name = "engine_drain_seed";
      descr =
        Printf.sprintf
          "frozen seed engine, same drain (baseline + machine-speed probe)";
      run = engine_drain_seed;
    };
    {
      name = "pqueue_churn";
      descr =
        Printf.sprintf "raw heap pop+push at occupancy %d" churn_occupancy;
      run = pqueue_churn;
    };
    {
      name = "network_storm";
      descr =
        Printf.sprintf "%d-hop relay ring over %d nodes (pooled send path)"
          storm_msgs storm_nodes;
      run = network_storm;
    };
    {
      name = "geo_network";
      descr =
        Printf.sprintf
          "%d-hop relay ring over %d nodes in 4 regions (WAN-classified send path)"
          storm_msgs storm_nodes;
      run = geo_network;
    };
    {
      name = "metrics_record";
      descr = Printf.sprintf "%d record_commit calls" metrics_commits;
      run = metrics_record;
    };
    {
      name = "ycsb_2pc";
      descr = "small uniform-YCSB cell, blocking 2PC";
      run = ycsb_2pc;
    };
    {
      name = "ycsb_star";
      descr = "small uniform-YCSB cell, Star (batched full replication)";
      run = ycsb_star;
    };
    {
      name = "ycsb_lion";
      descr = "small uniform-YCSB cell, Lion (adaptive replica provision)";
      run = ycsb_lion;
    };
  ]

let find name =
  List.find_opt (fun (s : Scenario.spec) -> s.Scenario.name = name) all

let names () = List.map (fun (s : Scenario.spec) -> s.Scenario.name) all
