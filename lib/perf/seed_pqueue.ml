(* Frozen copy of the seed event heap (commit 61f7240), kept verbatim so
   the perf harness can measure the optimized engine against the exact
   pre-optimization baseline in the same process. Do not "fix" or
   optimize this file. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  if t.size > 0 then (
    let nd = Array.make ncap t.data.(0) in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd)
  else t.data <- [||]

let rec sift_up t i =
  if i > 0 then (
    let parent = (i - 1) / 2 in
    if entry_lt t.data.(i) t.data.(parent) then (
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent))

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && entry_lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then (
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest)

let push t key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then (
    if t.size = 0 then t.data <- Array.make 16 e else grow t);
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else (
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then (
      t.data.(0) <- t.data.(t.size);
      sift_down t 0);
    Some (top.key, top.value))

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let copy = { data = Array.sub t.data 0 t.size; size = t.size; next_seq = 0 } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some (k, v) -> drain ((k, v) :: acc)
  in
  drain []
