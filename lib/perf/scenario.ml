(* One perf scenario = a named, deterministic unit of work (an "op")
   measured under bechamel. An op is a whole sub-run — drain N events,
   blast M messages, run one small YCSB cell — sized so a single op
   takes milliseconds: bechamel then samples wall time and minor
   allocation per op, and the op's fixed event/txn counts turn those
   samples into events/sec, simulated txns/sec and minor-words/event.

   Every scenario reports the same fields (the BENCH_*.json schema is
   the same for micro and end-to-end scenarios); scenarios with no
   simulated transactions report [txns_per_op = 0] and a zero
   txns/sec rather than omitting the field. *)

open Bechamel

type spec = {
  name : string;
  descr : string;
  run : unit -> int * int;
      (* one op; returns (engine events executed, txns committed).
         Must be deterministic: the counts are captured once and
         assumed constant across samples. *)
}

type result = {
  name : string;
  descr : string;
  samples : int;
  events_per_op : int;
  txns_per_op : int;
  p50_ns : float; (* per op *)
  p99_ns : float;
  minor_words_per_op : float;
  events_per_sec : float;
  txns_per_sec : float;
  minor_words_per_event : float;
}

let clock_label = Measure.label Toolkit.Instance.monotonic_clock
let alloc_label = Measure.label Toolkit.Instance.minor_allocated

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else (
    let r = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor r) and hi = int_of_float (ceil r) in
    let frac = r -. floor r in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac))

(* [quick] trades sample count for latency: it is the CI-smoke setting,
   wide (>30%) gates absorb the extra variance. *)
let measure ?(quick = false) spec =
  (* One untimed op up front: warms caches and captures the op's
     deterministic event/txn counts. *)
  let events_per_op, txns_per_op = spec.run () in
  let test =
    Test.make ~name:spec.name (Staged.stage (fun () -> ignore (spec.run ())))
  in
  let elt =
    match Test.elements test with
    | [ e ] -> e
    | _ -> invalid_arg "Scenario.measure: single test expected"
  in
  let cfg =
    (* `Linear 0 keeps the run metric at one op per sample, so every
       raw sample is directly one op's wall time and allocation. *)
    Benchmark.cfg
      ~limit:(if quick then 8 else 30)
      ~quota:(Time.second (if quick then 5.0 else 30.0))
      ~sampling:(`Linear 0) ~stabilize:true ~kde:None ()
  in
  let instances =
    [ Toolkit.Instance.monotonic_clock; Toolkit.Instance.minor_allocated ]
  in
  let res = Benchmark.run cfg instances elt in
  let samples = Array.length res.Benchmark.lr in
  let per_run label m =
    let runs = Measurement_raw.run m in
    if runs <= 0.0 then 0.0 else Measurement_raw.get ~label m /. runs
  in
  let ns = Array.map (per_run clock_label) res.Benchmark.lr in
  let words = Array.map (per_run alloc_label) res.Benchmark.lr in
  Array.sort compare ns;
  let p50_ns = percentile ns 50.0 and p99_ns = percentile ns 99.0 in
  let minor_words_per_op =
    if samples = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 words /. float_of_int samples
  in
  let per_sec count = if p50_ns <= 0.0 then 0.0 else float_of_int count *. 1e9 /. p50_ns in
  {
    name = spec.name;
    descr = spec.descr;
    samples;
    events_per_op;
    txns_per_op;
    p50_ns;
    p99_ns;
    minor_words_per_op;
    events_per_sec = per_sec events_per_op;
    txns_per_sec = per_sec txns_per_op;
    minor_words_per_event =
      (if events_per_op = 0 then 0.0
       else minor_words_per_op /. float_of_int events_per_op);
  }
