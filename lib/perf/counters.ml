(* Lightweight phase counters: events processed, minor-heap allocation
   (Gc.minor_words deltas) and wall time, accumulated across start/stop
   spans. A span costs two [Gc.minor_words] + two [gettimeofday] calls
   and no allocation while running, so counters can bracket hot phases
   (a drain, a measurement window) without perturbing what they
   measure. *)

type t = {
  name : string;
  mutable events : int; (* engine events attributed to this phase *)
  mutable words : float; (* minor words allocated inside spans *)
  mutable wall : float; (* wall seconds inside spans *)
  mutable spans : int;
  (* span-open snapshot; [running] guards unbalanced stop *)
  mutable ev0 : int;
  mutable w0 : float;
  mutable t0 : float;
  mutable running : bool;
}

let create name =
  {
    name;
    events = 0;
    words = 0.0;
    wall = 0.0;
    spans = 0;
    ev0 = 0;
    w0 = 0.0;
    t0 = 0.0;
    running = false;
  }

let name t = t.name

(* [engine] is optional so pure-CPU phases (JSON writing, table
   formatting) can be bracketed too; without it the events delta is 0. *)
let start ?engine t =
  if t.running then invalid_arg "Counters.start: span already open";
  t.running <- true;
  t.ev0 <- (match engine with None -> 0 | Some e -> Lion_sim.Engine.events_processed e);
  t.w0 <- Gc.minor_words ();
  t.t0 <- Unix.gettimeofday ()

let stop ?engine t =
  let now = Unix.gettimeofday () in
  let w = Gc.minor_words () in
  if not t.running then invalid_arg "Counters.stop: no open span";
  t.running <- false;
  t.spans <- t.spans + 1;
  t.wall <- t.wall +. (now -. t.t0);
  t.words <- t.words +. (w -. t.w0);
  match engine with
  | None -> ()
  | Some e -> t.events <- t.events + Lion_sim.Engine.events_processed e - t.ev0

let events t = t.events
let minor_words t = t.words
let wall_seconds t = t.wall
let spans t = t.spans

let events_per_sec t = if t.wall <= 0.0 then 0.0 else float_of_int t.events /. t.wall

let words_per_event t =
  if t.events = 0 then 0.0 else t.words /. float_of_int t.events

let reset t =
  if t.running then invalid_arg "Counters.reset: span still open";
  t.events <- 0;
  t.words <- 0.0;
  t.wall <- 0.0;
  t.spans <- 0

let summary t =
  Printf.sprintf "%s: %d events, %.0f minor words, %.3fs wall (%d spans)"
    t.name t.events t.words t.wall t.spans
