(* BENCH_*.json emission and regression gating.

   The file schema ("lion-bench/1") is stable: every scenario row
   carries the same fields whether it is a micro or an end-to-end
   scenario, so files from different dates diff cleanly and external
   tooling can plot a trajectory without per-scenario cases.

   Gating against a committed baseline separates machine-independent
   metrics from wall-time ones:

   - minor-words/event is a property of the compiled program, not the
     machine: compared raw, > 30% growth fails.
   - the drain speedup (engine_drain vs engine_drain_seed events/sec,
     both measured in the same process) is a ratio of two runs on the
     same machine: compared raw against its floor (3x).
   - wall-time p50s are machine-dependent: the frozen seed engine never
     changes, so the ratio of its p50 between the current run and the
     baseline file estimates how much faster or slower this machine is
     than the one that wrote the baseline, and every other scenario's
     wall gate is calibrated by that factor before the 30% test.
     LION_PERF_NO_WALL_GATE=1 skips the wall gates entirely (for
     wildly throttled CI runners); the allocation and speedup gates
     still apply. *)

let schema = "lion-bench/1"
let alloc_slack = 1.30
let wall_slack = 1.30
let drain_speedup_floor = 3.0

(* ---- emission ---------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num f =
  (* %.17g round-trips any float; trim the common integral case. *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let scenario_json (r : Scenario.result) =
  Printf.sprintf
    {|    { "name": "%s",
      "descr": "%s",
      "samples": %d,
      "events_per_op": %d,
      "txns_per_op": %d,
      "p50_ns": %s,
      "p99_ns": %s,
      "minor_words_per_op": %s,
      "events_per_sec": %s,
      "txns_per_sec": %s,
      "minor_words_per_event": %s }|}
    (json_escape r.Scenario.name) (json_escape r.Scenario.descr)
    r.Scenario.samples r.Scenario.events_per_op r.Scenario.txns_per_op
    (num r.Scenario.p50_ns) (num r.Scenario.p99_ns)
    (num r.Scenario.minor_words_per_op)
    (num r.Scenario.events_per_sec)
    (num r.Scenario.txns_per_sec)
    (num r.Scenario.minor_words_per_event)

let write ~path ~date ~quick results =
  let oc = open_out path in
  Printf.fprintf oc
    "{ \"schema\": \"%s\",\n  \"date\": \"%s\",\n  \"quick\": %b,\n  \"scenarios\": [\n%s\n  ]\n}\n"
    schema (json_escape date) quick
    (String.concat ",\n" (List.map scenario_json results));
  close_out oc

(* ---- minimal JSON reader ----------------------------------------- *)

(* Just enough JSON to read files this module wrote (plus whitespace
   and field-order tolerance): objects, arrays, strings, numbers,
   true/false/null. No dependency on a JSON package. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* ASCII range only — all this module ever emits. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else (
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); fields ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields [])
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else (
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items [])
    | '"' -> Str (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
        else fail "bad literal"
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
        else fail "bad literal"
    | 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
        else fail "bad literal"
    | _ ->
        let start = !pos in
        let is_num_char c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while !pos < n && is_num_char s.[!pos] do advance () done;
        if !pos = start then fail "unexpected character";
        Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_json s

(* ---- loading a bench file back into Scenario.results ------------- *)

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let get_num name j =
  match field name j with
  | Some (Num f) -> f
  | _ -> raise (Parse_error (Printf.sprintf "missing numeric field %S" name))

let get_str name j =
  match field name j with
  | Some (Str s) -> s
  | _ -> raise (Parse_error (Printf.sprintf "missing string field %S" name))

let scenario_of_json j : Scenario.result =
  {
    Scenario.name = get_str "name" j;
    descr = get_str "descr" j;
    samples = int_of_float (get_num "samples" j);
    events_per_op = int_of_float (get_num "events_per_op" j);
    txns_per_op = int_of_float (get_num "txns_per_op" j);
    p50_ns = get_num "p50_ns" j;
    p99_ns = get_num "p99_ns" j;
    minor_words_per_op = get_num "minor_words_per_op" j;
    events_per_sec = get_num "events_per_sec" j;
    txns_per_sec = get_num "txns_per_sec" j;
    minor_words_per_event = get_num "minor_words_per_event" j;
  }

let load path : Scenario.result list =
  let j = read_file path in
  (match field "schema" j with
  | Some (Str s) when s = schema -> ()
  | _ -> raise (Parse_error (Printf.sprintf "%s: not a %s file" path schema)));
  match field "scenarios" j with
  | Some (Arr rows) -> List.map scenario_of_json rows
  | _ -> raise (Parse_error (path ^ ": no scenarios array"))

(* ---- gating ------------------------------------------------------ *)

let find name rs = List.find_opt (fun r -> r.Scenario.name = name) rs

let drain_speedup rs =
  match (find "engine_drain" rs, find "engine_drain_seed" rs) with
  | Some d, Some s when s.Scenario.events_per_sec > 0.0 ->
      Some (d.Scenario.events_per_sec /. s.Scenario.events_per_sec)
  | _ -> None

(* Returns failure messages; empty list = all gates pass. Scenarios
   present on only one side are reported but do not fail the gate —
   adding a scenario must not require regenerating every baseline
   atomically (the baseline refresh lands in the same PR, but older
   BENCH_*.json files stay comparable). *)
let compare_against ~baseline ~current ~wall_gates =
  let failures = ref [] in
  let notes = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  (* machine-speed calibration from the frozen seed engine *)
  let calib =
    match (find "engine_drain_seed" baseline, find "engine_drain_seed" current) with
    | Some b, Some c when b.Scenario.p50_ns > 0.0 ->
        let f = c.Scenario.p50_ns /. b.Scenario.p50_ns in
        note "machine-speed calibration (seed engine p50 ratio): %.2fx" f;
        f
    | _ ->
        note "no seed-engine probe on both sides; wall gates uncalibrated";
        1.0
  in
  List.iter
    (fun (b : Scenario.result) ->
      match find b.Scenario.name current with
      | None -> note "scenario %s in baseline but not in current run" b.Scenario.name
      | Some c ->
          if b.Scenario.events_per_op > 0 && b.Scenario.minor_words_per_event > 0.0
          then (
            let limit = (b.Scenario.minor_words_per_event *. alloc_slack) +. 0.5 in
            if c.Scenario.minor_words_per_event > limit then
              fail
                "%s: minor-words/event %.2f exceeds baseline %.2f (+30%% slack)"
                c.Scenario.name c.Scenario.minor_words_per_event
                b.Scenario.minor_words_per_event);
          if wall_gates && b.Scenario.p50_ns > 0.0 then (
            let limit = b.Scenario.p50_ns *. calib *. wall_slack in
            if c.Scenario.p50_ns > limit then
              fail
                "%s: p50 %.0f ns/op exceeds calibrated baseline %.0f ns/op (+30%% slack)"
                c.Scenario.name c.Scenario.p50_ns (b.Scenario.p50_ns *. calib)))
    baseline;
  (match drain_speedup current with
  | Some s ->
      note "engine drain speedup vs frozen seed engine: %.2fx" s;
      if s < drain_speedup_floor then
        fail "engine_drain speedup %.2fx below required %.1fx" s
          drain_speedup_floor
  | None -> fail "cannot compute drain speedup: engine_drain(_seed) missing");
  (List.rev !notes, List.rev !failures)
