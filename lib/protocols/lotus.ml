module Cluster = Lion_store.Cluster
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn

let create ?(granule_size = 16) cl =
  let cfg = cl.Cluster.cfg in
  let process txns =
    let nodes = Cluster.node_count cl in
    let node_busy = Array.make nodes 0.0 in
    (* Same-partition conflicts serialize on the partition's single
       executor thread and never abort; only cross-partition
       transactions — whose granule locks on REMOTE partitions live
       until the epoch ends — abort on conflict. The footprint is
       restricted to remote-partition keys for exactly that reason. *)
    let cross_txns =
      Array.of_list
        (List.filter Txn.is_cross_partition (Array.to_list txns))
    in
    let remote_footprint txn =
      let home = Batch_util.home_node cl txn in
      let remote k =
        Lion_store.Placement.primary cl.Cluster.placement k.Lion_store.Kvstore.part
        <> home
      in
      (List.filter remote (Txn.write_keys txn), List.filter remote (Txn.read_keys txn))
    in
    let cross_ok =
      Batch.conflict_verdicts ~footprint:remote_footprint
        ~granule:(fun k -> (k.part, k.slot / granule_size))
        cross_txns
    in
    let cross_verdict = Hashtbl.create 64 in
    Array.iteri
      (fun i txn -> Hashtbl.replace cross_verdict txn.Txn.id cross_ok.(i))
      cross_txns;
    let ok =
      Array.map
        (fun txn ->
          match Hashtbl.find_opt cross_verdict txn.Txn.id with
          | Some v -> v
          | None -> true)
        txns
    in
    let verdicts =
      Array.mapi
        (fun i txn ->
          Batch_util.touch cl txn;
          let home = Batch_util.home_node cl txn in
          let cross = Txn.is_cross_partition txn in
          (* Asynchronous commit/replication: cross transactions cost
             message handling, not a blocking round trip. *)
          node_busy.(home) <-
            node_busy.(home) +. Batch_util.ops_work cfg txn
            +. (if cross then 2.0 *. cfg.Lion_store.Config.msg_handle_cost else 0.0);
          if ok.(i) then (
            Batch_util.charge_replication cl txn;
            { Batch.committed = true; single_node = not cross; remastered = false })
          else { Batch.committed = false; single_node = not cross; remastered = false })
        txns
    in
    {
      Batch.verdicts;
      node_busy;
      serial_time = 0.0;
      barrier_time = 0.0;
      phase_split = [ (Metrics.Execution, 0.7); (Metrics.Replication, 0.3) ];
    }
  in
  Batch.create cl ~name:"Lotus" ~process
    ~stage_labels:("granule-lock", "barrier") ()
