(** Calvin baseline (§VI-A2b): deterministic execution with a
    single-threaded lock manager.

    A sequencer fixes the batch order; the lock manager grants locks
    serially (the [serial_time] term — Calvin's scalability ceiling,
    visible in Fig. 11's plateau). Each transaction executes its
    per-partition sub-transactions on the owning nodes; cross-partition
    transactions stall their home worker on a remote-read round trip,
    which the paper measures at over 90 % of Calvin's execution time.
    Determinism avoids 2PC and aborts entirely. *)

val create : Lion_store.Cluster.t -> Proto.t
