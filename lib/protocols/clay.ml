module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Plan = Lion_analysis.Plan
module Txn = Lion_workload.Txn

let create ?(imbalance_threshold = 0.25) cl =
  let parts = Cluster.partition_count cl in
  let graph = Heatgraph.create ~partitions:parts in
  let rebalance () =
    let nodes = Cluster.node_count cl in
    (* Clay's monitor counts transactions per node, not worker time —
       the paper's critique: a node saturated by single-node
       transactions "has a similar load" to nodes running fewer but
       more expensive distributed transactions, so some imbalances are
       never detected. *)
    let loads =
      Array.init nodes (fun n ->
          float_of_int (Lion_sim.Server.completed cl.Cluster.workers.(n)))
    in
    let total = Array.fold_left ( +. ) 0.0 loads in
    let avg = total /. float_of_int nodes in
    if avg > 0.0 then (
      let hottest = ref 0 and coldest = ref 0 in
      Array.iteri
        (fun n l ->
          if l > loads.(!hottest) then hottest := n;
          if l < loads.(!coldest) then coldest := n)
        loads;
      if loads.(!hottest) > avg *. (1.0 +. imbalance_threshold) then (
        (* Move clumps off the hot node, hottest clump first, until the
           projected excess is gone. Clump growth is thresholded and
           capped exactly like the planner's, otherwise a dense hot set
           collapses into one unmovable clump. *)
        let parts_n = Cluster.partition_count cl in
        let total_weight = ref 0.0 and hottest_v = ref 0.0 in
        for p = 0 to parts_n - 1 do
          let w = Heatgraph.vertex_weight graph p in
          total_weight := !total_weight +. w;
          if w > !hottest_v then hottest_v := w
        done;
        let max_weight =
          Stdlib.max
            (0.35 *. !total_weight /. float_of_int nodes)
            (2.2 *. !hottest_v)
        in
        let clumps =
          Clump.generate ~max_weight graph ~placement:cl.Cluster.placement
            ~alpha:(2.0 *. Heatgraph.mean_edge_weight graph)
            ~cross_boost:1.0
          |> List.filter (fun (c : Clump.t) ->
                 2
                 * Placement.count_primaries_at cl.Cluster.placement c.pids
                     ~node:!hottest
                 >= List.length c.pids)
          |> List.sort (fun (a : Clump.t) b -> compare b.w a.w)
        in
        let excess_fraction =
          (loads.(!hottest) -. avg) /. Stdlib.max 1.0 loads.(!hottest)
        in
        let total_weight = Clump.total_weight clumps in
        let budget = ref (excess_fraction *. total_weight) in
        let moved =
          List.filter
            (fun (c : Clump.t) ->
              if !budget > 0.0 then (
                budget := !budget -. c.w;
                c.dest <- !coldest;
                true)
              else false)
            clumps
        in
        let assignments = List.map (fun (c : Clump.t) -> (c, c.dest)) moved in
        let plan =
          Plan.of_assignments cl.Cluster.placement assignments ~eager_remaster:true
        in
        Apply.apply cl plan));
    Heatgraph.clear graph;
    Cluster.reset_load_counters cl
  in
  Proto.make ~name:"Clay"
    ~submit:(fun txn ~on_done ->
      Heatgraph.add_txn graph ~parts:txn.Txn.parts;
      Exec.run cl
        ~route:(Exec.route_most_primaries cl)
        ~flavor:Exec.plain_2pc txn ~on_done)
    ~tick:rebalance ()
