module Cluster = Lion_store.Cluster
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn

let create cl =
  let cfg = cl.Cluster.cfg in
  let process txns =
    let nodes = Cluster.node_count cl in
    let node_busy = Array.make nodes 0.0 in
    let rt = Batch_util.rt_block cl in
    (* Aria's reordering mechanism confines conflicts to transactions
       whose executions actually overlap; losers re-enter next epoch. *)
    let window = 4 * Lion_store.Config.total_workers cfg in
    let ok =
      Batch.conflict_verdicts ~include_raw:true ~window
        ~granule:(fun k -> (k.part, k.slot))
        txns
    in
    let verdicts =
      Array.mapi
        (fun i txn ->
          Batch_util.touch cl txn;
          let home = Batch_util.home_node cl txn in
          let cross = Txn.is_cross_partition txn in
          (* Execution happens before reservation checking, so aborted
             transactions consume their work too. *)
          node_busy.(home) <-
            node_busy.(home) +. Batch_util.ops_work cfg txn
            +. (if cross then rt else 0.0);
          if ok.(i) then (
            Batch_util.charge_replication cl txn;
            { Batch.committed = true; single_node = not cross; remastered = false })
          else { Batch.committed = false; single_node = not cross; remastered = false })
        txns
    in
    {
      Batch.verdicts;
      node_busy;
      serial_time = 0.0;
      barrier_time = 0.0;
      (* The reservation + reordering commit step costs Aria an extra
         ~20 % of latency (§VI-G). *)
      phase_split = [ (Metrics.Execution, 0.65); (Metrics.Commit, 0.2); (Metrics.Replication, 0.15) ];
    }
  in
  Batch.create cl ~name:"Aria" ~process
    ~stage_labels:("reserve", "fallback-barrier") ()
