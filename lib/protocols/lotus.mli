(** Lotus baseline (§VI-A2b): epoch-based execution with granule locks.

    Granule locks (key ranges coarser than rows, finer than partitions)
    are acquired in batch order and held to the end of the epoch;
    conflicting transactions abort and re-execute next epoch — under
    contention this re-execution loop is Lotus' degradation mode as the
    paper notes ("Lotus maintains locks until the end of an epoch,
    leading to transaction aborts and re-executions"). Commit and
    replication are asynchronous and overlap with computation, giving
    Lotus near-zero scheduling overhead and strong low-cross-ratio
    performance. *)

val create : ?granule_size:int -> Lion_store.Cluster.t -> Proto.t
