(** Clay baseline (§VI-A2a): online load-triggered repartitioning.

    Execution is plain OCC + 2PC. A periodic monitor compares per-node
    worker busy time; when the hottest node exceeds the average by the
    imbalance threshold, Clay builds a co-access graph of the recent
    window, clusters it, and moves clumps whose primaries sit on the
    overloaded node to the coldest node (async replication + eager
    remastering, as the paper grants its Clay implementation).

    Clay's defining blind spot is preserved: the trigger is load
    imbalance only — a balanced cluster full of distributed
    transactions never repartitions ("Clay perceives the overloaded node
    running single-node transactions as having an equal load to nodes
    with fewer distributed transactions"). *)

val create :
  ?imbalance_threshold:float -> Lion_store.Cluster.t -> Proto.t
(** [imbalance_threshold] (default 0.25): trigger when
    max_load > avg·(1 + threshold). The harness calls [tick]
    periodically. *)
