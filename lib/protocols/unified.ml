let create cl =
  Proto.make ~name:"Unified"
    ~submit:(fun txn ~on_done ->
      Exec.run cl
        ~route:(Exec.route_most_primaries cl)
        ~flavor:Exec.unified_flavor txn ~on_done)
    ()
