(** Shared cost accounting for the analytic batch-epoch protocols. *)

val ops_work : Lion_store.Config.t -> Lion_workload.Txn.t -> float
(** CPU µs to execute a whole transaction: per-transaction setup plus
    all of its operations. *)

val part_ops_work : Lion_store.Config.t -> Lion_workload.Txn.t -> part:int -> float
(** CPU µs for the operations touching one partition. *)

val rt_block : Lion_store.Cluster.t -> float
(** The blocking span of one remote-operation round trip (wire delay
    both ways plus remote handling). *)

val home_node : Lion_store.Cluster.t -> Lion_workload.Txn.t -> int
(** Node holding most of the transaction's primaries. *)

val charge_replication : Lion_store.Cluster.t -> Lion_workload.Txn.t -> unit
(** Account (eventless) replication bytes of a committed transaction:
    one log record per write per secondary replica. *)

val touch : Lion_store.Cluster.t -> Lion_workload.Txn.t -> unit
(** Bump partition access counters for every touched partition. *)

val lock_grant_cost : float
(** Serial per-transaction cost of a single-threaded lock manager /
    sequencer (µs) — the deterministic protocols' scalability ceiling
    (Fig. 11's plateau). *)
