type t = {
  name : string;
  submit : Lion_workload.Txn.t -> on_done:(unit -> unit) -> unit;
  tick : unit -> unit;
  drain : unit -> unit;
}

let make ~name ~submit ?(tick = fun () -> ()) ?(drain = fun () -> ()) () =
  { name; submit; tick; drain }

let join n k =
  let remaining = ref n in
  fun () ->
    decr remaining;
    if !remaining = 0 then k ()

let join_now n k =
  if n = 0 then (
    k ();
    None)
  else Some (join n k)

let join_or_fail n ~on_ok ~on_fail =
  if n = 0 then (
    on_ok ();
    ((fun () -> ()), fun () -> ()))
  else
    let remaining = ref n in
    let failed = ref false in
    let ok () =
      if not !failed then (
        decr remaining;
        if !remaining = 0 then on_ok ())
    in
    let fail () =
      if (not !failed) && !remaining > 0 then (
        failed := true;
        on_fail ())
    in
    (ok, fail)
