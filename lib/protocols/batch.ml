module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Kvstore = Lion_store.Kvstore
module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn
module Trace = Lion_trace.Trace
module History = Lion_store.History

type verdict = { committed : bool; single_node : bool; remastered : bool }

type epoch_result = {
  verdicts : verdict array;
  node_busy : float array;
  serial_time : float;
  barrier_time : float;
  phase_split : (Metrics.phase * float) list;
}

let conflict_verdicts ?(include_raw = false) ?window ?footprint ~granule txns =
  let window = match window with Some w -> Stdlib.max 1 w | None -> Array.length txns in
  let footprint =
    match footprint with
    | Some f -> f
    | None -> fun txn -> (Txn.write_keys txn, Txn.read_keys txn)
  in
  let reserved = Hashtbl.create 1024 in
  let ok = Array.make (Array.length txns) true in
  Array.iteri
    (fun i txn ->
      if i mod window = 0 then Hashtbl.reset reserved;
      let write_keys, read_keys = footprint txn in
      let writes = List.map granule write_keys in
      let reads = List.map granule read_keys in
      let conflict g =
        match Hashtbl.find_opt reserved g with Some j -> j < i | None -> false
      in
      let doomed =
        List.exists conflict writes || (include_raw && List.exists conflict reads)
      in
      if doomed then ok.(i) <- false
      else
        List.iter
          (fun g -> if not (Hashtbl.mem reserved g) then Hashtbl.add reserved g i)
          writes)
    txns;
  ok

type request = {
  txn : Txn.t;
  enqueued : float;
  mutable retries : int;
  on_done : unit -> unit;
  ctx : Trace.ctx option;  (* root trace context, None when untraced *)
  mutable wait_from : float;
      (* when this request last started waiting (enqueue or re-queue);
         the next epoch's queue-wait span starts here *)
}

type state = {
  cl : Cluster.t;
  process : Txn.t array -> epoch_result;
  max_retries : int;
  buffer : request Queue.t;
  carryover : request Queue.t;  (* aborted transactions, retried first *)
  mutable running : bool;
  stage_labels : string * string;
      (* protocol-specific names for the sequencing and barrier stage
         spans of traced transactions *)
}

(* Epoch commit barrier: the nodes agree to commit the epoch — a couple
   of cross-node round trips regardless of batch size. *)
let epoch_commit_cost cl = 4.0 *. Network.oneway_delay cl.Cluster.network ~bytes:64

(* Epoch processing is analytic, so a traced transaction's spans are
   reconstructed retroactively at epoch end from the makespan's stage
   boundaries. The stages tile [wait_from, now] exactly, so the
   critical path of a batch trace sums to its recorded latency. *)
let emit_stages st req ~t0 ~t1 ~t2 ~t3 ~now =
  match req.ctx with
  | None -> ()
  | Some _ as ctx ->
      let seq_label, barrier_label = st.stage_labels in
      let stage name phase a b =
        if b > a then
          Trace.finish ~ts:b (Trace.child ~phase ~name ~ts:a ctx)
      in
      stage "queue-wait" "scheduling" req.wait_from t0;
      stage seq_label "scheduling" t0 t1;
      stage "execution" "execution" t1 t2;
      stage barrier_label "remaster" t2 t3;
      stage "epoch-commit" "commit" t3 now

(* Consistency-audit hook. Epoch engines are analytic — they never
   touch the real [Kvstore] — so history events are synthesized against
   the sink's private shadow store, in epoch commit order (the array
   order the deterministic conflict pass already fixed): a committed
   transaction reads the current shadow versions, installs its writes
   (bumping them), and records the installed versions; an aborted
   attempt records only its observed reads. With no sink this is one
   match per epoch. *)
let record_history st ~now req (v : verdict) =
  match st.cl.Cluster.history with
  | None -> ()
  | Some h ->
      let shadow = History.shadow h in
      let reads =
        List.map (fun op ->
            let k = Txn.key_of op in
            (k, Kvstore.version shadow k))
          req.txn.Txn.ops
      in
      let writes =
        if v.committed then (
          let wkeys = List.sort_uniq Kvstore.key_compare (Txn.write_keys req.txn) in
          let s = Kvstore.begin_session shadow in
          List.iter (Kvstore.write s) wkeys;
          Kvstore.commit_session s;
          List.map (fun k -> (k, Kvstore.version shadow k)) wkeys)
        else []
      in
      History.record h ~txn_id:req.txn.Txn.id ~attempt:(req.retries + 1) ~reads
        ~writes
        ~outcome:(if v.committed then History.Committed else History.Aborted)
        ~ts:now

let scale_phases phase_split latency =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 phase_split in
  if total <= 0.0 then [ (Metrics.Execution, latency) ]
  else List.map (fun (p, w) -> (p, latency *. w /. total)) phase_split

let rec start_epoch st =
  let cfg = st.cl.Cluster.cfg in
  let batch_size = cfg.Config.batch_size in
  let take () =
    let out = ref [] in
    let n = ref 0 in
    while !n < batch_size && not (Queue.is_empty st.carryover) do
      out := Queue.pop st.carryover :: !out;
      incr n
    done;
    while !n < batch_size && not (Queue.is_empty st.buffer) do
      out := Queue.pop st.buffer :: !out;
      incr n
    done;
    Array.of_list (List.rev !out)
  in
  let requests = take () in
  if Array.length requests = 0 then st.running <- false
  else (
    st.running <- true;
    let txns = Array.map (fun r -> r.txn) requests in
    let result = st.process txns in
    assert (Array.length result.verdicts = Array.length txns);
    let workers = float_of_int cfg.Config.workers_per_node in
    let exec_time =
      Array.fold_left (fun acc busy -> Stdlib.max acc (busy /. workers)) 0.0 result.node_busy
    in
    let epoch_start = Engine.now st.cl.Cluster.engine in
    let duration =
      result.serial_time +. exec_time +. result.barrier_time +. epoch_commit_cost st.cl
    in
    Engine.schedule st.cl.Cluster.engine ~delay:duration (fun () ->
        let now = Engine.now st.cl.Cluster.engine in
        let t0 = epoch_start in
        let t1 = t0 +. result.serial_time in
        let t2 = t1 +. exec_time in
        let t3 = t2 +. result.barrier_time in
        Array.iteri
          (fun i req ->
            let v = result.verdicts.(i) in
            let give_up = req.retries >= st.max_retries in
            record_history st ~now req v;
            if v.committed || give_up then (
              let latency = now -. req.enqueued in
              (* Batch engines never enforce deadlines (retries are
                 already bounded by [max_retries]) but the goodput
                 accounting matches the standard path: a commit past
                 the client's patience counts out of goodput. *)
              let late =
                cfg.Config.txn_deadline > 0.0
                && latency > cfg.Config.txn_deadline
              in
              if late then Metrics.record_deadline_miss st.cl.Cluster.metrics;
              Metrics.record_commit ~late st.cl.Cluster.metrics ~latency
                ~single_node:v.single_node ~remastered:v.remastered
                ~phases:(scale_phases result.phase_split latency);
              emit_stages st req ~t0 ~t1 ~t2 ~t3 ~now;
              Trace.finish_txn ~ts:now ~ok:v.committed req.ctx;
              req.on_done ())
            else (
              Metrics.record_abort st.cl.Cluster.metrics;
              emit_stages st req ~t0 ~t1 ~t2 ~t3 ~now;
              Trace.note_abort ~ts:now req.ctx;
              req.wait_from <- now;
              req.retries <- req.retries + 1;
              Queue.push req st.carryover))
          requests;
        if Queue.is_empty st.buffer && Queue.is_empty st.carryover then
          st.running <- false
        else start_epoch st))

let maybe_start st =
  if (not st.running) && Queue.length st.buffer + Queue.length st.carryover > 0 then
    (* Defer to the event loop so all same-instant submissions land in
       the same epoch. *)
    Engine.schedule st.cl.Cluster.engine ~delay:0.0 (fun () ->
        if not st.running then (
          st.running <- true;
          start_epoch st))

let create cl ~name ~process ?(tick = fun () -> ()) ?(max_retries = 100)
    ?(stage_labels = ("sequencing", "barrier")) () =
  let st =
    {
      cl;
      process;
      max_retries;
      buffer = Queue.create ();
      carryover = Queue.create ();
      running = false;
      stage_labels;
    }
  in
  let submit txn ~on_done =
    let now = Engine.now cl.Cluster.engine in
    let ctx =
      match cl.Cluster.tracer with
      | None -> None
      | Some tracer -> Trace.start_txn tracer ~ts:now ~txn_id:txn.Txn.id
    in
    Queue.push
      { txn; enqueued = now; retries = 0; on_done; ctx; wait_from = now }
      st.buffer;
    maybe_start st
  in
  let drain () = maybe_start st in
  Proto.make ~name ~submit ~tick ~drain ()
