module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn

let super = 0

let create cl =
  let cfg = cl.Cluster.cfg in
  let process txns =
    let nodes = Cluster.node_count cl in
    let node_busy = Array.make nodes 0.0 in
    (* OCC conflicts among concurrently-executing transactions restart
       within the epoch: the loser pays a second execution. *)
    let window = 4 * Config.total_workers cfg in
    let ok = Batch.conflict_verdicts ~window ~granule:(fun k -> (k.part, k.slot)) txns in
    let any_cross = ref false in
    let verdicts =
      Array.mapi
        (fun i txn ->
          Batch_util.touch cl txn;
          let work = Batch_util.ops_work cfg txn in
          let cross = Txn.is_cross_partition txn in
          let node = if cross then super else Batch_util.home_node cl txn in
          if cross then any_cross := true;
          let work = if ok.(i) then work else 2.0 *. work in
          node_busy.(node) <- node_busy.(node) +. work;
          (* Full replication: super-node writes fan out to every
             other node; partitioned writes to their secondaries. *)
          if cross then
            Network.charge cl.Cluster.network
              ~bytes:
                (List.length (Txn.write_keys txn)
                * cfg.Config.record_bytes * (nodes - 1))
          else Batch_util.charge_replication cl txn;
          { Batch.committed = true; single_node = true; remastered = cross })
        txns
    in
    {
      Batch.verdicts;
      node_busy;
      serial_time = 0.0;
      (* The phase switch remasters primaries to/from the super node
         once per epoch; it overlaps nothing. *)
      barrier_time = (if !any_cross then cfg.Config.remaster_delay else 0.0);
      phase_split =
        [ (Metrics.Execution, 0.55); (Metrics.Remaster, 0.1); (Metrics.Replication, 0.35) ];
    }
  in
  Batch.create cl ~name:"Star" ~process
    ~stage_labels:("sequencing", "phase-switch-remaster") ()
