(** Hermes baseline (§VI-A2b): deterministic execution with prescient
    data partitioning and migration.

    Hermes knows the whole batch ahead of execution: it groups
    co-accessed partitions (a batch-local heat graph), assigns the
    groups to nodes balanced by weight, migrates ownership accordingly,
    and reorders the batch so transactions sharing partitions run
    together. Transactions whose partitions land on one owner execute
    single-home without round trips — that is why Hermes stays flat as
    the cross ratio grows — while partitions that changed owner stall
    the deterministic pipeline ([barrier_time] and migration bytes),
    producing the severe jitter at workload shifts the paper observes
    (Fig. 10). The single-threaded lock manager contributes the same
    serial term as Calvin. *)

val create : Lion_store.Cluster.t -> Proto.t
