(** Star baseline (§VI-A2b): asymmetric full replication with
    two-phase (partitioned / single-master) switching.

    Single-home transactions run on their home nodes during the
    partitioned phase; every cross-partition transaction is routed to
    the super node (node 0, which holds a full replica) and committed
    there as a single-node transaction without 2PC. The phase switch
    costs one remastering round per epoch. Star never adapts its
    placement; its ceiling is the super node's worker pool, which is
    exactly how the bottleneck shows up here (all cross work lands in
    [node_busy.(0)]). Writes executed on the super node replicate to
    every other node (full replication). *)

val create : Lion_store.Cluster.t -> Proto.t
