let create cl =
  Proto.make ~name:"Leap"
    ~submit:(fun txn ~on_done ->
      Exec.run cl
        ~route:(Exec.route_most_primaries cl)
        ~flavor:Exec.leap_flavor txn ~on_done)
    ()
