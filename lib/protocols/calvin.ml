module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn

let create cl =
  let cfg = cl.Cluster.cfg in
  let process txns =
    let nodes = Cluster.node_count cl in
    let node_busy = Array.make nodes 0.0 in
    let rt = Batch_util.rt_block cl in
    let verdicts =
      Array.map
        (fun txn ->
          Batch_util.touch cl txn;
          let home = Batch_util.home_node cl txn in
          let cross = Txn.is_cross_partition txn in
          (* Every participant executes its own sub-transaction. *)
          List.iter
            (fun part ->
              let owner = Placement.primary cl.Cluster.placement part in
              node_busy.(owner) <-
                node_busy.(owner) +. Batch_util.part_ops_work cfg txn ~part)
            txn.Txn.parts;
          (* The home worker stalls on the remote-read exchange — the
             dominant cost of Calvin's distributed transactions (§VI-G
             measures it at over 90 % of execution time). *)
          if cross then node_busy.(home) <- node_busy.(home) +. (2.0 *. rt);
          Batch_util.charge_replication cl txn;
          { Batch.committed = true; single_node = not cross; remastered = false })
        txns
    in
    {
      Batch.verdicts;
      node_busy;
      serial_time = float_of_int (Array.length txns) *. Batch_util.lock_grant_cost;
      barrier_time = 0.0;
      phase_split = [ (Metrics.Scheduling, 0.08); (Metrics.Execution, 0.92) ];
    }
  in
  Batch.create cl ~name:"Calvin" ~process
    ~stage_labels:("lock-schedule", "barrier") ()
