module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Placement = Lion_store.Placement
module Network = Lion_sim.Network
module Kvstore = Lion_store.Kvstore
module Txn = Lion_workload.Txn

let ops_work cfg (txn : Txn.t) =
  cfg.Config.txn_setup_cost
  +. (float_of_int (List.length txn.Txn.ops) *. cfg.Config.local_op_cost)

let part_ops_work cfg (txn : Txn.t) ~part =
  let n =
    List.length
      (List.filter (fun op -> (Txn.key_of op).Kvstore.part = part) txn.Txn.ops)
  in
  float_of_int n *. cfg.Config.local_op_cost

let rt_block cl =
  Network.roundtrip cl.Cluster.network ~bytes:cl.Cluster.cfg.Config.op_msg_bytes
  +. cl.Cluster.cfg.Config.msg_handle_cost

let home_node cl (txn : Txn.t) =
  let placement = cl.Cluster.placement in
  let best = ref (0, -1) in
  for node = Placement.nodes placement - 1 downto 0 do
    if Cluster.alive cl node then (
      let count = Placement.count_primaries_at placement txn.Txn.parts ~node in
      let _, best_count = !best in
      if count >= best_count then best := (node, count))
  done;
  fst !best

let charge_replication cl (txn : Txn.t) =
  let cfg = cl.Cluster.cfg in
  List.iter
    (fun p ->
      let repl = cl.Cluster.replication in
      Lion_store.Replication.append repl ~part:p;
      (* The epoch barrier already synchronised every replica before
         the batch committed (deterministic engines), so the analytic
         charge marks all live holders as having applied the record. *)
      let len = Lion_store.Replication.appends repl ~part:p in
      List.iter
        (fun n ->
          if Cluster.alive cl n then
            Lion_store.Replication.set_applied repl ~part:p ~node:n ~upto:len)
        (Placement.primary cl.Cluster.placement p
        :: Placement.secondaries cl.Cluster.placement p))
    txn.Txn.parts;
  let bytes =
    List.fold_left
      (fun acc part ->
        acc
        + List.length (Placement.secondaries cl.Cluster.placement part)
          * cfg.Config.record_bytes)
      0 txn.Txn.parts
  in
  if bytes > 0 then Network.charge cl.Cluster.network ~bytes

let touch cl (txn : Txn.t) =
  List.iter (fun p -> Cluster.touch_partition cl p) txn.Txn.parts

let lock_grant_cost = 10.0
