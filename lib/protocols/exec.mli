(** Shared standard (non-batch) transaction execution machinery.

    Implements the three-phase flow of §II-A on the simulated cluster:
    the coordinator worker is held for the whole transaction; each
    partition group executes locally when its primary is local,
    otherwise via a blocking round trip to the primary's node; a
    transaction whose every operation ended up local commits without
    the prepare phase, while a distributed one runs full 2PC with
    prepare-log replication. OCC validation happens at the commit
    point; conflicts abort and the caller retries.

    Two behavioural knobs cover the migration-flavoured baselines and
    Lion's standard mode:
    - [remaster_secondary]: a locally-held secondary is promoted (the
      partition blocks for the remaster delay) so the operation can
      execute locally — Lion's conversion step;
    - [migrate_on_access]: every remote partition's mastership is
      aggressively pulled to the coordinator before executing — Leap. *)

type flavor = {
  remaster_secondary : bool;
  migrate_on_access : bool;
  unified_commit : bool;
      (** commit distributed transactions in a single round that engages
          every replica of every participant at once (the 2PC+consensus
          unification of the related work, §VII): one round trip instead
          of prepare+commit, at the price of fanning messages to all
          secondaries and waiting for their (majority) votes *)
  read_at_secondary : bool;
      (** serve an all-read partition group from a locally-held
          secondary without promoting it (bounded-staleness reads) — an
          extension beyond the paper, where only primaries serve
          operations; see the [abl_read_secondary] benchmark *)
}

val plain_2pc : flavor
val leap_flavor : flavor
val lion_flavor : flavor
val unified_flavor : flavor

val groups_of : Lion_workload.Txn.t -> (int * Lion_workload.Txn.op list) list
(** Operations grouped by partition, first-appearance order of
    partitions, op order preserved within a group. *)

val route_most_primaries : Lion_store.Cluster.t -> Lion_workload.Txn.t -> int
(** The node holding the most of the transaction's primary partitions
    (lowest id on ties) — the standard router. *)

type result = {
  committed : bool;
  single_node : bool;  (** every operation executed on the coordinator *)
  remastered : bool;  (** at least one remaster/migration was used *)
  phases : (Lion_sim.Metrics.phase * float) list;
}

val attempt :
  ?ctx:Lion_trace.Trace.ctx ->
  ?attempt_no:int ->
  ?deadline:float ->
  Lion_store.Cluster.t ->
  coordinator:int ->
  txn:Lion_workload.Txn.t ->
  flavor:flavor ->
  k:(result -> unit) ->
  unit
(** One execution attempt. Acquires (and always releases) a coordinator
    worker; [k] fires at worker release — or immediately with a failed
    result if the bounded worker queue sheds the admission request
    (docs/OVERLOAD.md; never happens with the default unbounded queue).
    When the grant cannot be immediate, the wait is traced as a
    "queue"-phase [worker-wait] span. [deadline] (absolute simulated
    time) is propagated into every RPC the attempt issues: once past
    it, lost RPCs stop retransmitting. On commit, the group-commit
    visibility delay is {e not} included here — see [run]. [ctx] (one
    attempt's span of a traced transaction) nests setup, per-group
    execution, remaster transfers and the 2PC rounds under it.

    When the cluster carries a history sink ([Cluster.history]), the
    attempt records one {!Lion_store.History} event — observed read
    versions, installed write versions on commit, and the outcome
    (committed / aborted / indeterminate when a 2PC prepare round
    exhausted its retries). [attempt_no] (default 1) labels the event
    with the retry ordinal. *)

val run :
  Lion_store.Cluster.t ->
  route:(Lion_workload.Txn.t -> int) ->
  flavor:flavor ->
  Lion_workload.Txn.t ->
  on_done:(unit -> unit) ->
  unit
(** Attempt with retry-on-abort (exponential-ish backoff, capped),
    recording aborts and the final commit in the cluster metrics. The
    commit is recorded at the next group-commit epoch boundary with the
    full latency since first submission; [on_done] fires at coordinator
    worker release so the closed loop stays worker-bound.

    When [Config.txn_deadline] is set (> 0), a transaction that aborts
    after [start + txn_deadline] is given up rather than retried
    (recorded as a deadline give-up; [on_done] still fires), and one
    that commits later than the deadline is recorded as a deadline miss
    — committed for throughput, discounted from goodput. The deadline
    also propagates into every RPC so past-deadline retransmissions
    stop. With the default [txn_deadline = 0] behaviour is unchanged:
    retry forever.

    When the cluster carries a tracer ([Cluster.tracer]), each
    transaction is offered to it: sampled ones get a root span, one
    child span per attempt (aborted attempts annotated), and a
    group-commit-wait span; the trace closes at commit visibility. *)
