(** The common protocol interface.

    A protocol receives transactions from the harness's closed-loop
    clients via [submit]; [on_done] fires when the submitting client may
    issue its next transaction (for standard protocols, when the
    coordinator worker is released — commit acknowledgements are
    group-committed asynchronously, as in the Star codebase all paper
    baselines share). [tick] is the periodic maintenance hook (planners,
    load monitors); [drain] flushes buffered work at experiment end. *)

type t = {
  name : string;
  submit : Lion_workload.Txn.t -> on_done:(unit -> unit) -> unit;
  tick : unit -> unit;
  drain : unit -> unit;
}

val make :
  name:string ->
  submit:(Lion_workload.Txn.t -> on_done:(unit -> unit) -> unit) ->
  ?tick:(unit -> unit) ->
  ?drain:(unit -> unit) ->
  unit ->
  t

val join : int -> (unit -> unit) -> unit -> unit
(** [join n k] returns a callback that invokes [k] after being called
    [n] times ([n = 0] means [k] runs on the first call — callers
    should invoke the result once unconditionally in that case via
    [join_now]). *)

val join_now : int -> (unit -> unit) -> (unit -> unit) option
(** [join_now n k]: if [n = 0], runs [k] immediately and returns
    [None]; otherwise returns [Some cb] where [cb] must be called
    exactly [n] times. *)

val join_or_fail :
  int ->
  on_ok:(unit -> unit) ->
  on_fail:(unit -> unit) ->
  (unit -> unit) * (unit -> unit)
(** Fallible barrier for quorum rounds (2PC prepare under faults).
    [join_or_fail n ~on_ok ~on_fail] returns [(ok, fail)]: [on_ok] runs
    once [ok] has been called [n] times with no intervening [fail];
    the first [fail] before completion runs [on_fail] once and disarms
    the barrier — later [ok]/[fail] calls (stragglers whose RPC
    eventually resolved) are ignored. [n = 0] runs [on_ok] immediately
    and returns inert closures. *)
