module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Placement = Lion_store.Placement
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Schism = Lion_analysis.Schism
module Kvstore = Lion_store.Kvstore
module Txn = Lion_workload.Txn

(* Serialized pipeline stall per ownership move: the deterministic
   order cannot proceed past a transaction whose data is in flight. *)
let per_move_stall = 300.0

(* Hermes moves only the records a group needs, roughly a tenth of a
   partition per move. *)
let move_bytes cfg = cfg.Config.partition_bytes / 10

let create cl =
  let cfg = cl.Cluster.cfg in
  let parts = Cluster.partition_count cl in
  (* Hermes' own mastership view, seeded from the initial placement. *)
  let owner =
    Array.init parts (fun p -> Placement.primary cl.Cluster.placement p)
  in
  let process txns =
    let nodes = Cluster.node_count cl in
    let node_busy = Array.make nodes 0.0 in
    let rt = Batch_util.rt_block cl in
    (* Prescient planning over the whole batch. *)
    let graph = Heatgraph.create ~partitions:parts in
    Array.iter (fun txn -> Heatgraph.add_txn graph ~parts:txn.Txn.parts) txns;
    let alpha = 2.0 *. Heatgraph.mean_edge_weight graph in
    let total_weight = ref 0.0 and hottest = ref 0.0 in
    for p = 0 to parts - 1 do
      let w = Heatgraph.vertex_weight graph p in
      total_weight := !total_weight +. w;
      if w > !hottest then hottest := w
    done;
    let max_weight =
      Stdlib.max (0.35 *. !total_weight /. float_of_int nodes) (2.2 *. !hottest)
    in
    let clumps =
      Clump.generate ~max_weight graph ~placement:cl.Cluster.placement ~alpha
        ~cross_boost:4.0
    in
    let assignments = Schism.assign clumps ~nodes in
    let moves = ref 0 in
    List.iter
      (fun ((c : Clump.t), node) ->
        List.iter
          (fun part ->
            if owner.(part) <> node then (
              owner.(part) <- node;
              incr moves;
              Network.charge cl.Cluster.network ~bytes:(move_bytes cfg)))
          c.pids)
      assignments;
    let verdicts =
      Array.map
        (fun txn ->
          Batch_util.touch cl txn;
          (* Home = owner of most partitions under the new mastership. *)
          let counts = Array.make nodes 0 in
          List.iter (fun p -> counts.(owner.(p)) <- counts.(owner.(p)) + 1) txn.Txn.parts;
          let home = ref 0 in
          Array.iteri (fun n c -> if c > counts.(!home) then home := n) counts;
          let single = List.for_all (fun p -> owner.(p) = !home) txn.Txn.parts in
          node_busy.(!home) <- node_busy.(!home) +. Batch_util.ops_work cfg txn;
          if not single then node_busy.(!home) <- node_busy.(!home) +. rt;
          Batch_util.charge_replication cl txn;
          { Batch.committed = true; single_node = single; remastered = false })
        txns
    in
    {
      Batch.verdicts;
      node_busy;
      serial_time = float_of_int (Array.length txns) *. Batch_util.lock_grant_cost;
      barrier_time = float_of_int !moves *. per_move_stall;
      phase_split =
        [
          (Metrics.Scheduling, 0.19);
          (Metrics.Execution, 0.51);
          (Metrics.Remaster, 0.1);
          (Metrics.Replication, 0.2);
        ];
    }
  in
  Batch.create cl ~name:"Hermes" ~process
    ~stage_labels:("sequencing", "ownership-invalidation") ()
