module Cluster = Lion_store.Cluster
module Plan = Lion_analysis.Plan

let apply cl (plan : Plan.t) =
  (* Collapse actions per (part, node): a remaster that follows an add
     must wait for the copy to finish. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun action ->
      let part, node, is_add =
        match action with
        | Plan.Add_replica { part; node } -> (part, node, true)
        | Plan.Remaster { part; node } -> (part, node, false)
      in
      let add, remaster =
        Option.value ~default:(false, false) (Hashtbl.find_opt tbl (part, node))
      in
      Hashtbl.replace tbl (part, node)
        (if is_add then (true, remaster) else (add, true)))
    plan.Plan.actions;
  Hashtbl.iter
    (fun (part, node) (add, remaster) ->
      if add then
        Cluster.add_replica cl ~part ~node ~on_ready:(fun () ->
            if remaster then Cluster.remaster_sync cl ~part ~node)
      else if remaster then Cluster.remaster_sync cl ~part ~node)
    tbl
