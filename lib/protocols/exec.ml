module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Kvstore = Lion_store.Kvstore
module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Rng = Lion_kernel.Rng
module Txn = Lion_workload.Txn
module Trace = Lion_trace.Trace
module History = Lion_store.History

type flavor = {
  remaster_secondary : bool;
  migrate_on_access : bool;
  unified_commit : bool;
  read_at_secondary : bool;
}

let plain_2pc =
  {
    remaster_secondary = false;
    migrate_on_access = false;
    unified_commit = false;
    read_at_secondary = false;
  }

let leap_flavor = { plain_2pc with migrate_on_access = true }
let lion_flavor = { plain_2pc with remaster_secondary = true }
let unified_flavor = { plain_2pc with unified_commit = true }

(* Group a transaction's operations by partition, preserving first-
   appearance order of partitions and op order within each group. *)
let groups_of (txn : Txn.t) =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let part = (Txn.key_of op).Kvstore.part in
      (match Hashtbl.find_opt tbl part with
      | Some ops -> Hashtbl.replace tbl part (op :: ops)
      | None ->
          Hashtbl.replace tbl part [ op ];
          order := part :: !order))
    txn.Txn.ops;
  List.rev_map (fun part -> (part, List.rev (Hashtbl.find tbl part))) !order

(* Ties break on a hash of the partition set so coordinators spread
   across the tied nodes instead of piling onto one id. *)
let route_most_primaries cl (txn : Txn.t) =
  let placement = cl.Cluster.placement in
  let nodes = Placement.nodes placement in
  let best_count = ref (-1) in
  for node = 0 to nodes - 1 do
    if Cluster.alive cl node then (
      let count = Placement.count_primaries_at placement txn.Txn.parts ~node in
      if count > !best_count then best_count := count)
  done;
  let tied = ref [] in
  for node = nodes - 1 downto 0 do
    if
      Cluster.alive cl node
      && Placement.count_primaries_at placement txn.Txn.parts ~node = !best_count
    then tied := node :: !tied
  done;
  match !tied with
  | [] -> invalid_arg "route_most_primaries: no live node"
  | [ n ] -> n
  | candidates -> List.nth candidates (Hashtbl.hash txn.Txn.parts mod List.length candidates)

type result = {
  committed : bool;
  single_node : bool;
  remastered : bool;
  phases : (Metrics.phase * float) list;
}

let record_ops session ops =
  List.iter
    (function
      | Txn.Read k -> Kvstore.read session k
      | Txn.Write k -> Kvstore.write session k)
    ops

(* Leap-style aggressive mastership pull: ownership (and the accessed
   tuples) move to the coordinator before the operation executes. *)
let leap_migration_overhead = 200.0

let attempt ?ctx ?(attempt_no = 1) ?deadline cl ~coordinator ~txn ~flavor ~k =
  let cfg = cl.Cluster.cfg in
  let engine = cl.Cluster.engine in
  let placement = cl.Cluster.placement in
  if not (Cluster.alive cl coordinator) then
    (* The router's liveness view lagged the crash: abort immediately;
       the retry loop re-routes to a live coordinator. *)
    k { committed = false; single_node = false; remastered = false; phases = [] }
  else
  (* Admission wait gets its own span phase, opened only when the grant
     cannot be immediate (every worker leased right now) — an unloaded
     run allocates nothing and traces identically. *)
  let qctx =
    if Cluster.worker_saturated cl ~node:coordinator then
      Trace.child ~node:coordinator ~phase:"queue" ~name:"worker-wait"
        ~ts:(Engine.now engine) ctx
    else None
  in
  Cluster.acquire_worker cl ~node:coordinator
    ~on_fail:(fun () ->
      (* Shed at admission (bounded worker queue, or the coordinator
         died with this request parked): no lease was granted, so there
         is nothing to release — report the attempt failed. *)
      Trace.note ~ts:(Engine.now engine) "shed" qctx;
      Trace.finish ~ts:(Engine.now engine) qctx;
      k { committed = false; single_node = false; remastered = false; phases = [] })
    (fun lease ->
      Trace.finish ~ts:(Engine.now engine) qctx;
      let session = Kvstore.begin_session cl.Cluster.store in
      (* Consistency-audit hook: one history event per attempt, with the
         versions the session observed and (for commits) the versions
         [finalize] installed. [None] records nothing and costs one
         match — runs without a sink are untouched. *)
      let record_outcome outcome =
        match cl.Cluster.history with
        | None -> ()
        | Some h ->
            let writes =
              match outcome with
              | History.Committed ->
                  List.sort_uniq Kvstore.key_compare (Kvstore.write_set session)
                  |> List.map (fun key -> (key, Kvstore.version cl.Cluster.store key))
              | History.Aborted | History.Indeterminate -> []
            in
            History.record h ~txn_id:txn.Txn.id ~attempt:attempt_no
              ~reads:(Kvstore.observed_reads session) ~writes ~outcome
              ~ts:(Engine.now engine)
      in
      let exec_start = Engine.now engine in
      let remaster_time = ref 0.0 in
      let used_remaster = ref false in
      let remote_parts = ref [] in
      (* Abort path for unreachable participants / unavailable
         partitions: give the worker back and let the caller retry. *)
      let fail_txn () =
        record_outcome History.Aborted;
        Cluster.release_worker cl ~node:coordinator lease;
        k
          {
            committed = false;
            single_node = false;
            remastered = !used_remaster;
            phases = [];
          }
      in
      let rec step groups k_done =
        match groups with
        | [] -> k_done ()
        | (part, ops) :: rest ->
            Cluster.touch_partition cl part;
            let n_ops = List.length ops in
            let local_work = float_of_int n_ops *. cfg.Config.local_op_cost in
            let after_exec () = step rest k_done in
            let execute_locally () =
              record_ops session ops;
              let lctx =
                Trace.child ~node:coordinator ~part ~phase:"execution"
                  ~name:"exec-local" ~ts:(Engine.now engine) ctx
              in
              Engine.schedule engine
                ~delay:(local_work *. Cluster.work_scale cl coordinator)
                (fun () ->
                  Trace.finish ~ts:(Engine.now engine) lctx;
                  after_exec ())
            in
            let execute_remote () =
              remote_parts := part :: !remote_parts;
              let prim = Placement.primary placement part in
              let rctx =
                Trace.child ~node:prim ~part ~phase:"execution"
                  ~name:"exec-remote" ~ts:(Engine.now engine) ctx
              in
              Cluster.rpc cl ?deadline ~src:coordinator ~dst:prim
                ~bytes:(cfg.Config.op_msg_bytes * n_ops)
                ~work:(local_work +. cfg.Config.msg_handle_cost)
                ~on_fail:(fun () ->
                  Trace.finish ~ts:(Engine.now engine) rctx;
                  fail_txn ())
                ?ctx:rctx
                (fun () ->
                  Trace.finish ~ts:(Engine.now engine) rctx;
                  record_ops session ops;
                  after_exec ())
            in
            let all_reads = List.for_all (fun op -> not (Txn.is_write op)) ops in
            let proceed () =
              if Placement.has_primary placement ~part ~node:coordinator then
                execute_locally ()
              else if
                flavor.read_at_secondary && all_reads
                && Placement.has_secondary placement ~part ~node:coordinator
              then
                (* Bounded-staleness read served by the local secondary:
                   no promotion, no round trip. *)
                execute_locally ()
              else if
                flavor.remaster_secondary
                && Placement.has_secondary placement ~part ~node:coordinator
              then
                if Cluster.try_begin_remaster cl ~part ~node:coordinator then (
                  used_remaster := true;
                  let t0 = Engine.now engine in
                  let rctx =
                    Trace.child ~node:coordinator ~part ~phase:"remaster"
                      ~name:"remaster" ~ts:t0 ctx
                  in
                  Engine.schedule engine ~delay:cfg.Config.remaster_delay (fun () ->
                      Trace.finish ~ts:(Engine.now engine) rctx;
                      remaster_time := !remaster_time +. (Engine.now engine -. t0);
                      (* The transfer may not have landed (this node
                         crashed mid-flight and the cluster rolled the
                         remaster back): re-check who is primary. *)
                      if not (Cluster.alive cl coordinator) then fail_txn ()
                      else if Placement.has_primary placement ~part ~node:coordinator
                      then execute_locally ()
                      else execute_remote ()))
                else
                  (* Remastering conflict: another transaction is
                     promoting this partition — fall back to 2PC. *)
                  execute_remote ()
              else if flavor.migrate_on_access then (
                used_remaster := true;
                let prim = Placement.primary placement part in
                let bytes = n_ops * cfg.Config.record_bytes in
                let delay =
                  Network.roundtrip cl.Cluster.network ~bytes +. leap_migration_overhead
                in
                (* Migration blocks concurrent transactions on the
                   partition for the transfer (§II-B). *)
                Cluster.block_partition_for cl ~part ~duration:delay;
                Network.send cl.Cluster.network ~src:prim ~dst:coordinator ~bytes
                  (fun () -> ());
                let t0 = Engine.now engine in
                let mctx =
                  Trace.child ~node:coordinator ~part ~phase:"remaster"
                    ~name:"migrate" ~ts:t0 ctx
                in
                Engine.schedule engine ~delay (fun () ->
                    Trace.finish ~ts:(Engine.now engine) mctx;
                    remaster_time := !remaster_time +. (Engine.now engine -. t0);
                    if not (Cluster.alive cl coordinator) then fail_txn ()
                    else begin
                      if not (Placement.has_replica placement ~part ~node:coordinator)
                      then (
                        if
                          Placement.replica_count placement part
                          >= Placement.max_replicas placement
                        then
                          (* Shed a secondary to make room for the pulled
                             mastership; pick deterministically. *)
                          (match Placement.secondaries placement part with
                          | victim :: _ ->
                              Placement.remove_secondary placement ~part ~node:victim;
                              Cluster.note_replica_dropped cl ~part ~node:victim
                          | [] -> ());
                        Placement.add_secondary placement ~part ~node:coordinator);
                      let old_prim = Placement.primary placement part in
                      Placement.remaster placement ~part ~node:coordinator;
                      (* The pulled tuples are current as of the pull. *)
                      Cluster.note_replica_synced cl ~part ~node:coordinator;
                      (* [remaster] demoted the old primary to secondary;
                         if it died while the tuples were in flight, purge
                         the phantom copy it would otherwise keep. *)
                      if old_prim <> coordinator && not (Cluster.alive cl old_prim)
                      then (
                        Placement.remove_secondary placement ~part ~node:old_prim;
                        Cluster.note_replica_dropped cl ~part ~node:old_prim);
                      execute_locally ()
                    end))
              else execute_remote ()
            in
            let wait = Cluster.partition_wait cl part in
            if wait > 0.0 then
              if wait = infinity then
                (* Partition lost its quorum (no surviving replica):
                   don't park the transaction on a never-firing event —
                   time out and abort, the retry loop keeps probing
                   until the partition's node recovers. *)
                Engine.schedule engine ~delay:cfg.Config.rpc_timeout (fun () ->
                    Metrics.record_timeout cl.Cluster.metrics;
                    Trace.note ~ts:(Engine.now engine) "timeout" ctx;
                    fail_txn ())
              else (
                let t0 = Engine.now engine in
                let wctx =
                  Trace.child ~part ~phase:"remaster" ~name:"part-wait" ~ts:t0
                    ctx
                in
                Engine.schedule engine ~delay:wait (fun () ->
                    Trace.finish ~ts:(Engine.now engine) wctx;
                    remaster_time := !remaster_time +. (Engine.now engine -. t0);
                    proceed ()))
            else proceed ()
      in
      let begin_groups () =
        step (groups_of txn) (fun () ->
          let exec_time =
            Stdlib.max 0.0 (Engine.now engine -. exec_start -. !remaster_time)
          in
          let finish result =
            Cluster.release_worker cl ~node:coordinator lease;
            k result
          in
          let base_phases =
            [ (Metrics.Execution, exec_time); (Metrics.Remaster, !remaster_time) ]
          in
          let remote = List.sort_uniq compare !remote_parts in
          if remote = [] then
            if Kvstore.try_reserve session then (
              Kvstore.finalize session;
              record_outcome History.Committed;
              Cluster.replicate_commit cl ?ctx txn.Txn.parts;
              finish
                {
                  committed = true;
                  single_node = true;
                  remastered = !used_remaster;
                  phases = base_phases;
                })
            else (
              record_outcome History.Aborted;
              finish
                {
                  committed = false;
                  single_node = true;
                  remastered = !used_remaster;
                  phases = base_phases;
                })
          else (
            (* 2PC. Participants are the current primary nodes of the
               remote partitions. *)
            let participants =
              if flavor.unified_commit then
                (* One unified round engages every replica holder of
                   every remote partition. *)
                List.concat_map
                  (fun part ->
                    Placement.primary placement part
                    :: Placement.secondaries placement part)
                  remote
                |> List.sort_uniq compare
                |> List.filter (fun n -> n <> coordinator)
              else
                List.sort_uniq compare (List.map (Placement.primary placement) remote)
                |> List.filter (fun n -> n <> coordinator)
            in
            let prepare_start = Engine.now engine in
            let pctx =
              Trace.child ~node:coordinator ~phase:"prepare" ~name:"2pc-prepare"
                ~ts:prepare_start ctx
            in
            let prepare_bytes = cfg.Config.op_msg_bytes + cfg.Config.record_bytes in
            let after_prepare () =
              Trace.finish ~ts:(Engine.now engine) pctx;
              let prepare_time = Engine.now engine -. prepare_start in
              (* Participants replicate their prepare logs. *)
              Cluster.replicate_commit cl ?ctx remote;
              if Kvstore.try_reserve session then (
                if flavor.unified_commit then (
                  (* The unified round already carried the writes and
                     collected every replica's vote: commit now, send
                     the decision one-way. *)
                  Kvstore.finalize session;
                  record_outcome History.Committed;
                  List.iter
                    (fun node ->
                      Network.send cl.Cluster.network ~src:coordinator ~dst:node
                        ~bytes:cfg.Config.op_msg_bytes (fun () -> ()))
                    participants;
                  finish
                    {
                      committed = true;
                      single_node = false;
                      remastered = !used_remaster;
                      phases =
                        base_phases @ [ (Metrics.Prepare, prepare_time) ];
                    })
                else
                let commit_start = Engine.now engine in
                let cctx =
                  Trace.child ~node:coordinator ~phase:"commit"
                    ~name:"2pc-commit" ~ts:commit_start ctx
                in
                let after_commit () =
                  Trace.finish ~ts:(Engine.now engine) cctx;
                  let commit_time = Engine.now engine -. commit_start in
                  Kvstore.finalize session;
                  record_outcome History.Committed;
                  Cluster.replicate_commit cl ?ctx txn.Txn.parts;
                  finish
                    {
                      committed = true;
                      single_node = false;
                      remastered = !used_remaster;
                      phases =
                        base_phases
                        @ [
                            (Metrics.Prepare, prepare_time);
                            (Metrics.Commit, commit_time);
                          ];
                    }
                in
                match
                  Proto.join_now (List.length participants) after_commit
                with
                | None -> ()
                | Some cb ->
                    List.iter
                      (fun node ->
                        (* The decision is already durable: a participant
                           that never acknowledges (crashed, partitioned
                           away) learns the outcome on recovery, so an
                           exhausted commit RPC counts as delivered. *)
                        Cluster.rpc cl ?deadline ~src:coordinator ~dst:node
                          ~bytes:cfg.Config.op_msg_bytes
                          ~work:cfg.Config.msg_handle_cost ~on_fail:cb
                          ?ctx:cctx cb)
                      participants)
              else (
                (* Validation failed: one-way aborts, no waiting. *)
                record_outcome History.Aborted;
                List.iter
                  (fun node ->
                    Network.send cl.Cluster.network ~src:coordinator ~dst:node
                      ~bytes:cfg.Config.op_msg_bytes (fun () -> ()))
                  participants;
                finish
                  {
                    committed = false;
                    single_node = false;
                    remastered = !used_remaster;
                    phases =
                      base_phases @ [ (Metrics.Prepare, Engine.now engine -. prepare_start) ];
                  })
            in
            (* Presumed abort (§2PC under faults): if any participant
               stays unreachable through the RPC retry schedule, the
               coordinator aborts, tells the reachable participants
               one-way, and gives the attempt up. *)
            (* The coordinator never learned every vote: presumed abort
               resolves it internally, but an external auditor must
               treat the outcome as indeterminate. *)
            let on_prepare_fail () =
              record_outcome History.Indeterminate;
              Trace.finish ~ts:(Engine.now engine) pctx;
              List.iter
                (fun node ->
                  Network.send cl.Cluster.network ~src:coordinator ~dst:node
                    ~bytes:cfg.Config.op_msg_bytes (fun () -> ()))
                participants;
              finish
                {
                  committed = false;
                  single_node = false;
                  remastered = !used_remaster;
                  phases =
                    base_phases
                    @ [ (Metrics.Prepare, Engine.now engine -. prepare_start) ];
                }
            in
            let ok, fail =
              Proto.join_or_fail (List.length participants) ~on_ok:after_prepare
                ~on_fail:on_prepare_fail
            in
            List.iter
              (fun node ->
                Cluster.rpc cl ?deadline ~src:coordinator ~dst:node
                  ~bytes:prepare_bytes ~work:cfg.Config.msg_handle_cost
                  ~on_fail:fail ?ctx:pctx ok)
              participants))
      in
      let sctx =
        Trace.child ~node:coordinator ~phase:"scheduling" ~name:"setup"
          ~ts:(Engine.now engine) ctx
      in
      Engine.schedule engine
        ~delay:(cfg.Config.txn_setup_cost *. Cluster.work_scale cl coordinator)
        (fun () ->
          Trace.finish ~ts:(Engine.now engine) sctx;
          begin_groups ()))

let run cl ~route ~flavor txn ~on_done =
  let cfg = cl.Cluster.cfg in
  let engine = cl.Cluster.engine in
  let start = Engine.now engine in
  let octx =
    match cl.Cluster.tracer with
    | None -> None
    | Some tracer -> Trace.start_txn tracer ~ts:start ~txn_id:txn.Txn.id
  in
  (* [deadline] is the client's patience — always measured when set.
     [enforced] is the protection: only then do RPCs stop retransmitting
     and aborted attempts stop retrying past it. Keeping the two apart
     lets the metastable repro measure goodput identically on the
     unprotected baseline. *)
  let deadline =
    if cfg.Config.txn_deadline > 0.0 then Some (start +. cfg.Config.txn_deadline)
    else None
  in
  let enforced = if cfg.Config.deadline_enforce then deadline else None in
  let attempts = ref 0 in
  let rec go () =
    incr attempts;
    let coordinator = route txn in
    let actx =
      match octx with
      | None -> None
      | Some _ ->
          Trace.child ~node:coordinator ~phase:"execution"
            ~name:(Printf.sprintf "attempt %d" !attempts)
            ~ts:(Engine.now engine) octx
    in
    attempt ?ctx:actx ~attempt_no:!attempts ?deadline:enforced cl ~coordinator
      ~txn ~flavor
      ~k:(fun r ->
        Trace.finish ~ts:(Engine.now engine) actx;
        if r.committed then (
          let interval = cfg.Config.group_commit_interval in
          let wait = interval -. Float.rem (Engine.now engine) interval in
          let latency = Engine.now engine -. start +. wait in
          let phases = r.phases @ [ (Metrics.Replication, wait) ] in
          (* Committed but late: it still counts as a commit (throughput)
             while goodput discounts it — the client gave up waiting. *)
          let late = deadline <> None && latency > cfg.Config.txn_deadline in
          if late then Metrics.record_deadline_miss cl.Cluster.metrics;
          let gctx =
            Trace.child ~phase:"replication" ~name:"group-commit-wait"
              ~ts:(Engine.now engine) octx
          in
          Engine.schedule engine ~delay:wait (fun () ->
              Trace.finish ~ts:(Engine.now engine) gctx;
              Metrics.record_commit ~late cl.Cluster.metrics ~latency
                ~single_node:r.single_node ~remastered:r.remastered ~phases;
              Trace.finish_txn ~ts:(Engine.now engine) ~ok:true octx);
          on_done ())
        else (
          Trace.note_abort ~ts:(Engine.now engine)
            (match actx with Some _ -> actx | None -> octx);
          Metrics.record_abort cl.Cluster.metrics;
          match enforced with
          | Some d when Engine.now engine >= d ->
              (* Deadline propagation, load-shedding half: a transaction
                 already older than any client would wait for stops
                 consuming retries — the metastable sustaining loop
                 (ever-growing population of retrying zombies) is cut
                 here. *)
              Metrics.record_deadline_giveup cl.Cluster.metrics;
              Trace.note ~ts:(Engine.now engine) "deadline-giveup" octx;
              Trace.finish_txn ~ts:(Engine.now engine) ~ok:false octx;
              on_done ()
          | _ ->
              let cap = Stdlib.min 8 !attempts in
              let backoff =
                (50.0 *. float_of_int (1 lsl cap))
                +. Rng.float cl.Cluster.rng 50.0
              in
              Engine.schedule engine ~delay:(Stdlib.min 2000.0 backoff) go))
  in
  go ()
