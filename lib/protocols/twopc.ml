let create cl =
  Proto.make ~name:"2PC"
    ~submit:(fun txn ~on_done ->
      Exec.run cl
        ~route:(Exec.route_most_primaries cl)
        ~flavor:Exec.plain_2pc txn ~on_done)
    ()
