(** Leap baseline (§VI-A2a): aggressive transaction-level migration.

    Before executing an operation whose partition is mastered remotely,
    the coordinator pulls the mastership (and the accessed tuples) to
    itself; once everything is local the transaction commits directly,
    skipping the prepare phase. The strategy adapts instantly but causes
    ping-pong transfers under contention and piles all mastership onto
    the hot node under skew — it has no load-balancing story. *)

val create : Lion_store.Cluster.t -> Proto.t
