(** Aria baseline (§VI-A2b): deterministic OLTP via optimistic write
    reservations, no lock manager and no a-priori read/write sets.

    Every transaction in the batch executes in parallel against the
    epoch snapshot (cross-partition reads fetch remotely, stalling the
    worker for a round trip), then reservations are checked: a
    transaction aborts on a write-after-write or read-after-write
    conflict with an earlier-reserved transaction and re-enters the next
    batch. Contention — hot keys under skew, more multi-partition
    footprints as the cross ratio grows — therefore translates into
    repeated aborts, which is Aria's high-cross-ratio collapse and its
    p95 latency tail (Figs. 9, 14). *)

val create : Lion_store.Cluster.t -> Proto.t
