(** Epoch-based optimistic commit for geo-replication (docs/GEO.md).

    Modelled after "Epoch-based Optimistic Concurrency Control in
    Geo-replicated Databases" (PAPERS.md): transactions execute
    optimistically at their coordinator — no per-operation cross-node
    round trips — and park until the next epoch boundary. The boundary
    validates the whole batch in arrival order ([Kvstore.try_reserve],
    so same-epoch conflicts abort-and-retry) and runs {e one} grouped
    replication round to one live peer per remote region, holding the
    write reservations until it resolves. A cross-region transaction
    therefore pays amortised WAN cost instead of per-transaction WAN
    rounds — the regime where Lion's remastering (a per-transfer WAN
    latency cliff) loses, and the crossover the geo sweep reproduces.

    On a region-free cluster the replication round has no peers and the
    protocol degrades to boundary-validated local OCC, which is how the
    consistency audit exercises it under the standard nemesis matrix.

    [on_done] fires at coordinator-worker release (park time), like the
    standard protocols, so closed-loop clients stay worker-bound; an
    epoch whose replication round fails (region unreachable through the
    RPC retry schedule) aborts all its reserved transactions, which
    re-execute in a later epoch. *)

val create : ?interval:float -> Lion_store.Cluster.t -> Proto.t
(** [interval] (µs) overrides [Config.epoch_interval]. *)
