(** Asynchronous application of a reconfiguration plan — the adaptor's
    job (§III): replica additions run in the background; eager
    remasters (when the plan requests them) follow the copy they depend
    on. Transactions keep executing throughout. *)

val apply : Lion_store.Cluster.t -> Lion_analysis.Plan.t -> unit
