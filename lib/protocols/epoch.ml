module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Kvstore = Lion_store.Kvstore
module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Metrics = Lion_sim.Metrics
module Rng = Lion_kernel.Rng
module Txn = Lion_workload.Txn
module Trace = Lion_trace.Trace
module History = Lion_store.History

(* Epoch-based optimistic commit (docs/GEO.md, after "Epoch-based
   Optimistic Concurrency Control in Geo-replicated Databases"):
   transactions execute optimistically at their coordinator with no
   per-operation cross-node round trips, park until the next epoch
   boundary, and the boundary validates the whole batch and runs ONE
   cross-region replication round for everything that validated. A
   cross-region transaction therefore costs amortised-WAN instead of
   per-transaction WAN — the regime where Lion's remastering (a WAN
   latency cliff per leader transfer) loses.

   Serializability: execution records observed versions in a Kvstore
   session; the boundary takes [try_reserve] (validate + write-lock) in
   arrival order, holds the reservations across the WAN round, and only
   then [finalize]s — so concurrent epochs and optimistic readers of
   reserved keys fail their own validation and retry. The PR 3 checker
   audits the resulting histories like any other protocol's. *)

type pending = {
  txn : Txn.t;
  session : Kvstore.session;
  coordinator : int;
  start : float;  (* first submission time *)
  attempt : int;
  exec_time : float;
  parked_at : float;
  octx : Trace.ctx option;
}

type t = {
  cl : Cluster.t;
  interval : float;
  mutable parked : pending list;  (* reverse arrival order *)
  mutable timer_armed : bool;
  mutable epochs : int;
}

(* Give-up bound for pathological schedules (every region unreachable
   past any nemesis horizon): keeps [Engine.run_all] terminating. Far
   above anything a healing fault plan produces. *)
let max_attempts = 1000

let record_outcome t (p : pending) outcome =
  match t.cl.Cluster.history with
  | None -> ()
  | Some h ->
      let writes =
        match outcome with
        | History.Committed ->
            List.sort_uniq Kvstore.key_compare (Kvstore.write_set p.session)
            |> List.map (fun key ->
                   (key, Kvstore.version t.cl.Cluster.store key))
        | History.Aborted | History.Indeterminate -> []
      in
      History.record h ~txn_id:p.txn.Txn.id ~attempt:p.attempt
        ~reads:(Kvstore.observed_reads p.session)
        ~writes ~outcome
        ~ts:(Engine.now t.cl.Cluster.engine)

(* One epoch-close timer at a time, armed only while transactions are
   parked or executing toward a park — a free-running self-rescheduling
   timer would keep the event queue alive forever and [Engine.run_all]
   (the audit drain) would never terminate. *)
let rec arm_timer t =
  if not t.timer_armed then (
    t.timer_armed <- true;
    let engine = t.cl.Cluster.engine in
    let wait = t.interval -. Float.rem (Engine.now engine) t.interval in
    Engine.schedule engine ~delay:wait (fun () ->
        t.timer_armed <- false;
        close_epoch t))

(* Live peers carrying the epoch's replication round: the lowest live
   member node of every region other than the leader's. Region-free
   (and single-region) clusters have no peers — the round is free, and
   the protocol degrades to boundary-validated local OCC. *)
and replication_peers t ~leader =
  let cl = t.cl in
  let lr = Cluster.region_of cl leader in
  let peers = ref [] in
  List.iter
    (fun n ->
      let r = Cluster.region_of cl n in
      if r <> lr && not (List.exists (fun (r', _) -> r' = r) !peers) then
        peers := (r, n) :: !peers)
    (Cluster.alive_nodes cl);
  List.rev_map snd !peers

and close_epoch t =
  let cl = t.cl in
  let engine = cl.Cluster.engine in
  let cfg = cl.Cluster.cfg in
  let batch = List.rev t.parked in
  t.parked <- [];
  if batch <> [] then (
    t.epochs <- t.epochs + 1;
    let boundary = Engine.now engine in
    (* Validation in arrival order: winners hold their write
       reservations through the replication round; losers (stale reads,
       or a conflict with an earlier winner of this same epoch) abort
       and re-execute next epoch. A parked transaction whose
       coordinator died loses too — its optimistic state died with the
       node. *)
    let winners =
      List.filter
        (fun p ->
          if Cluster.alive cl p.coordinator && Kvstore.try_reserve p.session
          then true
          else (
            abort_retry t p;
            false))
        batch
    in
    if winners <> [] then (
      let leader = (List.hd winners).coordinator in
      let peers = replication_peers t ~leader in
      let total_writes =
        List.fold_left
          (fun acc p -> acc + List.length (Kvstore.write_set p.session))
          0 winners
      in
      let bytes =
        cfg.Config.op_msg_bytes + (cfg.Config.record_bytes * total_writes)
      in
      (* Per-winner WAN span: pure trace data (only allocated for
         sampled transactions), closed when the round resolves. *)
      let spans =
        List.filter_map
          (fun p ->
            Trace.child ~node:leader ~phase:"wan" ~name:"epoch-commit"
              ~ts:boundary p.octx)
          (List.filter (fun p -> p.octx <> None) winners)
      in
      let close_spans () =
        List.iter
          (fun s -> Trace.finish ~ts:(Engine.now engine) (Some s))
          spans
      in
      let commit_all () =
        close_spans ();
        let commit_time = Engine.now engine -. boundary in
        List.iter
          (fun p ->
            Kvstore.finalize p.session;
            record_outcome t p History.Committed;
            Cluster.replicate_commit cl ?ctx:p.octx p.txn.Txn.parts;
            let latency = Engine.now engine -. p.start in
            let late =
              cfg.Config.txn_deadline > 0.0
              && latency > cfg.Config.txn_deadline
            in
            if late then Metrics.record_deadline_miss cl.Cluster.metrics;
            let single_node =
              peers = []
              && List.for_all
                   (fun part ->
                     Placement.has_primary cl.Cluster.placement ~part
                       ~node:p.coordinator)
                   p.txn.Txn.parts
            in
            Metrics.record_commit ~late cl.Cluster.metrics ~latency
              ~single_node ~remastered:false
              ~phases:
                [
                  (Metrics.Execution, p.exec_time);
                  (Metrics.Scheduling, boundary -. p.parked_at);
                  (Metrics.Replication, commit_time);
                ];
            Trace.finish_txn ~ts:(Engine.now engine) ~ok:true p.octx)
          winners
      in
      let abort_all () =
        close_spans ();
        Metrics.beacon cl.Cluster.metrics "epoch-round-failed";
        List.iter
          (fun p ->
            Kvstore.release_reservation p.session;
            abort_retry t p)
          winners
      in
      match peers with
      | [] -> commit_all ()
      | _ ->
          (* One grouped round: the leader ships the epoch's write log
             to one peer per remote region. Any region unreachable
             through the RPC retry schedule fails the whole epoch —
             group replication is all-or-nothing, which is what makes a
             WAN partition a goodput cliff for this protocol too. *)
          let ok, fail =
            Proto.join_or_fail (List.length peers) ~on_ok:commit_all
              ~on_fail:abort_all
          in
          List.iter
            (fun peer ->
              Cluster.rpc cl ~src:leader ~dst:peer ~bytes
                ~work:cfg.Config.msg_handle_cost ~on_fail:fail ok)
            peers));
  if t.parked <> [] then arm_timer t

and abort_retry t (p : pending) =
  let cl = t.cl in
  let engine = cl.Cluster.engine in
  record_outcome t p History.Aborted;
  Metrics.record_abort cl.Cluster.metrics;
  Trace.note_abort ~ts:(Engine.now engine) p.octx;
  let cfg = cl.Cluster.cfg in
  let give_up reason =
    Metrics.record_deadline_giveup cl.Cluster.metrics;
    Trace.note ~ts:(Engine.now engine) reason p.octx;
    Trace.finish_txn ~ts:(Engine.now engine) ~ok:false p.octx
  in
  let past_deadline =
    cfg.Config.txn_deadline > 0.0 && cfg.Config.deadline_enforce
    && Engine.now engine >= p.start +. cfg.Config.txn_deadline
  in
  if past_deadline then give_up "deadline-giveup"
  else if p.attempt >= max_attempts then give_up "attempts-exhausted"
  else (
    let cap = Stdlib.min 8 p.attempt in
    let backoff =
      (50.0 *. float_of_int (1 lsl cap)) +. Rng.float cl.Cluster.rng 50.0
    in
    Engine.schedule engine
      ~delay:(Stdlib.min 2000.0 backoff)
      (fun () ->
        execute t ~txn:p.txn ~start:p.start ~attempt:(p.attempt + 1)
          ~octx:p.octx ~on_parked:(fun () -> ())))

(* Optimistic local execution: route to the node holding the most of
   the transaction's primaries, take a worker for setup + per-op CPU,
   record reads/writes in a fresh session, release the worker and park
   until the next boundary. No remote round trips — reads are served by
   the coordinator's local (possibly stale) snapshot; staleness is what
   boundary validation catches. [on_parked] fires at worker release,
   which is when the submitting client may proceed (mirroring the
   standard protocols' worker-bound closed loop). *)
and execute t ~txn ~start ~attempt ~octx ~on_parked =
  let cl = t.cl in
  let engine = cl.Cluster.engine in
  let cfg = cl.Cluster.cfg in
  let coordinator = Exec.route_most_primaries cl txn in
  let actx =
    match octx with
    | None -> None
    | Some _ ->
        Trace.child ~node:coordinator ~phase:"execution"
          ~name:(Printf.sprintf "attempt %d" attempt)
          ~ts:(Engine.now engine) octx
  in
  let requeue () =
    (* Shed at admission or the coordinator died under us: no session
       state to abort — pay a backoff and re-route. *)
    Trace.finish ~ts:(Engine.now engine) actx;
    Metrics.record_abort cl.Cluster.metrics;
    if attempt >= max_attempts then (
      Metrics.record_deadline_giveup cl.Cluster.metrics;
      Trace.finish_txn ~ts:(Engine.now engine) ~ok:false octx;
      on_parked ())
    else
      Engine.schedule engine
        ~delay:(cfg.Config.rpc_timeout +. Rng.float cl.Cluster.rng 50.0)
        (fun () ->
          execute t ~txn ~start ~attempt:(attempt + 1) ~octx ~on_parked)
  in
  Cluster.acquire_worker cl ~node:coordinator ~on_fail:requeue (fun lease ->
      let session = Kvstore.begin_session cl.Cluster.store in
      let n_ops = List.length txn.Txn.ops in
      let work =
        (cfg.Config.txn_setup_cost
        +. (float_of_int n_ops *. cfg.Config.local_op_cost))
        *. Cluster.work_scale cl coordinator
      in
      let t0 = Engine.now engine in
      Engine.schedule engine ~delay:work (fun () ->
          if not (Cluster.alive cl coordinator) then (
            Cluster.release_worker cl ~node:coordinator lease;
            requeue ())
          else (
            List.iter (Cluster.touch_partition cl) txn.Txn.parts;
            List.iter
              (function
                | Txn.Read k -> Kvstore.read session k
                | Txn.Write k -> Kvstore.write session k)
              txn.Txn.ops;
            Cluster.release_worker cl ~node:coordinator lease;
            Trace.finish ~ts:(Engine.now engine) actx;
            t.parked <-
              {
                txn;
                session;
                coordinator;
                start;
                attempt;
                exec_time = Engine.now engine -. t0;
                parked_at = Engine.now engine;
                octx;
              }
              :: t.parked;
            arm_timer t;
            on_parked ())))

let submit t txn ~on_done =
  let engine = t.cl.Cluster.engine in
  let octx =
    match t.cl.Cluster.tracer with
    | None -> None
    | Some tracer ->
        Trace.start_txn tracer ~ts:(Engine.now engine) ~txn_id:txn.Txn.id
  in
  execute t ~txn ~start:(Engine.now engine) ~attempt:1 ~octx
    ~on_parked:on_done

let create ?interval cl =
  let interval =
    match interval with
    | Some i -> i
    | None -> cl.Cluster.cfg.Config.epoch_interval
  in
  let t =
    { cl; interval; parked = []; timer_armed = false; epochs = 0 }
  in
  Proto.make ~name:"EpochOCC"
    ~submit:(fun txn ~on_done -> submit t txn ~on_done)
    ~drain:(fun () -> close_epoch t)
    ()
