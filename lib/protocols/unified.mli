(** Unified commit baseline (§VII related work, e.g. MDCC/TAPIR-style):
    the coordinator engages primaries and secondaries of every
    participant in a single voting round, collapsing 2PC's prepare and
    commit plus replica synchronisation into one round trip — fewer
    sequential rounds, more messages and more voters per commit. No
    adaptivity; included to position Lion against the
    round-trip-minimisation line of work. *)

val create : Lion_store.Cluster.t -> Proto.t
