(** Epoch-based batch execution engine (§IV-D, §V).

    Batch protocols buffer routed transactions; when the buffer reaches
    the batch size (default 10 k) — or the drain hook fires — an epoch
    runs. Epoch processing is analytic: the protocol's [process]
    function reports per-transaction verdicts plus the resources the
    epoch consumed (per-node worker-µs, serialized scheduling time,
    non-overlapped barrier time), and the engine derives the epoch
    makespan

      duration = serial + max_n(busy_n / workers_n) + barrier + commit

    so bottlenecks (Star's super node, Calvin's lock manager) show up as
    the max-term or the serial term. Committed transactions are recorded
    at epoch end with latency measured from enqueue (re-queued aborted
    transactions span multiple epochs, producing the tail latencies of
    Fig. 14); their clients resubmit immediately, keeping the system
    saturated as in the paper's benchmarking harness. *)

type verdict = { committed : bool; single_node : bool; remastered : bool }

type epoch_result = {
  verdicts : verdict array;  (** one per transaction, in order *)
  node_busy : float array;  (** worker-µs consumed per node *)
  serial_time : float;  (** sequencer / lock-manager serial span *)
  barrier_time : float;  (** non-overlapped pauses (migrations, remasters) *)
  phase_split : (Lion_sim.Metrics.phase * float) list;
      (** relative weights used to attribute each transaction's latency
          to phases for the Fig. 14 breakdown *)
}

val conflict_verdicts :
  ?include_raw:bool ->
  ?window:int ->
  ?footprint:
    (Lion_workload.Txn.t ->
    Lion_store.Kvstore.key list * Lion_store.Kvstore.key list) ->
  granule:(Lion_store.Kvstore.key -> int * int) ->
  Lion_workload.Txn.t array ->
  bool array
(** First-reserver-wins conflict analysis within a batch: transaction i
    is marked [false] (must abort) if it writes a granule already
    write-reserved by an earlier transaction, or — when [include_raw]
    (Aria's read-after-write rule) — reads one. [granule] maps keys to
    the conflict unit (identity for key-level OCC, coarser for Lotus'
    granule locks).

    [window] (default: the whole batch) bounds the concurrency scope:
    reservations reset every [window] transactions, modelling that a
    10k-transaction epoch executes as a pipeline of worker-sized waves
    in which only overlapping executions can actually conflict — later
    waves read the earlier waves' committed versions. Epoch-long lock
    holders (Lotus) keep the default.

    [footprint] overrides which keys participate (default: the
    transaction's write and read sets) — Lotus passes only the keys on
    remote partitions, since home-partition operations serialize on the
    partition's executor and never abort. *)

val create :
  Lion_store.Cluster.t ->
  name:string ->
  process:(Lion_workload.Txn.t array -> epoch_result) ->
  ?tick:(unit -> unit) ->
  ?max_retries:int ->
  ?stage_labels:string * string ->
  unit ->
  Proto.t
(** [max_retries] (default 100) bounds re-queues per transaction; a
    transaction exceeding it is force-committed to keep the closed loop
    live (real systems eventually serialize it).

    When the cluster carries a tracer ([Cluster.tracer]), sampled
    transactions get retroactive stage spans at each epoch end —
    queue-wait, sequencing, execution, barrier, epoch-commit — tiling
    the makespan, with re-queues annotated as aborts. [stage_labels]
    (default [("sequencing", "barrier")]) names the protocol-specific
    serial and barrier stages, e.g. Calvin's lock scheduler or Star's
    phase-switch remaster. *)
