(** The 2PC baseline: classic OCC + two-phase commit (§VI-A2a).

    Transactions route to the node holding most of their primaries;
    remote partitions are reached by blocking round trips; distributed
    transactions always run the execute / prepare / commit phases. No
    adaptivity of any kind. *)

val create : Lion_store.Cluster.t -> Proto.t
