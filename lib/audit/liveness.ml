module Cluster = Lion_store.Cluster
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module Overload = Lion_sim.Overload

type finding =
  | Stuck_txns of { submitted : int; completed : int }
  | Event_budget_exhausted of { pending : int }
  | Breaker_pinned of { node : int }
  | Remaster_wedged of { inflight : int }
  | Partition_parked of { part : int }
  | Slow_quiesce of { finished : float; bound : float }

type report = { findings : finding list }

let clean r = r.findings = []

let finding_name = function
  | Stuck_txns _ -> "stuck-txns"
  | Event_budget_exhausted _ -> "event-budget-exhausted"
  | Breaker_pinned _ -> "breaker-pinned"
  | Remaster_wedged _ -> "remaster-wedged"
  | Partition_parked _ -> "partition-parked"
  | Slow_quiesce _ -> "slow-quiesce"

let pp_finding fmt = function
  | Stuck_txns { submitted; completed } ->
      Format.fprintf fmt "stuck-txns: %d of %d submitted never resolved"
        (submitted - completed) submitted
  | Event_budget_exhausted { pending } ->
      Format.fprintf fmt
        "event-budget-exhausted: drain stopped on max_events with %d pending"
        pending
  | Breaker_pinned { node } ->
      Format.fprintf fmt "breaker-pinned: breaker to live node %d still open"
        node
  | Remaster_wedged { inflight } ->
      Format.fprintf fmt "remaster-wedged: %d leader transfers still in flight"
        inflight
  | Partition_parked { part } ->
      Format.fprintf fmt
        "partition-parked: partition %d has no live primary at quiescence" part
  | Slow_quiesce { finished; bound } ->
      Format.fprintf fmt
        "slow-quiesce: drained at t=%.0fus, past the %.0fus bound" finished
        bound

let pp_report fmt r =
  match r.findings with
  | [] -> Format.fprintf fmt "liveness: clean"
  | fs ->
      Format.fprintf fmt "@[<v>liveness: %d finding(s)@,%a@]" (List.length fs)
        (Format.pp_print_list pp_finding)
        fs

let plan_horizon plan =
  List.fold_left
    (fun acc spec ->
      let upto =
        match spec with
        | Fault.Crash { at; recover_at; _ } ->
            Option.value recover_at ~default:at
        | Fault.Partition { until; _ }
        | Fault.Drop { until; _ }
        | Fault.Jitter { until; _ }
        | Fault.Straggler { until; _ }
        | Fault.Delay { until; _ } ->
            until
      in
      Stdlib.max acc upto)
    0.0 plan

let audit ?quiesce_bound ~cluster:cl ~submitted ~completed () =
  let engine = cl.Cluster.engine in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  if Engine.last_run_exhausted engine then
    add (Event_budget_exhausted { pending = Engine.pending engine });
  if completed < submitted then add (Stuck_txns { submitted; completed });
  (* Breakers: only a breaker pinned open toward a node that is alive
     and a member indicts the control plane — one still open toward a
     corpse merely remembers the corpse. [breaker_state] ticks the
     breaker's clock, so an open whose cooldown elapsed before the last
     event reads [Half_open] and is not reported: it would admit a
     probe the moment traffic returned. *)
  List.iter
    (fun node ->
      if Cluster.breaker_state cl node = Overload.Breaker.Open then
        add (Breaker_pinned { node }))
    (Cluster.alive_nodes cl);
  let inflight = Cluster.remasters_inflight cl in
  if inflight > 0 then add (Remaster_wedged { inflight });
  List.iter
    (fun part -> add (Partition_parked { part }))
    (Cluster.parked_partitions cl);
  (match quiesce_bound with
  | Some bound when not (Engine.last_run_exhausted engine) ->
      let finished = Engine.now engine in
      if finished > bound then add (Slow_quiesce { finished; bound })
  | _ -> ());
  { findings = List.rev !findings }
