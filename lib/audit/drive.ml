module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module History = Lion_store.History
module Engine = Lion_sim.Engine
module Metrics = Lion_sim.Metrics
module Fault = Lion_sim.Fault
module Proto = Lion_protocols.Proto
module Txn = Lion_workload.Txn

type outcome = {
  history : History.t;
  check : Checker.report;
  divergence : Divergence.report;
  liveness : Liveness.report;
  submitted : int;
  completed : int;
  commits : int;
  aborts : int;
  min_availability : float;
  resyncs : int;
  stale_rejections : int;
  replica_purges : int;
  exhausted : bool;
  pending_events : int;
  final_time : float;
}

let passed o = Checker.serializable o.check && Divergence.clean o.divergence
let healthy o = passed o && Liveness.clean o.liveness

let pp_outcome fmt o =
  Format.fprintf fmt
    "@[<v>%d submitted, %d completed, %d commits, %d aborts, min availability %.3f, %d resyncs, end t=%.0fus@,%a%a@,%a@]"
    o.submitted o.completed o.commits o.aborts o.min_availability o.resyncs
    o.final_time Checker.pp_report o.check Divergence.pp_report o.divergence
    Liveness.pp_report o.liveness

(* Unlike the throughput harness's closed loop — which reschedules
   clients forever and so never quiesces — audit clients stop issuing
   at the horizon. Everything in flight then runs to completion
   ([Engine.run_all]): retries resolve, elections finish, log ships
   land, anti-entropy repairs terminate. Only at that point are the
   checker, the divergence audit and the liveness audit meaningful. *)
let run ?(seed = 1) ?(clients = 8) ?(duration = 4.0) ?(nemesis_at = 1.0)
    ?tracer ?(max_events = 50_000_000) ?(actions = [])
    ?(quiesce_slack = Engine.seconds 10.0) ?(observe = fun _ -> ()) ~cfg ~make
    ~gen ~nemesis () =
  let cfg =
    {
      cfg with
      Config.fault_plan =
        cfg.Config.fault_plan
        @ Nemesis.plan nemesis ~at:(Engine.seconds nemesis_at);
    }
  in
  let history = History.create () in
  let cl = Cluster.create ~seed ?tracer ~history cfg in
  let proto = make cl in
  let engine = cl.Cluster.engine in
  (* Membership actions (join/decommission) are not fault-plan specs:
     they are planner decisions, scheduled here as absolute-time calls
     against the cluster. *)
  List.iter
    (fun (time, act) -> Engine.at engine ~time (fun () -> act cl))
    actions;
  let horizon = Engine.seconds duration in
  let submitted = ref 0 in
  let completed = ref 0 in
  let rec client_loop () =
    if Engine.now engine < horizon then (
      let txn = gen ~time:(Engine.now engine) in
      incr submitted;
      proto.Proto.submit txn ~on_done:(fun () ->
          incr completed;
          Engine.schedule engine ~delay:0.0 client_loop))
  in
  for _ = 1 to clients do
    client_loop ()
  done;
  let tick_us = Engine.seconds 1.0 in
  let rec ticker () =
    Engine.schedule engine ~delay:tick_us (fun () ->
        if Engine.now engine < horizon then (
          proto.Proto.tick ();
          ticker ()))
  in
  ticker ();
  let min_avail = ref 1.0 in
  let rec avail_loop () =
    if Engine.now engine < horizon then (
      min_avail := Stdlib.min !min_avail (Cluster.availability cl);
      Engine.schedule engine ~delay:(Engine.ms 100.0) avail_loop)
  in
  Engine.schedule engine ~delay:(Engine.ms 50.0) avail_loop;
  Engine.run_until engine horizon;
  proto.Proto.drain ();
  Engine.run_all engine ~max_events ();
  let metrics = cl.Cluster.metrics in
  let check = Checker.check (History.events history) in
  let divergence = Divergence.audit ~history cl in
  (* A healthy drain ends within the last scheduled disturbance plus a
     generous slack; anything later means some loop kept the queue
     alive long after the cluster should have settled. *)
  let quiesce_bound =
    Stdlib.max horizon (Liveness.plan_horizon cfg.Config.fault_plan)
    +. quiesce_slack
  in
  let liveness =
    Liveness.audit ~quiesce_bound ~cluster:cl ~submitted:!submitted
      ~completed:!completed ()
  in
  observe cl;
  {
    history;
    check;
    divergence;
    liveness;
    submitted = !submitted;
    completed = !completed;
    commits = Metrics.commits metrics;
    aborts = Metrics.aborts metrics;
    min_availability = !min_avail;
    resyncs = cl.Cluster.resync_count;
    stale_rejections = Metrics.stale_ack_rejections metrics;
    replica_purges = Metrics.replica_purges metrics;
    exhausted = Engine.last_run_exhausted engine;
    pending_events = Engine.pending engine;
    final_time = Engine.now engine;
  }
