(** Replica-divergence audit at quiescence.

    Run after the event queue has drained (no in-flight log ships, no
    open elections). Two comparisons:

    - {b log-apply watermarks}: every live holder of a partition
      replica (primary and secondaries) must have applied the
      partition's full replication log — remasters, failover
      elections, replica installs, recovery resyncs and anti-entropy
      repairs all advance {!Lion_store.Replication.applied}, so a
      replica still behind at quiescence has genuinely diverged;
    - {b history cross-check} (when a {!Lion_store.History} sink is
      supplied): the highest version the history claims each key
      reached must exist in a store — the cluster's real [Kvstore] for
      standard engines, the sink's shadow for analytic batch engines.
      A missing version is a lost write. *)

type finding =
  | Replica_behind of { part : int; node : int; applied : int; log_len : int }
  | Stale_replica of { part : int; node : int; durable : int; log_len : int }
      (** the believed watermark claims the replica is caught up, but
          its storage durably holds less than the log — the signature a
          stale replication session leaves when its install or ack is
          accepted after the node crashed and rejoined. Session tagging
          ([Config.session_tagging]) prevents it; the crash-rejoin
          nemesis reproduces it (docs/MEMBERSHIP.md) *)
  | Lost_write of {
      key : Lion_store.Kvstore.key;
      history_version : int;
      store_version : int;
    }

type report = {
  partitions : int;
  replicas_checked : int;  (** live replica holders examined *)
  findings : finding list;  (** deterministic order: by partition, then key *)
}

val audit : ?history:Lion_store.History.t -> Lion_store.Cluster.t -> report
val clean : report -> bool
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
