module Fault = Lion_sim.Fault
module Rng = Lion_kernel.Rng

type t = { name : string; dur : float; build : float -> Fault.plan }

let name n = n.name
let duration n = n.dur
let plan n ~at = n.build at
let v ~name ~dur build = { name; dur; build }

let calm = { name = "calm"; dur = 0.0; build = (fun _ -> []) }

let crash ?(downtime = 2_000_000.0) ~node () =
  {
    name = Printf.sprintf "crash-n%d" node;
    dur = downtime;
    build = (fun at -> Fault.crash_recover ~node ~at ~downtime);
  }

let partition ?(duration = 1_000_000.0) ~groups () =
  {
    name = "partition";
    dur = duration;
    build = (fun at -> [ Fault.partition ~groups ~from_:at ~until:(at +. duration) ]);
  }

let isolate ?(duration = 1_000_000.0) ~node ~nodes () =
  let others = List.filter (fun n -> n <> node) (List.init nodes Fun.id) in
  {
    (partition ~duration ~groups:[ [ node ]; others ] ()) with
    name = Printf.sprintf "isolate-n%d" node;
  }

let straggler ?(duration = 2_000_000.0) ?(factor = 8.0) ~node () =
  {
    name = Printf.sprintf "straggler-n%d" node;
    dur = duration;
    build =
      (fun at -> [ Fault.straggler ~node ~factor ~from_:at ~until:(at +. duration) ]);
  }

let lossy ?(duration = 1_000_000.0) ?(prob = 0.3) () =
  {
    name = "lossy";
    dur = duration;
    build =
      (fun at -> Fault.lossy ~prob ~from_:at ~until:(at +. duration) ());
  }

(* {2 Combinators} *)

let rename name n = { n with name }

let seq ?(gap = 0.0) parts =
  let dur =
    List.fold_left (fun acc n -> acc +. n.dur +. gap) 0.0 parts
    -. if parts = [] then 0.0 else gap
  in
  {
    name = String.concat "+" (List.map (fun n -> n.name) parts);
    dur = Stdlib.max 0.0 dur;
    build =
      (fun at ->
        let _, specs =
          List.fold_left
            (fun (t0, acc) n -> (t0 +. n.dur +. gap, acc @ n.build t0))
            (at, []) parts
        in
        specs);
  }

let overlay parts =
  {
    name = String.concat "&" (List.map (fun n -> n.name) parts);
    dur = List.fold_left (fun acc n -> Stdlib.max acc n.dur) 0.0 parts;
    build = (fun at -> List.concat_map (fun n -> n.build at) parts);
  }

let stagger ~gap parts =
  let dur =
    List.fold_left
      (fun (i, acc) n -> (i + 1, Stdlib.max acc ((float_of_int i *. gap) +. n.dur)))
      (0, 0.0) parts
    |> snd
  in
  {
    name = String.concat "~" (List.map (fun n -> n.name) parts);
    dur;
    build =
      (fun at ->
        List.concat
          (List.mapi (fun i n -> n.build (at +. (float_of_int i *. gap))) parts));
  }

let repeat ?(gap = 0.0) ~times n =
  rename
    (Printf.sprintf "%dx(%s)" times n.name)
    (seq ~gap (List.init (Stdlib.max 1 times) (fun _ -> n)))

(* {2 Adversarial scenarios} *)

(* Crash the node most likely to be mid-remaster: under Lion, the
   coordinator being promoted. A short downtime keeps the transfer
   window and the recovery both inside the run. *)
let crash_during_remaster ?(node = 1) ?(downtime = 500_000.0) () =
  rename
    (Printf.sprintf "crash-during-remaster-n%d" node)
    (crash ~downtime ~node ())

(* Cut a primary-heavy node away from the rest: its partitions must
   fail over while every log ship to and from it dies. *)
let partition_primary_from_majority ?(node = 0) ?(duration = 1_000_000.0) ~nodes () =
  rename
    (Printf.sprintf "partition-primary-n%d" node)
    (isolate ~duration ~node ~nodes ())

(* Slow the busiest coordinator without killing it: transactions keep
   routing there, timeouts and retries pile up. *)
let straggler_on_coordinator ?(node = 0) ?(duration = 2_000_000.0) ?(factor = 16.0) () =
  rename
    (Printf.sprintf "straggler-coordinator-n%d" node)
    (straggler ~duration ~factor ~node ())

(* Overload trigger (docs/OVERLOAD.md): slow the busiest coordinator
   while the network sheds a slice of messages in the same window —
   service queues back up, RPC timeouts and retries pile on, and a
   cluster without retry discipline can sustain the collapse after the
   window ends. The audit checks that even then no anomaly appears:
   shedding and fast-failing must lose availability, never safety. *)
let overload_burst ?(node = 0) ?(duration = 2_000_000.0) ?(factor = 6.0)
    ?(prob = 0.15) () =
  rename
    (Printf.sprintf "overload-burst-n%d" node)
    (overlay [ straggler ~duration ~factor ~node (); lossy ~duration ~prob () ])

(* Crash/rejoin cycles engineered to land inside replication-stream
   windows (docs/MEMBERSHIP.md). Each cycle, anchored on a planner tick
   (cycles default to the driver's 1 s tick period):

   - for [hold] µs before the crash, messages to the node are held in
     flight just long enough ([Fault.Delay], deterministic) to be
     delivered after the node has crashed AND rejoined — the classic
     stale replication ack;
   - the crash itself lands [hold] after the tick, so a replica install
     the planner initiated at the tick (a [replica_add_duration] =
     200 ms background copy by default) completes after the rejoin too —
     a stale snapshot install.

   Untagged sessions accept both and corrupt the apply watermarks
   (the divergence audit reports [Stale_replica]); with
   [Config.session_tagging] both are rejected and the audit is clean. *)
let crash_rejoin ?(node = 1) ?(cycles = 2) ?(period = 1_000_000.0)
    ?(downtime = 120_000.0) () =
  let hold = 50_000.0 in
  let extra = downtime +. hold +. 30_000.0 in
  {
    name = Printf.sprintf "crash-rejoin-n%d" node;
    dur = (float_of_int (Stdlib.max 1 cycles - 1) *. period) +. hold +. downtime;
    build =
      (fun at ->
        List.concat
          (List.init (Stdlib.max 1 cycles) (fun k ->
               let t0 = at +. (float_of_int k *. period) in
               Fault.delay ~dst:node ~extra ~from_:t0 ~until:(t0 +. hold) ()
               :: Fault.crash_recover ~node ~at:(t0 +. hold) ~downtime)));
  }

(* {2 Seeded schedule generator} *)

let adversarial ?(events = 6) ?(window = 6_000_000.0) ~seed ~nodes () =
  {
    name = Printf.sprintf "adversarial-s%d" seed;
    dur = window;
    build =
      (fun at ->
        let rng = Rng.create (0x6e656d65 lxor seed) in
        List.concat
          (List.init events (fun _ ->
               let t0 = at +. Rng.float rng (window *. 0.8) in
               let dur = 100_000.0 +. Rng.float rng (window /. 4.0) in
               match Rng.int rng 4 with
               | 0 ->
                   let node = Rng.int rng nodes in
                   Fault.crash_recover ~node ~at:t0 ~downtime:dur
               | 1 ->
                   let cut = Rng.int rng nodes in
                   let rest = List.filter (fun n -> n <> cut) (List.init nodes Fun.id) in
                   [ Fault.partition ~groups:[ [ cut ]; rest ] ~from_:t0 ~until:(t0 +. dur) ]
               | 2 ->
                   let node = Rng.int rng nodes in
                   [
                     Fault.straggler ~node
                       ~factor:(2.0 +. Rng.float rng 14.0)
                       ~from_:t0 ~until:(t0 +. dur);
                   ]
               | _ ->
                   [
                     Fault.drop
                       ~prob:(0.05 +. Rng.float rng 0.4)
                       ~from_:t0 ~until:(t0 +. dur) ();
                   ])));
  }
