module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Replication = Lion_store.Replication
module Kvstore = Lion_store.Kvstore
module History = Lion_store.History

type finding =
  | Replica_behind of { part : int; node : int; applied : int; log_len : int }
  | Stale_replica of { part : int; node : int; durable : int; log_len : int }
  | Lost_write of { key : Kvstore.key; history_version : int; store_version : int }

type report = {
  partitions : int;
  replicas_checked : int;
  findings : finding list;
}

let clean r = r.findings = []

let pp_finding fmt = function
  | Replica_behind { part; node; applied; log_len } ->
      Format.fprintf fmt
        "replica P%d@@node%d behind: applied %d of %d log records" part node
        applied log_len
  | Stale_replica { part; node; durable; log_len } ->
      Format.fprintf fmt
        "stale replica P%d@@node%d: believed caught up but storage durably \
         holds %d of %d log records (stale-session install)"
        part node durable log_len
  | Lost_write { key; history_version; store_version } ->
      Format.fprintf fmt
        "lost write: history installed %a@@v%d but the store holds v%d"
        Kvstore.pp_key key history_version store_version

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d partitions, %d replicas: %s@," r.partitions
    r.replicas_checked
    (if clean r then "no divergence"
     else Printf.sprintf "%d findings" (List.length r.findings));
  List.iter (fun f -> Format.fprintf fmt "  %a@," pp_finding f) r.findings;
  Format.fprintf fmt "@]"

let audit ?history cl =
  let placement = cl.Cluster.placement in
  let repl = cl.Cluster.replication in
  let parts = Placement.partitions placement in
  let findings = ref [] in
  let checked = ref 0 in
  (* Log-apply watermarks: at quiescence every live replica holder must
     have applied the partition's full log. Dead nodes are skipped —
     their copies left the placement at crash time. *)
  for part = 0 to parts - 1 do
    let log_len = Replication.appends repl ~part in
    let holders =
      Placement.primary placement part :: Placement.secondaries placement part
      |> List.sort_uniq compare
    in
    List.iter
      (fun node ->
        if Cluster.alive cl node then (
          incr checked;
          let applied = Replication.applied repl ~part ~node in
          if applied < log_len then
            findings := Replica_behind { part; node; applied; log_len } :: !findings
          else
            (* The believed watermark claims caught-up: check the
               ground truth behind it. A durable watermark trailing the
               log here means a stale-session stream stamped
               bookkeeping for state the node's storage never received
               — the crash-rejoin corruption signature
               (docs/MEMBERSHIP.md). *)
            let durable = Replication.durable repl ~part ~node in
            if durable < log_len then
              findings := Stale_replica { part; node; durable; log_len } :: !findings))
      holders
  done;
  (* History cross-check: every version the history says was installed
     must exist in a store. Standard engines install into the cluster's
     real Kvstore; batch engines synthesize against the sink's shadow —
     take whichever is further ahead. *)
  (match history with
  | None -> ()
  | Some h ->
      let top = Hashtbl.create 4096 in
      List.iter
        (fun e ->
          if e.History.outcome = History.Committed then
            List.iter
              (fun (k, v) ->
                match Hashtbl.find_opt top k with
                | Some v' when v' >= v -> ()
                | _ -> Hashtbl.replace top k v)
              e.History.writes)
        (History.events h);
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) top []
        |> List.sort Kvstore.key_compare
      in
      List.iter
        (fun k ->
          let hv = Hashtbl.find top k in
          let sv =
            Stdlib.max
              (Kvstore.version cl.Cluster.store k)
              (Kvstore.version (History.shadow h) k)
          in
          if sv < hv then
            findings := Lost_write { key = k; history_version = hv; store_version = sv } :: !findings)
        keys);
  { partitions = parts; replicas_checked = !checked; findings = List.rev !findings }
