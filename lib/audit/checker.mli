(** Offline serializability checker over recorded transaction
    histories (Jepsen-style, after Adya's anomaly taxonomy).

    The input is the event list of a {!Lion_store.History} sink: per
    transaction attempt, the versions its reads observed and — for
    committed attempts — the versions its writes installed. From the
    committed events the checker rebuilds the version-order dependency
    graph:

    - {b ww}: the writer of a version precedes the writer of the next
      installed version of the same key;
    - {b wr}: the writer of a version precedes every committed reader
      that observed it;
    - {b rw} (anti-dependency): a reader of a version precedes the
      writer of the next installed version of that key (unless the
      reader installed it itself — a read-modify-write).

    A serializable history yields an acyclic graph. Each strongly
    connected component (iterative Tarjan) is reported through one
    {e minimal cycle witness} (shortest cycle through the component's
    lowest transaction id, ties broken deterministically) and
    classified:

    - {b G0} — the cycle is writes only (write-order cycle);
    - {b G1c} — ww/wr mix (circular information flow);
    - {b lost update} — a two-cycle of one ww and one rw on the same
      key: both transactions read the same version, both overwrote it;
    - {b G2} — any remaining cycle with an anti-dependency edge
      (write skew and friends).

    Two non-cycle anomalies are detected directly: {b G1a} (a
    committed transaction observed a version written by an aborted
    one) and {b divergent install} (two committed transactions both
    claim to have installed the same version — split-brain double
    execution). *)

type edge_kind = Ww | Wr | Rw

val kind_name : edge_kind -> string

(** One dependency: [src] must precede [dst] in any equivalent serial
    order, because of [key]. [version] is the installed version the
    dependency pivots on (the later write for ww/rw, the observed
    version for wr). *)
type edge = {
  src : int;
  dst : int;
  kind : edge_kind;
  key : Lion_store.Kvstore.key;
  version : int;
}

type anomaly =
  | G0 of edge list  (** write-cycle witness *)
  | G1a of {
      reader : int;
      writer : int;
      key : Lion_store.Kvstore.key;
      version : int;
    }  (** committed [reader] observed aborted [writer]'s version *)
  | G1c of edge list  (** ww/wr cycle witness *)
  | Lost_update of edge list  (** ww+rw two-cycle on one key *)
  | G2 of edge list  (** anti-dependency cycle witness *)
  | Divergent_install of {
      key : Lion_store.Kvstore.key;
      version : int;
      writers : int list;
    }  (** several committed transactions installed the same version *)

type report = {
  events : int;  (** history events examined *)
  committed : int;  (** committed transactions in the graph *)
  edges : int;  (** distinct dependency edges *)
  anomalies : anomaly list;
      (** divergent installs, then G1a, then one witness per cyclic
          SCC — deterministic order *)
}

val check : Lion_store.History.event list -> report
(** Analyse a history. Pure and deterministic: the same event list
    yields the same report, byte for byte. *)

val serializable : report -> bool
(** [anomalies = []]. *)

val anomaly_name : anomaly -> string
val pp_anomaly : Format.formatter -> anomaly -> unit
val pp_report : Format.formatter -> report -> unit
