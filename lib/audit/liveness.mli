(** Liveness audit: did the run actually finish, or merely stop?

    The safety checker and the divergence audit only inspect what the
    history contains — a cluster wedged in a retry storm, a breaker
    pinned open by an unhealed partition, or a leader transfer whose
    completion timer was lost all produce {e short, clean} histories
    and pass [Drive.passed]. This audit closes that gap: it runs at
    quiescence (after [Engine.run_all]) and checks that every admitted
    transaction resolved, the event queue truly drained, no breaker is
    still open toward a live node, no remaster is still in flight, no
    partition is parked without a primary, and the drain landed within
    a bounded wall of simulated time. See docs/FUZZING.md. *)

type finding =
  | Stuck_txns of { submitted : int; completed : int }
      (** admitted transactions whose [on_done] never fired *)
  | Event_budget_exhausted of { pending : int }
      (** [Engine.run_all] stopped on its [max_events] budget with
          [pending] events still queued — a runaway loop, not
          quiescence; every other number from the run is suspect *)
  | Breaker_pinned of { node : int }
      (** the circuit breaker toward a node that is alive and a member
          reads [Open] at quiescence *)
  | Remaster_wedged of { inflight : int }
      (** leader transfers still in flight after the full drain *)
  | Partition_parked of { part : int }
      (** a partition still has no live primary at quiescence even
          though the drain ran every scheduled recovery *)
  | Slow_quiesce of { finished : float; bound : float }
      (** the queue drained, but only at [finished] µs — past [bound],
          the last scheduled fault window plus a generous slack *)

type report = { findings : finding list }

val clean : report -> bool

val finding_name : finding -> string
(** Stable class name ("stuck-txns", "breaker-pinned", …) — the
    fuzzer's coverage signal and corpus files key on these. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

val plan_horizon : Lion_sim.Fault.plan -> float
(** Absolute time (µs) when the plan's last window closes: the latest
    [until] / [recover_at] / crash time across all specs; 0 for an
    empty plan. A crash with no recovery contributes its crash time. *)

val audit :
  ?quiesce_bound:float ->
  cluster:Lion_store.Cluster.t ->
  submitted:int ->
  completed:int ->
  unit ->
  report
(** Audit the cluster at quiescence. Reads only existing state — the
    engine's exhaustion flag, the cluster's in-flight and parked
    introspection, per-node breaker states — scheduling nothing and
    drawing no randomness, so running it never perturbs a replay.
    [quiesce_bound] (µs, absolute) enables the [Slow_quiesce] check;
    omitted, that check is skipped. *)
