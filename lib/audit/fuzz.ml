module Cluster = Lion_store.Cluster
module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module Metrics = Lion_sim.Metrics
module Rng = Lion_kernel.Rng
module Proto = Lion_protocols.Proto
module Txn = Lion_workload.Txn

type op =
  | Crash of { node : int; at_us : int; downtime_us : int }
  | Isolate of { node : int; at_us : int; dur_us : int }
  | Straggle of { node : int; factor : int; at_us : int; dur_us : int }
  | Slow_link of { dst : int; extra_us : int; at_us : int; dur_us : int }
  | Lossy of { pct : int; at_us : int; dur_us : int }
  | Burst of { node : int; at_us : int; dur_us : int }
  | Join of { node : int; at_us : int }
  | Decommission of { node : int; at_us : int }
  | Crash_rejoin of { node : int; at_us : int; cycles : int }

type case = {
  name : string;
  seed : int;
  proto : string;
  seconds : int;
  clients : int;
  phantom : bool;
  overload : bool;
  skew_pct : int;
  cross_pct : int;
  ops : op list;
}

type verdict = Clean | Safety | Liveness

let verdict_name = function
  | Clean -> "clean"
  | Safety -> "safety"
  | Liveness -> "liveness"

type result = {
  case : case;
  verdict : verdict;
  signature : string list;
  outcome : Drive.outcome;
}

type target = {
  protos : (string * (Cluster.t -> Proto.t)) list;
  workload :
    cfg:Config.t ->
    seed:int ->
    skew:float ->
    cross:float ->
    time:float ->
    Txn.t;
}

(* {2 Case -> configuration / fault plan / membership actions} *)

(* Elastic defaults always: standby slots give join/decommission ops
   something to act on, and session tagging keeps the known (and
   documented) untagged crash-rejoin hazard from drowning the fuzzer
   in expected Stale_replica findings. The overload knobs come without
   the transaction deadline — a deadline converts every wedge into a
   tidy give-up, and the liveness audit exists to see wedges. *)
let cfg_of_case c =
  let cfg = Config.with_elastic_defaults Config.default in
  let cfg =
    if c.overload then
      { (Config.with_overload_defaults cfg) with Config.txn_deadline = 0.0 }
    else cfg
  in
  { cfg with Config.reintroduce_phantom_secondary = c.phantom }

let us = float_of_int

let plan_of_case c =
  let slots = Config.total_slots (cfg_of_case c) in
  List.concat_map
    (fun op ->
      match op with
      | Crash { node; at_us; downtime_us } ->
          [
            Fault.crash ~node ~at:(us at_us)
              ~recover_at:(us (at_us + downtime_us))
              ();
          ]
      | Isolate { node; at_us; dur_us } ->
          let others =
            List.filter (fun n -> n <> node) (List.init slots Fun.id)
          in
          [
            Fault.partition
              ~groups:[ [ node ]; others ]
              ~from_:(us at_us)
              ~until:(us (at_us + dur_us));
          ]
      | Straggle { node; factor; at_us; dur_us } ->
          [
            Fault.straggler ~node ~factor:(float_of_int factor)
              ~from_:(us at_us)
              ~until:(us (at_us + dur_us));
          ]
      | Slow_link { dst; extra_us; at_us; dur_us } ->
          [
            Fault.delay ~dst ~extra:(us extra_us) ~from_:(us at_us)
              ~until:(us (at_us + dur_us))
              ();
          ]
      | Lossy { pct; at_us; dur_us } ->
          [
            Fault.drop
              ~prob:(float_of_int pct /. 100.0)
              ~from_:(us at_us)
              ~until:(us (at_us + dur_us))
              ();
          ]
      | Burst { node; at_us; dur_us } ->
          (* The overload-burst recipe (docs/OVERLOAD.md): straggler
             overlaid with message loss in the same window. *)
          [
            Fault.straggler ~node ~factor:6.0 ~from_:(us at_us)
              ~until:(us (at_us + dur_us));
            Fault.drop ~prob:0.15 ~from_:(us at_us)
              ~until:(us (at_us + dur_us))
              ();
          ]
      | Crash_rejoin { node; at_us; cycles } ->
          (* The crash-rejoin recipe ({!Nemesis.crash_rejoin}): delay
             deliveries into the node just before each crash so
             in-flight streams land after the rejoin. *)
          let hold = 50_000 and downtime = 120_000 and period = 1_000_000 in
          let extra = us (downtime + hold + 30_000) in
          List.concat
            (List.init (Stdlib.max 1 cycles) (fun k ->
                 let t0 = at_us + (k * period) in
                 Fault.delay ~dst:node ~extra ~from_:(us t0)
                   ~until:(us (t0 + hold))
                   ()
                 :: Fault.crash_recover ~node ~at:(us (t0 + hold))
                      ~downtime:(us downtime)))
      | Join _ | Decommission _ -> [])
    c.ops

let actions_of_case c =
  List.filter_map
    (function
      | Join { node; at_us } ->
          Some (us at_us, fun cl -> ignore (Cluster.join_node cl node))
      | Decommission { node; at_us } ->
          Some (us at_us, fun cl -> ignore (Cluster.decommission_node cl node))
      | _ -> None)
    c.ops

(* {2 Coverage signal} *)

let counter_specs =
  [
    ("timeouts", Metrics.timeouts);
    ("retries", Metrics.retries);
    ("drops", Metrics.drops);
    ("sheds", Metrics.sheds);
    ("breaker-rejects", Metrics.breaker_rejects);
    ("breaker-opens", Metrics.breaker_opens);
    ("breaker-half-opens", Metrics.breaker_half_opens);
    ("budget-denials", Metrics.budget_denials);
    ("deadline-giveups", Metrics.deadline_giveups);
    ("stale-acks", Metrics.stale_ack_rejections);
    ("replica-purges", Metrics.replica_purges);
    ("remasters", Metrics.remaster_begins);
    ("aborts", Metrics.aborts);
  ]

let coverage_of cl =
  let m = cl.Cluster.metrics in
  List.filter_map
    (fun (n, f) -> if f m > 0 then Some ("m:" ^ n) else None)
    counter_specs
  @ List.map (fun (n, _) -> "b:" ^ n) (Metrics.beacons m)

let divergence_class = function
  | Divergence.Replica_behind _ -> "replica-behind"
  | Divergence.Stale_replica _ -> "stale-replica"
  | Divergence.Lost_write _ -> "lost-write"

let signature_of ~coverage (o : Drive.outcome) =
  let anoms =
    List.map (fun a -> "a:" ^ Checker.anomaly_name a) o.check.Checker.anomalies
  in
  let divs =
    List.map
      (fun f -> "d:" ^ divergence_class f)
      o.divergence.Divergence.findings
  in
  let lives =
    List.map
      (fun f -> "l:" ^ Liveness.finding_name f)
      o.liveness.Liveness.findings
  in
  List.sort_uniq compare (coverage @ anoms @ divs @ lives)

(* {2 Running one case} *)

let run_case ?(max_events = 2_000_000) ~target c =
  let make =
    match List.assoc_opt c.proto target.protos with
    | Some m -> m
    | None -> invalid_arg ("Fuzz.run_case: unknown protocol " ^ c.proto)
  in
  let cfg = cfg_of_case c in
  let cfg = { cfg with Config.fault_plan = plan_of_case c } in
  let gen =
    target.workload ~cfg ~seed:c.seed
      ~skew:(float_of_int c.skew_pct /. 100.0)
      ~cross:(float_of_int c.cross_pct /. 100.0)
  in
  let coverage = ref [] in
  let outcome =
    Drive.run ~seed:c.seed ~clients:c.clients
      ~duration:(float_of_int c.seconds) ~nemesis_at:0.0 ~max_events
      ~actions:(actions_of_case c)
      ~observe:(fun cl -> coverage := coverage_of cl)
      ~cfg ~make ~gen ~nemesis:Nemesis.calm ()
  in
  let verdict =
    if not (Drive.passed outcome) then Safety
    else if not (Liveness.clean outcome.Drive.liveness) then Liveness
    else Clean
  in
  { case = c; verdict; signature = signature_of ~coverage:!coverage outcome; outcome }

(* {2 Generation and mutation} *)

(* [List.init]'s application order is unspecified; schedule generation
   must consume the RNG in a fixed order. *)
let init_seq n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let horizon_us c = c.seconds * 1_000_000

let gen_op rng ~slots ~nodes ~horizon =
  let at () = 100_000 + Rng.int rng (horizon - 200_000) in
  let member () = Rng.int rng nodes in
  match Rng.int rng 9 with
  | 0 ->
      Crash
        {
          node = member ();
          at_us = at ();
          (* The downtime may outlive the horizon: the recovery then
             lands during the drain, after the last commit — the only
             window in which a phantom secondary survives masking. *)
          downtime_us = 100_000 + Rng.int rng 2_900_000;
        }
  | 1 -> Isolate { node = member (); at_us = at (); dur_us = 100_000 + Rng.int rng 1_400_000 }
  | 2 ->
      Straggle
        {
          node = member ();
          factor = 2 + Rng.int rng 14;
          at_us = at ();
          dur_us = 200_000 + Rng.int rng 1_800_000;
        }
  | 3 ->
      Slow_link
        {
          dst = member ();
          extra_us = 1_000 + Rng.int rng 19_000;
          at_us = at ();
          dur_us = 100_000 + Rng.int rng 900_000;
        }
  | 4 -> Lossy { pct = 5 + Rng.int rng 35; at_us = at (); dur_us = 100_000 + Rng.int rng 900_000 }
  | 5 -> Burst { node = member (); at_us = at (); dur_us = 200_000 + Rng.int rng 1_300_000 }
  | 6 -> Join { node = nodes + Rng.int rng (slots - nodes); at_us = at () }
  | 7 -> Decommission { node = member (); at_us = at () }
  | _ -> Crash_rejoin { node = member (); at_us = at (); cycles = 1 + Rng.int rng 2 }

let generate ?proto rng ~target ~phantom ~name =
  let proto =
    match proto with
    | Some p -> p
    | None -> fst (List.nth target.protos (Rng.int rng (List.length target.protos)))
  in
  let seconds = 2 in
  let c0 =
    {
      name;
      seed = 1 + Rng.int rng 1_000_000;
      proto;
      seconds;
      clients = 4 + Rng.int rng 5;
      phantom;
      overload = Rng.bernoulli rng 0.3;
      skew_pct = Rng.choose rng [| 0; 50; 90; 99 |];
      cross_pct = Rng.choose rng [| 10; 30; 50 |];
      ops = [];
    }
  in
  let cfg = cfg_of_case c0 in
  let slots = Config.total_slots cfg and nodes = cfg.Config.nodes in
  let horizon = horizon_us c0 in
  let nops = 1 + Rng.int rng 6 in
  { c0 with ops = init_seq nops (fun _ -> gen_op rng ~slots ~nodes ~horizon) }

let clamp lo hi v = Stdlib.max lo (Stdlib.min hi v)

let shift_op rng ~horizon op =
  let nudge at =
    clamp 100_000 (horizon - 100_000) (at + Rng.int_in rng (-300_000) 300_000)
  in
  match op with
  | Crash c -> Crash { c with at_us = nudge c.at_us }
  | Isolate c -> Isolate { c with at_us = nudge c.at_us }
  | Straggle c -> Straggle { c with at_us = nudge c.at_us }
  | Slow_link c -> Slow_link { c with at_us = nudge c.at_us }
  | Lossy c -> Lossy { c with at_us = nudge c.at_us }
  | Burst c -> Burst { c with at_us = nudge c.at_us }
  | Join c -> Join { c with at_us = nudge c.at_us }
  | Decommission c -> Decommission { c with at_us = nudge c.at_us }
  | Crash_rejoin c -> Crash_rejoin { c with at_us = nudge c.at_us }

let retarget_op rng ~slots ~nodes op =
  let member () = Rng.int rng nodes in
  match op with
  | Crash c -> Crash { c with node = member () }
  | Isolate c -> Isolate { c with node = member () }
  | Straggle c -> Straggle { c with node = member () }
  | Slow_link c -> Slow_link { c with dst = member () }
  | Lossy _ -> op
  | Burst c -> Burst { c with node = member () }
  | Join c -> Join { c with node = nodes + Rng.int rng (slots - nodes) }
  | Decommission c -> Decommission { c with node = member () }
  | Crash_rejoin c -> Crash_rejoin { c with node = member () }

let map_nth f i ops = List.mapi (fun j op -> if j = i then f op else op) ops

let mutate rng ~target ~name base =
  let cfg = cfg_of_case base in
  let slots = Config.total_slots cfg and nodes = cfg.Config.nodes in
  let horizon = horizon_us base in
  let step c =
    let len = List.length c.ops in
    match Rng.int rng 7 with
    | 0 -> { c with ops = c.ops @ [ gen_op rng ~slots ~nodes ~horizon ] }
    | 1 when len > 1 ->
        let i = Rng.int rng len in
        { c with ops = List.filteri (fun j _ -> j <> i) c.ops }
    | 2 when len > 0 ->
        let i = Rng.int rng len in
        { c with ops = map_nth (fun _ -> gen_op rng ~slots ~nodes ~horizon) i c.ops }
    | 3 when len > 0 ->
        let i = Rng.int rng len in
        { c with ops = map_nth (shift_op rng ~horizon) i c.ops }
    | 4 -> { c with seed = 1 + Rng.int rng 1_000_000 }
    | 5 when len > 0 ->
        let i = Rng.int rng len in
        { c with ops = map_nth (retarget_op rng ~slots ~nodes) i c.ops }
    | 6 ->
        (* Protocol switch: the same schedule often behaves very
           differently under another engine (standard vs batch-mode
           remaster paths), so coverage transfers. *)
        let p =
          fst (List.nth target.protos (Rng.int rng (List.length target.protos)))
        in
        { c with proto = p }
    | _ -> { c with ops = c.ops @ [ gen_op rng ~slots ~nodes ~horizon ] }
  in
  let c = { base with name } in
  let steps = 1 + Rng.int rng 2 in
  let rec go c i = if i >= steps then c else go (step c) (i + 1) in
  go c 0

(* {2 Delta-debugging shrinker (ddmin)} *)

let split_chunks lst n =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i >= n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k xs got =
        if k = 0 then (List.rev got, xs)
        else
          match xs with
          | [] -> (List.rev got, [])
          | x :: tl -> take (k - 1) tl (x :: got)
      in
      let chunk, rest = take size rest [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 lst []

let shrink ?(budget = 150) ~target case verdict =
  let runs = ref 0 in
  let reproduces ops =
    !runs < budget
    &&
    (incr runs;
     (run_case ~target { case with ops }).verdict = verdict)
  in
  let rec ddmin ops n =
    let len = List.length ops in
    if len <= 1 then ops
    else
      let chunks = split_chunks ops n in
      match List.find_opt reproduces chunks with
      | Some c -> ddmin c 2
      | None -> (
          let complements =
            List.mapi
              (fun i _ ->
                List.concat (List.filteri (fun j _ -> j <> i) chunks))
              chunks
          in
          match List.find_opt reproduces complements with
          | Some comp -> ddmin comp (Stdlib.max (n - 1) 2)
          | None ->
              if n < len then ddmin ops (Stdlib.min len (2 * n)) else ops)
  in
  let ops =
    if reproduces [] then []
    else ddmin case.ops (Stdlib.min 2 (List.length case.ops))
  in
  ({ case with ops; name = case.name ^ "-min" }, !runs)

(* {2 Corpus serialization}

   Hand-rolled JSON: the corpus schema is flat — objects, arrays,
   integers, booleans and [a-z0-9-] strings — and lives in this module
   so the audit library stays free of heavier dependencies. All
   numeric fields are integers, making write-then-read byte-exact. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let op_to_json op =
  let p = Printf.sprintf in
  match op with
  | Crash { node; at_us; downtime_us } ->
      p {|{"op":"crash","node":%d,"at_us":%d,"downtime_us":%d}|} node at_us
        downtime_us
  | Isolate { node; at_us; dur_us } ->
      p {|{"op":"isolate","node":%d,"at_us":%d,"dur_us":%d}|} node at_us dur_us
  | Straggle { node; factor; at_us; dur_us } ->
      p {|{"op":"straggle","node":%d,"factor":%d,"at_us":%d,"dur_us":%d}|} node
        factor at_us dur_us
  | Slow_link { dst; extra_us; at_us; dur_us } ->
      p {|{"op":"slow_link","dst":%d,"extra_us":%d,"at_us":%d,"dur_us":%d}|}
        dst extra_us at_us dur_us
  | Lossy { pct; at_us; dur_us } ->
      p {|{"op":"lossy","pct":%d,"at_us":%d,"dur_us":%d}|} pct at_us dur_us
  | Burst { node; at_us; dur_us } ->
      p {|{"op":"burst","node":%d,"at_us":%d,"dur_us":%d}|} node at_us dur_us
  | Join { node; at_us } -> p {|{"op":"join","node":%d,"at_us":%d}|} node at_us
  | Decommission { node; at_us } ->
      p {|{"op":"decommission","node":%d,"at_us":%d}|} node at_us
  | Crash_rejoin { node; at_us; cycles } ->
      p {|{"op":"crash_rejoin","node":%d,"at_us":%d,"cycles":%d}|} node at_us
        cycles

let to_json ~expect c =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"version\": 1,\n";
  Printf.bprintf b "  \"name\": \"%s\",\n" (escape c.name);
  Printf.bprintf b "  \"seed\": %d,\n" c.seed;
  Printf.bprintf b "  \"proto\": \"%s\",\n" (escape c.proto);
  Printf.bprintf b "  \"seconds\": %d,\n" c.seconds;
  Printf.bprintf b "  \"clients\": %d,\n" c.clients;
  Printf.bprintf b "  \"phantom\": %b,\n" c.phantom;
  Printf.bprintf b "  \"overload\": %b,\n" c.overload;
  Printf.bprintf b "  \"skew_pct\": %d,\n" c.skew_pct;
  Printf.bprintf b "  \"cross_pct\": %d,\n" c.cross_pct;
  Printf.bprintf b "  \"expect\": \"%s\",\n" (verdict_name expect);
  Printf.bprintf b "  \"ops\": [";
  List.iteri
    (fun i op ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    %s" (op_to_json op))
    c.ops;
  if c.ops <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

type jv =
  | Jobj of (string * jv) list
  | Jarr of jv list
  | Jstr of string
  | Jint of int
  | Jbool of bool

exception Bad of string

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then raise (Bad "unexpected end of input")
    else (
      incr pos;
      s.[!pos - 1])
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect ch =
    if next () <> ch then raise (Bad (Printf.sprintf "expected '%c'" ch))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          match next () with
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | c ->
              Buffer.add_char b c;
              go ())
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then (
          expect '}';
          Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Jobj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "expected ',' or '}'")
          in
          members []
    | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then (
          expect ']';
          Jarr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Jarr (List.rev (v :: acc))
            | _ -> raise (Bad "expected ',' or ']'")
          in
          elems []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
        pos := !pos + 4;
        Jbool true
    | Some 'f' ->
        pos := !pos + 5;
        Jbool false
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then incr pos;
        while
          match peek () with Some '0' .. '9' -> true | _ -> false
        do
          incr pos
        done;
        Jint (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise (Bad "unexpected character")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then raise (Bad "trailing garbage");
  v

let field name = function
  | Jobj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad "expected an object")

let jint = function Jint i -> i | _ -> raise (Bad "expected an integer")
let jstr = function Jstr s -> s | _ -> raise (Bad "expected a string")
let jbool = function Jbool b -> b | _ -> raise (Bad "expected a boolean")
let jarr = function Jarr l -> l | _ -> raise (Bad "expected an array")

let op_of_jv v =
  let i name = jint (field name v) in
  match jstr (field "op" v) with
  | "crash" ->
      Crash { node = i "node"; at_us = i "at_us"; downtime_us = i "downtime_us" }
  | "isolate" -> Isolate { node = i "node"; at_us = i "at_us"; dur_us = i "dur_us" }
  | "straggle" ->
      Straggle
        { node = i "node"; factor = i "factor"; at_us = i "at_us"; dur_us = i "dur_us" }
  | "slow_link" ->
      Slow_link
        { dst = i "dst"; extra_us = i "extra_us"; at_us = i "at_us"; dur_us = i "dur_us" }
  | "lossy" -> Lossy { pct = i "pct"; at_us = i "at_us"; dur_us = i "dur_us" }
  | "burst" -> Burst { node = i "node"; at_us = i "at_us"; dur_us = i "dur_us" }
  | "join" -> Join { node = i "node"; at_us = i "at_us" }
  | "decommission" -> Decommission { node = i "node"; at_us = i "at_us" }
  | "crash_rejoin" ->
      Crash_rejoin { node = i "node"; at_us = i "at_us"; cycles = i "cycles" }
  | other -> raise (Bad ("unknown op " ^ other))

let verdict_of_string = function
  | "clean" -> Clean
  | "safety" -> Safety
  | "liveness" -> Liveness
  | other -> raise (Bad ("unknown verdict " ^ other))

let of_json text =
  match parse_json text with
  | exception Bad msg -> Error msg
  | v -> (
      try
        if jint (field "version" v) <> 1 then Error "unsupported corpus version"
        else
          Ok
            ( {
                name = jstr (field "name" v);
                seed = jint (field "seed" v);
                proto = jstr (field "proto" v);
                seconds = jint (field "seconds" v);
                clients = jint (field "clients" v);
                phantom = jbool (field "phantom" v);
                overload = jbool (field "overload" v);
                skew_pct = jint (field "skew_pct" v);
                cross_pct = jint (field "cross_pct" v);
                ops = List.map op_of_jv (jarr (field "ops" v));
              },
              verdict_of_string (jstr (field "expect" v)) )
      with Bad msg -> Error msg)

let save ~dir ~expect c =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (c.name ^ ".json") in
  let oc = open_out path in
  output_string oc (to_json ~expect c);
  close_out oc;
  path

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_json text

(* {2 Campaign loop} *)

type campaign_result = {
  rounds_run : int;
  pool_size : int;
  failures : (result * case option) list;
}

let campaign ?(rounds = 40) ?(shrink_failures = true) ?(shrink_budget = 150)
    ?max_events ?(log = fun _ -> ()) ~seed ~phantom ~target () =
  let rng = Rng.create (0x66757a7a lxor seed) in
  let seen = Hashtbl.create 64 in
  let pool = ref [] in
  let pool_n = ref 0 in
  let failures = ref [] in
  (* Fresh generates cycle through the protocol registry instead of
     drawing it at random: pool mutations inherit their parent's
     protocol, so a random draw lets an early-pool protocol crowd the
     others out of a short campaign entirely. *)
  let fresh_n = ref 0 in
  for round = 1 to rounds do
    let name = Printf.sprintf "fuzz-s%d-r%03d" seed round in
    let case =
      if !pool_n > 0 && Rng.bernoulli rng 0.6 then
        mutate rng ~target ~name (List.nth !pool (Rng.int rng !pool_n))
      else begin
        let proto =
          fst (List.nth target.protos (!fresh_n mod List.length target.protos))
        in
        incr fresh_n;
        generate ~proto rng ~target ~phantom ~name
      end
    in
    let r = run_case ?max_events ~target case in
    let key = String.concat "," r.signature in
    let fresh = not (Hashtbl.mem seen key) in
    if fresh then (
      Hashtbl.add seen key ();
      pool := case :: !pool;
      incr pool_n);
    log
      (Printf.sprintf "round %3d/%d %-18s %-8s %d ops, %d signals%s%s" round
         rounds case.proto (verdict_name r.verdict) (List.length case.ops)
         (List.length r.signature)
         (if fresh then " [new coverage]" else "")
         (if r.verdict <> Clean then " [FAILURE]" else ""));
    if r.verdict <> Clean then begin
      let shrunk =
        if shrink_failures then begin
          let mini, spent = shrink ~budget:shrink_budget ~target case r.verdict in
          log
            (Printf.sprintf "  shrunk %d ops -> %d ops in %d runs"
               (List.length case.ops) (List.length mini.ops) spent);
          Some mini
        end
        else None
      in
      failures := (r, shrunk) :: !failures
    end
  done;
  {
    rounds_run = rounds;
    pool_size = Hashtbl.length seen;
    failures = List.rev !failures;
  }
