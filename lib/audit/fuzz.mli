(** Coverage-guided, fully seeded fault-schedule fuzzer.

    Generates random fault schedules over the whole existing
    vocabulary — crash/recover, partition, straggler, link delay,
    message loss, overload bursts, join/decommission, crash-rejoin
    cycles — and runs each through the audit harness ({!Drive}):
    safety checker, divergence audit and liveness audit. Schedules
    that light up new coverage (metrics counters, code-path beacons,
    anomaly classes) enter a pool; later rounds mutate pool entries
    instead of starting fresh. A failing schedule is minimized by a
    delta-debugging shrinker and can be serialized to a corpus file
    that replays deterministically. See docs/FUZZING.md.

    Every number — schedule shapes, mutation picks, cluster seeds —
    flows from the campaign seed through one {!Lion_kernel.Rng}, so a
    campaign replays byte-for-byte. All op fields are integers (whole
    µs, percents) so corpus files round-trip exactly. *)

(** One scheduled fault or membership operation. Times are absolute
    simulated µs from the run's start; all fields are integers so a
    JSON round-trip is exact. *)
type op =
  | Crash of { node : int; at_us : int; downtime_us : int }
      (** crash [node], recover after [downtime_us] (possibly past the
          client horizon — the recovery then lands during the drain) *)
  | Isolate of { node : int; at_us : int; dur_us : int }
      (** partition [node] away from everyone else *)
  | Straggle of { node : int; factor : int; at_us : int; dur_us : int }
      (** multiply [node]'s CPU work by [factor] *)
  | Slow_link of { dst : int; extra_us : int; at_us : int; dur_us : int }
      (** deterministic extra one-way latency into [dst] *)
  | Lossy of { pct : int; at_us : int; dur_us : int }
      (** drop every message with probability [pct]/100 *)
  | Burst of { node : int; at_us : int; dur_us : int }
      (** overload burst: 6× straggler on [node] overlaid with 15%
          message loss — the retry-storm recipe *)
  | Join of { node : int; at_us : int }
      (** activate standby slot [node] ({!Lion_store.Cluster.join_node}) *)
  | Decommission of { node : int; at_us : int }
      (** start draining [node] *)
  | Crash_rejoin of { node : int; at_us : int; cycles : int }
      (** crash/rejoin cycles with a pre-crash delivery delay, tuned to
          catch replication streams mid-flight (docs/MEMBERSHIP.md) *)

type case = {
  name : string;
  seed : int;  (** cluster + workload seed *)
  proto : string;  (** protocol name, resolved through {!target} *)
  seconds : int;  (** client horizon, simulated seconds *)
  clients : int;
  phantom : bool;  (** [Config.reintroduce_phantom_secondary] *)
  overload : bool;  (** overload-control knobs on (minus the deadline) *)
  skew_pct : int;  (** YCSB skew × 100 *)
  cross_pct : int;  (** cross-partition fraction × 100 *)
  ops : op list;
}

type verdict =
  | Clean
  | Safety  (** checker anomaly or replica divergence *)
  | Liveness  (** safety passed but the liveness audit found wedges *)

val verdict_name : verdict -> string

type result = {
  case : case;
  verdict : verdict;
  signature : string list;
      (** sorted, deduplicated coverage signal: ["m:"] counters that
          fired, ["b:"] beacons lit, ["a:"] anomaly classes, ["d:"]
          divergence classes, ["l:"] liveness classes *)
  outcome : Drive.outcome;
}

(** What the fuzzer drives: a protocol registry and a workload
    factory. Both live with the caller ([bin/fuzz_run], tests) so this
    library needs no dependency on the experiment harness. *)
type target = {
  protos : (string * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list;
  workload :
    cfg:Lion_store.Config.t ->
    seed:int ->
    skew:float ->
    cross:float ->
    time:float ->
    Lion_workload.Txn.t;
}

val cfg_of_case : case -> Lion_store.Config.t
(** Elastic defaults (standbys, rebalancing, session tagging) plus the
    case's [overload] and [phantom] flags. No transaction deadline:
    wedges must wedge, not time out. *)

val run_case : ?max_events:int -> target:target -> case -> result
(** Run one schedule to quiescence and audit it. [max_events] (default
    2M) bounds the drain; exhaustion is a liveness finding, not an
    error. Raises [Invalid_argument] on an unknown protocol name. *)

val generate :
  ?proto:string ->
  Lion_kernel.Rng.t ->
  target:target ->
  phantom:bool ->
  name:string ->
  case
(** Draw a fresh random schedule (1–6 ops). [proto] pins the protocol
    ({!campaign} cycles it across fresh generates so no engine is
    crowded out); by default it is drawn from the registry. *)

val mutate : Lion_kernel.Rng.t -> target:target -> name:string -> case -> case
(** Derive a neighbour of [case]: add, drop, re-draw or time-shift ops,
    or re-seed the run. *)

val shrink :
  ?budget:int -> target:target -> case -> verdict -> case * int
(** Delta-debugging (ddmin) minimization: the smallest op subset that
    still reproduces the same verdict category, re-running the case at
    each probe (at most [budget] runs, default 150). Returns the
    minimized case and the number of runs spent. *)

val to_json : expect:verdict -> case -> string
(** Serialize for the corpus; [expect] records the verdict a replay
    must reproduce. Byte-stable: [of_json] then [to_json] is the
    identity on files this function wrote. *)

val of_json : string -> (case * verdict, string) Stdlib.result

val save : dir:string -> expect:verdict -> case -> string
(** Write [to_json] under [dir] as ["<name>.json"], creating [dir] if
    missing; returns the path. *)

val load_file : string -> (case * verdict, string) Stdlib.result

type campaign_result = {
  rounds_run : int;
  pool_size : int;  (** distinct coverage signatures seen *)
  failures : (result * case option) list;
      (** failing results in discovery order, each with its shrunk
          schedule when shrinking was on *)
}

val campaign :
  ?rounds:int ->
  ?shrink_failures:bool ->
  ?shrink_budget:int ->
  ?max_events:int ->
  ?log:(string -> unit) ->
  seed:int ->
  phantom:bool ->
  target:target ->
  unit ->
  campaign_result
(** Run a fuzzing campaign: [rounds] (default 40) schedules, each
    either freshly generated or mutated from a coverage-pool entry.
    [log] receives one progress line per round. Deterministic in
    ([seed], [phantom], [target], [rounds]). *)
