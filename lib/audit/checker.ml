module Kvstore = Lion_store.Kvstore
module History = Lion_store.History

type edge_kind = Ww | Wr | Rw

let kind_name = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

type edge = {
  src : int;
  dst : int;
  kind : edge_kind;
  key : Kvstore.key;
  version : int;
}

type anomaly =
  | G0 of edge list
  | G1a of { reader : int; writer : int; key : Kvstore.key; version : int }
  | G1c of edge list
  | Lost_update of edge list
  | G2 of edge list
  | Divergent_install of { key : Kvstore.key; version : int; writers : int list }

type report = {
  events : int;
  committed : int;
  edges : int;
  anomalies : anomaly list;
}

let anomaly_name = function
  | G0 _ -> "G0"
  | G1a _ -> "G1a"
  | G1c _ -> "G1c"
  | Lost_update _ -> "lost-update"
  | G2 _ -> "G2"
  | Divergent_install _ -> "divergent-install"

let serializable r = r.anomalies = []

let pp_edge fmt e =
  Format.fprintf fmt "T%d -%s(%a@@v%d)-> T%d" e.src (kind_name e.kind)
    Kvstore.pp_key e.key e.version e.dst

let pp_cycle fmt cycle =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
    pp_edge fmt cycle

let pp_anomaly fmt = function
  | G0 c -> Format.fprintf fmt "G0 write cycle: %a" pp_cycle c
  | G1a { reader; writer; key; version } ->
      Format.fprintf fmt "G1a aborted read: T%d read %a@@v%d written by aborted T%d"
        reader Kvstore.pp_key key version writer
  | G1c c -> Format.fprintf fmt "G1c circular information flow: %a" pp_cycle c
  | Lost_update c -> Format.fprintf fmt "lost update: %a" pp_cycle c
  | G2 c -> Format.fprintf fmt "G2 anti-dependency cycle: %a" pp_cycle c
  | Divergent_install { key; version; writers } ->
      Format.fprintf fmt "divergent install: %a@@v%d written by %a" Kvstore.pp_key
        key version
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           (fun f t -> Format.fprintf f "T%d" t))
        writers

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d events, %d committed, %d edges: %s@," r.events
    r.committed r.edges
    (if serializable r then "serializable"
     else Printf.sprintf "%d anomalies" (List.length r.anomalies));
  List.iter (fun a -> Format.fprintf fmt "  %a@," pp_anomaly a) r.anomalies;
  Format.fprintf fmt "@]"

(* Iterative Tarjan (histories reach 10^5 transactions; recursion depth
   is unbounded along dependency chains). Nodes are visited in the
   caller-supplied order and successor lists are pre-sorted, so the SCC
   decomposition — and every witness below — is deterministic. *)
let sccs nodes succ =
  let index = Hashtbl.create 1024 in
  let low = Hashtbl.create 1024 in
  let onstack = Hashtbl.create 1024 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let frames = Stack.create () in
  let push_node v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace onstack v true;
    Stack.push (v, ref (succ v)) frames
  in
  let visit root =
    if not (Hashtbl.mem index root) then (
      push_node root;
      while not (Stack.is_empty frames) do
        let v, rest = Stack.top frames in
        match !rest with
        | w :: tl ->
            rest := tl;
            if not (Hashtbl.mem index w) then push_node w
            else if Hashtbl.find_opt onstack w = Some true then
              Hashtbl.replace low v
                (Stdlib.min (Hashtbl.find low v) (Hashtbl.find index w))
        | [] ->
            ignore (Stack.pop frames);
            if Hashtbl.find low v = Hashtbl.find index v then (
              let rec pop acc =
                match !stack with
                | w :: tl ->
                    stack := tl;
                    Hashtbl.replace onstack w false;
                    if w = v then w :: acc else pop (w :: acc)
                | [] -> acc
              in
              out := pop [] :: !out);
            (match Stack.top_opt frames with
            | Some (p, _) ->
                Hashtbl.replace low p
                  (Stdlib.min (Hashtbl.find low p) (Hashtbl.find low v))
            | None -> ())
      done)
  in
  List.iter visit nodes;
  List.rev !out

(* Minimal cycle through [start] inside one SCC: BFS over the SCC's
   edges from [start]; the first edge closing back on [start] ends a
   shortest cycle. Edge lists are sorted, so ties break the same way
   every run. *)
let witness ~start ~in_scc ~edges_of =
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.push start queue;
  Hashtbl.replace parent start None;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       List.iter
         (fun e ->
           if in_scc e.dst && !result = None then
             if e.dst = start then (
               (* Rebuild the path start -> u, then close with [e]. *)
               let rec path v acc =
                 match Hashtbl.find parent v with
                 | None -> acc
                 | Some pe -> path pe.src (pe :: acc)
               in
               result := Some (path u [] @ [ e ]);
               raise Exit)
             else if not (Hashtbl.mem parent e.dst) then (
               Hashtbl.replace parent e.dst (Some e);
               Queue.push e.dst queue))
         (edges_of u)
     done
   with Exit -> ());
  !result

let classify cycle =
  let kinds = List.sort_uniq compare (List.map (fun e -> e.kind) cycle) in
  match kinds with
  | [ Ww ] -> G0 cycle
  | _ when not (List.mem Rw kinds) -> G1c cycle
  | _ -> (
      match cycle with
      | [ a; b ]
        when List.sort compare [ a.kind; b.kind ] = [ Ww; Rw ]
             && Kvstore.key_compare a.key b.key = 0 ->
          Lost_update cycle
      | _ -> G2 cycle)

let check events =
  let committed_evts =
    List.filter (fun e -> e.History.outcome = History.Committed) events
  in
  let committed_ids = Hashtbl.create 1024 in
  List.iter (fun e -> Hashtbl.replace committed_ids e.History.txn_id ()) committed_evts;
  (* Installed versions: key -> (version -> writer txn). A version two
     committed transactions both claim to have installed is itself an
     anomaly (split-brain double execution). *)
  let installs : (Kvstore.key, (int, int list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun e ->
      List.iter
        (fun (k, v) ->
          let vt =
            match Hashtbl.find_opt installs k with
            | Some vt -> vt
            | None ->
                let vt = Hashtbl.create 8 in
                Hashtbl.add installs k vt;
                vt
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt vt v) in
          if not (List.mem e.History.txn_id prev) then
            Hashtbl.replace vt v (e.History.txn_id :: prev))
        e.History.writes)
    committed_evts;
  (* Writes of aborted (never indeterminate) attempts: only hand-built
     histories carry these — the engines record no writes on abort —
     but the G1a rule needs them. *)
  let aborted_installs = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.History.outcome = History.Aborted then
        List.iter
          (fun (k, v) ->
            if not (Hashtbl.mem aborted_installs (k, v)) then
              Hashtbl.add aborted_installs (k, v) e.History.txn_id)
          e.History.writes)
    events;
  let keys_sorted =
    Hashtbl.fold (fun k _ acc -> k :: acc) installs []
    |> List.sort Kvstore.key_compare
  in
  let divergent = ref [] in
  let sorted_installs k =
    let vt = Hashtbl.find installs k in
    Hashtbl.fold (fun v ts acc -> (v, List.sort compare ts) :: acc) vt []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun k ->
      List.iter
        (fun (v, writers) ->
          match writers with
          | _ :: _ :: _ -> divergent := (k, v, writers) :: !divergent
          | _ -> ())
        (sorted_installs k))
    keys_sorted;
  (* Dependency edges, deduplicated. *)
  let edge_set = Hashtbl.create 4096 in
  let adj : (int, edge list) Hashtbl.t = Hashtbl.create 1024 in
  let add_edge e =
    if e.src <> e.dst && not (Hashtbl.mem edge_set e) then (
      Hashtbl.add edge_set e ();
      Hashtbl.replace adj e.src
        (e :: Option.value ~default:[] (Hashtbl.find_opt adj e.src)))
  in
  (* ww: consecutive installed versions of a key. *)
  List.iter
    (fun k ->
      let rec pairs = function
        | (_, ts1) :: ((v2, ts2) :: _ as rest) ->
            List.iter
              (fun t1 ->
                List.iter
                  (fun t2 -> add_edge { src = t1; dst = t2; kind = Ww; key = k; version = v2 })
                  ts2)
              ts1;
            pairs rest
        | _ -> []
      in
      ignore (pairs (sorted_installs k)))
    keys_sorted;
  (* wr and rw from each committed transaction's observed reads. *)
  let g1a = ref [] in
  List.iter
    (fun e ->
      let reader = e.History.txn_id in
      List.iter
        (fun (k, v) ->
          (match Hashtbl.find_opt aborted_installs (k, v) with
          | Some writer ->
              let a = (reader, writer, k, v) in
              if not (List.mem a !g1a) then g1a := a :: !g1a
          | None -> ());
          match Hashtbl.find_opt installs k with
          | None -> ()
          | Some vt ->
              (match Hashtbl.find_opt vt v with
              | Some writers ->
                  List.iter
                    (fun w -> add_edge { src = w; dst = reader; kind = Wr; key = k; version = v })
                    writers
              | None -> ());
              (* Anti-dependency: the reader precedes the writer of the
                 next installed version — unless the reader itself
                 installed it (a read-modify-write's own overwrite). *)
              let next =
                Hashtbl.fold
                  (fun v' _ best ->
                    if v' > v then
                      match best with
                      | Some b when b <= v' -> best
                      | _ -> Some v'
                    else best)
                  vt None
              in
              (match next with
              | Some v' ->
                  let writers = List.sort compare (Hashtbl.find vt v') in
                  if not (List.mem reader writers) then
                    List.iter
                      (fun w ->
                        add_edge { src = reader; dst = w; kind = Rw; key = k; version = v' })
                      writers
              | None -> ()))
        e.History.reads)
    committed_evts;
  (* Deterministic adjacency order. *)
  let edges_of v =
    Option.value ~default:[] (Hashtbl.find_opt adj v)
    |> List.sort (fun a b ->
           compare (a.dst, a.kind, a.version) (b.dst, b.kind, b.version))
  in
  let nodes =
    Hashtbl.fold (fun t () acc -> t :: acc) committed_ids [] |> List.sort compare
  in
  let components =
    sccs nodes (fun v -> List.map (fun e -> e.dst) (edges_of v))
  in
  let cycle_anomalies =
    List.filter_map
      (fun comp ->
        match comp with
        | [] | [ _ ] -> None
        | _ ->
            let members = Hashtbl.create 16 in
            List.iter (fun t -> Hashtbl.replace members t ()) comp;
            let start = List.fold_left Stdlib.min (List.hd comp) comp in
            witness ~start ~in_scc:(Hashtbl.mem members) ~edges_of
            |> Option.map classify)
      components
  in
  let anomalies =
    List.map
      (fun (key, version, writers) -> Divergent_install { key; version; writers })
      (List.rev !divergent)
    @ List.map
        (fun (reader, writer, key, version) -> G1a { reader; writer; key; version })
        (List.sort compare !g1a)
    @ cycle_anomalies
  in
  {
    events = List.length events;
    committed = List.length committed_evts;
    edges = Hashtbl.length edge_set;
    anomalies;
  }
