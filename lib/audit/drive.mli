(** Audit harness: workload × protocol × nemesis → recorded history →
    checker + divergence audit.

    Differs from the throughput harness ({!Lion_harness.Runner}) in one
    essential way: clients and the protocol tick stop issuing work at
    the horizon, so after [drain] the event queue {e empties} —
    in-flight retries resolve, elections finish, log ships and
    anti-entropy repairs land. The checker and the replica-divergence
    audit run at that true quiescence. *)

type outcome = {
  history : Lion_store.History.t;
  check : Checker.report;
  divergence : Divergence.report;
  submitted : int;
  completed : int;
  commits : int;
  aborts : int;
  min_availability : float;
      (** lowest 100 ms-sampled {!Lion_store.Cluster.availability}
          before the horizon *)
  resyncs : int;  (** anti-entropy repairs that completed *)
  stale_rejections : int;
      (** stale-session stream deliveries rejected by tagging
          ([Metrics.stale_ack_rejections]; 0 unless
          [Config.session_tagging]) *)
  replica_purges : int;
      (** stale secondaries purged at node recovery
          ([Metrics.replica_purges]) *)
  final_time : float;  (** simulated time when the queue drained (µs) *)
}

val passed : outcome -> bool
(** Serializable history and no replica divergence. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?seed:int ->
  ?clients:int ->
  ?duration:float ->
  ?nemesis_at:float ->
  ?tracer:Lion_trace.Trace.t ->
  ?max_events:int ->
  cfg:Lion_store.Config.t ->
  make:(Lion_store.Cluster.t -> Lion_protocols.Proto.t) ->
  gen:(time:float -> Lion_workload.Txn.t) ->
  nemesis:Nemesis.t ->
  unit ->
  outcome
(** Run [clients] (default 8) closed-loop clients for [duration]
    simulated seconds (default 4), with the nemesis' fault plan
    anchored [nemesis_at] seconds in (default 1), then drain to
    quiescence (bounded by [max_events]) and audit. The nemesis plan
    is appended to any plan already in [cfg]. Deterministic in
    ([seed], [cfg], nemesis). *)
