(** Audit harness: workload × protocol × nemesis → recorded history →
    checker + divergence audit + liveness audit.

    Differs from the throughput harness ({!Lion_harness.Runner}) in one
    essential way: clients and the protocol tick stop issuing work at
    the horizon, so after [drain] the event queue {e empties} —
    in-flight retries resolve, elections finish, log ships and
    anti-entropy repairs land. The checker and the replica-divergence
    audit run at that true quiescence; the liveness audit
    ({!Liveness.audit}) checks the run actually reached it. *)

type outcome = {
  history : Lion_store.History.t;
  check : Checker.report;
  divergence : Divergence.report;
  liveness : Liveness.report;
  submitted : int;
  completed : int;
  commits : int;
  aborts : int;
  min_availability : float;
      (** lowest 100 ms-sampled {!Lion_store.Cluster.availability}
          before the horizon *)
  resyncs : int;  (** anti-entropy repairs that completed *)
  stale_rejections : int;
      (** stale-session stream deliveries rejected by tagging
          ([Metrics.stale_ack_rejections]; 0 unless
          [Config.session_tagging]) *)
  replica_purges : int;
      (** stale secondaries purged at node recovery
          ([Metrics.replica_purges]) *)
  exhausted : bool;
      (** the drain stopped on [max_events] instead of emptying the
          queue — also reported as a liveness finding, never a silent
          truncation *)
  pending_events : int;  (** events still queued when the run stopped *)
  final_time : float;  (** simulated time when the queue drained (µs) *)
}

val passed : outcome -> bool
(** Serializable history and no replica divergence — the {e safety}
    verdict. A wedged run can pass this on a short, clean history. *)

val healthy : outcome -> bool
(** [passed] and the liveness audit is clean: the run not only did
    nothing wrong, it finished everything it admitted. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?seed:int ->
  ?clients:int ->
  ?duration:float ->
  ?nemesis_at:float ->
  ?tracer:Lion_trace.Trace.t ->
  ?max_events:int ->
  ?actions:(float * (Lion_store.Cluster.t -> unit)) list ->
  ?quiesce_slack:float ->
  ?observe:(Lion_store.Cluster.t -> unit) ->
  cfg:Lion_store.Config.t ->
  make:(Lion_store.Cluster.t -> Lion_protocols.Proto.t) ->
  gen:(time:float -> Lion_workload.Txn.t) ->
  nemesis:Nemesis.t ->
  unit ->
  outcome
(** Run [clients] (default 8) closed-loop clients for [duration]
    simulated seconds (default 4), with the nemesis' fault plan
    anchored [nemesis_at] seconds in (default 1), then drain to
    quiescence (bounded by [max_events]) and audit. The nemesis plan
    is appended to any plan already in [cfg]. [actions] schedules
    membership operations (join/decommission) at absolute simulated
    times — they are planner decisions, not fault-plan specs. The
    liveness audit's [Slow_quiesce] bound is the later of the horizon
    and the plan's last window, plus [quiesce_slack] (default 10
    simulated seconds). [observe] runs on the cluster after all audits,
    before it is dropped — the fuzzer's hook for snapshotting metrics
    and beacons into its coverage signal. Deterministic in ([seed],
    [cfg], nemesis, [actions]). *)
