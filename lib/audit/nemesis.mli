(** Composable nemeses: named, schedulable fault scenarios.

    A nemesis is a duration plus a function from a start time to a
    {!Lion_sim.Fault.plan} — a declarative spec list the cluster
    evaluates deterministically (see docs/FAULTS.md). Building a plan
    draws nothing from the simulation: the same nemesis at the same
    start time always yields the identical plan, and the
    [adversarial] generator derives all its randomness from its own
    seed, so a (seed, nemesis) pair replays bit-for-bit.

    Primitives ([crash], [partition], [isolate], [straggler],
    [lossy]) compose with [seq] (one after another), [overlay] (all
    at once), [stagger] (starts spaced by a gap) and [repeat].
    Durations are in simulated µs. *)

type t

val name : t -> string

val duration : t -> float
(** Span from the nemesis' start to the end of its last window (the
    schedule horizon; a [seq]'s parts are summed, an [overlay]'s
    maxed). *)

val plan : t -> at:float -> Lion_sim.Fault.plan
(** Materialise the fault plan with the first fault window anchored at
    [at]. *)

val v : name:string -> dur:float -> (float -> Lion_sim.Fault.plan) -> t
(** Build a custom nemesis from scratch. *)

(** {2 Primitives} *)

val calm : t
(** No faults — the control nemesis. *)

val crash : ?downtime:float -> node:int -> unit -> t
(** Crash [node] at the start time; recover after [downtime]
    (default 2 s). *)

val partition : ?duration:float -> groups:int list list -> unit -> t
(** Split the cluster into isolated groups for [duration]
    (default 1 s). *)

val isolate : ?duration:float -> node:int -> nodes:int -> unit -> t
(** Partition one node away from the other [nodes - 1]. *)

val straggler : ?duration:float -> ?factor:float -> node:int -> unit -> t
(** Multiply [node]'s CPU work by [factor] (default 8×) for
    [duration] (default 2 s). *)

val lossy : ?duration:float -> ?prob:float -> unit -> t
(** Drop every message with probability [prob] (default 0.3) for
    [duration] (default 1 s). *)

(** {2 Combinators} *)

val rename : string -> t -> t
val seq : ?gap:float -> t list -> t
val overlay : t list -> t
val stagger : gap:float -> t list -> t
val repeat : ?gap:float -> times:int -> t -> t

(** {2 Adversarial scenarios} *)

val crash_during_remaster : ?node:int -> ?downtime:float -> unit -> t
(** Crash the remaster-heavy node (default 1, Lion's usual promotion
    target) with a short downtime (default 0.5 s) so the crash lands
    inside transfer windows and the recovery inside the run. *)

val partition_primary_from_majority :
  ?node:int -> ?duration:float -> nodes:int -> unit -> t
(** Cut a primary-heavy node (default 0) away from the majority:
    its partitions must elect new primaries while every log ship
    crossing the cut dies. *)

val straggler_on_coordinator :
  ?node:int -> ?duration:float -> ?factor:float -> unit -> t
(** Slow the default coordinator (node 0) by [factor] (default 16×)
    without killing it: transactions keep routing there and pile up
    timeouts. *)

val overload_burst :
  ?node:int -> ?duration:float -> ?factor:float -> ?prob:float -> unit -> t
(** Overload trigger (docs/OVERLOAD.md): a straggler (default node 0,
    6x for 2 s) overlaid with a lossy network ([prob] drop chance,
    default 0.15) in the same window — the retry-storm recipe. The
    audit asserts that load shedding, breakers and deadline give-ups
    cost availability only, never consistency. *)

val crash_rejoin :
  ?node:int -> ?cycles:int -> ?period:float -> ?downtime:float -> unit -> t
(** Crash/rejoin cycles engineered to catch replication streams mid
    flight (docs/MEMBERSHIP.md): each cycle deterministically delays
    messages to [node] (default 1) just before a crash whose [downtime]
    (default 120 ms) is shorter than a replica install, so both delayed
    log-ship acks and in-flight snapshot installs land {e after} the
    node has rejoined. Without [Config.session_tagging] the stale
    streams are accepted and the divergence audit reports
    [Stale_replica]; with it they are rejected (counted as
    [Metrics.stale_ack_rejections]) and the audit stays clean. Cycles
    (default 2) repeat every [period] (default 1 s — the audit driver's
    planner-tick period, so installs are in flight when the crash
    lands; a further cycle would crash the node again {e after} the
    stale installs landed, wiping the evidence before the audit
    runs). *)

val adversarial : ?events:int -> ?window:float -> seed:int -> nodes:int -> unit -> t
(** Seeded schedule generator: [events] (default 6) random fault
    windows — crashes, single-node partitions, stragglers, message
    drops — placed over [window] µs (default 6 s). All randomness
    comes from [seed] alone. *)
