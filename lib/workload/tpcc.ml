module Rng = Lion_kernel.Rng
module Kvstore = Lion_store.Kvstore

type params = {
  warehouses : int;
  nodes : int;
  skew_factor : float;
  cross_ratio : float;
  full_mix : bool;
  neighbor_remote : bool;
  payment_ratio : float;
  hot_node : int;
  hot_span : int;
  partition_offset : int;
}

let default_params ~warehouses ~nodes =
  {
    warehouses;
    nodes;
    skew_factor = 0.0;
    cross_ratio = 0.1;
    full_mix = false;
    neighbor_remote = true;
    payment_ratio = 0.0;
    hot_node = 0;
    hot_span = max 1 (warehouses / nodes);
    partition_offset = 0;
  }

module Layout = struct
  let warehouse_slot = 0
  let district_slot d = 16 * (1 + d)
  let customer_slot c = 1024 + c
  let stock_slot i = 1_000_000 + i
  let order_slot o = 10_000_000 + o
  let new_order_queue_slot d = 512 + (16 * d)
end

let districts = 10
let customers_per_warehouse = 30_000
let items = 100_000

type t = {
  mutable p : params;
  rng : Rng.t;
  mutable next_id : int;
  mutable next_order : int;
}

let create ?(seed = 11) p = { p; rng = Rng.create seed; next_id = 0; next_order = 0 }
let params t = t.p
let set_params t p = t.p <- p

let rotate t w = (w + t.p.partition_offset) mod t.p.warehouses

let home_warehouse t =
  let p = t.p in
  if p.skew_factor > 0.0 && Rng.bernoulli t.rng p.skew_factor then (
    let i = Rng.int t.rng (max 1 p.hot_span) in
    rotate t ((p.hot_node + (i * p.nodes)) mod p.warehouses))
  else rotate t (Rng.int t.rng p.warehouses)

let remote_warehouse t home =
  if t.p.warehouses = 1 then home
  else if t.p.neighbor_remote then (home + 1) mod t.p.warehouses
  else (
    let w = Rng.int t.rng (t.p.warehouses - 1) in
    if w >= home then w + 1 else w)

(* NURand-flavoured item pick: uniform is close enough for conflict
   shape since stock conflicts come from warehouse skew, not item skew. *)
let pick_item t = Rng.int t.rng items

let new_order t =
  let p = t.p in
  let w = home_warehouse t in
  let d = Rng.int t.rng districts in
  let c = Rng.int t.rng customers_per_warehouse in
  let ol_cnt = Rng.int_in t.rng 5 15 in
  let cross = p.cross_ratio > 0.0 && Rng.bernoulli t.rng p.cross_ratio in
  let order = t.next_order in
  t.next_order <- order + 1;
  let header =
    [
      Txn.Read (Kvstore.key ~part:w ~slot:Layout.warehouse_slot);
      Txn.Write (Kvstore.key ~part:w ~slot:(Layout.district_slot d));
      Txn.Read (Kvstore.key ~part:w ~slot:(Layout.customer_slot c));
      Txn.Write (Kvstore.key ~part:w ~slot:(Layout.order_slot order));
    ]
  in
  let remote_line = if cross then Rng.int t.rng ol_cnt else -1 in
  let lines =
    List.init ol_cnt (fun i ->
        let supply = if i = remote_line then remote_warehouse t w else w in
        Txn.Write (Kvstore.key ~part:supply ~slot:(Layout.stock_slot (pick_item t))))
  in
  header @ lines

let payment t =
  let w = home_warehouse t in
  let d = Rng.int t.rng districts in
  let remote_cust = Rng.bernoulli t.rng 0.15 in
  let cw = if remote_cust then remote_warehouse t w else w in
  let c = Rng.int t.rng customers_per_warehouse in
  [
    Txn.Write (Kvstore.key ~part:w ~slot:Layout.warehouse_slot);
    Txn.Write (Kvstore.key ~part:w ~slot:(Layout.district_slot d));
    Txn.Write (Kvstore.key ~part:cw ~slot:(Layout.customer_slot c));
  ]

(* OrderStatus: read-only lookup of a customer's latest order. *)
let order_status t =
  let w = home_warehouse t in
  let c = Rng.int t.rng customers_per_warehouse in
  let recent = if t.next_order = 0 then 0 else Rng.int t.rng (max 1 t.next_order) in
  [
    Txn.Read (Kvstore.key ~part:w ~slot:(Layout.customer_slot c));
    Txn.Read (Kvstore.key ~part:w ~slot:(Layout.order_slot recent));
  ]

(* Delivery: drain each district's oldest NEW-ORDER, updating order and
   customer rows — a 10-district write burst within one warehouse. *)
let delivery t =
  let w = home_warehouse t in
  List.concat
    (List.init districts (fun d ->
         let c = Rng.int t.rng customers_per_warehouse in
         [
           Txn.Write (Kvstore.key ~part:w ~slot:(Layout.new_order_queue_slot d));
           Txn.Write (Kvstore.key ~part:w ~slot:(Layout.customer_slot c));
         ]))

(* StockLevel: read-only scan of recently-sold items' stock rows. *)
let stock_level t =
  let w = home_warehouse t in
  let d = Rng.int t.rng districts in
  Txn.Read (Kvstore.key ~part:w ~slot:(Layout.district_slot d))
  :: List.init 20 (fun _ ->
         Txn.Read (Kvstore.key ~part:w ~slot:(Layout.stock_slot (pick_item t))))

let next t =
  let ops =
    if t.p.full_mix then (
      let dice = Rng.int t.rng 100 in
      if dice < 45 then new_order t
      else if dice < 88 then payment t
      else if dice < 92 then order_status t
      else if dice < 96 then delivery t
      else stock_level t)
    else if t.p.payment_ratio > 0.0 && Rng.bernoulli t.rng t.p.payment_ratio then
      payment t
    else new_order t
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  Txn.make ~id ops
