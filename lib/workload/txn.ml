module Kvstore = Lion_store.Kvstore

type op = Read of Kvstore.key | Write of Kvstore.key

type t = { id : int; ops : op list; parts : int list }

let key_of = function Read k -> k | Write k -> k
let is_write = function Write _ -> true | Read _ -> false

let parts_of_ops ops =
  List.sort_uniq compare (List.map (fun op -> (key_of op).Kvstore.part) ops)

let make ~id ops = { id; ops; parts = parts_of_ops ops }
let is_cross_partition t = match t.parts with [] | [ _ ] -> false | _ -> true

let read_keys t =
  List.filter_map (function Read k -> Some k | Write _ -> None) t.ops

let write_keys t =
  List.filter_map (function Write k -> Some k | Read _ -> None) t.ops

let pp fmt t =
  Format.fprintf fmt "T%d{%a}" t.id
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       (fun f op ->
         let tag = if is_write op then "W" else "R" in
         Format.fprintf f "%s(%a)" tag Kvstore.pp_key (key_of op)))
    t.ops
