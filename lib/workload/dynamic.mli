(** Dynamic workload schedules (§VI-C2): the workload cycles through
    fixed-length periods, each with distinct access patterns touching
    non-overlapping partitions, creating moving hotspots.

    Two scenarios from the paper:
    - {b hotspot interval}: three uniform-access queries whose partition
      ID intervals are fixed within a period and shift between periods;
    - {b hotspot position}: four periods A/B/C/D — uniform with 50 %
      cross-ratio, skewed 50 %, skewed 100 %, skewed 100 % with a
      partition-offset distribution shift. *)

type phase = { name : string; duration : float; params : Ycsb.params }

type t

val of_phases : phase list -> t
(** The schedule cycles through the phases forever. *)

val cycle_length : t -> float

val phase_at : t -> float -> phase
(** Phase active at an absolute simulated time. *)

val params_at : t -> float -> Ycsb.params

val hotspot_interval : base:Ycsb.params -> period:float -> t
(** Three periods; each confines uniform access to a different third of
    the partition space (via hotspot span + offset). *)

val hotspot_position : base:Ycsb.params -> period:float -> t
(** The A/B/C/D scenario. *)

type schedule = t
(** Alias so submodules can refer to the schedule type. *)

(** A generator that re-parameterises an YCSB generator according to the
    schedule before every draw. *)
module Driver : sig
  type t

  val create : schedule:schedule -> gen:Ycsb.t -> t
  val next : t -> time:float -> Txn.t
  val phase_name : t -> time:float -> string
end
