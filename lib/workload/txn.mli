(** Transaction descriptors.

    A transaction is a list of keyed read/write operations; its
    TxnParts — the distinct partitions touched — is what the planner's
    heat graph and the router consume (§IV-A: partitions are known after
    SQL parsing / query optimisation, recorded in TxnMeta). *)

type op = Read of Lion_store.Kvstore.key | Write of Lion_store.Kvstore.key

type t = {
  id : int;
  ops : op list;
  parts : int list;  (** distinct partitions, ascending *)
}

val make : id:int -> op list -> t
(** Computes [parts] from the operations. *)

val key_of : op -> Lion_store.Kvstore.key
val is_write : op -> bool

val is_cross_partition : t -> bool
(** More than one distinct partition. *)

val parts_of_ops : op list -> int list

val read_keys : t -> Lion_store.Kvstore.key list
val write_keys : t -> Lion_store.Kvstore.key list

val pp : Format.formatter -> t -> unit
