type phase = { name : string; duration : float; params : Ycsb.params }

type t = { phases : phase array; cycle : float }

let of_phases phases =
  assert (phases <> []);
  let phases = Array.of_list phases in
  let cycle = Array.fold_left (fun acc p -> acc +. p.duration) 0.0 phases in
  assert (cycle > 0.0);
  { phases; cycle }

let cycle_length t = t.cycle

let phase_at t time =
  let offset = Float.rem (Stdlib.max 0.0 time) t.cycle in
  let rec find i acc =
    if i >= Array.length t.phases - 1 then t.phases.(Array.length t.phases - 1)
    else if offset < acc +. t.phases.(i).duration then t.phases.(i)
    else find (i + 1) (acc +. t.phases.(i).duration)
  in
  find 0 0.0

let params_at t time = (phase_at t time).params

(* Three custom queries with a uniform access pattern whose partition-ID
   interval is fixed within a period and shifts between periods
   (§VI-C2): co-accessed neighbour pairs drawn uniformly from a
   contiguous third of the partition space, the third rotating each
   period. *)
let hotspot_interval ~base ~period =
  let third = Stdlib.max 1 (base.Ycsb.partitions / 3) in
  let phase i =
    {
      name = Printf.sprintf "interval-%d" i;
      duration = period;
      params =
        {
          base with
          Ycsb.skew_factor = 1.0;
          cross_ratio = 1.0;
          hot_node = 0;
          hot_span = third;
          hot_contiguous = true;
          partition_offset = i * third;
        };
    }
  in
  of_phases [ phase 0; phase 1; phase 2 ]

let hotspot_position ~base ~period =
  let skewed = { base with Ycsb.skew_factor = 0.8; hot_span = 2 } in
  of_phases
    [
      {
        name = "A:uniform-50";
        duration = period;
        params = { base with Ycsb.skew_factor = 0.0; cross_ratio = 0.5 };
      };
      { name = "B:skew-50"; duration = period; params = { skewed with Ycsb.cross_ratio = 0.5 } };
      { name = "C:skew-100"; duration = period; params = { skewed with Ycsb.cross_ratio = 1.0 } };
      {
        name = "D:skew-100-shift";
        duration = period;
        params =
          {
            skewed with
            Ycsb.cross_ratio = 1.0;
            partition_offset = base.Ycsb.partitions / 2;
          };
      };
    ]

type schedule = t

module Driver = struct
  type t = { schedule : schedule; gen : Ycsb.t }

  let create ~schedule ~gen = { schedule; gen }

  let next t ~time =
    let p = params_at t.schedule time in
    if p <> Ycsb.params t.gen then Ycsb.set_params t.gen p;
    Ycsb.next t.gen

  let phase_name t ~time = (phase_at t.schedule time).name
end
