module Rng = Lion_kernel.Rng
module Zipf = Lion_kernel.Zipf
module Kvstore = Lion_store.Kvstore

type params = {
  partitions : int;
  nodes : int;
  keys_per_partition : int;
  ops_per_txn : int;
  write_ratio : float;
  skew_factor : float;
  cross_ratio : float;
  neighbor_cross : bool;
  hot_node : int;
  hot_span : int;
  hot_contiguous : bool;
  partition_offset : int;
  key_theta : float;
}

let default_params ~partitions ~nodes =
  {
    partitions;
    nodes;
    keys_per_partition = 1_000_000;
    ops_per_txn = 10;
    write_ratio = 0.5;
    skew_factor = 0.0;
    cross_ratio = 0.0;
    neighbor_cross = true;
    hot_node = 0;
    hot_span = max 1 (partitions / nodes);
    hot_contiguous = false;
    partition_offset = 0;
    key_theta = 0.6;
  }

let workload_mix ~partitions ~nodes letter =
  let base = default_params ~partitions ~nodes in
  match Char.uppercase_ascii letter with
  | 'A' -> { base with write_ratio = 0.5 }
  | 'B' -> { base with write_ratio = 0.05 }
  | 'C' -> { base with write_ratio = 0.0 }
  | 'D' -> { base with write_ratio = 0.05; key_theta = 0.99 }
  | 'E' -> { base with write_ratio = 0.0; ops_per_txn = 10 }
  | 'F' -> { base with write_ratio = 0.5 }
  | c -> invalid_arg (Printf.sprintf "Ycsb.workload_mix: unknown workload %c" c)

type t = {
  mutable p : params;
  rng : Rng.t;
  mutable key_dist : Zipf.t;
  mutable next_id : int;
}

let create ?(seed = 7) p =
  {
    p;
    rng = Rng.create seed;
    key_dist = Zipf.create ~n:p.keys_per_partition ~theta:p.key_theta;
    next_id = 0;
  }

let params t = t.p

let set_params t p =
  if
    p.keys_per_partition <> Zipf.n t.key_dist
    || p.key_theta <> Zipf.theta t.key_dist
  then t.key_dist <- Zipf.create ~n:p.keys_per_partition ~theta:p.key_theta;
  t.p <- p

(* Partitions owned (as initial primaries, round-robin layout) by the
   hot node are [hot_node; hot_node + nodes; ...]. The hotspot is the
   first [hot_span] of them so that skewed load lands on one node until
   the protocol under test rebalances it. *)
let hot_partition t =
  let p = t.p in
  let i = Rng.int t.rng (max 1 p.hot_span) in
  if p.hot_contiguous then i mod p.partitions
  else (p.hot_node + (i * p.nodes)) mod p.partitions

let rotate t part = (part + t.p.partition_offset) mod t.p.partitions

(* Raw (pre-rotation) home choice, so that neighbour pairing is stable
   under a shifting partition offset. *)
let raw_home t =
  if t.p.skew_factor > 0.0 && Rng.bernoulli t.rng t.p.skew_factor then
    hot_partition t
  else Rng.int t.rng t.p.partitions


(* Second partition of a cross transaction, in the raw domain. *)
let raw_other t raw_home_part =
  let p = t.p in
  if p.partitions = 1 then raw_home_part
  else if p.neighbor_cross then (raw_home_part + 1) mod p.partitions
  else (
    let rec pick tries =
      let cand = raw_home t in
      if cand <> raw_home_part || tries > 8 then cand else pick (tries + 1)
    in
    let cand = pick 0 in
    if cand = raw_home_part then (raw_home_part + 1) mod p.partitions else cand)

let make_op t part =
  let slot = Zipf.sample t.key_dist t.rng in
  let k = Kvstore.key ~part ~slot in
  if Rng.bernoulli t.rng t.p.write_ratio then Txn.Write k else Txn.Read k

let next t =
  let p = t.p in
  let raw = raw_home t in
  let home = rotate t raw in
  let cross = p.cross_ratio > 0.0 && Rng.bernoulli t.rng p.cross_ratio in
  let ops =
    if cross then (
      let remote = rotate t (raw_other t raw) in
      let split = max 1 (p.ops_per_txn / 2) in
      List.init p.ops_per_txn (fun i ->
          make_op t (if i < split then home else remote)))
    else List.init p.ops_per_txn (fun _ -> make_op t home)
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  Txn.make ~id ops
