module Rng = Lion_kernel.Rng
module Zipf = Lion_kernel.Zipf
module Kvstore = Lion_store.Kvstore

type params = {
  partitions : int;
  nodes : int;
  accounts_per_partition : int;
  hot_accounts : float;
  two_account_ratio : float;
  skew_factor : float;
  hot_node : int;
  hot_span : int;
}

let default_params ~partitions ~nodes =
  {
    partitions;
    nodes;
    accounts_per_partition = 100_000;
    hot_accounts = 0.8;
    two_account_ratio = 0.3;
    skew_factor = 0.0;
    hot_node = 0;
    hot_span = max 1 (partitions / nodes);
  }

module Layout = struct
  let checking_slot a = 2 * a
  let savings_slot a = (2 * a) + 1
end

type t = { p : params; rng : Rng.t; accounts : Zipf.t; mutable next_id : int }

let create ?(seed = 19) p =
  {
    p;
    rng = Rng.create seed;
    accounts = Zipf.create ~n:p.accounts_per_partition ~theta:p.hot_accounts;
    next_id = 0;
  }

let params t = t.p

let home_partition t =
  let p = t.p in
  if p.skew_factor > 0.0 && Rng.bernoulli t.rng p.skew_factor then (
    let i = Rng.int t.rng (max 1 p.hot_span) in
    (p.hot_node + (i * p.nodes)) mod p.partitions)
  else Rng.int t.rng p.partitions

(* The recurring partner lives in the next partition: same account
   rank, neighbouring range — the customer's standing payee. *)
let partner_partition t home = (home + 1) mod t.p.partitions

let account t part =
  let a = Zipf.sample t.accounts t.rng in
  (part, a)

let checking (part, a) = Kvstore.key ~part ~slot:(Layout.checking_slot a)
let savings (part, a) = Kvstore.key ~part ~slot:(Layout.savings_slot a)

let balance t acct =
  ignore t;
  [ Txn.Read (checking acct); Txn.Read (savings acct) ]

let deposit_checking t acct =
  ignore t;
  [ Txn.Write (checking acct) ]

let transact_savings t acct =
  ignore t;
  [ Txn.Read (savings acct); Txn.Write (savings acct) ]

let write_check t acct =
  ignore t;
  [ Txn.Read (savings acct); Txn.Read (checking acct); Txn.Write (checking acct) ]

let amalgamate t src dst =
  ignore t;
  [
    Txn.Write (checking src);
    Txn.Write (savings src);
    Txn.Write (checking dst);
  ]

let send_payment t src dst =
  ignore t;
  [
    Txn.Read (checking src);
    Txn.Write (checking src);
    Txn.Write (checking dst);
  ]

let next t =
  let home = home_partition t in
  let acct = account t home in
  let ops =
    if Rng.bernoulli t.rng t.p.two_account_ratio then (
      let partner = account t (partner_partition t home) in
      if Rng.bool t.rng then send_payment t acct partner
      else amalgamate t acct partner)
    else (
      match Rng.int t.rng 4 with
      | 0 -> balance t acct
      | 1 -> deposit_checking t acct
      | 2 -> transact_savings t acct
      | _ -> write_check t acct)
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  Txn.make ~id ops
