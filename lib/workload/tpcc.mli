(** TPC-C workload focused on NewOrder (§VI-A1), warehouse-partitioned.

    One warehouse = one partition. Rows are mapped into a partition's
    key space by table-specific slot ranges (warehouse row, 10 district
    rows, 30 k customer rows, 100 k stock rows, growing order rows).
    NewOrder reads the warehouse and customer, read-modify-writes the
    district (the D_NEXT_O_ID hotspot), inserts an order row, and
    read-modify-writes the stock row of each of its 5–15 order lines.
    A transaction is cross-partition (probability [cross_ratio]) when at
    least one order line supplies from a remote warehouse, matching the
    benchmark's remote-supply mechanism. Payment transactions (mixed in
    with [payment_ratio]) update warehouse, district and customer, with
    15 % remote customers. *)

type params = {
  warehouses : int;
  nodes : int;
  skew_factor : float;  (** probability the home warehouse is hot *)
  cross_ratio : float;  (** fraction of cross-partition NewOrders *)
  full_mix : bool;
      (** false (default, the paper's setting): NewOrder only, plus
          Payments per [payment_ratio]. true: the standard TPC-C mix —
          45 % NewOrder, 43 % Payment, 4 % OrderStatus, 4 % Delivery,
          4 % StockLevel ([payment_ratio] is then ignored). *)
  neighbor_remote : bool;
      (** true (default): remote supply comes from the next warehouse —
          the recurring "same customer buys from the same other
          warehouse" affinity the paper simulates, which an adaptive
          protocol can co-locate. false: remote warehouse uniform. *)
  payment_ratio : float;  (** fraction of Payment transactions *)
  hot_node : int;
  hot_span : int;  (** hot warehouses per node *)
  partition_offset : int;
}

val default_params : warehouses:int -> nodes:int -> params

type t

val create : ?seed:int -> params -> t
val params : t -> params
val set_params : t -> params -> unit
val next : t -> Txn.t

(** Slot layout, exposed for tests. *)
module Layout : sig
  val warehouse_slot : int
  val district_slot : int -> int
  val customer_slot : int -> int
  val stock_slot : int -> int
  val order_slot : int -> int
  val new_order_queue_slot : int -> int
  (** Per-district NEW-ORDER queue head, consumed by Delivery. *)
end
