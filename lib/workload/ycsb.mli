(** YCSB-style transactional workload (§VI-A1).

    Each transaction performs [ops_per_txn] read-modify-write/read
    operations. The home partition is drawn from a hot node's partitions
    with probability [skew_factor] ("80 % of transactions tend to access
    the partitions in one node"), otherwise uniformly. With probability
    [cross_ratio] the transaction is cross-partition and touches exactly
    two partitions (the paper's setting), splitting its operations
    between them. Keys inside a partition are zipfian. *)

type params = {
  partitions : int;
  nodes : int;
  keys_per_partition : int;
  ops_per_txn : int;
  write_ratio : float;  (** probability an op is a write *)
  skew_factor : float;  (** 0 = uniform, 0.8 = paper's skewed setting *)
  cross_ratio : float;  (** fraction of cross-partition transactions *)
  neighbor_cross : bool;
      (** true (default): a cross-partition transaction pairs its home
          partition with the next partition id — a recurring co-access
          template that the round-robin layout always splits across two
          nodes (hence "100 % distributed" before adaptation), and that
          an adaptive protocol can co-locate. false: the second
          partition is drawn independently (unstructured co-access,
          used by ablation stress tests) *)
  hot_node : int;  (** the node whose partitions form the hotspot *)
  hot_span : int;
      (** size of the hotspot in partitions; see [hot_contiguous] for
          how the members are chosen *)
  hot_contiguous : bool;
      (** false (default): the hotspot is the hot {e node}'s partitions
          (stride = node count under the round-robin layout) — load
          lands on one node, the §VI-C1 skew setting. true: the hotspot
          is the contiguous partition-ID interval [0, hot_span), before
          rotation by [partition_offset] — the §VI-C2 hotspot-interval
          scenario, where the interval shifts between periods. *)
  partition_offset : int;
      (** rotate every partition choice by this amount — used by the
          dynamic scenarios to shift the hotspot position *)
  key_theta : float;  (** zipfian skew of the key within a partition *)
}

val default_params : partitions:int -> nodes:int -> params
(** ops_per_txn = 10, write_ratio = 0.5, uniform, no cross. *)

val workload_mix : partitions:int -> nodes:int -> char -> params
(** The standard YCSB workload letters, as operation-mix presets over
    [default_params]:
    - A: update-heavy (50 % writes)
    - B: read-mostly (5 % writes)
    - C: read-only
    - D: read-latest (5 % writes, fresh keys favoured — approximated by
      a steeper key zipf)
    - E: short scans (modelled as 10-key read bursts in one partition)
    - F: read-modify-write (50 % writes, RMW semantics — identical to A
      under this store's RMW write model)
    Raises [Invalid_argument] on other letters. *)

type t

val create : ?seed:int -> params -> t
val params : t -> params
val set_params : t -> params -> unit
(** Swap parameters in place (dynamic workloads switch phases without
    disturbing the id sequence or the RNG stream). *)

val next : t -> Txn.t
