(** SmallBank benchmark: six short banking transactions over paired
    checking/savings accounts — a classic OLTP contention benchmark and
    a natural fit for transaction-localization protocols, because the
    two-account transactions (SendPayment, Amalgamate) follow recurring
    customer relationships that an adaptive placer can co-locate.

    Accounts are range-partitioned; a customer's partner account (the
    recurring payee) lives in the next partition, so two-account
    transactions are cross-partition under the round-robin layout until
    a protocol co-locates the partition pairs, mirroring the YCSB
    neighbour-template construction. *)

type params = {
  partitions : int;
  nodes : int;
  accounts_per_partition : int;
  hot_accounts : float;  (** zipf skew over accounts within a partition *)
  two_account_ratio : float;
      (** fraction of SendPayment/Amalgamate transactions (the
          cross-partition pressure knob) *)
  skew_factor : float;  (** probability the home partition is hot *)
  hot_node : int;
  hot_span : int;
}

val default_params : partitions:int -> nodes:int -> params

type t

val create : ?seed:int -> params -> t
val params : t -> params
val next : t -> Txn.t

(** Slot layout, exposed for tests: each account has a checking and a
    savings row. *)
module Layout : sig
  val checking_slot : int -> int
  val savings_slot : int -> int
end
