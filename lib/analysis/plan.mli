(** Reconfiguration plans: the concrete replica actions derived from a
    clump assignment (the RP routed to each node's adaptor, §V).

    For each partition of each clump destined to node n:
    - n already holds the primary → nothing;
    - n holds a secondary → optionally an eager [Remaster] (Lion's
      default leaves promotion to transaction-time remastering);
    - n holds nothing → [Add_replica] (background copy), plus an eager
      [Remaster] if requested. *)

type action =
  | Add_replica of { part : int; node : int }
  | Remaster of { part : int; node : int }

type t = {
  actions : action list;
  adds : int;  (** migration-class actions in the plan *)
  remasters : int;  (** eager promotions in the plan *)
}

val of_assignments :
  Lion_store.Placement.t ->
  (Clump.t * int) list ->
  eager_remaster:bool ->
  t

val is_empty : t -> bool
val pp_action : Format.formatter -> action -> unit
