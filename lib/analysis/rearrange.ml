module Placement = Lion_store.Placement

type result = {
  assignments : (Clump.t * int) list;
  balance : float array;
  fine_tune_moves : int;
  balanced : bool;
}

let check_balance balance avg epsilon =
  let theta = avg *. (1.0 +. epsilon) in
  Array.for_all (fun b -> b <= theta +. 1e-9) balance

(* Overloaded: above avg·(1+ε). Idle: strictly below avg, so a move
   always narrows the gap. Both lists are sorted most-extreme-first.
   Ineligible nodes (standby/draining/dead slots in an elastic cluster)
   are excluded from the idle list so fine-tuning never sends a clump
   where dispatching could not. *)
let find_oi_nodes balance avg epsilon ok =
  let theta = avg *. (1.0 +. epsilon) in
  let overloaded = ref [] and idle = ref [] in
  Array.iteri
    (fun n b ->
      if b > theta then overloaded := (n, b) :: !overloaded
      else if b < avg && ok n then idle := (n, b) :: !idle)
    balance;
  ( List.sort (fun (_, a) (_, b) -> compare b a) !overloaded |> List.map fst,
    List.sort (fun (_, a) (_, b) -> compare a b) !idle |> List.map fst )

let rearrange ?eligible cost placement clumps ?(epsilon = 0.25) ?(max_steps = 64) () =
  let nodes = Placement.nodes placement in
  let ok n = match eligible with None -> true | Some f -> f n in
  let eligible_count =
    match eligible with
    | None -> nodes
    | Some f ->
        let c = ref 0 in
        for n = 0 to nodes - 1 do
          if f n then incr c
        done;
        !c
  in
  let balance = Array.make nodes 0.0 in
  (* Per-node clump queues, kept ascending by weight for the gap search
     of PickClump. *)
  let queues = Array.make nodes [] in
  (* Step 1: clump dispatching. *)
  List.iter
    (fun (c : Clump.t) ->
      let dst, _ = Costmodel.find_dst_node ?eligible cost placement ~parts:c.pids in
      c.dest <- dst;
      balance.(dst) <- balance.(dst) +. c.w;
      queues.(dst) <- c :: queues.(dst))
    clumps;
  Array.iteri
    (fun n q -> queues.(n) <- List.sort (fun (a : Clump.t) b -> compare a.w b.w) q)
    queues;
  let avg =
    Clump.total_weight clumps /. float_of_int (Stdlib.max 1 eligible_count)
  in
  (* Step 2: load fine-tuning. *)
  let moves = ref 0 in
  let steps = ref max_steps in
  let running = ref true in
  while !running && (not (check_balance balance avg epsilon)) && !steps > 0 do
    let overloaded, idle = find_oi_nodes balance avg epsilon ok in
    match (overloaded, idle) with
    | [], _ | _, [] -> running := false
    | _ ->
        (* PickClump: try overloaded nodes hottest-first; take the
           largest clump not exceeding the load gap, send it to the
           cheapest idle node. *)
        let pick () =
          let try_node o_n =
            let gap = balance.(o_n) -. avg in
            let candidates =
              List.filter (fun (c : Clump.t) -> c.w <= gap +. 1e-9 && c.w > 0.0) queues.(o_n)
            in
            match List.rev candidates with
            | [] -> None
            | c :: _ ->
                let best_idle =
                  List.fold_left
                    (fun acc i_n ->
                      let fc = Costmodel.clump_cost cost placement ~parts:c.pids ~node:i_n in
                      match acc with
                      | Some (_, best) when best <= fc -> acc
                      | _ -> Some (i_n, fc))
                    None idle
                in
                Option.map (fun (i_n, _) -> (o_n, c, i_n)) best_idle
          in
          List.find_map try_node overloaded
        in
        (match pick () with
        | None -> running := false
        | Some (o_n, c, i_n) ->
            queues.(o_n) <- List.filter (fun (x : Clump.t) -> x != c) queues.(o_n);
            queues.(i_n) <-
              List.sort (fun (a : Clump.t) b -> compare a.w b.w) (c :: queues.(i_n));
            balance.(o_n) <- balance.(o_n) -. c.w;
            balance.(i_n) <- balance.(i_n) +. c.w;
            c.dest <- i_n;
            incr moves);
        decr steps
  done;
  {
    assignments = List.map (fun (c : Clump.t) -> (c, c.dest)) clumps;
    balance;
    fine_tune_moves = !moves;
    balanced = check_balance balance avg epsilon;
  }

let plan_cost cost placement assignments =
  List.fold_left
    (fun acc ((c : Clump.t), n) ->
      acc +. Costmodel.clump_cost cost placement ~parts:c.pids ~node:n)
    0.0 assignments
