module Placement = Lion_store.Placement

type t = {
  partitions : int;
  vweight : float array;
  (* adjacency: per-vertex hashtable of neighbour -> weight; edges are
     stored symmetrically. *)
  adj : (int, float) Hashtbl.t array;
}

let create ~partitions =
  { partitions; vweight = Array.make partitions 0.0; adj = Array.init partitions (fun _ -> Hashtbl.create 8) }

let bump_edge t u v w =
  let upd a b =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt t.adj.(a) b) in
    Hashtbl.replace t.adj.(a) b (cur +. w)
  in
  upd u v;
  upd v u

let add_weighted t parts w =
  List.iter (fun p -> t.vweight.(p) <- t.vweight.(p) +. w) parts;
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
        List.iter (fun q -> bump_edge t p q w) rest;
        pairs rest
  in
  pairs parts

let add_txn t ~parts = add_weighted t parts 1.0
let add_predicted t ~parts ~weight = if weight > 0.0 then add_weighted t parts weight
let vertex_weight t p = t.vweight.(p)

let edge_weight t u v = Option.value ~default:0.0 (Hashtbl.find_opt t.adj.(u) v)

let effective_edge_weight t ~placement ~cross_boost u v =
  let w = edge_weight t u v in
  if w = 0.0 then 0.0
  else if Placement.primary placement u <> Placement.primary placement v then
    w *. cross_boost
  else w

let neighbors t p = Hashtbl.fold (fun q _ acc -> q :: acc) t.adj.(p) [] |> List.sort compare

let hottest_first t =
  let verts = ref [] in
  for p = t.partitions - 1 downto 0 do
    if t.vweight.(p) > 0.0 then verts := p :: !verts
  done;
  List.stable_sort (fun a b -> compare t.vweight.(b) t.vweight.(a)) !verts

let edge_count t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.adj / 2

let mean_edge_weight t =
  let total = ref 0.0 and count = ref 0 in
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun _ w ->
          total := !total +. w;
          incr count)
        tbl)
    t.adj;
  if !count = 0 then 0.0 else !total /. float_of_int !count

let clear t =
  Array.fill t.vweight 0 t.partitions 0.0;
  Array.iter Hashtbl.reset t.adj
