module Placement = Lion_store.Placement

let assign clumps ~nodes =
  let load = Array.make nodes 0.0 in
  let sorted = List.sort (fun (a : Clump.t) b -> compare b.w a.w) clumps in
  List.iter
    (fun (c : Clump.t) ->
      let best = ref 0 in
      for n = 1 to nodes - 1 do
        if load.(n) < load.(!best) then best := n
      done;
      c.dest <- !best;
      load.(!best) <- load.(!best) +. c.w)
    sorted;
  List.map (fun (c : Clump.t) -> (c, c.dest)) clumps

let plan placement assignments =
  Plan.of_assignments placement assignments ~eager_remaster:true
