(** Clump generation (§IV-A): clustering the heat graph into groups of
    partitions that should be co-located.

    Seeds are taken hottest-first; a clump grows breadth-first over
    edges whose effective weight exceeds the threshold α, so strongly
    co-accessed partitions land in the same clump while independent ones
    form singletons. *)

type t = {
  pids : int list;  (** member partitions, ascending *)
  w : float;  (** summed vertex weight (load proxy) *)
  mutable dest : int;  (** destination node; -1 until dispatched *)
}

val generate :
  ?max_weight:float ->
  Heatgraph.t ->
  placement:Lion_store.Placement.t ->
  alpha:float ->
  cross_boost:float ->
  t list
(** All clumps covering every hot vertex, in seed (hottest-first)
    order. Every hot vertex appears in exactly one clump.

    [max_weight] (default: unbounded) stops a clump's expansion once its
    vertex weight reaches the bound. Without it a densely co-accessed
    hot set collapses into a single giant clump that the rearrangement
    algorithm — which moves whole clumps — can never balance; the
    planner passes the per-node fair share. *)

val total_weight : t list -> float
val pp : Format.formatter -> t -> unit
