(** The workload heat graph G(V, E) of §IV-A.

    Vertices are partitions weighted by access frequency; an edge
    connects two partitions co-accessed by a transaction, weighted by
    co-access count. Edges whose endpoints' primaries currently live on
    different nodes (e_c) are boosted over same-node edges (e_s) when
    clustering reads them, reflecting the paper's higher priority for
    cross-node co-access. Predicted co-access (from the workload
    predictor) is merged in as extra edge weight — the red dashed edge
    of Fig. 5c. *)

type t

val create : partitions:int -> t

val add_txn : t -> parts:int list -> unit
(** Accumulate one transaction: +1 on each touched vertex, +1 on every
    pair of touched partitions. *)

val add_predicted : t -> parts:int list -> weight:float -> unit
(** Merge a predicted co-access template with the given weight (w_p
    scaled) on its vertices and pairwise edges. *)

val vertex_weight : t -> int -> float

val edge_weight : t -> int -> int -> float
(** Raw co-access weight (order-insensitive); 0 if absent. *)

val effective_edge_weight :
  t -> placement:Lion_store.Placement.t -> cross_boost:float -> int -> int -> float
(** Edge weight multiplied by [cross_boost] when the two partitions'
    primaries are on different nodes. *)

val neighbors : t -> int -> int list
(** Partitions sharing an edge with the given one. *)

val hottest_first : t -> int list
(** All vertices with non-zero weight, hottest first (the hVertices
    priority queue). *)

val edge_count : t -> int

val mean_edge_weight : t -> float
(** Average raw edge weight; 0 for an edgeless graph. Callers derive an
    adaptive clumping threshold α from it (e.g. 2× the mean) so that
    uniformly random co-access — where every edge sits near the mean —
    yields singleton clumps, while structurally hot pairs clump. *)

val clear : t -> unit
