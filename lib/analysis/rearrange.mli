(** The replica rearrangement algorithm (Algorithm 1, §IV-B).

    Step 1 (clump dispatching) sends every clump to its cheapest node
    under the cost model. Step 2 (load fine-tuning) moves clumps from
    overloaded nodes (balance factor above avg·(1+ε)) to idle ones
    until the placement is balanced or the step budget A runs out. *)

type result = {
  assignments : (Clump.t * int) list;
      (** every clump with its final destination node *)
  balance : float array;  (** final per-node balance factors b_i *)
  fine_tune_moves : int;  (** clumps moved during step 2 *)
  balanced : bool;  (** true iff max b_i ≤ avg·(1+ε) at exit *)
}

val rearrange :
  ?eligible:(int -> bool) ->
  Costmodel.t ->
  Lion_store.Placement.t ->
  Clump.t list ->
  ?epsilon:float ->
  ?max_steps:int ->
  unit ->
  result
(** [epsilon] is the permissible imbalance (default 0.25); [max_steps]
    caps fine-tuning moves (the algorithm's A, default 64). Clump
    [dest] fields are updated in place as a side effect. [eligible]
    (default: everyone) restricts both dispatching and fine-tuning
    destinations — elastic clusters exclude standby, draining and dead
    slots, and the balance average is taken over eligible nodes only. *)

val plan_cost : Costmodel.t -> Lion_store.Placement.t -> (Clump.t * int) list -> float
(** C_p(P, P') of Eq. 2: summed placement cost of the assignment. *)
