(** Schism-style partitioner (the Lion(S)/Lion(SW) ablation baseline).

    Schism clusters the co-access graph and then balances purely on
    load, ignoring where primaries and secondaries already live — so it
    issues migrations Lion's replica-aware model would avoid. We reuse
    the same clump generation and assign clumps greedily to the
    least-loaded node, largest clump first. *)

val assign :
  Clump.t list -> nodes:int -> (Clump.t * int) list
(** Balance-only placement; sets each clump's [dest] in place. *)

val plan : Lion_store.Placement.t -> (Clump.t * int) list -> Plan.t
(** Schism moves primaries to their destinations unconditionally:
    every partition whose primary is elsewhere gets a migration-class
    action ([Add_replica] if no replica is present) plus an eager
    [Remaster] — the "unnecessary migrations" of §VI-B. *)
