module Placement = Lion_store.Placement

type action =
  | Add_replica of { part : int; node : int }
  | Remaster of { part : int; node : int }

type t = { actions : action list; adds : int; remasters : int }

let of_assignments placement assignments ~eager_remaster =
  let actions = ref [] and adds = ref 0 and remasters = ref 0 in
  List.iter
    (fun ((c : Clump.t), node) ->
      List.iter
        (fun part ->
          if not (Placement.has_primary placement ~part ~node) then
            if Placement.has_secondary placement ~part ~node then (
              if eager_remaster then (
                actions := Remaster { part; node } :: !actions;
                incr remasters))
            else (
              actions := Add_replica { part; node } :: !actions;
              incr adds;
              if eager_remaster then (
                actions := Remaster { part; node } :: !actions;
                incr remasters)))
        c.pids)
    assignments;
  { actions = List.rev !actions; adds = !adds; remasters = !remasters }

let is_empty t = t.actions = []

let pp_action fmt = function
  | Add_replica { part; node } -> Format.fprintf fmt "Add:P%d->N%d" part node
  | Remaster { part; node } -> Format.fprintf fmt "Remaster:P%d->N%d" part node
