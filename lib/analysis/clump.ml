type t = { pids : int list; w : float; mutable dest : int }

let generate ?(max_weight = infinity) graph ~placement ~alpha ~cross_boost =
  let used = Hashtbl.create 64 in
  let clumps = ref [] in
  let expand seed =
    let members = ref [] in
    let weight = ref 0.0 in
    let queue = Queue.create () in
    Queue.push seed queue;
    Hashtbl.replace used seed ();
    weight := Heatgraph.vertex_weight graph seed;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      members := v :: !members;
      List.iter
        (fun u ->
          if
            (not (Hashtbl.mem used u))
            && !weight +. Heatgraph.vertex_weight graph u <= max_weight
          then (
            let w =
              Heatgraph.effective_edge_weight graph ~placement ~cross_boost v u
            in
            if w > alpha then (
              Hashtbl.replace used u ();
              weight := !weight +. Heatgraph.vertex_weight graph u;
              Queue.push u queue)))
        (Heatgraph.neighbors graph v)
    done;
    let pids = List.sort compare !members in
    let w = List.fold_left (fun acc p -> acc +. Heatgraph.vertex_weight graph p) 0.0 pids in
    { pids; w; dest = -1 }
  in
  List.iter
    (fun v -> if not (Hashtbl.mem used v) then clumps := expand v :: !clumps)
    (Heatgraph.hottest_first graph);
  List.rev !clumps

let total_weight clumps = List.fold_left (fun acc c -> acc +. c.w) 0.0 clumps

let pp fmt c =
  Format.fprintf fmt "clump{[%a] w=%.1f dest=%d}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ";") Format.pp_print_int)
    c.pids c.w c.dest
