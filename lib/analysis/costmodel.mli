(** The clump-placement cost model (Eqs. 3–4).

    Placing clump c on node n costs
      f_o(n, c) = w_r · Σ cnt_r(v, n)  +  w_m · Σ cnt_m(v, n)
    where cnt_r counts partitions that would need remastering —
    weighted 1 + log₂(f(v, primary) + 1), since remastering a hot
    primary is more disruptive — and cnt_m counts partitions with no
    replica on n at all (migration needed). A node already holding all
    primaries costs 0. *)

type wan = {
  region_of : int -> int;  (** node → region map ([Cluster.region_of]) *)
  factor : float;
      (** cross-region cost multiplier, typically the WAN/LAN latency
          ratio clamped to a sane range *)
}
(** WAN awareness (docs/GEO.md): when present, moving a partition's
    mastership or a copy to a node in a {e different} region than its
    current primary scales both the remaster and the migration term by
    [factor] — leader transfers over the WAN are a latency cliff, so
    the planner keeps clumps region-local unless the co-access evidence
    overwhelms the multiplier. *)

type t = {
  w_r : float;  (** remastering unit cost *)
  w_m : float;  (** migration unit cost *)
  freq : int -> float;  (** normalised access frequency f(v, ·) *)
  wan : wan option;  (** cross-region multiplier; [None] = region-free *)
}

val make : ?w_r:float -> ?w_m:float -> ?wan:wan -> freq:(int -> float) -> unit -> t
(** Defaults follow the remaster-vs-migration cost ratio of the
    simulated substrate: [w_r] 1.0, [w_m] 10.0, no WAN term. *)

val cnt_r : t -> Lion_store.Placement.t -> part:int -> node:int -> float
val cnt_m : t -> Lion_store.Placement.t -> part:int -> node:int -> float

val clump_cost : t -> Lion_store.Placement.t -> parts:int list -> node:int -> float
(** f_o(n, c). *)

val find_dst_node :
  ?eligible:(int -> bool) -> t -> Lion_store.Placement.t -> parts:int list -> int * float
(** The node with the lowest placement cost (lowest id on ties) and
    that cost. [eligible] (default: everyone) restricts the candidate
    set — elastic clusters pass [Cluster.plan_target_ok] so plans never
    target standby, draining or dead slots (docs/MEMBERSHIP.md). *)

val txn_route_cost :
  t -> Lion_store.Placement.t -> parts:int list -> node:int -> float
(** Router-side execution-cost estimate for running a transaction on a
    node: primaries are free, local secondaries cost a remaster, absent
    partitions cost remote 2PC access (weighted [w_m], the dominant
    cost). Used by the transaction router (§III), which shares the
    planner's model.

    Unlike {!clump_cost} (a deliberate planner move backed by co-access
    evidence), the remaster term here scales the partition frequency
    steeply ([route_freq_scale]), so that opportunistically stealing a
    hot primary — which would break the clump it serves until it flips
    back — prices out near [w_m] and the transaction runs 2PC instead.
    This is what keeps overlapping cold templates from ping-ponging hot
    partitions. *)

val route_freq_scale : float
