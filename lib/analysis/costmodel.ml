module Placement = Lion_store.Placement

type wan = { region_of : int -> int; factor : float }
type t = { w_r : float; w_m : float; freq : int -> float; wan : wan option }

let make ?(w_r = 1.0) ?(w_m = 10.0) ?wan ~freq () = { w_r; w_m; freq; wan }

let cnt_r t placement ~part ~node =
  if Placement.has_primary placement ~part ~node then 0.0
  else if Placement.has_secondary placement ~part ~node then (
    let f_primary = t.freq part in
    1.0 +. (log (f_primary +. 1.0) /. log 2.0))
  else 0.0

let cnt_m _t placement ~part ~node =
  if Placement.has_replica placement ~part ~node then 0.0 else 1.0

(* Cross-region multiplier for moving [part]'s mastership (or a copy)
   to [node]: a leader transfer or migration whose source primary sits
   in another region ships its bytes over the WAN, so both terms scale
   by [factor]. [None] — every region-free run — takes the historical
   expression untouched. *)
let wan_scale t placement ~part ~node =
  match t.wan with
  | None -> 1.0
  | Some w ->
      if w.region_of (Placement.primary placement part) <> w.region_of node
      then w.factor
      else 1.0

let clump_cost t placement ~parts ~node =
  match t.wan with
  | None ->
      List.fold_left
        (fun acc part ->
          acc
          +. (t.w_r *. cnt_r t placement ~part ~node)
          +. (t.w_m *. cnt_m t placement ~part ~node))
        0.0 parts
  | Some _ ->
      List.fold_left
        (fun acc part ->
          let s = wan_scale t placement ~part ~node in
          acc
          +. (s *. t.w_r *. cnt_r t placement ~part ~node)
          +. (s *. t.w_m *. cnt_m t placement ~part ~node))
        0.0 parts

let find_dst_node ?eligible t placement ~parts =
  let nodes = Placement.nodes placement in
  let ok n = match eligible with None -> true | Some f -> f n in
  let best = ref (0, infinity) in
  for node = 0 to nodes - 1 do
    if ok node then begin
      let c = clump_cost t placement ~parts ~node in
      let _, best_c = !best in
      if c < best_c then best := (node, c)
    end
  done;
  !best

(* Execution-time promotion is opportunistic, unlike a planner move
   that carries co-access evidence: stealing a busy primary away from
   the clump it serves breaks every transaction of that clump until it
   flips back. The router therefore prices remastering with a steep
   frequency term — for the hottest partitions it approaches w_m, so a
   transaction that would disrupt a hot clump runs 2PC instead. *)
let route_freq_scale = 1000.0

let txn_route_cost t placement ~parts ~node =
  List.fold_left
    (fun acc part ->
      if Placement.has_primary placement ~part ~node then acc
      else if Placement.has_secondary placement ~part ~node then (
        let f = t.freq part *. route_freq_scale in
        let s = wan_scale t placement ~part ~node in
        acc +. (s *. (t.w_r *. (1.0 +. (log (f +. 1.0) /. log 2.0)))))
      else acc +. t.w_m)
    0.0 parts
