(** Stacked LSTM for univariate time-series forecasting, from scratch.

    Matches the paper's forecasting model (§VI-A): a lightweight
    2-layer LSTM with 20 hidden units trained on the preceding
    ten-period arrival-rate history, cheap enough to train on a CPU.
    Training is truncated-BPTT over full (short) windows with per-sample
    Adam updates and gradient clipping. *)

type t

val create : ?seed:int -> ?layers:int -> ?hidden:int -> input:int -> unit -> t
(** Defaults: [layers = 2], [hidden = 20]. [input] is the feature count
    per timestep (1 for a single arrival-rate series). *)

val layers : t -> int
val hidden : t -> int

val predict : t -> float array array -> float
(** [predict t seq] runs the sequence (time-major, each element a
    feature vector of length [input]) and returns the scalar forecast. *)

val train_sample : t -> seq:float array array -> target:float -> lr:float -> float
(** One stochastic step; returns the squared error before the update. *)

val train : t -> (float array array * float) array -> epochs:int -> lr:float -> float
(** Epoch-wise pass over all samples; returns the mean squared error of
    the final epoch. *)

val mse : t -> (float array array * float) array -> float
(** Mean squared prediction error over a sample set (no updates). *)

(** Internals exposed for the numerical gradient-check test. *)
module For_testing : sig
  val param_arrays : t -> float array list
  (** The live parameter buffers, in a fixed order; mutating them
      perturbs the model. *)

  val gradients : t -> seq:float array array -> target:float -> float array list
  (** Analytic BPTT gradients of the squared error, in the same order
      as [param_arrays]; no parameter update is performed. *)
end
