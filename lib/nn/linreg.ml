type t = { window : int; mutable w : float array; mutable b : float }

let create ~window = { window; w = Array.make window 0.0; b = 0.0 }

let flatten seq = Array.map (fun v -> v.(0)) seq

(* Ridge-damped normal equations solved by Gaussian elimination on the
   (window+1)-sized augmented system — tiny, so no numerics library. *)
let fit t samples =
  let d = t.window + 1 in
  let a = Array.make_matrix d d 0.0 in
  let rhs = Array.make d 0.0 in
  Array.iter
    (fun (seq, y) ->
      let x = flatten seq in
      let xs = Array.append x [| 1.0 |] in
      for i = 0 to d - 1 do
        rhs.(i) <- rhs.(i) +. (xs.(i) *. y);
        for j = 0 to d - 1 do
          a.(i).(j) <- a.(i).(j) +. (xs.(i) *. xs.(j))
        done
      done)
    samples;
  for i = 0 to d - 1 do
    a.(i).(i) <- a.(i).(i) +. 1e-3
  done;
  (* Gaussian elimination with partial pivoting. *)
  for col = 0 to d - 1 do
    let pivot = ref col in
    for row = col + 1 to d - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if !pivot <> col then (
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tr = rhs.(col) in
      rhs.(col) <- rhs.(!pivot);
      rhs.(!pivot) <- tr);
    let diag = a.(col).(col) in
    if Float.abs diag > 1e-12 then
      for row = col + 1 to d - 1 do
        let factor = a.(row).(col) /. diag in
        if factor <> 0.0 then (
          for j = col to d - 1 do
            a.(row).(j) <- a.(row).(j) -. (factor *. a.(col).(j))
          done;
          rhs.(row) <- rhs.(row) -. (factor *. rhs.(col)))
      done
  done;
  let sol = Array.make d 0.0 in
  for row = d - 1 downto 0 do
    let acc = ref rhs.(row) in
    for j = row + 1 to d - 1 do
      acc := !acc -. (a.(row).(j) *. sol.(j))
    done;
    sol.(row) <- (if Float.abs a.(row).(row) > 1e-12 then !acc /. a.(row).(row) else 0.0)
  done;
  t.w <- Array.sub sol 0 t.window;
  t.b <- sol.(t.window)

let predict t seq =
  let x = flatten seq in
  let acc = ref t.b in
  for i = 0 to Stdlib.min (Array.length x) t.window - 1 do
    acc := !acc +. (t.w.(i) *. x.(i))
  done;
  !acc

let mse t samples =
  if Array.length samples = 0 then 0.0
  else (
    let total = ref 0.0 in
    Array.iter
      (fun (seq, y) ->
        let e = predict t seq -. y in
        total := !total +. (e *. e))
      samples;
    !total /. float_of_int (Array.length samples))
