open Matrix
module Rng = Lion_kernel.Rng

(* Gate layout inside the fused 4H pre-activation vector. *)
let gi = 0

type layer = {
  wx : mat; (* 4H x input *)
  wh : mat; (* 4H x H *)
  b : float array; (* 4H *)
}

type t = {
  layer_params : layer array;
  wy : mat; (* 1 x H *)
  by : float array; (* 1 *)
  hidden : int;
  input : int;
  (* Adam slots, one pair of moment arrays per parameter array, in the
     order produced by [param_arrays]. *)
  m : float array array;
  v : float array array;
  mutable steps : int;
}

let param_arrays t =
  let per_layer =
    Array.to_list t.layer_params
    |> List.concat_map (fun l -> [ l.wx.data; l.wh.data; l.b ])
  in
  per_layer @ [ t.wy.data; t.by ]

let create ?(seed = 3) ?(layers = 2) ?(hidden = 20) ~input () =
  assert (layers >= 1 && hidden >= 1 && input >= 1);
  let rng = Rng.create seed in
  let mk_layer l =
    let n_in = if l = 0 then input else hidden in
    {
      wx = xavier rng (4 * hidden) n_in;
      wh = xavier rng (4 * hidden) hidden;
      b =
        (* Forget-gate bias starts at 1.0, the standard trick for
           gradient flow on short training budgets. *)
        Array.init (4 * hidden) (fun i ->
            if i >= hidden && i < 2 * hidden then 1.0 else 0.0);
    }
  in
  let layer_params = Array.init layers mk_layer in
  let t0 =
    {
      layer_params;
      wy = xavier rng 1 hidden;
      by = Array.make 1 0.0;
      hidden;
      input;
      m = [||];
      v = [||];
      steps = 0;
    }
  in
  let shapes = param_arrays t0 in
  {
    t0 with
    m = Array.of_list (List.map (fun a -> Array.make (Array.length a) 0.0) shapes);
    v = Array.of_list (List.map (fun a -> Array.make (Array.length a) 0.0) shapes);
  }

let layers t = Array.length t.layer_params
let hidden t = t.hidden

(* Per-timestep, per-layer forward cache needed by BPTT. *)
type cache = {
  x : float array;
  i : float array;
  f : float array;
  g : float array;
  o : float array;
  c : float array;
  h : float array;
  c_prev : float array;
  h_prev : float array;
  tanh_c : float array;
}

let step_layer t l ~x ~h_prev ~c_prev =
  let hdim = t.hidden in
  let lp = t.layer_params.(l) in
  let z = matvec lp.wx x in
  let zh = matvec lp.wh h_prev in
  for k = 0 to (4 * hdim) - 1 do
    z.(k) <- z.(k) +. zh.(k) +. lp.b.(k)
  done;
  let i = Array.init hdim (fun k -> sigmoid z.(gi + k)) in
  let f = Array.init hdim (fun k -> sigmoid z.(hdim + k)) in
  let g = Array.init hdim (fun k -> tanh z.((2 * hdim) + k)) in
  let o = Array.init hdim (fun k -> sigmoid z.((3 * hdim) + k)) in
  let c = Array.init hdim (fun k -> (f.(k) *. c_prev.(k)) +. (i.(k) *. g.(k))) in
  let tanh_c = Array.map tanh c in
  let h = Array.init hdim (fun k -> o.(k) *. tanh_c.(k)) in
  { x; i; f; g; o; c; h; c_prev; h_prev; tanh_c }

let forward t seq =
  let nl = layers t in
  let hdim = t.hidden in
  let steps = Array.length seq in
  assert (steps > 0);
  let dummy =
    let z = Array.make hdim 0.0 in
    { x = z; i = z; f = z; g = z; o = z; c = z; h = z; c_prev = z; h_prev = z; tanh_c = z }
  in
  let caches = Array.make_matrix steps nl dummy in
  let h = Array.init nl (fun _ -> Array.make hdim 0.0) in
  let c = Array.init nl (fun _ -> Array.make hdim 0.0) in
  for ti = 0 to steps - 1 do
    let x = ref seq.(ti) in
    for l = 0 to nl - 1 do
      let cache = step_layer t l ~x:!x ~h_prev:h.(l) ~c_prev:c.(l) in
      caches.(ti).(l) <- cache;
      h.(l) <- cache.h;
      c.(l) <- cache.c;
      x := cache.h
    done
  done;
  let y = (matvec t.wy h.(nl - 1)).(0) +. t.by.(0) in
  (y, caches)

let predict t seq = fst (forward t seq)

(* Gradient containers mirroring the parameter layout. *)
type grads = { dwx : mat array; dwh : mat array; db : float array array; dwy : mat; dby : float array }

let zero_grads t =
  {
    dwx = Array.map (fun l -> zeros l.wx.rows l.wx.cols) t.layer_params;
    dwh = Array.map (fun l -> zeros l.wh.rows l.wh.cols) t.layer_params;
    db = Array.map (fun l -> Array.make (Array.length l.b) 0.0) t.layer_params;
    dwy = zeros t.wy.rows t.wy.cols;
    dby = Array.make 1 0.0;
  }

let grad_arrays g =
  let per_layer =
    Array.to_list (Array.mapi (fun i _ -> i) g.dwx)
    |> List.concat_map (fun i -> [ g.dwx.(i).data; g.dwh.(i).data; g.db.(i) ])
  in
  per_layer @ [ g.dwy.data; g.dby ]

let backward t caches ~dy =
  let nl = layers t in
  let hdim = t.hidden in
  let steps = Array.length caches in
  let g = zero_grads t in
  (* dh/dc flowing backward through time, per layer. *)
  let dh_next = Array.init nl (fun _ -> Array.make hdim 0.0) in
  let dc_next = Array.init nl (fun _ -> Array.make hdim 0.0) in
  (* Output head gradient lands on the top layer's last hidden state. *)
  let top_h = caches.(steps - 1).(nl - 1).h in
  outer_acc g.dwy [| dy |] top_h;
  g.dby.(0) <- g.dby.(0) +. dy;
  for k = 0 to hdim - 1 do
    dh_next.(nl - 1).(k) <- dh_next.(nl - 1).(k) +. (get t.wy 0 k *. dy)
  done;
  for ti = steps - 1 downto 0 do
    (* dx of an upper layer adds to the lower layer's dh at this t. *)
    let dx_from_above = ref (Array.make 0 0.0) in
    for l = nl - 1 downto 0 do
      let cache = caches.(ti).(l) in
      let dh = Array.copy dh_next.(l) in
      if l < nl - 1 && Array.length !dx_from_above = hdim then
        axpy 1.0 !dx_from_above dh;
      let dc = Array.copy dc_next.(l) in
      for k = 0 to hdim - 1 do
        dc.(k) <- dc.(k) +. (dh.(k) *. cache.o.(k) *. dtanh_from_y cache.tanh_c.(k))
      done;
      let dz = Array.make (4 * hdim) 0.0 in
      for k = 0 to hdim - 1 do
        let d_o = dh.(k) *. cache.tanh_c.(k) in
        let d_i = dc.(k) *. cache.g.(k) in
        let d_f = dc.(k) *. cache.c_prev.(k) in
        let d_g = dc.(k) *. cache.i.(k) in
        dz.(gi + k) <- d_i *. dsigmoid_from_y cache.i.(k);
        dz.(hdim + k) <- d_f *. dsigmoid_from_y cache.f.(k);
        dz.((2 * hdim) + k) <- d_g *. dtanh_from_y cache.g.(k);
        dz.((3 * hdim) + k) <- d_o *. dsigmoid_from_y cache.o.(k)
      done;
      outer_acc g.dwx.(l) dz cache.x;
      outer_acc g.dwh.(l) dz cache.h_prev;
      axpy 1.0 dz g.db.(l);
      (* Propagate. *)
      let lp = t.layer_params.(l) in
      dx_from_above := matvec_t lp.wx dz;
      dh_next.(l) <- matvec_t lp.wh dz;
      for k = 0 to hdim - 1 do
        dc_next.(l).(k) <- dc.(k) *. cache.f.(k)
      done
    done
  done;
  g

let adam_update t grads ~lr =
  t.steps <- t.steps + 1;
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  let step = float_of_int t.steps in
  let bc1 = 1.0 -. (beta1 ** step) and bc2 = 1.0 -. (beta2 ** step) in
  let params = param_arrays t and gs = grad_arrays grads in
  List.iteri
    (fun idx (p, gr) ->
      clip_in 5.0 gr;
      let m = t.m.(idx) and v = t.v.(idx) in
      for i = 0 to Array.length p - 1 do
        m.(i) <- (beta1 *. m.(i)) +. ((1.0 -. beta1) *. gr.(i));
        v.(i) <- (beta2 *. v.(i)) +. ((1.0 -. beta2) *. gr.(i) *. gr.(i));
        let mh = m.(i) /. bc1 and vh = v.(i) /. bc2 in
        p.(i) <- p.(i) -. (lr *. mh /. (sqrt vh +. eps))
      done)
    (List.combine params gs)

let train_sample t ~seq ~target ~lr =
  let y, caches = forward t seq in
  let err = y -. target in
  let grads = backward t caches ~dy:err in
  adam_update t grads ~lr;
  err *. err

let train t samples ~epochs ~lr =
  let last = ref 0.0 in
  for _ = 1 to epochs do
    let total = ref 0.0 in
    Array.iter
      (fun (seq, target) -> total := !total +. train_sample t ~seq ~target ~lr)
      samples;
    last := !total /. float_of_int (max 1 (Array.length samples))
  done;
  !last

let mse t samples =
  if Array.length samples = 0 then 0.0
  else (
    let total = ref 0.0 in
    Array.iter
      (fun (seq, target) ->
        let e = predict t seq -. target in
        total := !total +. (e *. e))
      samples;
    !total /. float_of_int (Array.length samples))

module For_testing = struct
  let param_arrays = param_arrays

  let gradients t ~seq ~target =
    let y, caches = forward t seq in
    grad_arrays (backward t caches ~dy:(2.0 *. (y -. target)))
end
