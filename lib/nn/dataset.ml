type norm = { mu : float; sigma : float }

let fit_norm series =
  let n = Array.length series in
  if n = 0 then { mu = 0.0; sigma = 1.0 }
  else (
    let mu = Array.fold_left ( +. ) 0.0 series /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 series
      /. float_of_int n
    in
    { mu; sigma = Stdlib.max 1e-6 (sqrt var) })

let normalize norm x = (x -. norm.mu) /. norm.sigma
let denormalize norm x = (x *. norm.sigma) +. norm.mu

let windows series ~window =
  let n = Array.length series in
  if n <= window then [||]
  else
    Array.init (n - window) (fun start ->
        let seq = Array.init window (fun i -> [| series.(start + i) |]) in
        (seq, series.(start + window)))

let windows_normalized series ~window =
  let norm = fit_norm series in
  let normalized = Array.map (normalize norm) series in
  (norm, windows normalized ~window)

let last_window series ~window norm =
  let n = Array.length series in
  Array.init window (fun i ->
      let idx = n - window + i in
      [| (if idx >= 0 then normalize norm series.(idx) else normalize norm 0.0) |])
