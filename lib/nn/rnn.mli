(** Vanilla (Elman) RNN baseline for the forecaster comparison.

    The paper argues (§IV-C1) that "traditional RNNs struggle to
    effectively capture long-term dependencies … within sequences";
    this implementation exists so the claim can be measured — see the
    [abl_forecaster] benchmark, which compares LSTM, RNN and linear
    regression on the workloads' arrival-rate series. Same interface
    shape as {!Lstm}: scalar regression over a univariate window. *)

type t

val create : ?seed:int -> ?hidden:int -> input:int -> unit -> t
(** Default [hidden] 20, tanh recurrence, linear output head. *)

val hidden : t -> int

val predict : t -> float array array -> float

val train_sample : t -> seq:float array array -> target:float -> lr:float -> float
(** One BPTT step (full window); returns pre-update squared error. *)

val train : t -> (float array array * float) array -> epochs:int -> lr:float -> float

val mse : t -> (float array array * float) array -> float
