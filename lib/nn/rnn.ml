open Matrix
module Rng = Lion_kernel.Rng

type t = {
  wx : mat; (* H x input *)
  wh : mat; (* H x H *)
  b : float array; (* H *)
  wy : mat; (* 1 x H *)
  by : float array;
  hidden_size : int;
  m : float array array;
  v : float array array;
  mutable steps : int;
}

let params t = [ t.wx.data; t.wh.data; t.b; t.wy.data; t.by ]

let create ?(seed = 13) ?(hidden = 20) ~input () =
  let rng = Rng.create seed in
  let t0 =
    {
      wx = xavier rng hidden input;
      wh = xavier rng hidden hidden;
      b = Array.make hidden 0.0;
      wy = xavier rng 1 hidden;
      by = Array.make 1 0.0;
      hidden_size = hidden;
      m = [||];
      v = [||];
      steps = 0;
    }
  in
  let shapes = params t0 in
  {
    t0 with
    m = Array.of_list (List.map (fun a -> Array.make (Array.length a) 0.0) shapes);
    v = Array.of_list (List.map (fun a -> Array.make (Array.length a) 0.0) shapes);
  }

let hidden t = t.hidden_size

type cache = { x : float array; h : float array; h_prev : float array }

let forward t seq =
  let hdim = t.hidden_size in
  let steps = Array.length seq in
  assert (steps > 0);
  let caches = Array.make steps { x = [||]; h = [||]; h_prev = [||] } in
  let h = ref (Array.make hdim 0.0) in
  for ti = 0 to steps - 1 do
    let z = matvec t.wx seq.(ti) in
    let zh = matvec t.wh !h in
    let nh = Array.init hdim (fun k -> tanh (z.(k) +. zh.(k) +. t.b.(k))) in
    caches.(ti) <- { x = seq.(ti); h = nh; h_prev = !h };
    h := nh
  done;
  ((matvec t.wy !h).(0) +. t.by.(0), caches)

let predict t seq = fst (forward t seq)

let backward t caches ~dy =
  let hdim = t.hidden_size in
  let steps = Array.length caches in
  let dwx = zeros t.wx.rows t.wx.cols in
  let dwh = zeros t.wh.rows t.wh.cols in
  let db = Array.make hdim 0.0 in
  let dwy = zeros 1 hdim in
  let dby = [| dy |] in
  let dh = Array.make hdim 0.0 in
  outer_acc dwy [| dy |] caches.(steps - 1).h;
  for k = 0 to hdim - 1 do
    dh.(k) <- get t.wy 0 k *. dy
  done;
  let dh = ref dh in
  for ti = steps - 1 downto 0 do
    let c = caches.(ti) in
    let dz = Array.init hdim (fun k -> !dh.(k) *. dtanh_from_y c.h.(k)) in
    outer_acc dwx dz c.x;
    outer_acc dwh dz c.h_prev;
    axpy 1.0 dz db;
    dh := matvec_t t.wh dz
  done;
  [ dwx.data; dwh.data; db; dwy.data; dby ]

let adam_update t grads ~lr =
  t.steps <- t.steps + 1;
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  let step = float_of_int t.steps in
  let bc1 = 1.0 -. (beta1 ** step) and bc2 = 1.0 -. (beta2 ** step) in
  List.iteri
    (fun idx (p, gr) ->
      clip_in 5.0 gr;
      let m = t.m.(idx) and v = t.v.(idx) in
      for i = 0 to Array.length p - 1 do
        m.(i) <- (beta1 *. m.(i)) +. ((1.0 -. beta1) *. gr.(i));
        v.(i) <- (beta2 *. v.(i)) +. ((1.0 -. beta2) *. gr.(i) *. gr.(i));
        let mh = m.(i) /. bc1 and vh = v.(i) /. bc2 in
        p.(i) <- p.(i) -. (lr *. mh /. (sqrt vh +. eps))
      done)
    (List.combine (params t) grads)

let train_sample t ~seq ~target ~lr =
  let y, caches = forward t seq in
  let err = y -. target in
  adam_update t (backward t caches ~dy:err) ~lr;
  err *. err

let train t samples ~epochs ~lr =
  let last = ref 0.0 in
  for _ = 1 to epochs do
    let total = ref 0.0 in
    Array.iter (fun (seq, target) -> total := !total +. train_sample t ~seq ~target ~lr) samples;
    last := !total /. float_of_int (Stdlib.max 1 (Array.length samples))
  done;
  !last

let mse t samples =
  if Array.length samples = 0 then 0.0
  else (
    let total = ref 0.0 in
    Array.iter
      (fun (seq, target) ->
        let e = predict t seq -. target in
        total := !total +. (e *. e))
      samples;
    !total /. float_of_int (Array.length samples))
