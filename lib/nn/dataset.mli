(** Sliding-window dataset construction for series forecasting.

    Builds (window → next value) samples from an arrival-rate series,
    with z-score normalisation so the LSTM trains on well-scaled inputs
    regardless of the absolute transaction rate. *)

type norm = { mu : float; sigma : float }

val fit_norm : float array -> norm
(** Mean/stddev of a series; sigma is floored at a small epsilon. *)

val normalize : norm -> float -> float
val denormalize : norm -> float -> float

val windows : float array -> window:int -> (float array array * float) array
(** [windows series ~window] yields one sample per position: the
    [window] preceding values (each wrapped as a 1-feature vector) and
    the value that follows. Empty if the series is shorter than
    [window + 1]. *)

val windows_normalized :
  float array -> window:int -> norm * (float array array * float) array
(** Fit a norm on the series, then produce normalised windows. *)

val last_window : float array -> window:int -> norm -> float array array
(** The trailing [window] values, normalised — the input used to
    forecast the next period. Zero-padded on the left if short. *)
