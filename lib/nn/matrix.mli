(** Dense float kernels used by the LSTM: flat row-major matrices.

    These are deliberately simple loops — the model is tiny (2 layers ×
    20 hidden units, per the paper) so clarity beats blocking tricks. *)

type mat = { rows : int; cols : int; data : float array }

val zeros : int -> int -> mat
val of_fun : int -> int -> (int -> int -> float) -> mat
val copy_mat : mat -> mat
val get : mat -> int -> int -> float
val set : mat -> int -> int -> float -> unit

val xavier : Lion_kernel.Rng.t -> int -> int -> mat
(** Glorot-uniform initialisation. *)

val matvec : mat -> float array -> float array
(** [matvec a x] = A·x. Requires [Array.length x = a.cols]. *)

val matvec_t : mat -> float array -> float array
(** Aᵀ·x. Requires [Array.length x = a.rows]. *)

val outer_acc : mat -> float array -> float array -> unit
(** [outer_acc a u v] does A += u·vᵀ (gradient accumulation). *)

val axpy : float -> float array -> float array -> unit
(** y += alpha * x, in place on [y]. *)

val scale_in : float -> float array -> unit
val fill_zero : float array -> unit

val sigmoid : float -> float
val dsigmoid_from_y : float -> float
(** Derivative expressed from the activation value y = σ(x). *)

val dtanh_from_y : float -> float
(** 1 - y² where y = tanh(x). *)

val clip_in : float -> float array -> unit
(** Clamp each element to [-c, c] (gradient clipping). *)
