type mat = { rows : int; cols : int; data : float array }

let zeros rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_fun rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let copy_mat m = { m with data = Array.copy m.data }
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let xavier rng rows cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  of_fun rows cols (fun _ _ -> Lion_kernel.Rng.float rng (2.0 *. bound) -. bound)

let matvec a x =
  assert (Array.length x = a.cols);
  let y = Array.make a.rows 0.0 in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let matvec_t a x =
  assert (Array.length x = a.rows);
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  y

let outer_acc a u v =
  assert (Array.length u = a.rows && Array.length v = a.cols);
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let ui = u.(i) in
    if ui <> 0.0 then
      for j = 0 to a.cols - 1 do
        a.data.(base + j) <- a.data.(base + j) +. (ui *. v.(j))
      done
  done

let axpy alpha x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale_in alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) *. alpha
  done

let fill_zero x = Array.fill x 0 (Array.length x) 0.0
let sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let dsigmoid_from_y y = y *. (1.0 -. y)
let dtanh_from_y y = 1.0 -. (y *. y)

let clip_in c x =
  for i = 0 to Array.length x - 1 do
    if x.(i) > c then x.(i) <- c else if x.(i) < -.c then x.(i) <- -.c
  done
