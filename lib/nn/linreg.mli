(** Ordinary least squares over the window — the simplest forecasting
    baseline the paper dismisses (§IV-C1). Fits y = w·x + b on the
    window vectors by the normal equations with ridge damping. *)

type t

val create : window:int -> t

val fit : t -> (float array array * float) array -> unit
(** Fit on (window, next-value) samples; windows are the same
    1-feature-per-step sequences the neural models take. *)

val predict : t -> float array array -> float
val mse : t -> (float array array * float) array -> float
