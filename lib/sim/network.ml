module Timeseries = Lion_kernel.Timeseries

type t = {
  engine : Engine.t;
  latency : float;
  per_byte : float;
  mutable total_bytes : int;
  mutable messages : int;
  mutable drops : int;
  bytes_series : Timeseries.t;
  fault : Fault.t option;
  metrics : Metrics.t option;
}

let create ?(latency = 60.0) ?(per_byte = 0.0085) ?fault ?metrics engine =
  {
    engine;
    latency;
    per_byte;
    total_bytes = 0;
    messages = 0;
    drops = 0;
    bytes_series = Timeseries.create ~interval:(Engine.seconds 1.0);
    fault;
    metrics;
  }

let engine t = t.engine
let fault t = t.fault
let oneway_delay t ~bytes = t.latency +. (float_of_int bytes *. t.per_byte)
let roundtrip t ~bytes = 2.0 *. oneway_delay t ~bytes

(* Single accounting path: every non-local message — delivered or killed
   by the fault layer — charges its bytes here, so [bytes_series] stays
   consistent under drops. *)
let account t ~bytes =
  t.total_bytes <- t.total_bytes + bytes;
  t.messages <- t.messages + 1;
  Timeseries.add t.bytes_series ~time:(Engine.now t.engine) (float_of_int bytes)

let charge t ~bytes = account t ~bytes

let record_drop t =
  t.drops <- t.drops + 1;
  Option.iter Metrics.record_drop t.metrics

module Trace = Lion_trace.Trace

let send t ~src ~dst ~bytes ?(on_drop = fun () -> ()) ?ctx k =
  if src = dst then Engine.schedule t.engine ~delay:0.0 k
  else (
    account t ~bytes;
    (* Tracing wraps the continuations only for sampled transactions:
       the [None] path (tracing disabled or txn unsampled) allocates
       nothing and schedules no extra events. *)
    let k, on_drop =
      match ctx with
      | None -> (k, on_drop)
      | Some _ ->
          let mctx =
            Trace.child ~node:dst
              ~name:(Printf.sprintf "msg %d->%d" src dst)
              ~ts:(Engine.now t.engine) ctx
          in
          ( (fun () ->
              Trace.finish ~ts:(Engine.now t.engine) mctx;
              k ()),
            fun () ->
              let now = Engine.now t.engine in
              Trace.note ~ts:now "drop" mctx;
              Trace.finish ~ts:now mctx;
              on_drop () )
    in
    match t.fault with
    | None -> Engine.schedule t.engine ~delay:(oneway_delay t ~bytes) k
    | Some f -> (
        match Fault.link f ~now:(Engine.now t.engine) ~src ~dst with
        | Fault.Blocked | Fault.Dropped ->
            Fault.count_drop f;
            if not (Fault.up f src && Fault.up f dst) then Fault.count_dead_drop f;
            record_drop t;
            on_drop ()
        | Fault.Deliver extra ->
            Engine.schedule t.engine ~delay:(oneway_delay t ~bytes +. extra)
              (fun () ->
                (* In-flight delivery to a node that died after the
                   message left: lost on arrival. *)
                if Fault.up f dst then k ()
                else (
                  Fault.count_drop f;
                  Fault.count_dead_drop f;
                  record_drop t;
                  on_drop ()))))

let total_bytes t = t.total_bytes
let bytes_series t = t.bytes_series
let message_count t = t.messages
let drops t = t.drops
