module Timeseries = Lion_kernel.Timeseries

(* Pooled delivery record: one per in-flight message on the
   fault-checked path, recycled on delivery. Scheduling a message then
   costs one [Engine.Apply] cell instead of a fresh closure per send —
   the free list is intrusive ([next]) so recycling allocates nothing
   either. [nil_msg] is the shared free-list terminator. *)
type msg = {
  mutable dst : int;
  mutable k : unit -> unit;
  mutable on_drop : unit -> unit;
  mutable next : msg;
}

let nop () = ()
let rec nil_msg = { dst = -1; k = nop; on_drop = nop; next = nil_msg }

(* Region topology: a static node → region map plus the WAN link
   class. Links inside one region keep the LAN [latency]/[per_byte];
   links whose endpoints map to different regions pay the (much
   larger) WAN figures instead. *)
type topology = {
  regions : int;
  region_of : int array;
  wan_latency : float;
  wan_per_byte : float;
}

type t = {
  engine : Engine.t;
  latency : float;
  per_byte : float;
  topology : topology option;
  mutable total_bytes : int;
  mutable messages : int;
  mutable drops : int;
  bytes_series : Timeseries.t;
  fault : Fault.t option;
  metrics : Metrics.t option;
  mutable free_msgs : msg;
  mutable deliver : msg -> unit; (* tied to [t] once, in [create] *)
}

let alloc_msg t ~dst ~k ~on_drop =
  let m = t.free_msgs in
  if m == nil_msg then { dst; k; on_drop; next = nil_msg }
  else (
    t.free_msgs <- m.next;
    m.next <- nil_msg;
    m.dst <- dst;
    m.k <- k;
    m.on_drop <- on_drop;
    m)

let release_msg t m =
  m.k <- nop;
  m.on_drop <- nop;
  m.next <- t.free_msgs;
  t.free_msgs <- m

let record_drop t =
  t.drops <- t.drops + 1;
  Option.iter Metrics.record_drop t.metrics

(* In-flight delivery to a node that died after the message left: lost
   on arrival. The record is recycled before the continuation runs, so
   a continuation that sends again reuses it immediately. *)
let deliver_msg t m =
  let dst = m.dst and k = m.k and on_drop = m.on_drop in
  release_msg t m;
  match t.fault with
  | Some f when not (Fault.up f dst) ->
      Fault.count_drop f;
      Fault.count_dead_drop f;
      record_drop t;
      on_drop ()
  | _ -> k ()

let create ?(latency = 60.0) ?(per_byte = 0.0085) ?topology ?fault ?metrics
    engine =
  let t =
    {
      engine;
      latency;
      per_byte;
      topology;
      total_bytes = 0;
      messages = 0;
      drops = 0;
      bytes_series = Timeseries.create ~interval:(Engine.seconds 1.0);
      fault;
      metrics;
      free_msgs = nil_msg;
      deliver = ignore;
    }
  in
  t.deliver <- (fun m -> deliver_msg t m);
  t

let engine t = t.engine
let fault t = t.fault
let topology t = t.topology
let regions t = match t.topology with None -> 1 | Some g -> g.regions
let region_of t node = match t.topology with None -> 0 | Some g -> g.region_of.(node)

let cross_region t ~src ~dst =
  match t.topology with
  | None -> false
  | Some g -> g.region_of.(src) <> g.region_of.(dst)

let oneway_delay t ~bytes = t.latency +. (float_of_int bytes *. t.per_byte)

let wan_oneway_delay t ~bytes =
  match t.topology with
  | None -> oneway_delay t ~bytes
  | Some g -> g.wan_latency +. (float_of_int bytes *. g.wan_per_byte)

(* The per-link delay: LAN figures inside a region, WAN figures
   across. Region-free networks evaluate exactly the historical
   [oneway_delay] expression, keeping the default path byte-identical. *)
let link_delay t ~src ~dst ~bytes =
  match t.topology with
  | None -> oneway_delay t ~bytes
  | Some g ->
      if g.region_of.(src) <> g.region_of.(dst) then
        g.wan_latency +. (float_of_int bytes *. g.wan_per_byte)
      else oneway_delay t ~bytes

let roundtrip t ~bytes = 2.0 *. oneway_delay t ~bytes
let link_roundtrip t ~src ~dst ~bytes = 2.0 *. link_delay t ~src ~dst ~bytes

(* Single accounting path: every non-local message — delivered or killed
   by the fault layer — charges its bytes here, so [bytes_series] stays
   consistent under drops. *)
let account t ~bytes =
  t.total_bytes <- t.total_bytes + bytes;
  t.messages <- t.messages + 1;
  Timeseries.add t.bytes_series ~time:(Engine.now t.engine) (float_of_int bytes)

let charge t ~bytes = account t ~bytes

module Trace = Lion_trace.Trace

let send t ~src ~dst ~bytes ?(on_drop = nop) ?ctx k =
  if src = dst then Engine.schedule t.engine ~delay:0.0 k
  else (
    account t ~bytes;
    (* Link classification happens only under a topology: the
       region-free path skips the metrics call and evaluates the exact
       historical delay expression (bit-for-bit identical runs). *)
    let cross =
      match t.topology with
      | None -> false
      | Some g ->
          let cross = g.region_of.(src) <> g.region_of.(dst) in
          (match t.metrics with
          | Some m -> Metrics.record_link_msg m ~cross ~bytes
          | None -> ());
          cross
    in
    (* Tracing wraps the continuations only for sampled transactions:
       the [None] path (tracing disabled or txn unsampled) allocates
       nothing and schedules no extra events. Cross-region hops get the
       distinct "wan" span phase so critical-path reports and Perfetto
       exports show WAN time; intra-region hops inherit the parent
       phase as before. *)
    let k, on_drop =
      match ctx with
      | None -> (k, on_drop)
      | Some _ ->
          let mctx =
            Trace.child ~node:dst
              ?phase:(if cross then Some "wan" else None)
              ~name:(Printf.sprintf "msg %d->%d" src dst)
              ~ts:(Engine.now t.engine) ctx
          in
          ( (fun () ->
              Trace.finish ~ts:(Engine.now t.engine) mctx;
              k ()),
            fun () ->
              let now = Engine.now t.engine in
              Trace.note ~ts:now "drop" mctx;
              Trace.finish ~ts:now mctx;
              on_drop () )
    in
    match t.fault with
    | None -> Engine.schedule t.engine ~delay:(link_delay t ~src ~dst ~bytes) k
    | Some f -> (
        match Fault.link f ~now:(Engine.now t.engine) ~src ~dst with
        | Fault.Blocked | Fault.Dropped ->
            Fault.count_drop f;
            if not (Fault.up f src && Fault.up f dst) then Fault.count_dead_drop f;
            record_drop t;
            on_drop ()
        | Fault.Deliver extra ->
            Engine.schedule_apply t.engine
              ~delay:(link_delay t ~src ~dst ~bytes +. extra)
              t.deliver
              (alloc_msg t ~dst ~k ~on_drop)))

let total_bytes t = t.total_bytes
let bytes_series t = t.bytes_series
let message_count t = t.messages
let drops t = t.drops
