module Timeseries = Lion_kernel.Timeseries

type t = {
  engine : Engine.t;
  latency : float;
  per_byte : float;
  mutable total_bytes : int;
  mutable messages : int;
  bytes_series : Timeseries.t;
}

let create ?(latency = 60.0) ?(per_byte = 0.0085) engine =
  {
    engine;
    latency;
    per_byte;
    total_bytes = 0;
    messages = 0;
    bytes_series = Timeseries.create ~interval:(Engine.seconds 1.0);
  }

let engine t = t.engine
let oneway_delay t ~bytes = t.latency +. (float_of_int bytes *. t.per_byte)
let roundtrip t ~bytes = 2.0 *. oneway_delay t ~bytes

let charge t ~bytes =
  t.total_bytes <- t.total_bytes + bytes;
  t.messages <- t.messages + 1;
  Timeseries.add t.bytes_series ~time:(Engine.now t.engine) (float_of_int bytes)

let send t ~src ~dst ~bytes k =
  if src = dst then Engine.schedule t.engine ~delay:0.0 k
  else (
    t.total_bytes <- t.total_bytes + bytes;
    t.messages <- t.messages + 1;
    Timeseries.add t.bytes_series ~time:(Engine.now t.engine) (float_of_int bytes);
    Engine.schedule t.engine ~delay:(oneway_delay t ~bytes) k)

let total_bytes t = t.total_bytes
let bytes_series t = t.bytes_series
let message_count t = t.messages
