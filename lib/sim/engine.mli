(** Discrete-event simulation engine.

    Time is a float in simulated {e microseconds}. The engine holds a
    priority queue of events; callbacks scheduled at equal times fire in
    insertion order, so a run is fully deterministic. Callbacks may
    schedule further events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in microseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. max 0. delay]. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** [at t ~time f] runs [f] at absolute time [time] (clamped to now). *)

val run_until : t -> float -> unit
(** Process events until the queue is empty or the next event is past
    the deadline; leaves [now] at the deadline. *)

val run_all : t -> ?max_events:int -> unit -> unit
(** Drain the whole queue (guarded by [max_events], default 100M). *)

val pending : t -> int
(** Number of queued events. *)

val seconds : float -> float
(** Convert seconds to engine time units. [seconds 1.0 = 1e6]. *)

val ms : float -> float
(** Milliseconds to engine units. *)
