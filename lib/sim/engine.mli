(** Discrete-event simulation engine.

    Time is a float in simulated {e microseconds}. The engine holds a
    priority queue of events; callbacks scheduled at equal times fire in
    insertion order, so a run is fully deterministic. Callbacks may
    schedule further events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in microseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. max 0. delay]. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** [at t ~time f] runs [f] at absolute time [time] (clamped to now). *)

val schedule_apply : t -> delay:float -> ('a -> unit) -> 'a -> unit
(** [schedule_apply t ~delay f x] runs [f x] at [now t +. max 0. delay].
    Hot-path variant of [schedule]: the handler [f] is typically a
    pre-allocated closure and [x] a pooled record, so scheduling costs
    one small variant cell instead of a fresh closure per event. *)

val at_apply : t -> time:float -> ('a -> unit) -> 'a -> unit
(** [at_apply t ~time f x] runs [f x] at absolute [time] (clamped). *)

val run_until : t -> float -> unit
(** Process events until the queue is empty or the next event is past
    the deadline; leaves [now] at the deadline. *)

val run_all : t -> ?max_events:int -> unit -> unit
(** Drain the whole queue (guarded by [max_events], default 100M). If
    the budget is exhausted with events still pending — a runaway event
    loop — a warning is printed to stderr and [last_run_exhausted]
    reads [true] until the next [run_all]. *)

val last_run_exhausted : t -> bool
(** Whether the most recent [run_all] stopped on its [max_events]
    budget with events still pending, rather than draining cleanly. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events executed since [create] — the denominator for
    per-event perf accounting. *)

val clamped_schedules : t -> int
(** Number of schedules that asked for a time in the past (absolute
    [at] before [now], or a negative [delay]) and were clamped to the
    current clock. Each one is a latent scheduling bug upstream. *)

val seconds : float -> float
(** Convert seconds to engine time units. [seconds 1.0 = 1e6]. *)

val ms : float -> float
(** Milliseconds to engine units. *)
