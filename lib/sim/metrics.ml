module Stats = Lion_kernel.Stats
module Timeseries = Lion_kernel.Timeseries
module Rng = Lion_kernel.Rng

type phase = Execution | Prepare | Commit | Remaster | Scheduling | Replication

let phase_name = function
  | Execution -> "execution"
  | Prepare -> "prepare"
  | Commit -> "commit"
  | Remaster -> "remaster"
  | Scheduling -> "scheduling"
  | Replication -> "replication"

let all_phases = [ Execution; Prepare; Commit; Remaster; Scheduling; Replication ]

let phase_index = function
  | Execution -> 0
  | Prepare -> 1
  | Commit -> 2
  | Remaster -> 3
  | Scheduling -> 4
  | Replication -> 5

type t = {
  engine : Engine.t;
  mutable commits : int;
  mutable aborts : int;
  mutable single_node : int;
  mutable remastered : int;
  latency : Stats.Reservoir.t;
  phase_time : float array;
  mutable total_latency : float;
  series : Timeseries.t;
  good_series : Timeseries.t;
  mutable timeouts : int;
  mutable retries : int;
  mutable drops : int;
  mutable sheds : int;
  mutable breaker_rejects : int;
  mutable breaker_opens : int;
  mutable breaker_half_opens : int;
  mutable budget_denials : int;
  mutable deadline_giveups : int;
  mutable deadline_misses : int;
  mutable stale_acks : int;
  mutable replica_purges : int;
  mutable remaster_begins : int;
  mutable remasters_inflight : int;
  (* Region-link accounting, bumped by [Network.send] only when a
     region topology is installed: every message is either intra-region
     (LAN) or cross-region (WAN). Region-free runs leave all four at
     0. *)
  mutable wan_msgs : int;
  mutable wan_bytes : int;
  mutable lan_msgs : int;
  mutable lan_bytes : int;
  (* Code-path beacons: named control-flow waypoints (elections,
     purges, cancelled remasters, anti-entropy rounds …) recorded as
     bare counters. Pure bookkeeping — no engine events, no RNG — so
     lighting one up never perturbs a run; the fault-schedule fuzzer
     uses the set of lit beacons as its coverage signal
     (docs/FUZZING.md). *)
  beacons : (string, int) Hashtbl.t;
  avail_series : Timeseries.t;
}

let create ?(seed = 42) engine =
  {
    engine;
    commits = 0;
    aborts = 0;
    single_node = 0;
    remastered = 0;
    latency = Stats.Reservoir.create (Rng.create seed);
    phase_time = Array.make 6 0.0;
    total_latency = 0.0;
    series = Timeseries.create ~interval:(Engine.seconds 1.0);
    good_series = Timeseries.create ~interval:(Engine.seconds 1.0);
    timeouts = 0;
    retries = 0;
    drops = 0;
    sheds = 0;
    breaker_rejects = 0;
    breaker_opens = 0;
    breaker_half_opens = 0;
    budget_denials = 0;
    deadline_giveups = 0;
    deadline_misses = 0;
    stale_acks = 0;
    replica_purges = 0;
    remaster_begins = 0;
    remasters_inflight = 0;
    wan_msgs = 0;
    wan_bytes = 0;
    lan_msgs = 0;
    lan_bytes = 0;
    beacons = Hashtbl.create 32;
    avail_series = Timeseries.create ~interval:(Engine.seconds 1.0);
  }

(* Recursive rather than [List.iter f]: the commit path runs once per
   transaction, and the iterator closure capturing [t] was a per-commit
   allocation for nothing. *)
let rec add_phases t = function
  | [] -> ()
  | (p, d) :: rest ->
      t.phase_time.(phase_index p) <- t.phase_time.(phase_index p) +. d;
      add_phases t rest

let record_commit ?(late = false) t ~latency ~single_node ~remastered ~phases =
  t.commits <- t.commits + 1;
  if single_node then t.single_node <- t.single_node + 1;
  if remastered then t.remastered <- t.remastered + 1;
  Stats.Reservoir.add t.latency latency;
  t.total_latency <- t.total_latency +. latency;
  add_phases t phases;
  Timeseries.incr t.series ~time:(Engine.now t.engine);
  if not late then Timeseries.incr t.good_series ~time:(Engine.now t.engine)

let record_abort t = t.aborts <- t.aborts + 1
let record_timeout t = t.timeouts <- t.timeouts + 1
let record_retry t = t.retries <- t.retries + 1
let record_drop t = t.drops <- t.drops + 1
let record_shed t = t.sheds <- t.sheds + 1
let record_breaker_reject t = t.breaker_rejects <- t.breaker_rejects + 1
let record_breaker_open t = t.breaker_opens <- t.breaker_opens + 1

let record_breaker_half_open t =
  t.breaker_half_opens <- t.breaker_half_opens + 1

let record_budget_denial t = t.budget_denials <- t.budget_denials + 1
let record_deadline_giveup t = t.deadline_giveups <- t.deadline_giveups + 1
let record_deadline_miss t = t.deadline_misses <- t.deadline_misses + 1
let record_stale_ack t = t.stale_acks <- t.stale_acks + 1
let record_replica_purge t = t.replica_purges <- t.replica_purges + 1

(* The in-flight remaster gauge pairs a begin with exactly one end on
   every exit path (completion, stale refusal, cancellation); at
   quiescence it must read 0, which the liveness auditor asserts. *)
let record_remaster_begin t =
  t.remaster_begins <- t.remaster_begins + 1;
  t.remasters_inflight <- t.remasters_inflight + 1

let record_remaster_end t = t.remasters_inflight <- t.remasters_inflight - 1

let record_link_msg t ~cross ~bytes =
  if cross then (
    t.wan_msgs <- t.wan_msgs + 1;
    t.wan_bytes <- t.wan_bytes + bytes)
  else (
    t.lan_msgs <- t.lan_msgs + 1;
    t.lan_bytes <- t.lan_bytes + bytes)

let beacon t name =
  match Hashtbl.find_opt t.beacons name with
  | Some n -> Hashtbl.replace t.beacons name (n + 1)
  | None -> Hashtbl.replace t.beacons name 1

let beacons t =
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.beacons []
  |> List.sort compare
let timeouts t = t.timeouts
let retries t = t.retries
let drops t = t.drops
let sheds t = t.sheds
let breaker_rejects t = t.breaker_rejects
let breaker_opens t = t.breaker_opens
let breaker_half_opens t = t.breaker_half_opens
let budget_denials t = t.budget_denials
let deadline_giveups t = t.deadline_giveups
let deadline_misses t = t.deadline_misses
let stale_ack_rejections t = t.stale_acks
let replica_purges t = t.replica_purges
let remaster_begins t = t.remaster_begins
let remasters_inflight t = t.remasters_inflight
let wan_messages t = t.wan_msgs
let wan_bytes t = t.wan_bytes
let lan_messages t = t.lan_msgs
let lan_bytes t = t.lan_bytes

(* Past-dated schedules the engine clamped to [now]: each one is a
   scheduling bug somewhere upstream (a negative delay, an absolute
   time computed from a stale clock). Surfaced here so experiment
   summaries and tests can assert the count stays where they expect it
   instead of the clamp silently rewriting history. *)
let schedule_clamps t = Engine.clamped_schedules t.engine

let note_availability t ~frac =
  Timeseries.add t.avail_series ~time:(Engine.now t.engine) frac

let availability_series t = Timeseries.to_array t.avail_series
let commits t = t.commits
let aborts t = t.aborts
let single_node_commits t = t.single_node
let remastered_commits t = t.remastered

let throughput t ~duration =
  if duration <= 0.0 then 0.0 else float_of_int t.commits /. (duration /. 1e6)

let throughput_series t = Timeseries.to_array t.series
let goodput_series t = Timeseries.to_array t.good_series
(* An empty window — e.g. right after [reset_window], before any commit
   lands — must read as 0, never NaN or an out-of-bounds access,
   whatever the reservoir's internals do. *)
let latency_percentile t p =
  if Stats.Reservoir.count t.latency = 0 then 0.0
  else Stats.Reservoir.percentile t.latency p

let mean_latency t =
  if Stats.Reservoir.count t.latency = 0 then 0.0
  else Stats.Reservoir.mean t.latency

let phase_fraction t phase =
  let total = Array.fold_left ( +. ) 0.0 t.phase_time in
  if total <= 0.0 then 0.0 else t.phase_time.(phase_index phase) /. total

let reset_window t =
  t.commits <- 0;
  t.aborts <- 0;
  t.single_node <- 0;
  t.remastered <- 0;
  t.total_latency <- 0.0;
  t.timeouts <- 0;
  t.retries <- 0;
  t.drops <- 0;
  t.sheds <- 0;
  t.breaker_rejects <- 0;
  t.breaker_opens <- 0;
  t.breaker_half_opens <- 0;
  t.budget_denials <- 0;
  t.deadline_giveups <- 0;
  t.deadline_misses <- 0;
  t.stale_acks <- 0;
  t.replica_purges <- 0;
  t.remaster_begins <- 0;
  t.wan_msgs <- 0;
  t.wan_bytes <- 0;
  t.lan_msgs <- 0;
  t.lan_bytes <- 0;
  (* The in-flight gauge is live state, not a window counter: a
     remaster spanning the window boundary still ends exactly once. *)
  Hashtbl.reset t.beacons;
  Array.fill t.phase_time 0 6 0.0;
  Stats.Reservoir.reset t.latency
