(** Overload-control primitives: retry budgets and circuit breakers.

    Both are deterministic state machines over the simulated clock —
    no RNG, no engine events — so a disabled configuration schedules
    nothing and stays bit-for-bit identical to a build without them.
    [Lion_store.Cluster] wraps them around its RPC and log-ship paths
    (see docs/OVERLOAD.md). *)

module Token_bucket : sig
  (** A token bucket: [burst] tokens capacity, refilled at
      [rate_per_s] tokens per simulated second. Used as the global
      retry budget — each RPC retransmission must take a token, so a
      brownout cannot amplify into a metastable retry storm. *)

  type t

  val create : rate_per_s:float -> burst:float -> t
  (** Raises [Invalid_argument] when [rate_per_s <= 0]; [burst] is
      clamped to at least 1. The bucket starts full. *)

  val try_take : t -> now:float -> bool
  (** Refill up to [now], then take one token if available. *)

  val tokens : t -> now:float -> float
  (** Current token count after refilling up to [now]. *)

  val taken : t -> int
  val denied : t -> int
end

module Breaker : sig
  (** A per-destination circuit breaker: [threshold] consecutive
      failures open it; after [cooldown] µs it half-opens and admits
      exactly one probe. A probe success closes it, a probe failure
      re-opens it for another cooldown. *)

  type state = Closed | Open | Half_open

  type t

  val create : threshold:int -> cooldown:float -> t
  (** Raises [Invalid_argument] when [threshold <= 0]. *)

  val state : t -> now:float -> state

  val allow : t -> now:float -> bool
  (** May a request be sent now? [Closed]: yes. [Open]: no (counted in
      [rejects]) until the cooldown elapses, which half-opens it.
      [Half_open]: yes for the first caller (the probe), no for
      everyone else until the probe resolves. *)

  val record_success : t -> unit
  (** A request to this destination completed: close and reset. *)

  val record_failure : t -> now:float -> unit
  (** A request to this destination failed terminally (retries
      exhausted, budget denied). Trips the breaker after [threshold]
      consecutive failures, and immediately when a half-open probe
      fails. *)

  val opens : t -> int
  (** Times the breaker tripped open. *)

  val half_opens : t -> int
  (** Times an open breaker's cooldown elapsed and it moved to
      [Half_open] (admitting one probe). A breaker pinned open by a
      persistent fault shows a matching opens/half-opens climb: every
      probe fails and re-opens it. *)

  val rejects : t -> int
  (** Requests refused while open (incl. surplus half-open callers). *)
end
