(** A capacity-[c] FIFO service station (a node's worker pool).

    Two usage styles:
    - [submit]: occupy a unit for a fixed service duration (remote
      operation handling, short jobs);
    - [acquire]/[release]: hold a unit across an arbitrary span — a
      transaction coordinator keeps its worker busy through blocking
      network round trips, which is exactly what makes distributed
      transactions slow. Busy time accrues for the whole hold.

    Queueing at saturated servers is what makes bottleneck nodes
    (Star's super node, Calvin's lock manager) emerge in the simulation
    rather than being hard-coded.

    {b Overload controls} (all off by default — the default station is
    the unbounded FIFO it always was): a [queue_cap] bounds the normal
    wait queue, a {!shed_policy} decides who is turned away when it
    saturates, [High]-priority acquires (remaster / replication control
    traffic) jump the user queue and are never shed by policy, and
    [kill] fail-fasts everything parked behind a crashed node. See
    docs/OVERLOAD.md. *)

type t
type lease

type shed_policy =
  | Reject_newest
      (** a full queue turns the {e arriving} request away — the
          standing queue keeps its FIFO promise *)
  | Codel of { target : float; interval : float }
      (** CoDel-style target-delay drop: once the head's queue delay
          has stayed above [target] µs for a full [interval] µs, heads
          are shed at dequeue until the sojourn falls back under the
          target. Bounds queue {e delay} rather than queue length; the
          [queue_cap] still applies as an overflow backstop. *)

type prio =
  | Normal  (** user transactions *)
  | High
      (** control traffic (remaster, replication repair): granted
          before any [Normal] waiter, never shed by policy or cap *)

val create :
  ?queue_cap:int ->
  ?policy:shed_policy ->
  ?on_shed:(unit -> unit) ->
  Engine.t ->
  capacity:int ->
  t
(** [queue_cap] 0 (default) = unbounded; [policy] defaults to
    [Reject_newest] (irrelevant while unbounded); [on_shed] is invoked
    once per shed request in addition to the request's own [on_shed]
    callback — the cluster points it at its metrics recorder. *)

val capacity : t -> int

val acquire : t -> ?prio:prio -> ?on_shed:(unit -> unit) -> (lease -> unit) -> unit
(** Request a unit; the callback fires (FIFO within its priority class)
    once one is free and holds it until [release]. When admission
    control sheds the request — full bounded queue, CoDel delay bound,
    or a dead station — [on_shed] fires instead (default: the request
    is silently dropped). *)

val release : t -> lease -> unit
(** Free the unit. Raises [Invalid_argument] on double release. *)

val submit : t -> ?prio:prio -> ?on_shed:(unit -> unit) -> work:float -> (unit -> unit) -> unit
(** [acquire], hold for [work] µs, [release], then the callback. *)

val kill : t -> unit
(** Crash the station: every waiter (both priority classes) is shed
    immediately — queued work fails fast instead of executing on a dead
    node — and subsequent acquires shed on arrival until [revive].
    In-flight leases still release (their completions were already
    scheduled) but grant nothing. *)

val revive : t -> unit

val alive : t -> bool

val busy : t -> int
(** Units currently held. *)

val queue_length : t -> int
(** Acquire requests waiting for a free unit (both priority classes). *)

val busy_time : t -> float
(** Held µs accumulated since creation (or last reset); includes time
    leases spend blocked on the network. A lease straddling
    [reset_counters] charges only its post-reset span. *)

val completed : t -> int
(** Leases released since creation (or last reset). *)

val sheds : t -> int
(** Requests turned away by admission control or node death since
    creation (never reset — overload accounting spans the whole run). *)

val queue_wait : t -> float
(** Total µs granted requests spent waiting in the queue (never
    reset). *)

val max_queue : t -> int
(** High-water mark of the wait queue length (never reset). *)

val reset_counters : t -> unit
(** Zero [busy_time]/[completed] and restart the utilization window —
    in-flight leases are charged to the new window only from this
    instant, so [busy_time] can never exceed wall-span × capacity. *)

val utilization : t -> since:float -> now:float -> float
(** [busy_time / (capacity × window)], clamped to [0, 1]. *)
