(** A capacity-[c] FIFO service station (a node's worker pool).

    Two usage styles:
    - [submit]: occupy a unit for a fixed service duration (remote
      operation handling, short jobs);
    - [acquire]/[release]: hold a unit across an arbitrary span — a
      transaction coordinator keeps its worker busy through blocking
      network round trips, which is exactly what makes distributed
      transactions slow. Busy time accrues for the whole hold.

    Queueing at saturated servers is what makes bottleneck nodes
    (Star's super node, Calvin's lock manager) emerge in the simulation
    rather than being hard-coded. *)

type t
type lease

val create : Engine.t -> capacity:int -> t
val capacity : t -> int

val acquire : t -> (lease -> unit) -> unit
(** Request a unit; the callback fires (FIFO) once one is free and
    holds it until [release]. *)

val release : t -> lease -> unit
(** Free the unit. Raises [Invalid_argument] on double release. *)

val submit : t -> work:float -> (unit -> unit) -> unit
(** [acquire], hold for [work] µs, [release], then the callback. *)

val busy : t -> int
(** Units currently held. *)

val queue_length : t -> int
(** Acquire requests waiting for a free unit. *)

val busy_time : t -> float
(** Total held µs accumulated since creation (or last reset); includes
    time leases spend blocked on the network. *)

val completed : t -> int
(** Leases released since creation (or last reset). *)

val reset_counters : t -> unit

val utilization : t -> since:float -> now:float -> float
(** [busy_time / (capacity × window)], clamped to [0, 1]. *)
