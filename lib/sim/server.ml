type lease = { acquired_at : float; mutable released : bool }

type t = {
  engine : Engine.t;
  cap : int;
  mutable busy : int;
  waiting : (lease -> unit) Queue.t;
  mutable busy_time : float;
  mutable completed : int;
}

let create engine ~capacity =
  assert (capacity > 0);
  { engine; cap = capacity; busy = 0; waiting = Queue.create (); busy_time = 0.0; completed = 0 }

let capacity t = t.cap

let grant t k =
  t.busy <- t.busy + 1;
  let lease = { acquired_at = Engine.now t.engine; released = false } in
  k lease

let acquire t k =
  if t.busy < t.cap then grant t k else Queue.push k t.waiting

let release t lease =
  if lease.released then invalid_arg "Server.release: lease already released";
  lease.released <- true;
  t.busy <- t.busy - 1;
  t.busy_time <- t.busy_time +. (Engine.now t.engine -. lease.acquired_at);
  t.completed <- t.completed + 1;
  if not (Queue.is_empty t.waiting) then grant t (Queue.pop t.waiting)

let submit t ~work k =
  let work = if work < 0.0 then 0.0 else work in
  acquire t (fun lease ->
      Engine.schedule t.engine ~delay:work (fun () ->
          release t lease;
          k ()))

let busy t = t.busy
let queue_length t = Queue.length t.waiting
let busy_time t = t.busy_time
let completed t = t.completed

let reset_counters t =
  t.busy_time <- 0.0;
  t.completed <- 0

let utilization t ~since ~now =
  let span = (now -. since) *. float_of_int t.cap in
  if span <= 0.0 then 0.0 else Stdlib.min 1.0 (t.busy_time /. span)
