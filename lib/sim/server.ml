type lease = { acquired_at : float; mutable released : bool }

(* Pooled completion record for [submit]: the work-done event is
   dispatched through [Engine.schedule_apply] with one of these instead
   of a closure capturing the lease — recycled on completion, intrusive
   free list, no allocation per completion. *)
type job = { mutable job_lease : lease; mutable job_k : unit -> unit; mutable job_next : job }

let nop () = ()
let nil_lease = { acquired_at = 0.0; released = true }
let rec nil_job = { job_lease = nil_lease; job_k = nop; job_next = nil_job }

type shed_policy =
  | Reject_newest
  | Codel of { target : float; interval : float }

type prio = Normal | High

type waiter = {
  k : lease -> unit;
  on_shed : (unit -> unit) option;
  enq_at : float;
}

type t = {
  engine : Engine.t;
  cap : int;
  queue_cap : int; (* 0 = unbounded *)
  policy : shed_policy;
  notify_shed : unit -> unit;
  mutable busy : int;
  waiting : waiter Queue.t;
  waiting_hi : waiter Queue.t; (* control traffic: never shed by policy *)
  mutable busy_time : float;
  mutable completed : int;
  mutable window_start : float;
  mutable alive : bool;
  mutable sheds : int;
  mutable queue_wait : float;
  mutable max_queue : int;
  (* CoDel bookkeeping: when the head's sojourn first exceeded the
     target (None while at/under target or the queue is empty). *)
  mutable above_since : float option;
  mutable free_jobs : job;
  mutable finish : job -> unit; (* tied to [t] once, in [create] *)
}

let capacity t = t.cap
let alive t = t.alive

let shed t w =
  t.sheds <- t.sheds + 1;
  t.notify_shed ();
  match w.on_shed with None -> () | Some f -> f ()

let grant t w =
  t.busy <- t.busy + 1;
  let now = Engine.now t.engine in
  t.queue_wait <- t.queue_wait +. (now -. w.enq_at);
  let lease = { acquired_at = now; released = false } in
  w.k lease

(* Next waiter to grant: control traffic first, then the normal queue
   filtered through the shed policy. The CoDel-style rule sheds the
   head once the queue has been continuously above the target sojourn
   for a full interval — a transient spike drains normally, sustained
   standing queues get cut. *)
let rec next_waiter t =
  match Queue.take_opt t.waiting_hi with
  | Some w -> Some w
  | None -> (
      match Queue.peek_opt t.waiting with
      | None ->
          t.above_since <- None;
          None
      | Some w -> (
          let now = Engine.now t.engine in
          match t.policy with
          | Codel { target; interval } when now -. w.enq_at > target -> (
              match t.above_since with
              | None ->
                  t.above_since <- Some now;
                  Queue.take_opt t.waiting
              | Some since when now -. since >= interval ->
                  ignore (Queue.pop t.waiting);
                  shed t w;
                  next_waiter t
              | Some _ -> Queue.take_opt t.waiting)
          | _ ->
              t.above_since <- None;
              Queue.take_opt t.waiting))

let acquire t ?(prio = Normal) ?on_shed k =
  let w = { k; on_shed; enq_at = Engine.now t.engine } in
  if not t.alive then shed t w
  else if t.busy < t.cap then grant t w
  else
    match prio with
    | High ->
        (* Control traffic (remaster, replication repair) outranks user
           transactions and is never turned away by the queue bound. *)
        Queue.push w t.waiting_hi
    | Normal ->
        if t.queue_cap > 0 && Queue.length t.waiting >= t.queue_cap then
          shed t w
        else (
          Queue.push w t.waiting;
          let len = Queue.length t.waiting + Queue.length t.waiting_hi in
          if len > t.max_queue then t.max_queue <- len)

let release t lease =
  if lease.released then invalid_arg "Server.release: lease already released";
  lease.released <- true;
  t.busy <- t.busy - 1;
  t.busy_time <-
    t.busy_time
    +. (Engine.now t.engine -. Stdlib.max lease.acquired_at t.window_start);
  t.completed <- t.completed + 1;
  (* A dead node grants nothing: queued work was drained at [kill],
     and anything that raced in since is shed on arrival. *)
  if t.alive then match next_waiter t with None -> () | Some w -> grant t w

let finish_job t j =
  let lease = j.job_lease and k = j.job_k in
  j.job_lease <- nil_lease;
  j.job_k <- nop;
  j.job_next <- t.free_jobs;
  t.free_jobs <- j;
  release t lease;
  k ()

let alloc_job t ~lease ~k =
  let j = t.free_jobs in
  if j == nil_job then { job_lease = lease; job_k = k; job_next = nil_job }
  else (
    t.free_jobs <- j.job_next;
    j.job_next <- nil_job;
    j.job_lease <- lease;
    j.job_k <- k;
    j)

let create ?(queue_cap = 0) ?(policy = Reject_newest)
    ?(on_shed = fun () -> ()) engine ~capacity =
  assert (capacity > 0);
  let t =
    {
      engine;
      cap = capacity;
      queue_cap;
      policy;
      notify_shed = on_shed;
      busy = 0;
      waiting = Queue.create ();
      waiting_hi = Queue.create ();
      busy_time = 0.0;
      completed = 0;
      window_start = Engine.now engine;
      alive = true;
      sheds = 0;
      queue_wait = 0.0;
      max_queue = 0;
      above_since = None;
      free_jobs = nil_job;
      finish = ignore;
    }
  in
  t.finish <- (fun j -> finish_job t j);
  t

let submit t ?prio ?on_shed ~work k =
  let work = if work < 0.0 then 0.0 else work in
  acquire t ?prio ?on_shed (fun lease ->
      Engine.schedule_apply t.engine ~delay:work t.finish (alloc_job t ~lease ~k))

let kill t =
  if t.alive then (
    t.alive <- false;
    (* Fail-fast: work parked behind a crashed node must not silently
       wait for (or worse, execute after) a grant that implies the node
       is serving. *)
    let drain q = Queue.iter (fun w -> shed t w) q in
    drain t.waiting_hi;
    drain t.waiting;
    Queue.clear t.waiting_hi;
    Queue.clear t.waiting;
    t.above_since <- None)

let revive t = t.alive <- true

let busy t = t.busy
let queue_length t = Queue.length t.waiting + Queue.length t.waiting_hi
let busy_time t = t.busy_time
let completed t = t.completed
let sheds t = t.sheds
let queue_wait t = t.queue_wait
let max_queue t = t.max_queue

let reset_counters t =
  t.busy_time <- 0.0;
  t.completed <- 0;
  (* In-flight leases acquired before this reset charge only their
     post-reset span to the new window (see [release]); without the
     clamp a long hold straddling the reset would inflate the next
     window's utilization past 1. *)
  t.window_start <- Engine.now t.engine

let utilization t ~since ~now =
  let span = (now -. since) *. float_of_int t.cap in
  if span <= 0.0 then 0.0 else Stdlib.min 1.0 (t.busy_time /. span)
