module Pqueue = Lion_kernel.Pqueue

(* An event is usually a thunk, but the hot paths (network delivery,
   server completions) dispatch through [Apply]: a pre-allocated
   handler applied to a pooled record, so scheduling a message costs
   one 3-word variant cell instead of a fresh closure. *)
type ev = Thunk of (unit -> unit) | Apply : ('a -> unit) * 'a -> ev

(* Same bijection as [Pqueue.key_of_time]/[time_of_key], duplicated
   here so classic-mode ocamlopt inlines it and keeps the float and
   Int64 intermediates unboxed on the per-event hot path — a
   cross-module call is never inlined without flambda, and would box
   the float argument plus the Int64 temporaries on every schedule.
   The golden fig6 test pins the two definitions together. *)
let[@inline] key_of_time (t : float) : int =
  Int64.to_int (Int64.sub (Int64.bits_of_float (t +. 0.0)) 0x4000000000000000L)

let[@inline] time_of_key (k : int) : float =
  Int64.float_of_bits (Int64.add (Int64.of_int k) 0x4000000000000000L)

(* The clock is stored in key space (an immediate int), not as a float
   field: an int field costs nothing to update per event, while a float
   field in this mixed record would be a pointer to a box reallocated
   on every tick. [now] converts on demand. *)
type t = {
  mutable clock_key : int;
  events : ev Pqueue.t;
  mutable processed : int; (* events executed since [create] *)
  mutable clamped : int; (* past-dated schedules clamped to [now] *)
  mutable exhausted : bool; (* last [run_all] hit its event budget *)
}

let create () =
  {
    clock_key = key_of_time 0.0;
    events = Pqueue.create ();
    processed = 0;
    clamped = 0;
    exhausted = false;
  }

let now t = time_of_key t.clock_key

(* Scheduling in the past is always a bug somewhere upstream; the clamp
   keeps time monotone (as it always has) but is counted now, so
   [Metrics] can surface it instead of silently absorbing it. Because
   [key_of_time] is monotone and injective, clamping in key space is
   exactly the float clamp. *)
let[@inline] push_key_at t key e =
  let key =
    if key < t.clock_key then (
      t.clamped <- t.clamped + 1;
      t.clock_key)
    else key
  in
  Pqueue.push_key t.events key e

let at t ~time f = push_key_at t (key_of_time time) (Thunk f)

let schedule t ~delay f =
  let delay =
    if delay < 0.0 then (
      t.clamped <- t.clamped + 1;
      0.0)
    else delay
  in
  push_key_at t (key_of_time (time_of_key t.clock_key +. delay)) (Thunk f)

let at_apply t ~time f x = push_key_at t (key_of_time time) (Apply (f, x))

let schedule_apply t ~delay f x =
  let delay =
    if delay < 0.0 then (
      t.clamped <- t.clamped + 1;
      0.0)
    else delay
  in
  push_key_at t (key_of_time (time_of_key t.clock_key +. delay)) (Apply (f, x))

let[@inline] exec t e =
  t.processed <- t.processed + 1;
  match e with Thunk f -> f () | Apply (f, x) -> f x

let run_until t deadline =
  (* A negative deadline can neither run events (times are >= 0) nor
     advance the clock, and its key-space image would be garbage — so
     it is a no-op, as it always was. *)
  if deadline >= 0.0 then (
    let dk = key_of_time deadline in
    let q = t.events in
    let continue = ref true in
    while !continue do
      if Pqueue.is_empty q then continue := false
      else (
        let k = Pqueue.min_key q in
        if k <= dk then (
          t.clock_key <- k;
          exec t (Pqueue.pop_min q))
        else continue := false)
    done;
    if dk > t.clock_key then t.clock_key <- dk)

let default_max_events = 100_000_000

(* Draining to quiescence with a budget: exhausting the budget with
   events still pending is a runaway event loop, not a clean finish —
   flag it (and say so once on stderr) instead of returning silently. *)
let run_all t ?(max_events = default_max_events) () =
  t.exhausted <- false;
  let q = t.events in
  let budget = ref max_events in
  while !budget > 0 && not (Pqueue.is_empty q) do
    t.clock_key <- Pqueue.min_key q;
    exec t (Pqueue.pop_min q);
    decr budget
  done;
  if not (Pqueue.is_empty q) then (
    t.exhausted <- true;
    Printf.eprintf
      "[lion.engine] run_all: max_events=%d exhausted with %d events still \
       pending at t=%.0fus — runaway event loop?\n\
       %!"
      max_events (Pqueue.length q)
      (time_of_key t.clock_key))

let pending t = Pqueue.length t.events
let events_processed t = t.processed
let clamped_schedules t = t.clamped
let last_run_exhausted t = t.exhausted
let seconds s = s *. 1e6
let ms x = x *. 1e3
