module Rng = Lion_kernel.Rng

type spec =
  | Crash of { node : int; at : float; recover_at : float option }
  | Partition of { groups : int list list; from_ : float; until : float }
  | Drop of {
      src : int option;
      dst : int option;
      prob : float;
      from_ : float;
      until : float;
    }
  | Jitter of { extra : float; from_ : float; until : float }
  | Straggler of { node : int; factor : float; from_ : float; until : float }
  | Delay of {
      src : int option;
      dst : int option;
      extra : float;
      from_ : float;
      until : float;
    }

type plan = spec list

let none : plan = []
let crash ~node ~at ?recover_at () = Crash { node; at; recover_at }
let partition ~groups ~from_ ~until = Partition { groups; from_; until }
let drop ?src ?dst ~prob ~from_ ~until () = Drop { src; dst; prob; from_; until }
let jitter ~extra ~from_ ~until = Jitter { extra; from_; until }
let delay ?src ?dst ~extra ~from_ ~until () = Delay { src; dst; extra; from_; until }
let straggler ~node ~factor ~from_ ~until = Straggler { node; factor; from_; until }

(* Named scenarios: each is a plan, and plans compose with [@]. *)
let crash_recover ~node ~at ~downtime =
  [ crash ~node ~at ~recover_at:(at +. downtime) () ]

let split_brain ~groups ~at ~duration =
  [ partition ~groups ~from_:at ~until:(at +. duration) ]

let lossy ?src ?dst ~prob ~from_ ~until () = [ drop ?src ?dst ~prob ~from_ ~until () ]
let slow_node ~node ~factor ~from_ ~until = [ straggler ~node ~factor ~from_ ~until ]

type t = {
  rng : Rng.t;
  plan : plan;
  down : bool array;
  mutable drops : int;
  mutable dead_drops : int;
}

let create ?(seed = 17) ~nodes plan =
  {
    (* Offset the seed so the fault stream never aliases the cluster's
       other per-seed generators. *)
    rng = Rng.create ((seed * 1_000_003) + 7);
    plan;
    down = Array.make (Stdlib.max 1 nodes) false;
    drops = 0;
    dead_drops = 0;
  }

let plan t = t.plan
let up t node = not t.down.(node)
let mark_down t node = t.down.(node) <- true
let mark_up t node = t.down.(node) <- false

let active ~now ~from_ ~until = now >= from_ && now < until

type verdict = Deliver of float | Blocked | Dropped

let group_of groups node =
  let rec go i = function
    | [] -> -1
    | g :: rest -> if List.mem node g then i else go (i + 1) rest
  in
  go 0 groups

(* The RNG is consulted only when an active probabilistic spec matches
   this message, so an empty (or inactive) plan perturbs nothing — the
   no-fault event schedule stays bit-for-bit identical. *)
let link t ~now ~src ~dst =
  if not (up t src && up t dst) then Dropped
  else (
    let rec go extra = function
      | [] -> Deliver extra
      | spec :: rest -> (
          match spec with
          | Partition { groups; from_; until } when active ~now ~from_ ~until ->
              let gs = group_of groups src and gd = group_of groups dst in
              if gs >= 0 && gd >= 0 && gs <> gd then Blocked else go extra rest
          | Drop { src = s; dst = d; prob; from_; until }
            when active ~now ~from_ ~until
                 && (match s with None -> true | Some n -> n = src)
                 && (match d with None -> true | Some n -> n = dst) ->
              if prob > 0.0 && Rng.bernoulli t.rng prob then Dropped
              else go extra rest
          | Jitter { extra = e; from_; until }
            when active ~now ~from_ ~until && e > 0.0 ->
              go (extra +. Rng.float t.rng e) rest
          (* Unlike [Jitter], the added latency is deterministic: no RNG
             draw, so a plan using only [Delay] replays bit-for-bit. A
             message sent inside the window is slowed by the full
             [extra] — long enough, and it is still in flight when its
             destination crashes and rejoins. *)
          | Delay { src = s; dst = d; extra = e; from_; until }
            when active ~now ~from_ ~until && e > 0.0
                 && (match s with None -> true | Some n -> n = src)
                 && (match d with None -> true | Some n -> n = dst) ->
              go (extra +. e) rest
          | _ -> go extra rest)
    in
    go 0.0 t.plan)

let slow_factor t ~now node =
  List.fold_left
    (fun acc spec ->
      match spec with
      | Straggler { node = n; factor; from_; until }
        when n = node && active ~now ~from_ ~until ->
          acc *. factor
      | _ -> acc)
    1.0 t.plan

let count_drop t = t.drops <- t.drops + 1
let count_dead_drop t = t.dead_drops <- t.dead_drops + 1
let drops t = t.drops
let dead_drops t = t.dead_drops

let crash_events plan =
  let evs =
    List.concat_map
      (function
        | Crash { node; at; recover_at } ->
            (at, `Crash node)
            ::
            (match recover_at with
            | Some r -> [ (r, `Recover node) ]
            | None -> [])
        | _ -> [])
      plan
  in
  List.stable_sort (fun (a, _) (b, _) -> compare a b) evs
