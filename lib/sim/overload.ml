(* Overload-control primitives: a deterministic token-bucket rate
   limiter (retry budgets) and a per-destination circuit breaker.
   Both are pure state machines driven by the simulated clock — no
   RNG, no engine events — so wiring them into a run adds nothing to
   the event schedule and disabled configurations stay bit-for-bit
   identical to builds that never heard of them. *)

module Token_bucket = struct
  type t = {
    rate : float;  (* tokens per microsecond *)
    burst : float;
    mutable tokens : float;
    mutable last_refill : float;
    mutable taken : int;
    mutable denied : int;
  }

  let create ~rate_per_s ~burst =
    if rate_per_s <= 0.0 then invalid_arg "Token_bucket.create: rate must be > 0";
    let burst = Stdlib.max 1.0 burst in
    {
      rate = rate_per_s /. 1e6;
      burst;
      tokens = burst;
      last_refill = 0.0;
      taken = 0;
      denied = 0;
    }

  let refill t ~now =
    if now > t.last_refill then (
      t.tokens <- Stdlib.min t.burst (t.tokens +. ((now -. t.last_refill) *. t.rate));
      t.last_refill <- now)

  let tokens t ~now =
    refill t ~now;
    t.tokens

  let try_take t ~now =
    refill t ~now;
    if t.tokens >= 1.0 then (
      t.tokens <- t.tokens -. 1.0;
      t.taken <- t.taken + 1;
      true)
    else (
      t.denied <- t.denied + 1;
      false)

  let taken t = t.taken
  let denied t = t.denied
end

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    threshold : int;
    cooldown : float;
    mutable failures : int;  (* consecutive failures while Closed *)
    mutable st : state;
    mutable opened_at : float;
    mutable probe_inflight : bool;
    mutable opens : int;
    mutable half_opens : int;
    mutable rejects : int;
  }

  let create ~threshold ~cooldown =
    if threshold <= 0 then invalid_arg "Breaker.create: threshold must be > 0";
    {
      threshold;
      cooldown;
      failures = 0;
      st = Closed;
      opened_at = neg_infinity;
      probe_inflight = false;
      opens = 0;
      half_opens = 0;
      rejects = 0;
    }

  (* Promote Open -> Half_open once the cooldown has elapsed; callers
     observe the post-promotion state. *)
  let tick t ~now =
    if t.st = Open && now -. t.opened_at >= t.cooldown then (
      t.st <- Half_open;
      t.half_opens <- t.half_opens + 1;
      t.probe_inflight <- false)

  let state t ~now =
    tick t ~now;
    t.st

  let allow t ~now =
    tick t ~now;
    match t.st with
    | Closed -> true
    | Open ->
        t.rejects <- t.rejects + 1;
        false
    | Half_open ->
        if t.probe_inflight then (
          t.rejects <- t.rejects + 1;
          false)
        else (
          t.probe_inflight <- true;
          true)

  let record_success t =
    t.st <- Closed;
    t.failures <- 0;
    t.probe_inflight <- false

  let trip t ~now =
    t.st <- Open;
    t.opened_at <- now;
    t.probe_inflight <- false;
    t.opens <- t.opens + 1

  let record_failure t ~now =
    tick t ~now;
    match t.st with
    | Half_open -> trip t ~now (* the probe failed: back to Open *)
    | Open -> () (* a straggling in-flight failure; already open *)
    | Closed ->
        t.failures <- t.failures + 1;
        if t.failures >= t.threshold then trip t ~now

  let opens t = t.opens
  let half_opens t = t.half_opens
  let rejects t = t.rejects
end
