(** Experiment metrics: commits, aborts, latency, phase breakdown.

    One recorder per experiment run. Commit events also record whether
    the transaction ran as a single-node transaction, whether it used
    remastering, and how its latency divides into phases — everything
    Figs. 8, 10, 12 and 14 need. *)

type phase =
  | Execution  (** read/write processing, incl. remote reads *)
  | Prepare  (** 2PC prepare round *)
  | Commit  (** commit round / group-commit wait *)
  | Remaster  (** waiting on leader transfers *)
  | Scheduling  (** deterministic lock-manager / sequencer wait *)
  | Replication  (** replica synchronisation *)

val phase_name : phase -> string
val all_phases : phase list

type t

val create : ?seed:int -> Engine.t -> t

val record_commit :
  t ->
  latency:float ->
  single_node:bool ->
  remastered:bool ->
  phases:(phase * float) list ->
  unit
(** Record a committed transaction. [latency] in µs from first submit
    (including retries) to commit. *)

val record_abort : t -> unit
(** One abort-and-retry occurrence (the eventual commit is still
    recorded via [record_commit]). *)

val record_timeout : t -> unit
(** An RPC (or partition wait) gave up after exhausting its retries. *)

val record_retry : t -> unit
(** An RPC attempt timed out and was retried with backoff. *)

val record_drop : t -> unit
(** The fault layer killed a message (drop spec, partition, or dead
    endpoint). *)

val timeouts : t -> int
val retries : t -> int
val drops : t -> int

val note_availability : t -> frac:float -> unit
(** Record a point-in-time availability sample (0..1) into the
    per-second series — the runner samples once per simulated second. *)

val availability_series : t -> float array
(** Availability samples bucketed per simulated second. *)

val commits : t -> int
val aborts : t -> int
val single_node_commits : t -> int
val remastered_commits : t -> int

val throughput : t -> duration:float -> float
(** Committed txns per simulated second over [duration] µs. *)

val throughput_series : t -> float array
(** Commits bucketed per simulated second. *)

val latency_percentile : t -> float -> float
val mean_latency : t -> float

val phase_fraction : t -> phase -> float
(** Fraction of total committed-transaction time spent in a phase. *)

val reset_window : t -> unit
(** Clear counters and latency (not the per-second series) so a run can
    exclude its warm-up from reported numbers. *)
