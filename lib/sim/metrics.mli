(** Experiment metrics: commits, aborts, latency, phase breakdown.

    One recorder per experiment run. Commit events also record whether
    the transaction ran as a single-node transaction, whether it used
    remastering, and how its latency divides into phases — everything
    Figs. 8, 10, 12 and 14 need. *)

type phase =
  | Execution  (** read/write processing, incl. remote reads *)
  | Prepare  (** 2PC prepare round *)
  | Commit  (** commit round / group-commit wait *)
  | Remaster  (** waiting on leader transfers *)
  | Scheduling  (** deterministic lock-manager / sequencer wait *)
  | Replication  (** replica synchronisation *)

val phase_name : phase -> string
val all_phases : phase list

type t

val create : ?seed:int -> Engine.t -> t

val record_commit :
  ?late:bool ->
  t ->
  latency:float ->
  single_node:bool ->
  remastered:bool ->
  phases:(phase * float) list ->
  unit
(** Record a committed transaction. [latency] in µs from first submit
    (including retries) to commit. [late] (default false) marks a
    commit that landed past its client deadline: it still counts in
    throughput and the latency distribution but is excluded from the
    goodput series. *)

val record_abort : t -> unit
(** One abort-and-retry occurrence (the eventual commit is still
    recorded via [record_commit]). *)

val record_timeout : t -> unit
(** An RPC (or partition wait) gave up after exhausting its retries. *)

val record_retry : t -> unit
(** An RPC attempt timed out and was retried with backoff. *)

val record_drop : t -> unit
(** The fault layer killed a message (drop spec, partition, or dead
    endpoint). *)

val record_shed : t -> unit
(** Admission control turned a request away (bounded queue overflow,
    CoDel delay bound, or a dead node's drained queue). *)

val record_breaker_reject : t -> unit
(** A per-destination circuit breaker refused an RPC while open. *)

val record_breaker_open : t -> unit
(** A circuit breaker tripped open. *)

val record_breaker_half_open : t -> unit
(** An open breaker's cooldown elapsed and it moved to [Half_open],
    admitting one probe. A breaker pinned open by a persistent fault
    shows opens and half-opens climbing in lockstep. *)

val record_budget_denial : t -> unit
(** A retransmission was abandoned because the retry budget was dry. *)

val record_deadline_giveup : t -> unit
(** A transaction past its deadline was shed instead of retried. *)

val record_deadline_miss : t -> unit
(** A transaction committed, but only after its deadline — counted out
    of goodput. *)

val record_stale_ack : t -> unit
(** A replication/remaster stream message from a stale session —
    initiated before its destination left and rejoined the membership —
    was rejected instead of applied (docs/MEMBERSHIP.md). Only counted
    while [Config.session_tagging] is on. *)

val record_replica_purge : t -> unit
(** A rejoining node held a secondary whose partition was remastered
    away while it was down; the stale copy was purged at recovery. *)

val record_remaster_begin : t -> unit
(** A leader transfer was admitted (cooldown passed, no transfer in
    flight for the partition). Increments both the lifetime begin
    counter and the in-flight gauge. *)

val record_remaster_end : t -> unit
(** The matching end for a [record_remaster_begin] — completion, stale
    refusal or cancellation. Every begin must be paired with exactly
    one end; at quiescence the gauge must read 0, which the liveness
    auditor asserts (docs/FUZZING.md). *)

val record_link_msg : t -> cross:bool -> bytes:int -> unit
(** Classify one sent message by link class under a region topology:
    [cross] marks a cross-region (WAN) hop, otherwise the hop is
    intra-region (LAN). Only called by [Network.send] when a topology
    is installed — region-free runs never touch these counters
    (docs/GEO.md). *)

val beacon : t -> string -> unit
(** Light a named code-path beacon — a control-flow waypoint such as an
    election, a phantom purge or a cancelled remaster. Beacons are pure
    bookkeeping (no engine events, no RNG), so recording one never
    perturbs a run; the fault-schedule fuzzer uses the set of lit
    beacons as its coverage signal. *)

val beacons : t -> (string * int) list
(** All beacons lit since [create] (or the last [reset_window]),
    sorted by name for deterministic output. *)

val timeouts : t -> int
val retries : t -> int
val drops : t -> int
val sheds : t -> int
val breaker_rejects : t -> int
val breaker_opens : t -> int
val budget_denials : t -> int
val deadline_giveups : t -> int
val deadline_misses : t -> int
val breaker_half_opens : t -> int
val stale_ack_rejections : t -> int
val replica_purges : t -> int
val remaster_begins : t -> int

val wan_messages : t -> int
(** Cross-region messages sent since [create] / [reset_window]. *)

val wan_bytes : t -> int
(** Bytes carried by cross-region messages. *)

val lan_messages : t -> int
(** Intra-region messages sent under a region topology. Zero (like all
    four link counters) when the run is region-free. *)

val lan_bytes : t -> int
(** Bytes carried by intra-region messages. *)

val remasters_inflight : t -> int
(** Leader transfers currently in flight (begins minus ends). Unlike
    the counters this is live state, not a window total: it survives
    [reset_window] so a transfer spanning the boundary still reads
    correctly. *)

val schedule_clamps : t -> int
(** Past-dated schedules the engine clamped to [now] since [create] —
    each one is a scheduling bug somewhere upstream (negative delay, or
    an absolute time computed from a stale clock). Surfaced so
    experiment summaries and tests can assert the count. *)

val note_availability : t -> frac:float -> unit
(** Record a point-in-time availability sample (0..1) into the
    per-second series — the runner samples once per simulated second. *)

val availability_series : t -> float array
(** Availability samples bucketed per simulated second. *)

val commits : t -> int
val aborts : t -> int
val single_node_commits : t -> int
val remastered_commits : t -> int

val throughput : t -> duration:float -> float
(** Committed txns per simulated second over [duration] µs. *)

val throughput_series : t -> float array
(** Commits bucketed per simulated second. *)

val goodput_series : t -> float array
(** In-deadline commits bucketed per simulated second — equals
    [throughput_series] while no transaction deadline is configured. *)

val latency_percentile : t -> float -> float
val mean_latency : t -> float

val phase_fraction : t -> phase -> float
(** Fraction of total committed-transaction time spent in a phase. *)

val reset_window : t -> unit
(** Clear counters and latency (not the per-second series) so a run can
    exclude its warm-up from reported numbers. *)
