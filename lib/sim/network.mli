(** Point-to-point network model.

    One-way message delay = [latency] + [bytes] × [per_byte]. Defaults
    are calibrated to the paper's testbed: a LAN with iperf-measured
    ~937 Mbit/s (≈ 0.0085 µs/byte) and a one-way latency of 60 µs.
    Messages between a node and itself are free. All transferred bytes
    are accounted, globally and per time bucket, which reproduces the
    bytes-per-transaction series of Fig. 12b. *)

type t

type topology = {
  regions : int;  (** number of regions, ≥ 2 to be meaningful *)
  region_of : int array;  (** node id → region id, one entry per node *)
  wan_latency : float;  (** cross-region one-way µs *)
  wan_per_byte : float;  (** cross-region µs/byte *)
}
(** Region topology (docs/GEO.md): a static node → region map plus the
    WAN link class. Links between nodes of the same region keep the
    LAN [latency]/[per_byte]; links crossing regions pay [wan_latency]
    / [wan_per_byte] instead, and are counted separately in
    {!Metrics.wan_messages} / {!Metrics.wan_bytes}. *)

val create :
  ?latency:float -> ?per_byte:float -> ?topology:topology -> ?fault:Fault.t ->
  ?metrics:Metrics.t -> Engine.t -> t
(** [latency] one-way µs (default 60.), [per_byte] µs/byte
    (default 0.0085). When [fault] is given, every non-local send
    consults it for partitions, probabilistic drop, latency jitter and
    dead-endpoint loss; when [metrics] is given, fault-layer drops are
    also counted there. When [topology] is given, links crossing
    regions pay the WAN latency class and are accounted per link class
    in [metrics]; omitting it (the default) keeps the historical
    single-latency-class network bit-for-bit. *)

val engine : t -> Engine.t

val fault : t -> Fault.t option

val send :
  t -> src:int -> dst:int -> bytes:int -> ?on_drop:(unit -> unit) ->
  ?ctx:Lion_trace.Trace.ctx ->
  (unit -> unit) -> unit
(** Deliver a message of [bytes] from [src] to [dst]; the callback runs
    at arrival time. Local sends ([src = dst]) deliver immediately
    (next event) and count no bytes. If the fault layer kills the
    message (active partition, drop spec, or a dead endpoint — at send
    time or while in flight), the delivery callback never runs and
    [on_drop] (default: ignore) fires instead, at the moment of loss;
    senders modelling a timeout delay it themselves. Bytes are charged
    even for dropped messages — they left the NIC.

    [ctx] (a trace context of the transaction this message serves, see
    {!Lion_trace.Trace}) opens a child span covering the wire time and
    annotates it on loss; [None] — the default and the
    tracing-disabled path — costs nothing and never perturbs the
    simulation. *)

val charge : t -> bytes:int -> unit
(** Account bytes (and one message) without scheduling a delivery event
    — used by the analytic batch-epoch model where thousands of
    replication messages per epoch would otherwise flood the event
    queue. *)

val oneway_delay : t -> bytes:int -> float
(** The modelled one-way LAN delay for a remote message of [bytes]. *)

val wan_oneway_delay : t -> bytes:int -> float
(** The modelled one-way delay over a cross-region link. Equals
    [oneway_delay] when no topology is installed. *)

val link_delay : t -> src:int -> dst:int -> bytes:int -> float
(** The delay a [send] between these endpoints would experience:
    [wan_oneway_delay] when they are in different regions,
    [oneway_delay] otherwise (and always, region-free). *)

val roundtrip : t -> bytes:int -> float
(** Two one-way delays (request and reply of equal size). *)

val link_roundtrip : t -> src:int -> dst:int -> bytes:int -> float
(** Two [link_delay]s (request and reply of equal size). *)

val topology : t -> topology option

val regions : t -> int
(** Number of regions; 1 when no topology is installed. *)

val region_of : t -> int -> int
(** Region of a node; 0 for every node when no topology is
    installed. *)

val cross_region : t -> src:int -> dst:int -> bool
(** Whether a [send] between these endpoints crosses a region
    boundary; always false region-free. *)

val total_bytes : t -> int
(** All bytes ever sent on non-local links. *)

val bytes_series : t -> Lion_kernel.Timeseries.t
(** Bytes bucketed per simulated second. *)

val message_count : t -> int

val drops : t -> int
(** Messages killed by the fault layer. *)
