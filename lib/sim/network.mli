(** Point-to-point network model.

    One-way message delay = [latency] + [bytes] × [per_byte]. Defaults
    are calibrated to the paper's testbed: a LAN with iperf-measured
    ~937 Mbit/s (≈ 0.0085 µs/byte) and a one-way latency of 60 µs.
    Messages between a node and itself are free. All transferred bytes
    are accounted, globally and per time bucket, which reproduces the
    bytes-per-transaction series of Fig. 12b. *)

type t

val create :
  ?latency:float -> ?per_byte:float -> ?fault:Fault.t -> ?metrics:Metrics.t ->
  Engine.t -> t
(** [latency] one-way µs (default 60.), [per_byte] µs/byte
    (default 0.0085). When [fault] is given, every non-local send
    consults it for partitions, probabilistic drop, latency jitter and
    dead-endpoint loss; when [metrics] is given, fault-layer drops are
    also counted there. *)

val engine : t -> Engine.t

val fault : t -> Fault.t option

val send :
  t -> src:int -> dst:int -> bytes:int -> ?on_drop:(unit -> unit) ->
  ?ctx:Lion_trace.Trace.ctx ->
  (unit -> unit) -> unit
(** Deliver a message of [bytes] from [src] to [dst]; the callback runs
    at arrival time. Local sends ([src = dst]) deliver immediately
    (next event) and count no bytes. If the fault layer kills the
    message (active partition, drop spec, or a dead endpoint — at send
    time or while in flight), the delivery callback never runs and
    [on_drop] (default: ignore) fires instead, at the moment of loss;
    senders modelling a timeout delay it themselves. Bytes are charged
    even for dropped messages — they left the NIC.

    [ctx] (a trace context of the transaction this message serves, see
    {!Lion_trace.Trace}) opens a child span covering the wire time and
    annotates it on loss; [None] — the default and the
    tracing-disabled path — costs nothing and never perturbs the
    simulation. *)

val charge : t -> bytes:int -> unit
(** Account bytes (and one message) without scheduling a delivery event
    — used by the analytic batch-epoch model where thousands of
    replication messages per epoch would otherwise flood the event
    queue. *)

val oneway_delay : t -> bytes:int -> float
(** The modelled one-way delay for a remote message of [bytes]. *)

val roundtrip : t -> bytes:int -> float
(** Two one-way delays (request and reply of equal size). *)

val total_bytes : t -> int
(** All bytes ever sent on non-local links. *)

val bytes_series : t -> Lion_kernel.Timeseries.t
(** Bytes bucketed per simulated second. *)

val message_count : t -> int

val drops : t -> int
(** Messages killed by the fault layer. *)
