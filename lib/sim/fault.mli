(** Deterministic fault injection.

    A {e fault plan} is a list of declarative specs — node crashes,
    link partitions, probabilistic message drop, latency jitter and
    slow-node (straggler) multipliers — evaluated against the simulated
    clock. All randomness (drop draws, jitter) flows from a dedicated
    seeded PRNG, so a given (seed, plan) pair replays the exact same
    fault sequence; with an empty plan the PRNG is never consulted and
    the event schedule is bit-for-bit identical to a fault-free run.

    The network consults [link] per message; the cluster mirrors node
    liveness into [mark_down]/[mark_up] and schedules the [crash_events]
    of the plan at startup. See docs/FAULTS.md for the model. *)

type spec =
  | Crash of { node : int; at : float; recover_at : float option }
      (** node fails at [at] (µs) and optionally rejoins at [recover_at] *)
  | Partition of { groups : int list list; from_ : float; until : float }
      (** nodes in different groups cannot exchange messages while
          active; nodes absent from every group reach everyone *)
  | Drop of {
      src : int option;  (** restrict to one sender ([None] = any) *)
      dst : int option;  (** restrict to one receiver *)
      prob : float;  (** per-message drop probability *)
      from_ : float;
      until : float;
    }
  | Jitter of { extra : float; from_ : float; until : float }
      (** add uniform [0, extra) µs to every one-way delivery *)
  | Straggler of { node : int; factor : float; from_ : float; until : float }
      (** multiply all CPU work on [node] by [factor] while active *)
  | Delay of {
      src : int option;  (** restrict to one sender ([None] = any) *)
      dst : int option;  (** restrict to one receiver *)
      extra : float;  (** deterministic extra one-way latency, µs *)
      from_ : float;
      until : float;
    }
      (** add exactly [extra] µs to matching deliveries — the
          deterministic cousin of [Jitter], used to keep messages in
          flight across a crash/rejoin window (docs/MEMBERSHIP.md) *)

type plan = spec list

val none : plan

(** {2 Spec constructors} *)

val crash : node:int -> at:float -> ?recover_at:float -> unit -> spec
val partition : groups:int list list -> from_:float -> until:float -> spec

val drop :
  ?src:int -> ?dst:int -> prob:float -> from_:float -> until:float -> unit -> spec

val jitter : extra:float -> from_:float -> until:float -> spec
val straggler : node:int -> factor:float -> from_:float -> until:float -> spec

val delay :
  ?src:int -> ?dst:int -> extra:float -> from_:float -> until:float -> unit -> spec

(** {2 Named scenarios} — small plans that compose with [@]. *)

val crash_recover : node:int -> at:float -> downtime:float -> plan
val split_brain : groups:int list list -> at:float -> duration:float -> plan

val lossy :
  ?src:int -> ?dst:int -> prob:float -> from_:float -> until:float -> unit -> plan

val slow_node : node:int -> factor:float -> from_:float -> until:float -> plan

(** {2 Runtime state} *)

type t

val create : ?seed:int -> nodes:int -> plan -> t
val plan : t -> plan

val up : t -> int -> bool
(** Liveness as seen by the network ([mark_down] flips it). *)

val mark_down : t -> int -> unit
val mark_up : t -> int -> unit

type verdict =
  | Deliver of float  (** deliver with this much extra one-way delay *)
  | Blocked  (** an active partition separates the endpoints *)
  | Dropped  (** killed by a drop spec or a dead endpoint *)

val link : t -> now:float -> src:int -> dst:int -> verdict
(** Fate of one message sent now. Draws the PRNG only when an active
    probabilistic spec matches, preserving determinism otherwise. *)

val slow_factor : t -> now:float -> int -> float
(** Product of the factors of all stragglers active on [node] (1.0 when
    none). *)

val count_drop : t -> unit
val count_dead_drop : t -> unit

val drops : t -> int
(** Messages killed by the fault layer (partition/drop/dead endpoint). *)

val dead_drops : t -> int
(** The subset of [drops] that targeted a dead node. *)

val crash_events : plan -> (float * [ `Crash of int | `Recover of int ]) list
(** The plan's node-lifecycle events, sorted by time — the cluster
    schedules these against its engine at startup. *)
