(* SmallBank demo: recurring two-account payments are cross-partition
   under the initial layout; Lion's planner co-locates the partition
   pairs. Placement_stats quantifies the placement before and after —
   coverage (a single node holds replicas of every partition a
   transaction touches) and colocation (primaries already share a
   node).

   Run with: dune exec examples/smallbank_demo.exe *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Stats = Lion_store.Placement_stats
module Smallbank = Lion_workload.Smallbank
module Engine = Lion_sim.Engine
module Proto = Lion_protocols.Proto
module Txn = Lion_workload.Txn
module Table = Lion_kernel.Table

let () =
  let cfg = Config.default in
  let params =
    {
      (Smallbank.default_params ~partitions:(Config.total_partitions cfg)
         ~nodes:cfg.Config.nodes)
      with
      Smallbank.two_account_ratio = 0.5;
    }
  in
  let gen = Smallbank.create ~seed:3 params in
  (* The recurring two-account partition pairs (p, p+1). *)
  let pairs =
    List.init (Config.total_partitions cfg) (fun p ->
        [ p; (p + 1) mod Config.total_partitions cfg ])
  in
  let cl = Cluster.create ~seed:1 cfg in
  let proto = Lion_core.Standard.create ~name:"Lion" cl in
  let report label =
    Printf.printf "%-18s coverage %.0f%%  colocated %.0f%%  imbalance %.2f\n" label
      (100.0 *. Stats.coverage cl.Cluster.placement pairs)
      (100.0 *. Stats.colocated cl.Cluster.placement pairs)
      (Stats.imbalance cl.Cluster.placement)
  in
  Printf.printf "SmallBank: 50%% two-account transactions (SendPayment/Amalgamate)\n\n";
  report "before planning:";
  let engine = cl.Cluster.engine in
  let rec loop () =
    proto.Proto.submit (Smallbank.next gen) ~on_done:(fun () ->
        Engine.schedule engine ~delay:0.0 loop)
  in
  for _ = 1 to 64 do
    loop ()
  done;
  let rec tick () =
    Engine.schedule engine ~delay:(Engine.seconds 1.0) (fun () ->
        proto.Proto.tick ();
        tick ())
  in
  tick ();
  Engine.run_until engine (Engine.seconds 8.0);
  report "after 8s of Lion:";
  let m = cl.Cluster.metrics in
  Printf.printf "\ncommits: %d, single-node %.0f%%, remasters %d, replica adds %d\n"
    (Lion_sim.Metrics.commits m)
    (100.0
    *. float_of_int (Lion_sim.Metrics.single_node_commits m)
    /. float_of_int (max 1 (Lion_sim.Metrics.commits m)))
    cl.Cluster.remaster_count cl.Cluster.replica_add_count
