(* TPC-C NewOrder demo: the skewed warehouse workload of §VI-C1 run
   under three standard-execution protocols, reporting throughput,
   latency and the single-node conversion ratio — the per-workload view
   behind Fig 7b.

   Run with: dune exec examples/tpcc_newo.exe *)

module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Table = Lion_kernel.Table

let () =
  let cfg =
    { Config.default with Config.remaster_delay = 3000.0; remaster_cooldown = 30_000.0 }
  in
  Printf.printf
    "TPC-C NewOrder, %d warehouses over %d nodes, skew 0.8, 50%% remote-supply \
     orders...\n%!"
    (Config.total_partitions cfg) cfg.Config.nodes;
  let rc = { Runner.quick with Runner.warmup = 5.0; duration = 5.0 } in
  let run make = Runner.run ~seed:1 ~cfg ~make ~gen:(Workloads.tpcc ~skew:0.8 ~cross:0.5 cfg) rc in
  let results =
    [
      ("2PC", run Lion_protocols.Twopc.create);
      ("Clay", run Lion_protocols.Clay.create);
      ("Lion", run (fun cl -> Lion_core.Standard.create ~name:"Lion" cl));
    ]
  in
  let t =
    Table.create ~title:"TPC-C NewOrder under standard-execution protocols"
      ~columns:
        [ "protocol"; "k txn/s"; "p50 (ms)"; "p95 (ms)"; "single-node %"; "aborts" ]
  in
  List.iter
    (fun (name, (r : Runner.result)) ->
      Table.add_row t
        [
          name;
          Table.cell_float ~decimals:1 (r.Runner.throughput /. 1000.0);
          Table.cell_float ~decimals:2 (r.Runner.p50 /. 1000.0);
          Table.cell_float ~decimals:2 (r.Runner.p95 /. 1000.0);
          Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio);
          Table.cell_int r.Runner.aborts;
        ])
    results;
  Table.print t
