(* High-availability demo: the replication Lion builds on also provides
   failover. One node crashes mid-run; partitions it mastered block for
   one leader election, surviving secondaries are promoted, and the
   cluster keeps committing on three nodes until the node returns.

   Run with: dune exec examples/failover.exe *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Engine = Lion_sim.Engine
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Table = Lion_kernel.Table

let () =
  let cfg = Config.default in
  let fail_at = 5.0 and recover_at = 10.0 and total = 15.0 in
  Printf.printf
    "Lion on 4 nodes; node 0 crashes at %.0fs and recovers at %.0fs...\n%!" fail_at
    recover_at;
  let r =
    Runner.run ~cfg
      ~setup:(fun cl ->
        let engine = cl.Cluster.engine in
        Engine.at engine ~time:(Engine.seconds fail_at) (fun () ->
            Cluster.fail_node cl 0);
        Engine.at engine ~time:(Engine.seconds recover_at) (fun () ->
            Cluster.recover_node cl 0))
      ~make:(fun cl -> Lion_core.Standard.create ~name:"Lion" cl)
      ~gen:(Workloads.ycsb ~cross:0.5 cfg)
      { Runner.quick with Runner.warmup = 0.0; duration = total; tick_every = 1.0 }
  in
  let t =
    Table.create ~title:"Throughput through failure and recovery"
      ~columns:[ "second"; "k txn/s"; "event" ]
  in
  Array.iteri
    (fun i tput ->
      if i < int_of_float total then
        Table.add_row t
          [
            string_of_int (i + 1);
            Table.cell_float ~decimals:1 (tput /. 1000.0);
            (if i = int_of_float fail_at then "node 0 fails"
             else if i = int_of_float recover_at then "node 0 recovers"
             else "");
          ])
    r.Runner.throughput_series;
  Table.print t;
  Printf.printf "remasters (incl. failover promotions): %d, replica additions: %d\n"
    r.Runner.remasters r.Runner.replica_adds
