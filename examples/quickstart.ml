(* Quickstart: build a 4-node cluster, run a skewed cross-partition YCSB
   workload under plain 2PC and under Lion (standard execution), and
   print the comparison — the library's smallest end-to-end use.

   Run with: dune exec examples/quickstart.exe *)

module Config = Lion_store.Config
module Ycsb = Lion_workload.Ycsb
module Table = Lion_kernel.Table
module Runner = Lion_harness.Runner

let () =
  let cfg = Config.default in
  let params =
    {
      (Ycsb.default_params ~partitions:(Config.total_partitions cfg) ~nodes:cfg.Config.nodes) with
      Ycsb.skew_factor = 0.8;
      cross_ratio = 0.5;
    }
  in
  let run make =
    let gen = Ycsb.create ~seed:7 params in
    Runner.run ~seed:1 ~cfg ~make ~gen:(fun ~time:_ -> Ycsb.next gen) Runner.quick
  in
  Printf.printf "Running 2PC and Lion on skewed YCSB (50%% cross-partition)...\n%!";
  let two_pc = run Lion_protocols.Twopc.create in
  let lion = run (fun cl -> Lion_core.Standard.create ~name:"Lion" cl) in
  let table =
    Table.create ~title:"Quickstart: 2PC vs Lion (standard execution)"
      ~columns:
        [ "protocol"; "throughput (txn/s)"; "p50 latency (ms)"; "p95 (ms)"; "single-node %" ]
  in
  let row name (r : Runner.result) =
    Table.add_row table
      [
        name;
        Table.cell_float ~decimals:0 r.Runner.throughput;
        Table.cell_float ~decimals:2 (r.Runner.p50 /. 1000.0);
        Table.cell_float ~decimals:2 (r.Runner.p95 /. 1000.0);
        Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio);
      ]
  in
  row "2PC" two_pc;
  row "Lion" lion;
  Table.print table;
  Printf.printf "Lion speedup over 2PC: %.2fx\n"
    (lion.Runner.throughput /. Stdlib.max 1.0 two_pc.Runner.throughput)
