(* Walk the paper's running example (Figs. 3-4) through the real
   pipeline: seven transactions are analysed into a heat graph, the
   graph is clustered into clumps, and the replica rearrangement
   algorithm (Algorithm 1) dispatches and fine-tunes them across three
   nodes, printing every intermediate artefact.

   Run with: dune exec examples/planner_explain.exe *)

module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Costmodel = Lion_analysis.Costmodel
module Rearrange = Lion_analysis.Rearrange
module Plan = Lion_analysis.Plan
module Placement = Lion_store.Placement
module Table = Lion_kernel.Table

let () =
  (* Figure 3a: the transaction batch. Partitions are 0-based here
     (paper's P1..P5 are partitions 0..4). *)
  let batch =
    [
      ("T1", [ 0; 1 ]);
      ("T2", [ 2 ]);
      ("T3", [ 3 ]);
      ("T4", [ 0; 1 ]);
      ("T5", [ 4 ]);
      ("T6", [ 3 ]);
      ("T7", [ 4 ]);
    ]
  in
  let t = Table.create ~title:"Input batch (Fig 3a)" ~columns:[ "txn"; "partitions" ] in
  List.iter
    (fun (name, parts) ->
      Table.add_row t
        [ name; String.concat "," (List.map (fun p -> "P" ^ string_of_int (p + 1)) parts) ])
    batch;
  Table.print t;

  (* Graph construction. *)
  let graph = Heatgraph.create ~partitions:5 in
  List.iter (fun (_, parts) -> Heatgraph.add_txn graph ~parts) batch;
  let gt =
    Table.create ~title:"Heat graph G(V,E) (Fig 3a, right)"
      ~columns:[ "vertex"; "w(v)"; "edges" ]
  in
  for p = 0 to 4 do
    let edges =
      Heatgraph.neighbors graph p
      |> List.map (fun q ->
             Printf.sprintf "P%d(w=%.0f)" (q + 1) (Heatgraph.edge_weight graph p q))
      |> String.concat " "
    in
    Table.add_row gt
      [ "P" ^ string_of_int (p + 1); Table.cell_float ~decimals:0 (Heatgraph.vertex_weight graph p); edges ]
  done;
  Table.print gt;

  (* A 3-node cluster; partitions round-robin with 2 replicas, matching
     the paper's sketch closely enough to exercise every cost case. *)
  let placement = Placement.create ~nodes:3 ~partitions:5 ~replicas:2 ~max_replicas:3 () in
  let pt =
    Table.create ~title:"Original replica layout (Fig 4b analogue)"
      ~columns:[ "partition"; "primary"; "secondaries" ]
  in
  for p = 0 to 4 do
    Table.add_row pt
      [
        "P" ^ string_of_int (p + 1);
        "N" ^ string_of_int (Placement.primary placement p + 1);
        String.concat ","
          (List.map (fun n -> "N" ^ string_of_int (n + 1)) (Placement.secondaries placement p));
      ]
  done;
  Table.print pt;

  (* Clump generation (Fig 3b). *)
  let clumps = Clump.generate graph ~placement ~alpha:0.5 ~cross_boost:4.0 in
  let ct = Table.create ~title:"Clumps (Fig 3b)" ~columns:[ "clump"; "partitions"; "weight" ] in
  List.iteri
    (fun i (c : Clump.t) ->
      Table.add_row ct
        [
          "C" ^ string_of_int (i + 1);
          String.concat "," (List.map (fun p -> "P" ^ string_of_int (p + 1)) c.Clump.pids);
          Table.cell_float ~decimals:0 c.Clump.w;
        ])
    clumps;
  Table.print ct;

  (* Cost evaluation for the first clump across every node (Eq. 3). *)
  let cost = Costmodel.make ~w_r:1.0 ~w_m:10.0 ~freq:(fun _ -> 0.0) () in
  (match clumps with
  | first :: _ ->
      let et =
        Table.create
          ~title:"Cost model f_o(n, c) for the first clump (Eq. 3: w_r=1, w_m=10)"
          ~columns:[ "node"; "cost" ]
      in
      for n = 0 to 2 do
        Table.add_row et
          [
            "N" ^ string_of_int (n + 1);
            Table.cell_float ~decimals:1
              (Costmodel.clump_cost cost placement ~parts:first.Clump.pids ~node:n);
          ]
      done;
      Table.print et
  | [] -> ());

  (* Algorithm 1: dispatch + load fine-tuning. *)
  let result = Rearrange.rearrange cost placement clumps ~epsilon:0.25 () in
  let rt =
    Table.create ~title:"Rearrangement result (Fig 4c-d)"
      ~columns:[ "clump"; "partitions"; "destination" ]
  in
  List.iteri
    (fun i ((c : Clump.t), node) ->
      Table.add_row rt
        [
          "C" ^ string_of_int (i + 1);
          String.concat "," (List.map (fun p -> "P" ^ string_of_int (p + 1)) c.Clump.pids);
          "N" ^ string_of_int (node + 1);
        ])
    result.Rearrange.assignments;
  Table.print rt;
  Printf.printf "balance factors: [%s], fine-tune moves: %d, balanced: %b\n\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.0f") result.Rearrange.balance)))
    result.Rearrange.fine_tune_moves result.Rearrange.balanced;

  (* The reconfiguration plan the adaptor would apply (RP of §IV-B). *)
  let plan = Plan.of_assignments placement result.Rearrange.assignments ~eager_remaster:true in
  print_endline "Reconfiguration plan (RP, 0-based ids as routed to the adaptor):";
  if Plan.is_empty plan then print_endline "  (empty: every clump already placed)"
  else
    List.iter
      (fun action -> Format.printf "  %a@." Plan.pp_action action)
      plan.Plan.actions
