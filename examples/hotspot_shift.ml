(* Dynamic-workload demo: the hotspot-position scenario (A/B/C/D from
   the paper's §VI-C2) running under Lion with the full prediction
   pipeline. Prints the per-second throughput series with the phase
   boundaries and the adaptation activity (replica additions and
   remasters), so the adaptation dips and recoveries are visible.

   Run with: dune exec examples/hotspot_shift.exe *)

module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Table = Lion_kernel.Table

let () =
  let cfg = Config.default in
  let period = 8.0 in
  let total = 4.0 *. period in
  Printf.printf
    "Running Lion (standard, LSTM prediction on) through the A/B/C/D hotspot \
     scenario (%.0fs periods)...\n%!"
    period;
  let r =
    Runner.run ~seed:1 ~cfg
      ~make:(fun cl -> Lion_core.Standard.create ~name:"Lion" cl)
      ~gen:(Workloads.dynamic_position ~period cfg)
      { Runner.quick with Runner.warmup = 0.0; duration = total; tick_every = 1.0 }
  in
  let t =
    Table.create ~title:"Throughput over time under shifting hotspots"
      ~columns:[ "second"; "phase"; "k txn/s" ]
  in
  let phases = Workloads.position_phases cfg ~period in
  Array.iteri
    (fun i tput ->
      (* Skip the partial bucket past the measurement cutoff. *)
      if i < int_of_float total then (
        let phase =
          List.fold_left
            (fun acc (name, start) -> if float_of_int i >= start then name else acc)
            "" phases
        in
        Table.add_row t
          [
            string_of_int (i + 1);
            phase;
            Table.cell_float ~decimals:1 (tput /. 1000.0);
          ]))
    r.Runner.throughput_series;
  Table.print t;
  Printf.printf
    "adaptation activity: %d replica additions, %d remasters; mean throughput %.1fk \
     txn/s; single-node ratio %.0f%%\n"
    r.Runner.replica_adds r.Runner.remasters
    (r.Runner.throughput /. 1000.0)
    (100.0 *. r.Runner.single_node_ratio)
