(* CLI: the geo-replication experiment suite (docs/GEO.md).

   Runs the cross-region-ratio sweep for {Lion, Star, 2PC, EpochOCC}
   at 2 and 3 regions plus the goodput-under-WAN-partition run. Output
   is deterministic for a fixed seed — the geo-smoke CI job diffs two
   runs byte-for-byte.

   Flags:
     --smoke              quarter-scale durations (CI)
     --seed N             workload/cluster seed (default 7)
     --assert-crossover   exit 1 unless Lion wins at 0% cross-region
                          and EpochOCC wins at 100% (2-region sweep) *)
let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flag f = List.mem f args in
  let rec opt k = function
    | a :: v :: _ when a = k -> Some v
    | _ :: rest -> opt k rest
    | [] -> None
  in
  let known = [ "--smoke"; "--seed"; "--assert-crossover" ] in
  let rec check = function
    | a :: rest when List.mem a known ->
        check (if a = "--seed" then match rest with _ :: r -> r | [] -> [] else rest)
    | a :: _ ->
        Printf.eprintf "geo_sweep: unknown argument %s\nusage: geo_sweep %s\n" a
          (String.concat " " (List.map (fun f -> "[" ^ f ^ "]") known));
        exit 2
    | [] -> ()
  in
  check args;
  let scale = if flag "--smoke" then 0.25 else 1.0 in
  let seed =
    match opt "--seed" args with
    | Some s -> ( try int_of_string s with _ -> Printf.eprintf "geo_sweep: bad --seed %s\n" s; exit 2)
    | None -> 7
  in
  let rows2 = Lion_harness.Geo.sweep ~seed ~scale ~regions:2 () in
  Lion_harness.Geo.print_sweep ~regions:2 rows2;
  let rows3 = Lion_harness.Geo.sweep ~seed ~scale ~regions:3 () in
  Lion_harness.Geo.print_sweep ~regions:3 rows3;
  Lion_harness.Geo.print_partition ~scale
    (Lion_harness.Geo.wan_partition ~seed ~scale ());
  if flag "--assert-crossover" then
    if Lion_harness.Geo.crossover_ok rows2 then
      print_endline "crossover: OK (Lion wins at 0%, EpochOCC wins at 100%)"
    else (
      prerr_endline "crossover: FAILED (expected Lion ahead at 0% and EpochOCC ahead at 100%)";
      exit 1)
