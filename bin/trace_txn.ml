(* Single-run trace inspector: run one protocol over a YCSB mix with
   tracing on, print the slow-transaction critical-path report, and
   write a Chrome/Perfetto trace file.

     dune exec bin/trace_txn.exe -- --proto lion --cross 0.5 --skew 0.8

   The cluster uses the paper's §VI-C1 stress setting (3 ms remaster)
   so remaster transfers and 2PC rounds are visible at trace scale. *)

module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Trace = Lion_trace.Trace

let protocols :
    (string * bool * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list =
  [
    ("2pc", false, fun cl -> Lion_protocols.Twopc.create cl);
    ("leap", false, fun cl -> Lion_protocols.Leap.create cl);
    ("clay", false, fun cl -> Lion_protocols.Clay.create cl);
    ( "lion",
      false,
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ("star", true, fun cl -> Lion_protocols.Star.create cl);
    ("calvin", true, fun cl -> Lion_protocols.Calvin.create cl);
    ("hermes", true, fun cl -> Lion_protocols.Hermes.create cl);
    ("aria", true, fun cl -> Lion_protocols.Aria.create cl);
    ("lotus", true, fun cl -> Lion_protocols.Lotus.create cl);
    ( "lion-batch",
      true,
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
  ]

let parse_policy s =
  match String.split_on_char ':' s with
  | [ "all" ] -> Trace.All
  | [ "abort" ] -> Trace.On_abort
  | [ "every"; n ] -> Trace.Every (int_of_string n)
  | [ "slowest"; k ] -> Trace.Slowest (int_of_string k)
  | _ ->
      Printf.eprintf
        "bad --policy %s (want all | abort | every:N | slowest:K)\n" s;
      exit 1

let usage () =
  Printf.eprintf
    "usage: trace_txn [--proto NAME] [--cross F] [--skew F] [--seed N]\n\
    \                 [--seconds F] [--top N] [--policy P] [--out PATH]\n\
     protocols: %s\n\
     policy: all | abort | every:N | slowest:K (default slowest:10)\n"
    (String.concat ", " (List.map (fun (n, _, _) -> n) protocols));
  exit 1

let () =
  let proto = ref "lion" in
  let cross = ref 0.5 in
  let skew = ref 0.0 in
  let seed = ref 1 in
  let seconds = ref 3.0 in
  let top = ref 5 in
  let policy = ref (Trace.Slowest 10) in
  let out = ref "" in
  let rec parse = function
    | [] -> ()
    | "--proto" :: v :: rest ->
        proto := v;
        parse rest
    | "--cross" :: v :: rest ->
        cross := float_of_string v;
        parse rest
    | "--skew" :: v :: rest ->
        skew := float_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--seconds" :: v :: rest ->
        seconds := float_of_string v;
        parse rest
    | "--top" :: v :: rest ->
        top := int_of_string v;
        parse rest
    | "--policy" :: v :: rest ->
        policy := parse_policy v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let name, batch, make =
    match
      List.find_opt (fun (n, _, _) -> n = !proto) protocols
    with
    | Some p -> p
    | None -> usage ()
  in
  let cfg =
    {
      Config.default with
      Config.remaster_delay = 3000.0;
      remaster_cooldown = 30_000.0;
    }
  in
  let tracer = Trace.create ~policy:!policy () in
  let rc = { Runner.quick with warmup = 1.0; duration = !seconds } in
  let r =
    Runner.run ~seed:!seed ~batch ~tracer ~cfg ~make
      ~gen:(Workloads.ycsb ~seed:!seed ~skew:!skew ~cross:!cross cfg)
      rc
  in
  Printf.printf
    "%s cross=%.2f skew=%.2f seed=%d: %.0f txn/s, p95 %.0f us, %d aborts\n"
    name !cross !skew !seed r.Runner.throughput r.Runner.p95 r.Runner.aborts;
  Lion_trace.Report.print ~top:!top ~label:name tracer;
  if !out <> "" then (
    Lion_trace.Chrome.write ~path:!out ~label:name
      ~instants:(Trace.instants tracer) (Trace.retained tracer);
    Printf.printf "wrote %s (load in ui.perfetto.dev or chrome://tracing)\n"
      !out)
