(* Developer tool: feed one synthetic YCSB batch through the analysis
   pipeline (graph -> clumps -> Algorithm 1) outside the simulator and
   dump every intermediate artefact. *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Costmodel = Lion_analysis.Costmodel
module Rearrange = Lion_analysis.Rearrange
module Ycsb = Lion_workload.Ycsb
module Txn = Lion_workload.Txn

let () =
  let cfg = Config.default in
  let parts = Config.total_partitions cfg in
  let cl = Cluster.create ~seed:1 cfg in
  let params =
    { (Ycsb.default_params ~partitions:parts ~nodes:cfg.Config.nodes)
      with Ycsb.skew_factor = 0.8; cross_ratio = 0.5 } in
  let gen = Ycsb.create ~seed:7 params in
  let graph = Heatgraph.create ~partitions:parts in
  for _ = 1 to 20000 do
    let txn = Ycsb.next gen in
    Heatgraph.add_txn graph ~parts:txn.Txn.parts
  done;
  let alpha = 2.0 *. Heatgraph.mean_edge_weight graph in
  let total = ref 0.0 in
  for p = 0 to parts - 1 do total := !total +. Heatgraph.vertex_weight graph p done;
  let max_weight = 0.6 *. !total /. 4.0 in
  Printf.printf "alpha=%.1f total=%.0f max_clump_weight=%.0f\n" alpha !total max_weight;
  let clumps = Clump.generate ~max_weight graph ~placement:cl.Cluster.placement ~alpha ~cross_boost:4.0 in
  Printf.printf "clumps=%d\n" (List.length clumps);
  List.iteri (fun i (c:Clump.t) ->
    if i < 12 then Printf.printf "  clump %d: w=%.0f size=%d pids=[%s]\n" i c.w (List.length c.pids)
      (String.concat ";" (List.map string_of_int c.pids))) clumps;
  let cost = Costmodel.make ~freq:(Cluster.normalized_freq cl) () in
  let r = Rearrange.rearrange cost cl.Cluster.placement clumps ~epsilon:0.25 () in
  Printf.printf "balance=[%s] moves=%d balanced=%b\n"
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.0f") r.Rearrange.balance)))
    r.Rearrange.fine_tune_moves r.Rearrange.balanced;
  let dest_count = Array.make 4 0 in
  List.iter (fun ((c:Clump.t), n) -> dest_count.(n) <- dest_count.(n) + List.length c.pids) r.Rearrange.assignments;
  Printf.printf "parts per node: %s\n" (String.concat " " (Array.to_list (Array.map string_of_int dest_count)))
