(* Offered-load sweep and metastable-failure repro driver
   (docs/OVERLOAD.md):

     dune exec bin/overload_sweep.exe                    # full sweep -> overload/
     dune exec bin/overload_sweep.exe -- --smoke         # CI-sized run
     dune exec bin/overload_sweep.exe -- --smoke --assert-budget-wins

   Writes overload/sweep.csv (throughput/goodput/p99 vs offered load,
   for lion/star/twopc, protected and unprotected) and
   overload/metastable.csv (per-second commit series for the
   unprotected vs protected metastable runs).

   --assert-budget-wins exits non-zero unless, at 1.5x saturation,
   goodput with retry budgets/breakers/deadlines is at least as high as
   without them — the graceful-degradation regression gate. *)

module Overload = Lion_harness.Overload
module Export = Lion_harness.Export

let () =
  let smoke = ref false in
  let assert_budget = ref false in
  let out_dir = ref "overload" in
  let seed = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--assert-budget-wins" :: rest ->
        assert_budget := true;
        parse rest
    | "--out" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: overload_sweep [--smoke] [--assert-budget-wins] [--out DIR] \
           [--seed N]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed = !seed in
  let scale = if !smoke then 0.25 else 1.0 in
  (* The smoke run trims the sweep to the decisive points: one below
     saturation, saturation, and 1.5x past it. *)
  let ratios =
    if !smoke then [ 0.75; 1.0; 1.5 ] else Overload.default_ratios
  in
  let specs =
    if !smoke then [ Overload.twopc_spec ] else Overload.specs
  in
  let sweeps =
    List.concat_map
      (fun protect ->
        List.map
          (fun spec -> Overload.sweep_one ~seed ~scale ~protect ~ratios spec)
          specs)
      [ false; true ]
  in
  Overload.print_sweeps sweeps;
  let metas =
    Overload.metastable_pair ~seed ~scale:(if !smoke then 0.5 else 1.0) ()
  in
  Overload.print_metastable metas;
  (if Sys.file_exists !out_dir then ()
   else Sys.mkdir !out_dir 0o755);
  let sweep_path = Filename.concat !out_dir "sweep.csv" in
  let header, rows = Overload.sweep_rows sweeps in
  Export.write_csv ~path:sweep_path ~header ~rows;
  let meta_path = Filename.concat !out_dir "metastable.csv" in
  let mheader, mrows = Overload.metastable_rows metas in
  Export.write_csv ~path:meta_path ~header:mheader ~rows:mrows;
  Printf.printf "wrote %s and %s\n" sweep_path meta_path;
  if !assert_budget then (
    let goodput_at ~protect ratio =
      List.filter_map
        (fun (s : Overload.sweep) ->
          if s.Overload.protected_ = protect then
            List.find_opt
              (fun (p : Overload.point) -> p.Overload.ratio = ratio)
              s.Overload.points
            |> Option.map (fun (p : Overload.point) ->
                   p.Overload.result.Lion_harness.Runner.goodput)
          else None)
        sweeps
    in
    let unprot = goodput_at ~protect:false 1.5
    and prot = goodput_at ~protect:true 1.5 in
    let failures =
      List.concat
        (List.map2
           (fun u p ->
             Printf.printf
               "1.5x saturation goodput: %.1f unprotected vs %.1f protected\n" u p;
             (* Protection must not lose more than measurement noise. *)
             if p < 0.95 *. u then [ (u, p) ] else [])
           unprot prot)
    in
    if failures <> [] || unprot = [] then (
      Printf.printf "FAIL: retry budgets did not hold goodput at overload\n";
      exit 1)
    else Printf.printf "PASS: goodput with budgets >= without at 1.5x saturation\n")
