(* Elastic-membership experiment driver (docs/MEMBERSHIP.md):

     dune exec bin/elastic_run.exe --            # full 30 s diurnal cycle
     dune exec bin/elastic_run.exe -- --smoke    # 10 s CI-sized run

   Exits non-zero unless the run completed at least one join and one
   decommission under load with no stale replication delivery applied
   — the acceptance gate for the membership machinery. *)

let () =
  let smoke = ref false in
  let seed = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | a :: _ ->
        Printf.eprintf "usage: elastic_run [--smoke] [--seed N] (unknown %s)\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let r = Lion_harness.Elastic.run ~seed:!seed ~smoke:!smoke () in
  Lion_harness.Elastic.print_report r;
  if r.Lion_harness.Elastic.joins = 0 then (
    Printf.eprintf "FAIL: no node joined during the ramp\n";
    exit 1);
  if r.Lion_harness.Elastic.decommissions = 0 then (
    Printf.eprintf "FAIL: no decommission completed during the ramp-down\n";
    exit 1);
  Printf.printf "elastic scale OK\n"
