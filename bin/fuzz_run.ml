(* Coverage-guided fault-schedule fuzzer driver (docs/FUZZING.md).

     dune exec bin/fuzz_run.exe -- --seed 7 --rounds 40 --shrink
     dune exec bin/fuzz_run.exe -- --seed 7 --reintroduce-phantom \
       --shrink --corpus test/corpus --assert-finds-bug
     dune exec bin/fuzz_run.exe -- --replay test/corpus/some-case.json

   Fully deterministic: the same command line prints byte-identical
   output, which CI diffs across two consecutive runs. *)

module Config = Lion_store.Config
module Workloads = Lion_harness.Workloads
module Fuzz = Lion_audit.Fuzz
module Liveness = Lion_audit.Liveness

let protocols : (string * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list
    =
  [
    ("2pc", fun cl -> Lion_protocols.Twopc.create cl);
    ("leap", fun cl -> Lion_protocols.Leap.create cl);
    ("clay", fun cl -> Lion_protocols.Clay.create cl);
    ( "lion",
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ( "lion-batch",
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ("star", fun cl -> Lion_protocols.Star.create cl);
    ("hermes", fun cl -> Lion_protocols.Hermes.create cl);
  ]

let target ~protos : Fuzz.target =
  {
    Fuzz.protos;
    workload =
      (fun ~cfg ~seed ~skew ~cross -> Workloads.ycsb ~seed ~skew ~cross cfg);
  }

let usage () =
  Printf.eprintf
    "usage: fuzz_run [--seed N] [--rounds N] [--shrink] [--corpus DIR]\n\
    \                [--assert-clean] [--assert-finds-bug]\n\
    \                [--reintroduce-phantom] [--protos a,b,c]\n\
    \                [--max-events N] [--replay FILE]\n\
     --shrink             minimize failing schedules (ddmin)\n\
     --corpus DIR         save failing schedules (shrunk when --shrink)\n\
     --assert-clean       exit 1 if any schedule fails\n\
     --assert-finds-bug   exit 1 unless a safety bug is found and its\n\
    \                     shrunk repro has at most 3 ops\n\
     --reintroduce-phantom  re-plant the phantom-secondary bug\n\
     --replay FILE        replay one corpus case; exit 1 on mismatch\n\
     protocols: %s\n"
    (String.concat ", " (List.map fst protocols));
  exit 2

let replay ~max_events path =
  match Fuzz.load_file path with
  | Error msg ->
      Printf.printf "%s: unreadable corpus case: %s\n" path msg;
      exit 1
  | Ok (case, expect) ->
      let r = Fuzz.run_case ?max_events ~target:(target ~protos:protocols) case in
      let got = r.Fuzz.verdict in
      Printf.printf "%s: expected %s, got %s\n" case.Fuzz.name
        (Fuzz.verdict_name expect) (Fuzz.verdict_name got);
      Printf.printf "  signals: %s\n" (String.concat " " r.Fuzz.signature);
      if got = expect then exit 0 else exit 1

let () =
  let seed = ref 1 in
  let rounds = ref 40 in
  let shrink = ref false in
  let corpus = ref None in
  let assert_clean = ref false in
  let assert_finds_bug = ref false in
  let phantom = ref false in
  let protos = ref "lion,2pc,star" in
  let max_events = ref None in
  let replay_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--rounds" :: v :: rest ->
        rounds := int_of_string v;
        parse rest
    | "--shrink" :: rest ->
        shrink := true;
        parse rest
    | "--corpus" :: v :: rest ->
        corpus := Some v;
        parse rest
    | "--assert-clean" :: rest ->
        assert_clean := true;
        parse rest
    | "--assert-finds-bug" :: rest ->
        assert_finds_bug := true;
        parse rest
    | "--reintroduce-phantom" :: rest ->
        phantom := true;
        parse rest
    | "--protos" :: v :: rest ->
        protos := v;
        parse rest
    | "--max-events" :: v :: rest ->
        max_events := Some (int_of_string v);
        parse rest
    | "--replay" :: v :: rest ->
        replay_file := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !replay_file with
  | Some path -> replay ~max_events:!max_events path
  | None -> ());
  let selected =
    List.map
      (fun name ->
        match List.find_opt (fun (n, _) -> n = name) protocols with
        | Some p -> p
        | None ->
            Printf.eprintf "unknown protocol %s\n" name;
            usage ())
      (String.split_on_char ',' !protos)
  in
  let target = target ~protos:selected in
  Printf.printf "fuzz: seed %d, %d rounds, protocols %s%s%s\n" !seed !rounds
    !protos
    (if !phantom then ", phantom-secondary bug re-planted" else "")
    (if !shrink then ", shrinking failures" else "");
  let res =
    Fuzz.campaign ~rounds:!rounds ~shrink_failures:!shrink
      ?max_events:!max_events ~log:print_endline ~seed:!seed ~phantom:!phantom
      ~target ()
  in
  Printf.printf "\n%d rounds, %d distinct coverage signatures, %d failure(s)\n"
    res.Fuzz.rounds_run res.Fuzz.pool_size
    (List.length res.Fuzz.failures);
  List.iter
    (fun (r, shrunk) ->
      let case = match shrunk with Some c -> c | None -> r.Fuzz.case in
      Printf.printf "\nfailure: %s (%s, %s verdict)\n" case.Fuzz.name
        r.Fuzz.case.Fuzz.proto
        (Fuzz.verdict_name r.Fuzz.verdict);
      Printf.printf "  signals: %s\n"
        (String.concat " "
           (List.filter
              (fun s ->
                String.length s > 1 && (s.[0] = 'a' || s.[0] = 'd' || s.[0] = 'l'))
              r.Fuzz.signature));
      print_string (Fuzz.to_json ~expect:r.Fuzz.verdict case);
      match !corpus with
      | Some dir ->
          let path = Fuzz.save ~dir ~expect:r.Fuzz.verdict case in
          Printf.printf "  saved %s\n" path
      | None -> ())
    res.Fuzz.failures;
  let safety_repro =
    List.find_opt
      (fun (r, shrunk) ->
        r.Fuzz.verdict = Fuzz.Safety
        &&
        match shrunk with
        | Some c -> List.length c.Fuzz.ops <= 3
        | None -> true)
      res.Fuzz.failures
  in
  if !assert_finds_bug then
    if safety_repro <> None then (
      Printf.printf "\nplanted-bug gate OK\n";
      exit 0)
    else (
      Printf.printf "\nplanted-bug gate FAILED: no safety bug with a <=3-op repro\n";
      exit 1);
  if !assert_clean then
    if res.Fuzz.failures = [] then (
      Printf.printf "clean gate OK\n";
      exit 0)
    else (
      Printf.printf "clean gate FAILED\n";
      exit 1)
