(* Developer tool: run one protocol for N simulated seconds, printing
   per-second commits, remaster/replica-add activity, aborts and
   per-node worker load — the fastest way to watch a protocol converge.

   Usage: dune exec bin/debug_run.exe -- [variant] [skew] [cross] [secs]
   (REMASTER_DELAY=<us> overrides the remaster delay/cooldown.) *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Engine = Lion_sim.Engine
module Server = Lion_sim.Server
module Metrics = Lion_sim.Metrics
module Ycsb = Lion_workload.Ycsb
module Proto = Lion_protocols.Proto

let () =
  let variant = try Sys.argv.(1) with _ -> "lion-rw" in
  let skew = try float_of_string Sys.argv.(2) with _ -> 0.8 in
  let cross = try float_of_string Sys.argv.(3) with _ -> 0.5 in
  let secs = try int_of_string Sys.argv.(4) with _ -> 8 in
  let cfg =
    match Sys.getenv_opt "REMASTER_DELAY" with
    | Some d ->
        let d = float_of_string d in
        { Config.default with Config.remaster_delay = d; remaster_cooldown = 10.0 *. d }
    | None -> Config.default
  in
  let params =
    { (Ycsb.default_params ~partitions:(Config.total_partitions cfg) ~nodes:cfg.Config.nodes)
      with Ycsb.skew_factor = skew; cross_ratio = cross } in
  let gen = Ycsb.create ~seed:7 params in
  let cl = Cluster.create ~seed:1 cfg in
  let mk = function
    | "2pc" -> Lion_protocols.Twopc.create cl
    | "leap" -> Lion_protocols.Leap.create cl
    | "clay" -> Lion_protocols.Clay.create cl
    | "star" -> Lion_protocols.Star.create cl
    | "calvin" -> Lion_protocols.Calvin.create cl
    | "hermes" -> Lion_protocols.Hermes.create cl
    | "aria" -> Lion_protocols.Aria.create cl
    | "lotus" -> Lion_protocols.Lotus.create cl
    | "lion-r" -> Lion_core.Ablation.create Lion_core.Ablation.V_r cl
    | "lion-s" -> Lion_core.Ablation.create Lion_core.Ablation.V_s cl
    | "lion-rw" -> Lion_core.Ablation.create Lion_core.Ablation.V_rw cl
    | "lion-rb" -> Lion_core.Ablation.create Lion_core.Ablation.V_rb cl
    | "lion" -> Lion_core.Ablation.create Lion_core.Ablation.V_full cl
    | v -> failwith ("unknown variant " ^ v)
  in
  let proto = mk variant in
  let is_batch = List.mem variant ["star";"calvin";"hermes";"aria";"lotus";"lion-rb";"lion"] in
  let clients = if is_batch then cfg.Config.batch_size else 64 in
  let engine = cl.Cluster.engine in
  let rec client_loop () =
    let txn = Ycsb.next gen in
    proto.Proto.submit txn ~on_done:(fun () -> Engine.schedule engine ~delay:0.0 client_loop)
  in
  for _ = 1 to clients do client_loop () done;
  let last_commits = ref 0 and last_rem = ref 0 and last_adds = ref 0 and last_aborts = ref 0 in
  let t_wall = Unix.gettimeofday () in
  for sec = 1 to secs do
    Engine.run_until engine (Engine.seconds (float_of_int sec));
    proto.Proto.tick ();
    let c = Metrics.commits cl.Cluster.metrics in
    let r = cl.Cluster.remaster_count and a = cl.Cluster.replica_add_count in
    let ab = Metrics.aborts cl.Cluster.metrics in
    let loads = Array.map (fun s -> Server.busy_time s /. 1e6) cl.Cluster.workers in
    Printf.printf "t=%ds commits/s=%d remasters=%d adds=%d aborts=%d single=%.2f loads=[%s]\n%!"
      sec (c - !last_commits) (r - !last_rem) (a - !last_adds) (ab - !last_aborts)
      (float_of_int (Metrics.single_node_commits cl.Cluster.metrics) /. float_of_int (max 1 c))
      (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.1f") loads)));
    last_commits := c; last_rem := r; last_adds := a; last_aborts := ab;
    Array.iter Server.reset_counters cl.Cluster.workers
  done;
  Printf.printf "wall=%.1fs\n" (Unix.gettimeofday () -. t_wall)
