(* Jepsen-style consistency audit driver: run workload x protocol x
   nemesis, record the transaction history, and check it offline for
   serializability anomalies and replica divergence at quiescence.

     dune exec bin/audit_run.exe -- --proto lion --nemesis partition
     dune exec bin/audit_run.exe -- --proto all --nemesis all --seed 7

   Exits non-zero if any combination produces an anomaly or a diverged
   replica, so it slots directly into CI. *)

module Config = Lion_store.Config
module Workloads = Lion_harness.Workloads
module Nemesis = Lion_audit.Nemesis
module Drive = Lion_audit.Drive
module Checker = Lion_audit.Checker
module Divergence = Lion_audit.Divergence

let protocols :
    (string * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list =
  [
    ("2pc", fun cl -> Lion_protocols.Twopc.create cl);
    ("leap", fun cl -> Lion_protocols.Leap.create cl);
    ("clay", fun cl -> Lion_protocols.Clay.create cl);
    ( "lion",
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ("star", fun cl -> Lion_protocols.Star.create cl);
    ("calvin", fun cl -> Lion_protocols.Calvin.create cl);
    ("hermes", fun cl -> Lion_protocols.Hermes.create cl);
    ("aria", fun cl -> Lion_protocols.Aria.create cl);
    ("lotus", fun cl -> Lion_protocols.Lotus.create cl);
    ( "lion-batch",
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
  ]

let nemeses ~nodes ~seed :
    (string * Nemesis.t) list =
  [
    ("calm", Nemesis.calm);
    ("crash", Nemesis.crash ~node:1 ~downtime:1_000_000.0 ());
    ( "partition",
      Nemesis.partition_primary_from_majority ~node:0 ~duration:800_000.0
        ~nodes () );
    ("straggler", Nemesis.straggler_on_coordinator ~node:0 ~duration:1_500_000.0 ());
    ("lossy", Nemesis.lossy ~prob:0.2 ~duration:1_000_000.0 ());
    ("crash-remaster", Nemesis.crash_during_remaster ~node:1 ~downtime:500_000.0 ());
    ( "rolling",
      Nemesis.rename "rolling"
        (Nemesis.stagger ~gap:700_000.0
           [
             Nemesis.crash ~node:1 ~downtime:500_000.0 ();
             Nemesis.crash ~node:2 ~downtime:500_000.0 ();
           ]) );
    ("adversarial", Nemesis.adversarial ~seed ~nodes ~events:5 ~window:2_500_000.0 ());
    ("overload", Nemesis.overload_burst ~node:0 ~duration:1_500_000.0 ());
  ]

let usage ~nodes () =
  Printf.eprintf
    "usage: audit_run [--proto NAME|all] [--nemesis NAME|all] [--seed N]\n\
    \                 [--seconds F] [--clients N] [--cross F] [--skew F]\n\
    \                 [--overload] [-v]\n\
     --overload runs with every overload-protection knob on (bounded\n\
     queues, shedding, retry budgets, breakers, deadlines)\n\
     protocols: all, %s\n\
     nemeses: all, %s\n"
    (String.concat ", " (List.map fst protocols))
    (String.concat ", " (List.map fst (nemeses ~nodes ~seed:1)));
  exit 2

let () =
  let proto = ref "lion" in
  let nemesis = ref "crash" in
  let seed = ref 1 in
  let seconds = ref 4.0 in
  let clients = ref 8 in
  let cross = ref 0.4 in
  let skew = ref 0.6 in
  let verbose = ref false in
  let overload = ref false in
  let nodes = Config.default.Config.nodes in
  let rec parse = function
    | [] -> ()
    | "--proto" :: v :: rest ->
        proto := v;
        parse rest
    | "--nemesis" :: v :: rest ->
        nemesis := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--seconds" :: v :: rest ->
        seconds := float_of_string v;
        parse rest
    | "--clients" :: v :: rest ->
        clients := int_of_string v;
        parse rest
    | "--cross" :: v :: rest ->
        cross := float_of_string v;
        parse rest
    | "--skew" :: v :: rest ->
        skew := float_of_string v;
        parse rest
    | "--overload" :: rest ->
        overload := true;
        parse rest
    | "-v" :: rest | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | _ -> usage ~nodes ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg =
    if !overload then Config.with_overload_defaults Config.default
    else Config.default
  in
  let pick all sel =
    if sel = "all" then all
    else
      match List.find_opt (fun (n, _) -> n = sel) all with
      | Some p -> [ p ]
      | None -> usage ~nodes ()
  in
  let protos = pick protocols !proto in
  let nems = pick (nemeses ~nodes ~seed:!seed) !nemesis in
  let failures = ref 0 in
  Printf.printf "%-10s  %-16s  %7s  %6s  %9s  %7s  %6s  %s\n" "protocol"
    "nemesis" "commits" "aborts" "anomalies" "behind" "avail" "verdict";
  List.iter
    (fun (pname, make) ->
      List.iter
        (fun (nname, nem) ->
          let o =
            Drive.run ~seed:!seed ~clients:!clients ~duration:!seconds ~cfg
              ~make
              ~gen:(Workloads.ycsb ~seed:!seed ~skew:!skew ~cross:!cross cfg)
              ~nemesis:nem ()
          in
          let ok = Drive.passed o in
          if not ok then incr failures;
          Printf.printf "%-10s  %-16s  %7d  %6d  %9d  %7d  %6.3f  %s\n" pname
            nname o.Drive.commits o.Drive.aborts
            (List.length o.Drive.check.Checker.anomalies)
            (List.length o.Drive.divergence.Divergence.findings)
            o.Drive.min_availability
            (if ok then "PASS" else "FAIL");
          if !verbose || not ok then
            Format.printf "%a@." Drive.pp_outcome o)
        nems)
    protos;
  if !failures > 0 then (
    Printf.printf "%d combination(s) FAILED\n" !failures;
    exit 1)
  else Printf.printf "all combinations passed\n"
