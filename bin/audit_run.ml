(* Jepsen-style consistency audit driver: run workload x protocol x
   nemesis, record the transaction history, and check it offline for
   serializability anomalies and replica divergence at quiescence.

     dune exec bin/audit_run.exe -- --proto lion --nemesis partition
     dune exec bin/audit_run.exe -- --proto all --nemesis all --seed 7

   Exits non-zero if any combination produces an anomaly or a diverged
   replica, so it slots directly into CI. *)

module Config = Lion_store.Config
module Workloads = Lion_harness.Workloads
module Nemesis = Lion_audit.Nemesis
module Drive = Lion_audit.Drive
module Checker = Lion_audit.Checker
module Divergence = Lion_audit.Divergence

let protocols :
    (string * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list =
  [
    ("2pc", fun cl -> Lion_protocols.Twopc.create cl);
    ("leap", fun cl -> Lion_protocols.Leap.create cl);
    ("clay", fun cl -> Lion_protocols.Clay.create cl);
    ( "lion",
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ("star", fun cl -> Lion_protocols.Star.create cl);
    ("calvin", fun cl -> Lion_protocols.Calvin.create cl);
    ("hermes", fun cl -> Lion_protocols.Hermes.create cl);
    ("aria", fun cl -> Lion_protocols.Aria.create cl);
    ("lotus", fun cl -> Lion_protocols.Lotus.create cl);
    ("epoch", fun cl -> Lion_protocols.Epoch.create cl);
    ( "lion-batch",
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
  ]

let nemeses ~nodes ~seed :
    (string * Nemesis.t) list =
  [
    ("calm", Nemesis.calm);
    ("crash", Nemesis.crash ~node:1 ~downtime:1_000_000.0 ());
    ( "partition",
      Nemesis.partition_primary_from_majority ~node:0 ~duration:800_000.0
        ~nodes () );
    ("straggler", Nemesis.straggler_on_coordinator ~node:0 ~duration:1_500_000.0 ());
    ("lossy", Nemesis.lossy ~prob:0.2 ~duration:1_000_000.0 ());
    ("crash-remaster", Nemesis.crash_during_remaster ~node:1 ~downtime:500_000.0 ());
    ( "rolling",
      Nemesis.rename "rolling"
        (Nemesis.stagger ~gap:700_000.0
           [
             Nemesis.crash ~node:1 ~downtime:500_000.0 ();
             Nemesis.crash ~node:2 ~downtime:500_000.0 ();
           ]) );
    ("adversarial", Nemesis.adversarial ~seed ~nodes ~events:5 ~window:2_500_000.0 ());
    ("overload", Nemesis.overload_burst ~node:0 ~duration:1_500_000.0 ());
  ]

(* Selectable by name but excluded from "all": with the default config
   (session tagging off) this nemesis is *supposed* to produce the
   stale-replica divergence — that is its point. Run it with
   --rejoin-safe, or let --assert-rejoin-safe check both sides. *)
let crash_rejoin_nemesis = ("crash-rejoin", Nemesis.crash_rejoin ())

let usage ~nodes () =
  Printf.eprintf
    "usage: audit_run [--proto NAME|all] [--nemesis NAME|all] [--seed N]\n\
    \                 [--seconds F] [--clients N] [--cross F] [--skew F]\n\
    \                 [--overload] [--rejoin-safe] [--assert-rejoin-safe]\n\
    \                 [--liveness] [-v]\n\
     --overload runs with every overload-protection knob on (bounded\n\
     queues, shedding, retry budgets, breakers, deadlines)\n\
     --rejoin-safe turns on replication session tagging\n\
     --liveness also fails a combination whose liveness audit finds\n\
     wedges (stuck txns, pinned breakers, parked partitions, ...);\n\
     an exhausted event budget always fails — the audit was truncated\n\
     --assert-rejoin-safe checks the crash-rejoin nemesis both ways:\n\
     divergence without tagging, clean with it (lion, star, 2pc)\n\
     protocols: all, %s\n\
     nemeses: all, %s, crash-rejoin (not in \"all\"; see --rejoin-safe)\n"
    (String.concat ", " (List.map fst protocols))
    (String.concat ", " (List.map fst (nemeses ~nodes ~seed:1)));
  exit 2

(* The membership-safety gate (docs/MEMBERSHIP.md): the crash-rejoin
   nemesis must corrupt an untagged cluster — proving the scenario has
   teeth — and a tagged one must reject the stale streams and audit
   clean across the representative protocols. *)
let assert_rejoin_safe ~seed ~seconds ~clients ~cross ~skew () =
  let nem = snd crash_rejoin_nemesis in
  let run ~tagging make =
    let cfg = { Config.default with Config.session_tagging = tagging } in
    Drive.run ~seed ~clients ~duration:seconds ~cfg ~make
      ~gen:(Workloads.ycsb ~seed ~skew ~cross cfg)
      ~nemesis:nem ()
  in
  let find name = List.assoc name protocols in
  let off = run ~tagging:false (find "lion") in
  let stale_found =
    List.exists
      (function Divergence.Stale_replica _ -> true | _ -> false)
      off.Drive.divergence.Divergence.findings
  in
  Printf.printf "tagging off  lion: %d divergence finding(s)%s\n"
    (List.length off.Drive.divergence.Divergence.findings)
    (if stale_found then ", stale replica reproduced"
     else " — expected a stale replica, found none");
  let on_ok =
    List.for_all
      (fun name ->
        let o = run ~tagging:true (find name) in
        let ok = Drive.passed o in
        Printf.printf "tagging on   %-5s: %s (%d stale acks rejected)\n" name
          (if ok then "clean" else "DIVERGED")
          o.Drive.stale_rejections;
        ok)
      [ "lion"; "star"; "2pc" ]
  in
  if stale_found && on_ok then (
    Printf.printf "rejoin-safety gate OK\n";
    exit 0)
  else (
    Printf.printf "rejoin-safety gate FAILED\n";
    exit 1)

let () =
  let proto = ref "lion" in
  let nemesis = ref "crash" in
  let seed = ref 1 in
  let seconds = ref 4.0 in
  let clients = ref 8 in
  let cross = ref 0.4 in
  let skew = ref 0.6 in
  let verbose = ref false in
  let overload = ref false in
  let rejoin_safe = ref false in
  let assert_rejoin = ref false in
  let liveness_gate = ref false in
  let nodes = Config.default.Config.nodes in
  let rec parse = function
    | [] -> ()
    | "--proto" :: v :: rest ->
        proto := v;
        parse rest
    | "--nemesis" :: v :: rest ->
        nemesis := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--seconds" :: v :: rest ->
        seconds := float_of_string v;
        parse rest
    | "--clients" :: v :: rest ->
        clients := int_of_string v;
        parse rest
    | "--cross" :: v :: rest ->
        cross := float_of_string v;
        parse rest
    | "--skew" :: v :: rest ->
        skew := float_of_string v;
        parse rest
    | "--overload" :: rest ->
        overload := true;
        parse rest
    | "--rejoin-safe" :: rest ->
        rejoin_safe := true;
        parse rest
    | "--assert-rejoin-safe" :: rest ->
        assert_rejoin := true;
        parse rest
    | "--liveness" :: rest ->
        liveness_gate := true;
        parse rest
    | "-v" :: rest | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | _ -> usage ~nodes ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !assert_rejoin then
    assert_rejoin_safe ~seed:!seed ~seconds:!seconds ~clients:!clients
      ~cross:!cross ~skew:!skew ();
  let cfg =
    if !overload then Config.with_overload_defaults Config.default
    else Config.default
  in
  let cfg = { cfg with Config.session_tagging = cfg.Config.session_tagging || !rejoin_safe } in
  let pick all sel =
    if sel = "all" then all
    else
      match List.find_opt (fun (n, _) -> n = sel) all with
      | Some p -> [ p ]
      | None -> usage ~nodes ()
  in
  let protos = pick protocols !proto in
  (* crash-rejoin resolves by name only: "all" must stay green on the
     default config, and this nemesis exists to diverge it. *)
  let nems =
    if !nemesis = fst crash_rejoin_nemesis then [ crash_rejoin_nemesis ]
    else pick (nemeses ~nodes ~seed:!seed) !nemesis
  in
  let failures = ref 0 in
  Printf.printf "%-10s  %-16s  %7s  %6s  %9s  %7s  %6s  %6s  %s\n" "protocol"
    "nemesis" "commits" "aborts" "anomalies" "behind" "wedged" "avail" "verdict";
  List.iter
    (fun (pname, make) ->
      List.iter
        (fun (nname, nem) ->
          let o =
            Drive.run ~seed:!seed ~clients:!clients ~duration:!seconds ~cfg
              ~make
              ~gen:(Workloads.ycsb ~seed:!seed ~skew:!skew ~cross:!cross cfg)
              ~nemesis:nem ()
          in
          (* An exhausted event budget always fails: the drain never
             reached quiescence, so the safety verdict above was taken
             on a truncated history. The liveness audit as a whole is
             opt-in ([--liveness]) because some nemeses wedge clusters
             by design. *)
          let ok =
            (if !liveness_gate then Drive.healthy o else Drive.passed o)
            && not o.Drive.exhausted
          in
          if not ok then incr failures;
          Printf.printf "%-10s  %-16s  %7d  %6d  %9d  %7d  %6d  %6.3f  %s\n"
            pname nname o.Drive.commits o.Drive.aborts
            (List.length o.Drive.check.Checker.anomalies)
            (List.length o.Drive.divergence.Divergence.findings)
            (List.length o.Drive.liveness.Lion_audit.Liveness.findings)
            o.Drive.min_availability
            (if ok then "PASS" else "FAIL");
          if !verbose || not ok then
            Format.printf "%a@." Drive.pp_outcome o)
        nems)
    protos;
  if !failures > 0 then (
    Printf.printf "%d combination(s) FAILED\n" !failures;
    exit 1)
  else Printf.printf "all combinations passed\n"
