(* Command-line interface to the Lion reproduction.

   Subcommands:
     run        run one protocol on one workload, print a summary
     experiment run a named paper experiment (fig6, fig7, ...)
     list       list protocols and experiments *)

open Cmdliner
module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Table = Lion_kernel.Table

let protocols : (string * (bool * (Lion_store.Cluster.t -> Lion_protocols.Proto.t))) list =
  [
    ("2pc", (false, Lion_protocols.Twopc.create));
    ("leap", (false, Lion_protocols.Leap.create));
    ("clay", (false, fun cl -> Lion_protocols.Clay.create cl));
    ("unified", (false, Lion_protocols.Unified.create));
    ("star", (true, Lion_protocols.Star.create));
    ("calvin", (true, Lion_protocols.Calvin.create));
    ("hermes", (true, Lion_protocols.Hermes.create));
    ("aria", (true, Lion_protocols.Aria.create));
    ("lotus", (true, fun cl -> Lion_protocols.Lotus.create cl));
    ("lion", (false, fun cl -> Lion_core.Standard.create ~name:"Lion" cl));
    ("lion-batch", (true, fun cl -> Lion_core.Batch_mode.create ~name:"Lion" cl));
  ]

let protocol_conv =
  let parse s =
    match List.assoc_opt s protocols with
    | Some _ -> Ok s
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown protocol %S (try: %s)" s
               (String.concat ", " (List.map fst protocols))))
  in
  Arg.conv (parse, Format.pp_print_string)

(* --- run --- *)

let do_run protocol workload nodes skew cross duration warmup remaster_delay seed csv =
  let cfg =
    {
      (Config.with_nodes Config.default nodes) with
      Config.remaster_delay;
      remaster_cooldown = 10.0 *. remaster_delay;
    }
  in
  let batch, make = List.assoc protocol protocols in
  let gen =
    match workload with
    | "ycsb" -> Workloads.ycsb ~seed:(seed + 1) ~skew ~cross cfg
    | "tpcc" -> Workloads.tpcc ~seed:(seed + 1) ~skew ~cross cfg
    | "dynamic" -> Workloads.dynamic_position ~seed:(seed + 1) ~period:8.0 cfg
    | w -> failwith (Printf.sprintf "unknown workload %S (ycsb | tpcc | dynamic)" w)
  in
  let r =
    Runner.run ~seed ~batch ~cfg ~make ~gen
      { Runner.quick with Runner.warmup; duration }
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s on %s (nodes=%d skew=%.2f cross=%.2f)" protocol workload nodes
           skew cross)
      ~columns:[ "metric"; "value" ]
  in
  Table.add_row t [ "throughput (txn/s)"; Table.cell_float ~decimals:0 r.Runner.throughput ];
  Table.add_row t [ "commits"; Table.cell_int r.Runner.commits ];
  Table.add_row t [ "aborts"; Table.cell_int r.Runner.aborts ];
  Table.add_row t [ "p50 latency (ms)"; Table.cell_float ~decimals:2 (r.Runner.p50 /. 1000.0) ];
  Table.add_row t [ "p95 latency (ms)"; Table.cell_float ~decimals:2 (r.Runner.p95 /. 1000.0) ];
  Table.add_row t
    [ "single-node %"; Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio) ];
  Table.add_row t [ "bytes/txn"; Table.cell_float ~decimals:0 r.Runner.bytes_per_txn ];
  Table.add_row t [ "remasters"; Table.cell_int r.Runner.remasters ];
  Table.add_row t [ "replica adds"; Table.cell_int r.Runner.replica_adds ];
  Table.print t;
  (match csv with
  | Some path ->
      Lion_harness.Export.result_csv ~path [ (protocol, r) ];
      Printf.printf "summary written to %s\n" path
  | None -> ());
  0

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv "lion" & info [ "p"; "protocol" ] ~doc:"Protocol to run.")
  in
  let workload =
    Arg.(value & opt string "ycsb" & info [ "w"; "workload" ] ~doc:"ycsb | tpcc | dynamic.")
  in
  let nodes = Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~doc:"Executor node count.") in
  let skew = Arg.(value & opt float 0.0 & info [ "skew" ] ~doc:"Skew factor (0..1).") in
  let cross =
    Arg.(value & opt float 0.5 & info [ "cross" ] ~doc:"Cross-partition transaction ratio.")
  in
  let duration =
    Arg.(value & opt float 6.0 & info [ "duration" ] ~doc:"Measured simulated seconds.")
  in
  let warmup = Arg.(value & opt float 4.0 & info [ "warmup" ] ~doc:"Warm-up seconds.") in
  let remaster =
    Arg.(value & opt float 300.0 & info [ "remaster-delay" ] ~doc:"Remaster delay in us.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write a summary CSV.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol on one workload")
    Term.(
      const do_run $ protocol $ workload $ nodes $ skew $ cross $ duration $ warmup
      $ remaster $ seed $ csv)

(* --- experiment --- *)

let do_experiment name scale =
  match List.find_opt (fun (id, _, _) -> id = name) Lion_harness.Experiments.registry with
  | Some (_, desc, f) ->
      Printf.printf ">>> %s - %s\n%!" name desc;
      f scale;
      0
  | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" name
        (String.concat ", "
           (List.map (fun (id, _, _) -> id) Lion_harness.Experiments.registry));
      1

let experiment_cmd =
  let exp_name = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Duration scale factor.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run a named paper experiment (fig6 .. fig14, table1)")
    Term.(const do_experiment $ exp_name $ scale)

(* --- compare --- *)

let do_compare names workload nodes skew cross duration warmup remaster_delay seed csv =
  let cfg =
    {
      (Config.with_nodes Config.default nodes) with
      Config.remaster_delay;
      remaster_cooldown = 10.0 *. remaster_delay;
    }
  in
  let selected =
    match names with
    | [] -> List.map fst protocols
    | _ -> names
  in
  let results =
    List.map
      (fun name ->
        match List.assoc_opt name protocols with
        | None -> failwith (Printf.sprintf "unknown protocol %S" name)
        | Some (batch, make) ->
            let gen =
              match workload with
              | "ycsb" -> Workloads.ycsb ~seed:(seed + 1) ~skew ~cross cfg
              | "tpcc" -> Workloads.tpcc ~seed:(seed + 1) ~skew ~cross cfg
              | "dynamic" -> Workloads.dynamic_position ~seed:(seed + 1) ~period:8.0 cfg
              | w -> failwith (Printf.sprintf "unknown workload %S" w)
            in
            ( name,
              Runner.run ~seed ~batch ~cfg ~make ~gen
                { Runner.quick with Runner.warmup; duration } ))
      selected
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s (nodes=%d skew=%.2f cross=%.2f)" workload nodes skew cross)
      ~columns:[ "protocol"; "k txn/s"; "p50 (ms)"; "p95 (ms)"; "single-node %"; "aborts" ]
  in
  List.iter
    (fun (name, (r : Runner.result)) ->
      Table.add_row t
        [
          name;
          Table.cell_float ~decimals:1 (r.Runner.throughput /. 1000.0);
          Table.cell_float ~decimals:2 (r.Runner.p50 /. 1000.0);
          Table.cell_float ~decimals:2 (r.Runner.p95 /. 1000.0);
          Table.cell_float ~decimals:1 (100.0 *. r.Runner.single_node_ratio);
          Table.cell_int r.Runner.aborts;
        ])
    results;
  Table.print t;
  (match csv with
  | Some path ->
      Lion_harness.Export.result_csv ~path results;
      Printf.printf "summary written to %s\n" path
  | None -> ());
  0

let compare_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"PROTOCOL" ~doc:"Protocols (default: all).")
  in
  let workload =
    Arg.(value & opt string "ycsb" & info [ "w"; "workload" ] ~doc:"ycsb | tpcc | dynamic.")
  in
  let nodes = Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~doc:"Executor node count.") in
  let skew = Arg.(value & opt float 0.0 & info [ "skew" ] ~doc:"Skew factor (0..1).") in
  let cross =
    Arg.(value & opt float 0.5 & info [ "cross" ] ~doc:"Cross-partition transaction ratio.")
  in
  let duration =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~doc:"Measured simulated seconds.")
  in
  let warmup = Arg.(value & opt float 4.0 & info [ "warmup" ] ~doc:"Warm-up seconds.") in
  let remaster =
    Arg.(value & opt float 300.0 & info [ "remaster-delay" ] ~doc:"Remaster delay in us.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write a summary CSV.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run several protocols on one workload, side by side")
    Term.(
      const do_compare $ names $ workload $ nodes $ skew $ cross $ duration $ warmup
      $ remaster $ seed $ csv)

(* --- list --- *)

let do_list () =
  print_endline "protocols:";
  List.iter (fun (name, (batch, _)) ->
      Printf.printf "  %-10s %s\n" name (if batch then "(batch)" else "(standard)"))
    protocols;
  print_endline "experiments:";
  List.iter
    (fun (id, desc, _) -> Printf.printf "  %-8s %s\n" id desc)
    Lion_harness.Experiments.registry;
  0

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List protocols and experiments") Term.(const do_list $ const ())

let setup_logging () =
  (* LION_LOG=debug|info|warning enables the library's structured logs
     (lion.planner, lion.cluster). *)
  match Sys.getenv_opt "LION_LOG" with
  | None -> ()
  | Some level ->
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level
        (match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | _ -> Some Logs.Warning)

let () =
  setup_logging ();
  let doc = "Lion: adaptive replica provision on a simulated cluster" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "lion" ~doc) [ run_cmd; compare_cmd; experiment_cmd; list_cmd ]))
