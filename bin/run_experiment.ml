(* CLI: run one named experiment (or "all") at a given scale. *)
let () =
  let name = try Sys.argv.(1) with _ -> "all" in
  let scale = try float_of_string Sys.argv.(2) with _ -> 1.0 in
  if name = "all" then Lion_harness.Experiments.run_all ~scale ()
  else
    match
      List.find_opt (fun (id, _, _) -> id = name) Lion_harness.Experiments.registry
    with
    | Some (_, desc, f) ->
        Printf.printf ">>> %s — %s\n%!" name desc;
        f scale
    | None ->
        Printf.eprintf "unknown experiment %s; available: %s\n" name
          (String.concat ", "
             (List.map (fun (id, _, _) -> id) Lion_harness.Experiments.registry));
        exit 1
