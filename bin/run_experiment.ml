(* CLI: run one named experiment (or "all") at a given scale.

   [--trace] installs a trace sink: every Runner.run inside the
   experiment gets a tracer retaining its 5 slowest transactions; at
   each run's end a Chrome/Perfetto trace file lands in traces/ and a
   critical-path summary prints to stdout. *)
let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace_on = List.mem "--trace" args in
  let args = List.filter (fun a -> a <> "--trace") args in
  let name = match args with n :: _ -> n | [] -> "all" in
  let scale =
    match args with
    | _ :: s :: _ -> ( try float_of_string s with _ -> 1.0)
    | _ -> 1.0
  in
  if trace_on then (
    (try Unix.mkdir "traces" 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let counter = ref 0 in
    Lion_harness.Runner.set_trace_sink
      {
        Lion_harness.Runner.fresh =
          (fun () ->
            Lion_trace.Trace.create ~policy:(Lion_trace.Trace.Slowest 5) ());
        emit =
          (fun t ->
            incr counter;
            let path = Printf.sprintf "traces/run-%03d.json" !counter in
            Lion_trace.Chrome.write ~path ~label:path
              ~instants:(Lion_trace.Trace.instants t)
              (Lion_trace.Trace.retained t);
            Lion_trace.Report.print ~top:3 ~label:path t);
      });
  if name = "all" then Lion_harness.Experiments.run_all ~scale ()
  else
    match
      List.find_opt (fun (id, _, _) -> id = name) Lion_harness.Experiments.registry
    with
    | Some (_, desc, f) ->
        Printf.printf ">>> %s — %s\n%!" name desc;
        f scale
    | None ->
        (* Exit 2 = usage error, like the other CLIs; scripts can tell a
           typo'd id from an experiment that itself failed. *)
        Printf.eprintf "unknown experiment %s; available: %s\n" name
          (String.concat ", "
             (List.map (fun (id, _, _) -> id) Lion_harness.Experiments.registry));
        exit 2
