(* Perf harness driver: runs the registered scenarios under bechamel
   and writes a schema-stable BENCH_<date>.json; with --baseline it
   also gates the fresh run against a committed baseline file
   (docs/PERF.md). Exit codes: 0 ok, 1 gate failure, 2 usage/IO. *)

module Scenario = Lion_perf.Scenario
module Registry = Lion_perf.Registry
module Report = Lion_perf.Report

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d%02d%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let () =
  let quick = ref false in
  let out = ref "" in
  let only = ref "" in
  let baseline = ref "" in
  let list = ref false in
  let spec =
    [
      ("--quick", Arg.Set quick, " fewer samples (CI smoke mode)");
      ("--out", Arg.Set_string out, "FILE output path (default BENCH_<date>.json)");
      ( "--only",
        Arg.Set_string only,
        "NAMES comma-separated scenario subset to run" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE gate the fresh run against this bench file" );
      ("--list", Arg.Set list, " list scenario names and exit");
    ]
  in
  let usage = "perf_run [--quick] [--only a,b] [--out FILE] [--baseline FILE]" in
  Arg.parse (Arg.align spec) (fun a -> raise (Arg.Bad ("unexpected " ^ a))) usage;
  if !list then (
    List.iter print_endline (Registry.names ());
    exit 0);
  let scenarios =
    if !only = "" then Registry.all
    else
      String.split_on_char ',' !only
      |> List.map (fun name ->
             match Registry.find (String.trim name) with
             | Some s -> s
             | None ->
                 Printf.eprintf "unknown scenario %S; valid: %s\n" name
                   (String.concat ", " (Registry.names ()));
                 exit 2)
  in
  let results =
    List.map
      (fun (s : Scenario.spec) ->
        Printf.printf "running %-18s %s ...%!" s.Scenario.name s.Scenario.descr;
        let t0 = Unix.gettimeofday () in
        let r = Scenario.measure ~quick:!quick s in
        Printf.printf " %.0f ns/op (p50), %d samples, %.1fs\n%!"
          r.Scenario.p50_ns r.Scenario.samples
          (Unix.gettimeofday () -. t0);
        r)
      scenarios
  in
  let path = if !out = "" then Printf.sprintf "BENCH_%s.json" (today ()) else !out in
  Report.write ~path ~date:(today ()) ~quick:!quick results;
  Printf.printf "wrote %s\n" path;
  List.iter
    (fun (r : Scenario.result) ->
      Printf.printf
        "  %-18s %12.0f ev/s %10.0f txn/s %8.2f w/ev  p50 %.0f ns/op\n"
        r.Scenario.name r.Scenario.events_per_sec r.Scenario.txns_per_sec
        r.Scenario.minor_words_per_event r.Scenario.p50_ns)
    results;
  (match Report.drain_speedup results with
  | Some s -> Printf.printf "engine drain speedup vs seed: %.2fx\n" s
  | None -> ());
  if !baseline <> "" then (
    let base =
      try Report.load !baseline
      with Sys_error e | Report.Parse_error e ->
        Printf.eprintf "cannot load baseline: %s\n" e;
        exit 2
    in
    let wall_gates = Sys.getenv_opt "LION_PERF_NO_WALL_GATE" = None in
    if not wall_gates then
      Printf.printf "wall-time gates disabled (LION_PERF_NO_WALL_GATE)\n";
    let notes, failures =
      Report.compare_against ~baseline:base ~current:results ~wall_gates
    in
    List.iter (fun n -> Printf.printf "note: %s\n" n) notes;
    if failures <> [] then (
      List.iter (fun f -> Printf.printf "FAIL: %s\n" f) failures;
      exit 1);
    Printf.printf "all perf gates pass against %s\n" !baseline)
