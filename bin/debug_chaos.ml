(* Developer tool: run Lion standard under a crash fault plan and print
   the per-second throughput and availability, plus the fault counters
   — the fastest way to watch failover, timeout/retry behaviour and
   recovery.

   Usage: dune exec bin/debug_chaos.exe -- [crashed] [fail_s] [recover_s] [total_s]
                                           [--min-availability F] [--max-anomalies N]
                                           [--json]
   where [crashed] is how many nodes (1, 2, ...) crash at [fail_s]
   (nodes 1..crashed) and rejoin at [recover_s].

   [--json] replaces the human-readable table with one JSON summary
   object on stdout — for scripts that diff or plot chaos runs. The
   default text output is untouched (CI diffs it byte-for-byte).

   The threshold flags turn the tool into a CI gate: the run records a
   consistency-audit history, and the exit status is non-zero if the
   serializability checker reports more than [--max-anomalies]
   (default: disabled) or any availability sample falls below
   [--min-availability] (default: disabled). *)

module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module History = Lion_store.History
module Checker = Lion_audit.Checker
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads

let () =
  let min_avail = ref neg_infinity in
  let max_anomalies = ref max_int in
  let json = ref false in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--min-availability" :: v :: rest ->
        min_avail := float_of_string v;
        parse rest
    | "--max-anomalies" :: v :: rest ->
        max_anomalies := int_of_string v;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | v :: rest ->
        positional := v :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let positional = Array.of_list (List.rev !positional) in
  let pos i = if i < Array.length positional then Some positional.(i) else None in
  let crashed = try int_of_string (Option.get (pos 0)) with _ -> 1 in
  (* Node 0 stays up so the cluster always has a survivor. *)
  let crashed = min crashed (Config.default.Config.nodes - 1) in
  let fail_s = try float_of_string (Option.get (pos 1)) with _ -> 6.0 in
  let recover_s = try float_of_string (Option.get (pos 2)) with _ -> 16.0 in
  let total = try float_of_string (Option.get (pos 3)) with _ -> 20.0 in
  let plan =
    List.concat_map
      (fun node ->
        Fault.crash_recover ~node
          ~at:(Engine.seconds fail_s)
          ~downtime:(Engine.seconds (recover_s -. fail_s)))
      (List.init crashed (fun i -> i + 1))
  in
  let cfg = { Config.default with Config.fault_plan = plan } in
  let gate = !min_avail > neg_infinity || !max_anomalies < max_int in
  (* Record a history only when a gate asked for it: recording off is
     the bit-for-bit-identical default. *)
  let history = if gate then Some (History.create ()) else None in
  let r =
    Runner.run ?history ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:
            { Lion_core.Planner.default_config with Lion_core.Planner.predict = false }
          cl)
      ~gen:(Workloads.ycsb ~cross:0.5 cfg)
      { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
  in
  let anomalies =
    Option.map
      (fun h ->
        let report = Checker.check (History.events h) in
        (report, List.length report.Checker.anomalies))
      history
  in
  if !json then begin
    (* One machine-readable summary object; 1e-9 rounding keeps the
       encoding of floats stable across identical runs. *)
    let fl v = Printf.sprintf "%.9g" v in
    let series to_s arr =
      String.concat ","
        (List.filteri
           (fun i _ -> i < int_of_float total)
           (Array.to_list (Array.map to_s arr)))
    in
    Printf.printf
      "{\"crashed\":%d,\"fail_s\":%s,\"recover_s\":%s,\"total_s\":%s,\n\
      \ \"throughput_txn_s\":[%s],\n\
      \ \"availability\":[%s],\n\
      \ \"timeouts\":%d,\"retries\":%d,\"drops\":%d,\"unavail_s\":%s,\n\
      \ \"recovery_s\":%s,\"goodput_txn_s\":%s,\"anomalies\":%s}\n"
      crashed (fl fail_s) (fl recover_s) (fl total)
      (series (fun v -> fl v) r.Runner.throughput_series)
      (series (fun v -> fl v) r.Runner.availability)
      r.Runner.timeouts r.Runner.retries r.Runner.drops
      (fl r.Runner.unavail_seconds)
      (if Float.is_finite r.Runner.time_to_recover then
         fl r.Runner.time_to_recover
       else "null")
      (fl r.Runner.goodput_under_fault)
      (match anomalies with None -> "null" | Some (_, n) -> string_of_int n)
  end
  else begin
    Printf.printf "second  k txn/s  availability\n";
    Array.iteri
      (fun i tput ->
        if i < int_of_float total then
          let a =
            if i < Array.length r.Runner.availability then r.Runner.availability.(i)
            else nan
          in
          Printf.printf "%6d  %7.1f  %.4f\n" (i + 1) (tput /. 1000.0) a)
      r.Runner.throughput_series;
    Printf.printf
      "timeouts %d  retries %d  drops %d  unavail %.1fs  recovery %s  goodput %.1fk\n"
      r.Runner.timeouts r.Runner.retries r.Runner.drops r.Runner.unavail_seconds
      (if Float.is_finite r.Runner.time_to_recover then
         Printf.sprintf "%.0fs" r.Runner.time_to_recover
       else "not yet")
      (r.Runner.goodput_under_fault /. 1000.0)
  end;
  let failed = ref false in
  (match anomalies with
  | None -> ()
  | Some (report, n) ->
      if not !json then
        Printf.printf "audit: %d events, %d anomalies\n" report.Checker.events n;
      if n > !max_anomalies then (
        if not !json then Format.printf "%a@." Checker.pp_report report;
        Printf.printf "FAIL: %d anomalies > --max-anomalies %d\n" n !max_anomalies;
        failed := true));
  if !min_avail > neg_infinity then (
    let lowest = Array.fold_left Stdlib.min 1.0 r.Runner.availability in
    if lowest < !min_avail then (
      Printf.printf "FAIL: availability %.4f < --min-availability %.4f\n" lowest
        !min_avail;
      failed := true));
  if !failed then exit 1
