(* Developer tool: run Lion standard under a crash fault plan and print
   the per-second throughput and availability, plus the fault counters
   — the fastest way to watch failover, timeout/retry behaviour and
   recovery.

   Usage: dune exec bin/debug_chaos.exe -- [crashed] [fail_s] [recover_s] [total_s]
   where [crashed] is how many nodes (1, 2, ...) crash at [fail_s]
   (nodes 1..crashed) and rejoin at [recover_s]. *)

module Config = Lion_store.Config
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads

let () =
  let crashed = try int_of_string Sys.argv.(1) with _ -> 1 in
  (* Node 0 stays up so the cluster always has a survivor. *)
  let crashed = min crashed (Config.default.Config.nodes - 1) in
  let fail_s = try float_of_string Sys.argv.(2) with _ -> 6.0 in
  let recover_s = try float_of_string Sys.argv.(3) with _ -> 16.0 in
  let total = try float_of_string Sys.argv.(4) with _ -> 20.0 in
  let plan =
    List.concat_map
      (fun node ->
        Fault.crash_recover ~node
          ~at:(Engine.seconds fail_s)
          ~downtime:(Engine.seconds (recover_s -. fail_s)))
      (List.init crashed (fun i -> i + 1))
  in
  let cfg = { Config.default with Config.fault_plan = plan } in
  let r =
    Runner.run ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:
            { Lion_core.Planner.default_config with Lion_core.Planner.predict = false }
          cl)
      ~gen:(Workloads.ycsb ~cross:0.5 cfg)
      { Runner.quick with warmup = 0.0; duration = total; tick_every = 1.0 }
  in
  Printf.printf "second  k txn/s  availability\n";
  Array.iteri
    (fun i tput ->
      if i < int_of_float total then
        let a =
          if i < Array.length r.Runner.availability then r.Runner.availability.(i)
          else nan
        in
        Printf.printf "%6d  %7.1f  %.4f\n" (i + 1) (tput /. 1000.0) a)
    r.Runner.throughput_series;
  Printf.printf
    "timeouts %d  retries %d  drops %d  unavail %.1fs  recovery %s  goodput %.1fk\n"
    r.Runner.timeouts r.Runner.retries r.Runner.drops r.Runner.unavail_seconds
    (if Float.is_finite r.Runner.time_to_recover then
       Printf.sprintf "%.0fs" r.Runner.time_to_recover
     else "not yet")
    (r.Runner.goodput_under_fault /. 1000.0)
