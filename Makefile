# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench chaos examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

# Fault-injection experiments at quick scale (see docs/FAULTS.md).
chaos:
	dune exec bin/run_experiment.exe -- fault_crash_sweep 0.5
	dune exec bin/run_experiment.exe -- fault_partition 0.5
	dune exec bin/run_experiment.exe -- fault_straggler 0.25

examples:
	dune exec examples/quickstart.exe
	dune exec examples/planner_explain.exe
	dune exec examples/smallbank_demo.exe

clean:
	dune clean
