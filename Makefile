# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/planner_explain.exe
	dune exec examples/smallbank_demo.exe

clean:
	dune clean
