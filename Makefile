# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench perf perf-smoke chaos audit fuzz elastic overload trace geo examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

# Full perf run (see docs/PERF.md): every registered scenario under
# bechamel, writing schema-stable BENCH_<date>.json in the repo root
# and gating against the committed baseline.
perf:
	dune exec bin/perf_run.exe -- --baseline bench/perf_baseline.json

# Quick CI variant: fewer samples, shorter quota, same scenarios and
# the same gates (minor-words/event, calibrated wall p50, drain
# speedup floor).
perf-smoke:
	dune exec bin/perf_run.exe -- --quick --baseline bench/perf_baseline.json

# Fault-injection experiments at quick scale (see docs/FAULTS.md).
chaos:
	dune exec bin/run_experiment.exe -- fault_crash_sweep 0.5
	dune exec bin/run_experiment.exe -- fault_partition 0.5
	dune exec bin/run_experiment.exe -- fault_straggler 0.25

# Jepsen-style consistency audit (see docs/CONSISTENCY.md): every
# protocol under a crash, then Lion under every nemesis. Exits
# non-zero on any serializability anomaly or diverged replica.
audit:
	dune exec bin/audit_run.exe -- --proto all --nemesis crash --seconds 2
	dune exec bin/audit_run.exe -- --proto lion --nemesis all --seconds 2
	dune exec bin/audit_run.exe -- --proto lion --nemesis overload --overload \
		--seconds 2
	dune exec bin/audit_run.exe -- --proto epoch --nemesis all --seconds 2
	dune exec bin/audit_run.exe -- --assert-rejoin-safe

# Coverage-guided fault-schedule fuzzing (see docs/FUZZING.md): a
# seeded campaign over random fault schedules, checked for safety and
# liveness, then the planted-bug gate — with the phantom-secondary bug
# re-planted the fuzzer must find it and shrink the repro to <=3 ops,
# and with the flag off the same budget must audit clean.
fuzz:
	dune exec bin/fuzz_run.exe -- --seed 7 --rounds 60 \
		--protos lion-batch,lion,2pc --shrink --assert-clean
	dune exec bin/fuzz_run.exe -- --seed 7 --rounds 60 \
		--protos lion-batch,lion,2pc --reintroduce-phantom --shrink \
		--assert-finds-bug

# Elastic-membership experiment (see docs/MEMBERSHIP.md): the LSTM
# forecaster drives node join/decommission over a diurnal cycle while
# open-loop traffic runs; reports time-to-rebalance and goodput dips.
elastic:
	dune exec bin/elastic_run.exe -- --smoke

# Overload experiments (see docs/OVERLOAD.md): offered-load sweeps for
# lion/star/twopc through 1.5x capacity (with and without protection)
# plus the metastable-failure repro; CSVs land in overload/.
overload:
	dune exec bin/overload_sweep.exe -- --out overload

# Slow-transaction traces (see docs/TRACING.md): Lion vs 2PC on a
# skewed, 50%-cross workload; Chrome/Perfetto JSON lands in traces/.
trace:
	mkdir -p traces
	dune exec bin/trace_txn.exe -- --proto lion --cross 0.5 --skew 0.8 \
		--out traces/lion.json
	dune exec bin/trace_txn.exe -- --proto 2pc --cross 0.5 --skew 0.8 \
		--out traces/2pc.json

# Geo-replication experiments (see docs/GEO.md): cross-region ratio
# sweeps at 2 and 3 regions for lion/star/2pc/epoch — asserting the
# Lion-vs-EpochOCC crossover — plus goodput under a WAN partition.
geo:
	dune exec bin/geo_sweep.exe -- --assert-crossover

examples:
	dune exec examples/quickstart.exe
	dune exec examples/planner_explain.exe
	dune exec examples/smallbank_demo.exe

clean:
	dune clean
	rm -rf traces overload
