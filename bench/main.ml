(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§VI) on the simulated cluster — one experiment per figure, printing
   the same series the paper plots (see EXPERIMENTS.md for the
   paper-vs-measured comparison).

   Part 2 runs bechamel microbenchmarks of the core building blocks
   (heat-graph construction, clump generation, the cost model,
   Algorithm 1, LSTM inference/training, OCC sessions, the event
   engine), reporting ns/op.

   Environment:
     LION_BENCH_SCALE       multiply simulated durations (default 0.6 —
                            a complete run in ~40 minutes of wall
                            time; 1.0 reproduces the full windows)
     LION_BENCH_ONLY        comma-separated experiment ids (default: all)
     LION_BENCH_SKIP_MICRO  set to skip the bechamel section *)

module Experiments = Lion_harness.Experiments

let getenv name default = match Sys.getenv_opt name with Some v -> v | None -> default

(* ------------------------------------------------------------------ *)
(* Part 1: paper experiments                                           *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  let scale = float_of_string (getenv "LION_BENCH_SCALE" "0.6") in
  let only =
    match Sys.getenv_opt "LION_BENCH_ONLY" with
    | None -> None
    | Some s -> Some (String.split_on_char ',' s)
  in
  let selected =
    match only with
    | None -> Experiments.registry
    | Some ids ->
        (* A typo'd id silently selecting nothing looks exactly like a
           clean zero-experiment run — reject it loudly instead. *)
        let known = List.map (fun (id, _, _) -> id) Experiments.registry in
        (match List.filter (fun id -> not (List.mem id known)) ids with
        | [] -> ()
        | bad ->
            Printf.eprintf
              "LION_BENCH_ONLY: unknown experiment id%s %s\nvalid ids: %s\n"
              (if List.length bad > 1 then "s" else "")
              (String.concat ", " bad) (String.concat ", " known);
            exit 2);
        List.filter (fun (id, _, _) -> List.mem id ids) Experiments.registry
  in
  List.iter
    (fun (id, desc, f) ->
      Printf.printf ">>> %s - %s (scale %.2f)\n%!" id desc scale;
      let t0 = Unix.gettimeofday () in
      f scale;
      Printf.printf "    [%s completed in %.1fs wall]\n\n%!" id (Unix.gettimeofday () -. t0))
    selected

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit
module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Costmodel = Lion_analysis.Costmodel
module Rearrange = Lion_analysis.Rearrange
module Placement = Lion_store.Placement
module Kvstore = Lion_store.Kvstore
module Lstm = Lion_nn.Lstm
module Rng = Lion_kernel.Rng
module Zipf = Lion_kernel.Zipf
module Engine = Lion_sim.Engine
module Ycsb = Lion_workload.Ycsb
module Txn = Lion_workload.Txn

let micro_tests () =
  let placement = Placement.create ~nodes:4 ~partitions:48 ~replicas:2 ~max_replicas:4 () in
  let gen =
    Ycsb.create
      { (Ycsb.default_params ~partitions:48 ~nodes:4) with Ycsb.cross_ratio = 0.5 }
  in
  let txns = Array.init 2000 (fun _ -> Ycsb.next gen) in
  let full_graph =
    let g = Heatgraph.create ~partitions:48 in
    Array.iter (fun t -> Heatgraph.add_txn g ~parts:t.Txn.parts) txns;
    g
  in
  let cost = Costmodel.make ~freq:(fun _ -> 0.5) () in
  let clumps () =
    Clump.generate full_graph ~placement
      ~alpha:(2.0 *. Heatgraph.mean_edge_weight full_graph)
      ~cross_boost:4.0
  in
  let ready_clumps = clumps () in
  let lstm = Lstm.create ~input:1 () in
  let seq = Array.init 10 (fun i -> [| sin (float_of_int i) |]) in
  let zipf = Zipf.create ~n:1_000_000 ~theta:0.8 in
  let zipf_rng = Rng.create 77 in
  let store = Kvstore.create () in
  [
    Test.make ~name:"ycsb_generate_txn" (Staged.stage (fun () -> ignore (Ycsb.next gen)));
    Test.make ~name:"zipf_sample" (Staged.stage (fun () -> ignore (Zipf.sample zipf zipf_rng)));
    Test.make ~name:"heatgraph_add_2000_txns"
      (Staged.stage (fun () ->
           let g = Heatgraph.create ~partitions:48 in
           Array.iter (fun t -> Heatgraph.add_txn g ~parts:t.Txn.parts) txns));
    Test.make ~name:"clump_generate" (Staged.stage (fun () -> ignore (clumps ())));
    Test.make ~name:"cost_model_find_dst"
      (Staged.stage (fun () ->
           ignore (Costmodel.find_dst_node cost placement ~parts:[ 0; 1; 2 ])));
    Test.make ~name:"rearrange_algorithm"
      (Staged.stage (fun () ->
           List.iter (fun (c : Clump.t) -> c.Clump.dest <- -1) ready_clumps;
           ignore (Rearrange.rearrange cost placement ready_clumps ())));
    Test.make ~name:"lstm_forward_10steps"
      (Staged.stage (fun () -> ignore (Lstm.predict lstm seq)));
    Test.make ~name:"lstm_train_sample"
      (Staged.stage (fun () -> ignore (Lstm.train_sample lstm ~seq ~target:0.5 ~lr:0.001)));
    Test.make ~name:"occ_session_10ops"
      (Staged.stage (fun () ->
           let s = Kvstore.begin_session store in
           for i = 0 to 9 do
             Kvstore.write s (Kvstore.key ~part:i ~slot:i)
           done;
           if Kvstore.try_reserve s then Kvstore.finalize s));
    Test.make ~name:"engine_event_cycle"
      (Staged.stage
         (let e = Engine.create () in
          fun () ->
            Engine.schedule e ~delay:1.0 (fun () -> ());
            Engine.run_all e ()));
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 256) () in
  let tests = micro_tests () in
  Printf.printf ">>> microbenchmarks (bechamel, monotonic clock)\n%!";
  let table =
    Lion_kernel.Table.create ~title:"Core-operation microbenchmarks"
      ~columns:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Lion_kernel.Table.add_row table
                [ name; Lion_kernel.Table.cell_float ~decimals:0 est ]
          | _ -> Lion_kernel.Table.add_row table [ name; "n/a" ])
        analysis)
    tests;
  Lion_kernel.Table.print table

let () =
  print_endline "==============================================================";
  print_endline " Lion reproduction benchmark harness";
  print_endline " (see DESIGN.md for the experiment index, EXPERIMENTS.md for";
  print_endline "  the paper-vs-measured comparison)";
  print_endline "==============================================================";
  print_newline ();
  run_experiments ();
  if Sys.getenv_opt "LION_BENCH_SKIP_MICRO" = None then run_micro ()
