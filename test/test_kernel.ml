(* Unit and property tests for lion_kernel: PRNG, zipfian sampling,
   priority queue, statistics, time series, table rendering. *)

open Lion_kernel

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let root = Rng.create 7 in
  let child = Rng.split root in
  let parent_draws = List.init 50 (fun _ -> Rng.int root 1_000_000) in
  let child_draws = List.init 50 (fun _ -> Rng.int child 1_000_000) in
  Alcotest.(check bool) "streams differ" true (parent_draws <> child_draws)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create 5 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in rng 5 15 in
    Alcotest.(check bool) "inclusive range" true (x >= 5 && x <= 15)
  done

let test_rng_float_unit () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 1.0 in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_mean () =
  let rng = Rng.create 13 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng ~mu:3.0 ~sigma:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.05);
  Alcotest.(check bool) "variance near 4" true (Float.abs (var -. 4.0) < 0.15)

let test_shuffle_permutation () =
  let rng = Rng.create 19 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 (fun i -> i)) sorted

let test_rng_choose_and_exponential () =
  let rng = Rng.create 21 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "choose from array" true (Array.mem (Rng.choose rng a) a)
  done;
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential rng 5.0 in
    Alcotest.(check bool) "non-negative" true (x >= 0.0);
    sum := !sum +. x
  done;
  Alcotest.(check bool) "mean near 5" true
    (Float.abs ((!sum /. float_of_int n) -. 5.0) < 0.25)

let test_stats_mean_of () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean_of [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean_of [])

(* --- zipf --- *)

let test_zipf_uniform_when_theta0 () =
  let rng = Rng.create 23 in
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let x = Zipf.sample z rng in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (abs (c - 5000) < 600))
    counts

let test_zipf_skew_orders_ranks () =
  let rng = Rng.create 29 in
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let x = Zipf.sample z rng in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank0 beats rank10" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank0 beats rank100" true (counts.(0) > counts.(100));
  Alcotest.(check bool) "rank0 is heavy" true (counts.(0) > 5_000)

let test_zipf_range_property =
  QCheck.Test.make ~name:"zipf samples stay in range" ~count:200
    QCheck.(pair (int_range 1 5000) (float_range 0.0 1.2))
    (fun (n, theta) ->
      let rng = Rng.create 31 in
      let z = Zipf.create ~n ~theta in
      List.for_all
        (fun _ ->
          let x = Zipf.sample z rng in
          x >= 0 && x < n)
        (List.init 50 Fun.id))

(* --- pqueue --- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k k) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> fst (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list (float 1e-9))) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "a";
  Pqueue.push q 1.0 "b";
  Pqueue.push q 1.0 "c";
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "insertion order among ties" [ "a"; "b"; "c" ] order

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

let test_pqueue_peek_does_not_remove () =
  let q = Pqueue.create () in
  Pqueue.push q 2.0 "x";
  ignore (Pqueue.peek q);
  Alcotest.(check int) "still one element" 1 (Pqueue.length q)

let test_pqueue_heap_property =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:100
    QCheck.(list (float_range 0.0 1000.0))
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k ()) keys;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let test_pqueue_to_list_preserves () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q (float_of_int k) k) [ 3; 1; 2 ];
  let snapshot = Pqueue.to_list q in
  Alcotest.(check int) "queue intact" 3 (Pqueue.length q);
  Alcotest.(check (list int)) "sorted snapshot" [ 1; 2; 3 ] (List.map snd snapshot)

(* The raw int-keyed API is what the engine's hot loop runs on: pops
   must come out nondecreasing, and among equal keys strictly in push
   order, across interleaved pushes and pops. Keys are drawn from a
   tiny range so collisions (the FIFO-critical case) are common. *)
let test_pqueue_raw_heap_property =
  QCheck.Test.make ~name:"raw int heap pops nondecreasing, FIFO at ties" ~count:300
    QCheck.(list (pair (int_range 0 7) bool))
    (fun script ->
      let q = Pqueue.create () in
      let counter = ref 0 in
      let popped = ref [] in
      let push key =
        incr counter;
        Pqueue.push_key q key (key, !counter)
      in
      let pop () =
        if not (Pqueue.is_empty q) then popped := Pqueue.pop_min q :: !popped
      in
      List.iter (fun (key, do_pop) -> push key; if do_pop then pop ()) script;
      let script_pops = List.length !popped in
      while not (Pqueue.is_empty q) do pop () done;
      let order = List.rev !popped in
      (* Every pushed element came back out... *)
      List.length order = !counter
      (* ...and by push order at equal keys. Pops interleaved with
         pushes can't be globally key-sorted, but an equal-key pair is
         always popped in push order: the earlier element is in the
         heap whenever the later one is. *)
      && List.for_all
           (fun ((k, s), later) ->
             List.for_all (fun (k', s') -> k' <> k || s' > s) later)
           (List.mapi
              (fun i e -> (e, List.filteri (fun j _ -> j > i) order))
              order)
      &&
      (* The final drain (no pushes interleaved) is key-sorted. *)
      let rec sorted = function
        | (k1, _) :: ((k2, _) :: _ as rest) -> k1 <= k2 && sorted rest
        | _ -> true
      in
      sorted (List.filteri (fun i _ -> i >= script_pops) order))

(* The heap can only replicate the old float heap's drain order if the
   int key cast is order-preserving and exactly invertible. *)
let test_pqueue_key_bijection =
  QCheck.Test.make ~name:"key_of_time order-isomorphic and exact" ~count:500
    QCheck.(pair (float_range 0.0 1e12) (float_range 0.0 1e12))
    (fun (a, b) ->
      let ka = Pqueue.key_of_time a and kb = Pqueue.key_of_time b in
      Pqueue.time_of_key ka = a
      && Pqueue.time_of_key kb = b
      && compare ka kb = compare a b)

let test_pqueue_raw_drain_matches_float_api () =
  (* Same keys through both APIs must drain in the same order. *)
  let keys = [ 7.25; 0.0; 3.5; 3.5; 1e9; 0.0; 42.125; 3.5 ] in
  let qf = Pqueue.create () and qi = Pqueue.create () in
  List.iteri (fun i k -> Pqueue.push qf k i) keys;
  List.iteri (fun i k -> Pqueue.push_key qi (Pqueue.key_of_time k) i) keys;
  let rec drain q acc =
    if Pqueue.is_empty q then List.rev acc else drain q (Pqueue.pop_min q :: acc)
  in
  Alcotest.(check (list int)) "identical drain order" (drain qf []) (drain qi [])

let test_pqueue_negative_key_rejected () =
  let q = Pqueue.create () in
  Alcotest.check_raises "negative key" (Invalid_argument "Pqueue.push: key must be >= 0")
    (fun () -> Pqueue.push q (-1.0) ())

(* --- stats --- *)

let test_running_moments () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Running.mean r);
  Alcotest.(check (float 1e-6)) "stddev (sample)" (sqrt (32.0 /. 7.0)) (Stats.Running.stddev r);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Running.min r);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Running.max r)

let test_running_empty () =
  let r = Stats.Running.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.Running.mean r);
  Alcotest.(check (float 0.0)) "variance of empty" 0.0 (Stats.Running.variance r)

let test_percentiles_exact () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile_of_sorted sorted 0.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile_of_sorted sorted 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile_of_sorted sorted 100.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.0 (Stats.percentile_of_sorted sorted 25.0)

let test_reservoir_small_is_exact () =
  let r = Stats.Reservoir.create ~capacity:100 (Rng.create 1) in
  for i = 1 to 50 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "median" 25.5 (Stats.Reservoir.percentile r 50.0);
  Alcotest.(check int) "count" 50 (Stats.Reservoir.count r)

let test_reservoir_large_approximates () =
  let r = Stats.Reservoir.create ~capacity:1024 (Rng.create 2) in
  for i = 1 to 100_000 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  let p50 = Stats.Reservoir.percentile r 50.0 in
  Alcotest.(check bool) "p50 near 50000" true (Float.abs (p50 -. 50_000.0) < 5_000.0);
  Alcotest.(check int) "count tracks all" 100_000 (Stats.Reservoir.count r)

let test_cosine_similarity () =
  Alcotest.(check (float 1e-9)) "identical" 1.0
    (Stats.cosine_similarity [| 1.0; 2.0 |] [| 2.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "orthogonal" 0.0
    (Stats.cosine_similarity [| 1.0; 0.0 |] [| 0.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "zero vector" 0.0
    (Stats.cosine_similarity [| 0.0; 0.0 |] [| 1.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "opposite" (-1.0)
    (Stats.cosine_similarity [| 1.0; 1.0 |] [| -1.0; -1.0 |])

(* --- timeseries --- *)

let test_timeseries_bucketing () =
  let ts = Timeseries.create ~interval:10.0 in
  Timeseries.add ts ~time:0.0 1.0;
  Timeseries.add ts ~time:9.99 1.0;
  Timeseries.add ts ~time:10.0 5.0;
  Timeseries.add ts ~time:25.0 2.0;
  Alcotest.(check (float 1e-9)) "bucket 0" 2.0 (Timeseries.get ts 0);
  Alcotest.(check (float 1e-9)) "bucket 1" 5.0 (Timeseries.get ts 1);
  Alcotest.(check (float 1e-9)) "bucket 2" 2.0 (Timeseries.get ts 2);
  Alcotest.(check int) "bucket count" 3 (Timeseries.bucket_count ts)

let test_timeseries_negative_clamped () =
  let ts = Timeseries.create ~interval:1.0 in
  Timeseries.add ts ~time:(-5.0) 3.0;
  Alcotest.(check (float 1e-9)) "clamped to bucket 0" 3.0 (Timeseries.get ts 0)

let test_timeseries_last_n_padding () =
  let ts = Timeseries.create ~interval:1.0 in
  Timeseries.incr ts ~time:0.5;
  Timeseries.incr ts ~time:1.5;
  let w = Timeseries.last_n ts 4 in
  Alcotest.(check (array (float 1e-9))) "left-padded" [| 0.0; 0.0; 1.0; 1.0 |] w

let test_timeseries_range () =
  let ts = Timeseries.create ~interval:1.0 in
  for i = 0 to 9 do
    Timeseries.add ts ~time:(float_of_int i) (float_of_int i)
  done;
  Alcotest.(check (array (float 1e-9)))
    "middle slice" [| 3.0; 4.0; 5.0 |]
    (Timeseries.range ts ~lo:3 ~hi:5);
  Alcotest.(check (array (float 1e-9)))
    "out of range pads" [| 0.0; 0.0 |]
    (Timeseries.range ts ~lo:20 ~hi:21)

let test_timeseries_sum_range () =
  let ts = Timeseries.create ~interval:1.0 in
  for i = 0 to 9 do
    Timeseries.incr ts ~time:(float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "sum of 10" 10.0 (Timeseries.sum_range ts 0 9);
  Alcotest.(check (float 1e-9)) "partial" 3.0 (Timeseries.sum_range ts 2 4)

let test_timeseries_growth () =
  let ts = Timeseries.create ~interval:1.0 in
  Timeseries.incr ts ~time:5000.0;
  Alcotest.(check int) "grows to bucket" 5001 (Timeseries.bucket_count ts);
  Alcotest.(check (float 1e-9)) "value present" 1.0 (Timeseries.get ts 5000)

(* --- table --- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_table_renders_aligned () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  let s = Table.render t in
  Alcotest.(check bool) "has cell" true (contains s "xxx");
  Alcotest.(check bool) "has header" true (contains s "bb")

let test_table_pads_short_rows () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  ignore (Table.render t)

let test_table_cell_formatting () =
  Alcotest.(check string) "float cell" "3.1" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "int cell" "42" (Table.cell_int 42)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "lion_kernel"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in inclusive" `Quick test_rng_int_in;
          Alcotest.test_case "float in unit" `Quick test_rng_float_unit;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "uniform mean" `Slow test_rng_mean;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose and exponential" `Quick test_rng_choose_and_exponential;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "theta 0 is uniform" `Slow test_zipf_uniform_when_theta0;
          Alcotest.test_case "skew orders ranks" `Slow test_zipf_skew_orders_ranks;
        ] );
      qsuite "zipf-props" [ test_zipf_range_property ];
      ( "pqueue",
        [
          Alcotest.test_case "orders by key" `Quick test_pqueue_ordering;
          Alcotest.test_case "FIFO among ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty behaviour" `Quick test_pqueue_empty;
          Alcotest.test_case "peek non-destructive" `Quick test_pqueue_peek_does_not_remove;
          Alcotest.test_case "to_list sorted snapshot" `Quick test_pqueue_to_list_preserves;
          Alcotest.test_case "raw drain matches float API" `Quick
            test_pqueue_raw_drain_matches_float_api;
          Alcotest.test_case "negative key rejected" `Quick
            test_pqueue_negative_key_rejected;
        ] );
      qsuite "pqueue-props"
        [
          test_pqueue_heap_property;
          test_pqueue_raw_heap_property;
          test_pqueue_key_bijection;
        ];
      ( "stats",
        [
          Alcotest.test_case "running moments" `Quick test_running_moments;
          Alcotest.test_case "running empty" `Quick test_running_empty;
          Alcotest.test_case "percentiles" `Quick test_percentiles_exact;
          Alcotest.test_case "reservoir exact when small" `Quick test_reservoir_small_is_exact;
          Alcotest.test_case "reservoir approximates" `Slow test_reservoir_large_approximates;
          Alcotest.test_case "cosine similarity" `Quick test_cosine_similarity;
          Alcotest.test_case "mean_of" `Quick test_stats_mean_of;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "bucketing" `Quick test_timeseries_bucketing;
          Alcotest.test_case "negative time clamped" `Quick test_timeseries_negative_clamped;
          Alcotest.test_case "last_n pads" `Quick test_timeseries_last_n_padding;
          Alcotest.test_case "range slice" `Quick test_timeseries_range;
          Alcotest.test_case "sum_range" `Quick test_timeseries_sum_range;
          Alcotest.test_case "sparse growth" `Quick test_timeseries_growth;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders_aligned;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "cell formatting" `Quick test_table_cell_formatting;
        ] );
    ]
