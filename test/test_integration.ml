(* Cross-module integration tests: the harness runner end-to-end, the
   determinism guarantee, and the paper's headline qualitative shapes
   on miniature configurations (full-size shapes are exercised by the
   benchmark executable). *)

module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Metrics = Lion_sim.Metrics

let tiny =
  { Runner.quick with Runner.warmup = 1.0; duration = 2.0; tick_every = 0.5 }

let cfg = Config.default

let run ?(batch = false) ?(rc = tiny) make gen =
  Runner.run ~seed:1 ~batch ~cfg ~make ~gen rc

let test_runner_produces_consistent_result () =
  let r = run Lion_protocols.Twopc.create (Workloads.ycsb ~cross:0.5 cfg) in
  Alcotest.(check bool) "positive throughput" true (r.Runner.throughput > 0.0);
  Alcotest.(check bool) "commits counted" true (r.Runner.commits > 0);
  Alcotest.(check bool) "p50 <= p95" true (r.Runner.p50 <= r.Runner.p95);
  Alcotest.(check bool) "ratio bounded" true
    (r.Runner.single_node_ratio >= 0.0 && r.Runner.single_node_ratio <= 1.0);
  Alcotest.(check bool) "series covers run" true
    (Array.length r.Runner.throughput_series >= 2)

let test_runner_deterministic () =
  let go () = (run Lion_protocols.Twopc.create (Workloads.ycsb ~cross:0.5 cfg)).Runner.commits in
  Alcotest.(check int) "same seed same commits" (go ()) (go ())

let test_runner_seed_changes_result () =
  let go seed =
    (Runner.run ~seed ~cfg ~make:Lion_protocols.Twopc.create
       ~gen:(Workloads.ycsb ~skew:0.5 ~cross:0.5 cfg)
       tiny)
      .Runner.commits
  in
  (* Different seeds shift the simulation at least slightly. *)
  Alcotest.(check bool) "seeds matter" true (go 1 <> go 2 || go 1 <> go 3)

let test_phase_fractions_sum_to_one () =
  let r = run Lion_protocols.Twopc.create (Workloads.ycsb ~cross:1.0 cfg) in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 r.Runner.phase_fractions in
  Alcotest.(check (float 1e-6)) "fractions sum" 1.0 total

let test_batch_runner_records_bytes () =
  let r = run ~batch:true Lion_protocols.Star.create (Workloads.ycsb ~cross:0.5 cfg) in
  Alcotest.(check bool) "bytes per txn positive" true (r.Runner.bytes_per_txn > 0.0)

(* --- headline shapes on small runs --- *)

let test_lion_beats_2pc_on_distributed_workload () =
  let rc = { Runner.quick with Runner.warmup = 5.0; duration = 4.0 } in
  let gen () = Workloads.ycsb ~cross:1.0 cfg in
  let lion =
    Runner.run ~seed:1 ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create
          ~config:{ Lion_core.Planner.default_config with predict = false; use_lstm = false }
          cl)
      ~gen:(gen ()) rc
  in
  let twopc = Runner.run ~seed:1 ~cfg ~make:Lion_protocols.Twopc.create ~gen:(gen ()) rc in
  Alcotest.(check bool)
    (Printf.sprintf "Lion %.0f > 1.5x 2PC %.0f" lion.Runner.throughput
       twopc.Runner.throughput)
    true
    (lion.Runner.throughput > 1.5 *. twopc.Runner.throughput)

let test_lion_single_node_ratio_rises () =
  let rc = { Runner.quick with Runner.warmup = 5.0; duration = 4.0 } in
  let r =
    Runner.run ~seed:1 ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create
          ~config:{ Lion_core.Planner.default_config with predict = false; use_lstm = false }
          cl)
      ~gen:(Workloads.ycsb ~cross:1.0 cfg) rc
  in
  Alcotest.(check bool)
    (Printf.sprintf "single-node ratio %.2f" r.Runner.single_node_ratio)
    true (r.Runner.single_node_ratio > 0.5)

let test_star_flat_across_cross_ratio () =
  let rc = { Runner.quick with Runner.warmup = 2.0; duration = 2.0 } in
  let at ratio =
    (Runner.run ~seed:1 ~batch:true ~cfg ~make:Lion_protocols.Star.create
       ~gen:(Workloads.ycsb ~cross:ratio cfg) rc)
      .Runner.throughput
  in
  let lo = at 0.3 and hi = at 1.0 in
  (* Star's throughput is bounded by the super node, so it must not
     gain from more cross-partition work — and should not collapse
     either (everything is single-node there). *)
  Alcotest.(check bool)
    (Printf.sprintf "hi %.0f <= lo %.0f within 25%%" hi lo)
    true
    (hi <= lo *. 1.25)

let test_tpcc_runs_under_lion () =
  let r =
    run
      (fun cl ->
        Lion_core.Standard.create
          ~config:{ Lion_core.Planner.default_config with predict = false; use_lstm = false }
          cl)
      (Workloads.tpcc ~skew:0.5 ~cross:0.3 cfg)
  in
  Alcotest.(check bool) "TPC-C commits" true (r.Runner.commits > 0)

let test_dynamic_workload_runs () =
  let rc = { Runner.quick with Runner.warmup = 0.0; duration = 5.0 } in
  let r =
    Runner.run ~seed:1 ~cfg ~make:Lion_protocols.Twopc.create
      ~gen:(Workloads.dynamic_position ~period:2.0 cfg)
      rc
  in
  Alcotest.(check bool) "survives phase switches" true (r.Runner.commits > 0)

(* --- chaos: a crash plan must degrade and then recover --- *)

let test_crash_plan_degrades_and_recovers () =
  let module Engine = Lion_sim.Engine in
  let cfg =
    {
      Config.default with
      Config.fault_plan =
        Lion_sim.Fault.crash_recover ~node:1 ~at:(Engine.seconds 2.0)
          ~downtime:(Engine.seconds 2.0);
    }
  in
  let rc = { Runner.quick with Runner.warmup = 0.0; duration = 8.0; tick_every = 1.0 } in
  let r =
    Runner.run ~seed:1 ~cfg
      ~make:(fun cl ->
        Lion_core.Standard.create
          ~config:{ Lion_core.Planner.default_config with predict = false; use_lstm = false }
          cl)
      ~gen:(Workloads.ycsb ~cross:0.5 cfg) rc
  in
  Alcotest.(check bool) "commits despite crash" true (r.Runner.commits > 0);
  Alcotest.(check bool) "losses observed" true (r.Runner.drops > 0);
  Alcotest.(check bool) "retries observed" true (r.Runner.retries > 0);
  Alcotest.(check bool) "availability dipped" true
    (Array.exists (fun a -> a < 1.0) r.Runner.availability);
  Alcotest.(check bool) "unavailability integrated" true (r.Runner.unavail_seconds > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "finite recovery (%.0fs)" r.Runner.time_to_recover)
    true
    (Float.is_finite r.Runner.time_to_recover);
  (* Still committing at full clip in the final second. *)
  let series = r.Runner.throughput_series in
  Alcotest.(check bool) "throughput recovered" true
    (Array.length series >= 8 && series.(7) > 0.5 *. series.(1))

let test_empty_fault_plan_is_free () =
  (* The fault machinery must not disturb a healthy run: an explicit
     empty plan reproduces the exact same simulation, commit for
     commit, and records no fault events. *)
  let go plan =
    Runner.run ~seed:1 ~cfg:{ cfg with Config.fault_plan = plan }
      ~make:Lion_protocols.Twopc.create
      ~gen:(Workloads.ycsb ~cross:0.5 cfg) tiny
  in
  let base = go Lion_sim.Fault.none in
  Alcotest.(check int) "no timeouts" 0 base.Runner.timeouts;
  Alcotest.(check int) "no retries" 0 base.Runner.retries;
  Alcotest.(check int) "no drops" 0 base.Runner.drops;
  Alcotest.(check bool) "fully available" true
    (Array.for_all (fun a -> a = 1.0) base.Runner.availability);
  Alcotest.(check (float 0.0)) "never degraded" 0.0 base.Runner.time_to_recover

let test_experiments_registry_complete () =
  let ids = List.map (fun (id, _, _) -> id) Lion_harness.Experiments.registry in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected ids))
    [
      "table1"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13a";
      "fig13b"; "fig14";
    ]

let () =
  Alcotest.run "integration"
    [
      ( "runner",
        [
          Alcotest.test_case "consistent result" `Quick test_runner_produces_consistent_result;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_runner_seed_changes_result;
          Alcotest.test_case "phase fractions" `Quick test_phase_fractions_sum_to_one;
          Alcotest.test_case "batch bytes" `Quick test_batch_runner_records_bytes;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "Lion beats 2PC" `Slow test_lion_beats_2pc_on_distributed_workload;
          Alcotest.test_case "conversion ratio" `Slow test_lion_single_node_ratio_rises;
          Alcotest.test_case "Star capped" `Slow test_star_flat_across_cross_ratio;
          Alcotest.test_case "TPC-C under Lion" `Quick test_tpcc_runs_under_lion;
          Alcotest.test_case "dynamic workload" `Quick test_dynamic_workload_runs;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash plan degrades and recovers" `Slow
            test_crash_plan_degrades_and_recovers;
          Alcotest.test_case "empty fault plan is free" `Quick
            test_empty_fault_plan_is_free;
        ] );
      ( "experiments",
        [ Alcotest.test_case "registry complete" `Quick test_experiments_registry_complete ] );
    ]
