(* Tests for the protocol layer: shared execution machinery, 2PC
   semantics, batch engine, conflict analysis, and each baseline's
   characteristic behaviour on a small simulated cluster. *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Kvstore = Lion_store.Kvstore
module Engine = Lion_sim.Engine
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn
module Proto = Lion_protocols.Proto
module Exec = Lion_protocols.Exec
module Batch = Lion_protocols.Batch

let small_cfg =
  {
    Config.default with
    Config.nodes = 2;
    partitions_per_node = 2;
    workers_per_node = 2;
    batch_size = 16;
  }

let mk_cluster ?(cfg = small_cfg) () = Cluster.create ~seed:3 cfg

let key part slot = Kvstore.key ~part ~slot
let txn ?(id = 0) ops = Txn.make ~id ops

(* --- proto helpers --- *)

let test_join_counts () =
  let hits = ref 0 in
  let cb = Proto.join 3 (fun () -> incr hits) in
  cb ();
  cb ();
  Alcotest.(check int) "not yet" 0 !hits;
  cb ();
  Alcotest.(check int) "fires once" 1 !hits

let test_join_now_zero () =
  let hits = ref 0 in
  (match Proto.join_now 0 (fun () -> incr hits) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected immediate");
  Alcotest.(check int) "immediate" 1 !hits

(* --- exec: grouping and routing --- *)

let test_groups_preserve_order () =
  let t =
    txn [ Txn.Read (key 1 0); Txn.Write (key 0 0); Txn.Read (key 1 1) ]
  in
  let groups = Exec.groups_of t in
  Alcotest.(check (list int)) "first-appearance order" [ 1; 0 ] (List.map fst groups);
  Alcotest.(check int) "ops regrouped" 2 (List.length (List.assoc 1 groups))

let test_route_most_primaries () =
  let cl = mk_cluster () in
  (* Partitions 0 and 2 both have primaries on node 0. *)
  let t = txn [ Txn.Read (key 0 0); Txn.Read (key 2 0) ] in
  Alcotest.(check int) "routes to node 0" 0 (Exec.route_most_primaries cl t)

(* --- exec: single-node and distributed commits --- *)

let run_txn ?(flavor = Exec.plain_2pc) cl t =
  let committed = ref false in
  Exec.run cl ~route:(Exec.route_most_primaries cl) ~flavor t ~on_done:(fun () ->
      committed := true);
  Engine.run_until cl.Cluster.engine (Engine.seconds 2.0);
  !committed

let test_single_node_commit_skips_prepare () =
  let cl = mk_cluster () in
  let t = txn [ Txn.Write (key 0 1); Txn.Read (key 0 2) ] in
  Alcotest.(check bool) "committed" true (run_txn cl t);
  Alcotest.(check int) "recorded" 1 (Metrics.commits cl.Cluster.metrics);
  Alcotest.(check int) "single node" 1 (Metrics.single_node_commits cl.Cluster.metrics);
  (* Single-node commit writes installed. *)
  Alcotest.(check int) "version bumped" 1 (Kvstore.version cl.Cluster.store (key 0 1))

let test_distributed_commit_runs_2pc () =
  let cl = mk_cluster () in
  (* Partition 0 on node 0, partition 1 on node 1. *)
  let t = txn [ Txn.Write (key 0 1); Txn.Write (key 1 1) ] in
  Alcotest.(check bool) "committed" true (run_txn cl t);
  Alcotest.(check int) "not single node" 0 (Metrics.single_node_commits cl.Cluster.metrics);
  Alcotest.(check int) "both writes installed" 1 (Kvstore.version cl.Cluster.store (key 1 1))

let test_conflicting_txns_serialize () =
  let cl = mk_cluster () in
  let mk i = txn ~id:i [ Txn.Write (key 0 7) ] in
  let done_count = ref 0 in
  for i = 0 to 4 do
    Exec.run cl ~route:(Exec.route_most_primaries cl) ~flavor:Exec.plain_2pc (mk i)
      ~on_done:(fun () -> incr done_count)
  done;
  Engine.run_until cl.Cluster.engine (Engine.seconds 5.0);
  Alcotest.(check int) "all eventually commit" 5 !done_count;
  Alcotest.(check int) "five installs" 5 (Kvstore.version cl.Cluster.store (key 0 7))

let test_lion_flavor_remasters_secondary () =
  let cl = mk_cluster () in
  (* Node 0 holds the secondary of partition 1 (primary node 1). A
     transaction on partitions 0 and 1 routed to node 0 can convert. *)
  let t = txn [ Txn.Write (key 0 1); Txn.Write (key 1 1) ] in
  let committed = ref false in
  Exec.run cl ~route:(fun _ -> 0) ~flavor:Exec.lion_flavor t ~on_done:(fun () ->
      committed := true);
  Engine.run_until cl.Cluster.engine (Engine.seconds 2.0);
  Alcotest.(check bool) "committed" true !committed;
  Alcotest.(check int) "became single-node" 1 (Metrics.single_node_commits cl.Cluster.metrics);
  Alcotest.(check int) "remastered" 1 (Metrics.remastered_commits cl.Cluster.metrics);
  Alcotest.(check int) "primary moved" 0 (Placement.primary cl.Cluster.placement 1)

let test_leap_flavor_migrates_everything () =
  let cl = mk_cluster () in
  let t = txn [ Txn.Write (key 0 1); Txn.Write (key 1 1) ] in
  let committed = ref false in
  Exec.run cl ~route:(fun _ -> 0) ~flavor:Exec.leap_flavor t ~on_done:(fun () ->
      committed := true);
  Engine.run_until cl.Cluster.engine (Engine.seconds 2.0);
  Alcotest.(check bool) "committed" true !committed;
  Alcotest.(check int) "single node after pull" 1
    (Metrics.single_node_commits cl.Cluster.metrics);
  Alcotest.(check int) "mastership pulled" 0 (Placement.primary cl.Cluster.placement 1)

let test_abort_retry_records_aborts () =
  let cl = mk_cluster () in
  (* Force a version conflict: pre-commit a write that invalidates the
     in-flight read between its execution and validation. Easiest
     deterministic route: two overlapping writers as above — at least
     one validation round must have conflicted when both target the
     same hot key through the remote path. Here we assert the abort
     counter is consistent (>= 0) and commits complete. *)
  let mk i = txn ~id:i [ Txn.Write (key 1 3); Txn.Write (key 0 3) ] in
  let done_count = ref 0 in
  for i = 0 to 3 do
    Exec.run cl ~route:(fun _ -> i mod 2) ~flavor:Exec.plain_2pc (mk i)
      ~on_done:(fun () -> incr done_count)
  done;
  Engine.run_until cl.Cluster.engine (Engine.seconds 5.0);
  Alcotest.(check int) "all commit eventually" 4 !done_count;
  Alcotest.(check int) "writes serialized" 4 (Kvstore.version cl.Cluster.store (key 0 3))

(* --- batch engine --- *)

let all_commit_process txns =
  {
    Batch.verdicts =
      Array.map
        (fun _ -> { Batch.committed = true; single_node = true; remastered = false })
        txns;
    node_busy = [| 100.0; 100.0 |];
    serial_time = 0.0;
    barrier_time = 0.0;
    phase_split = [ (Metrics.Execution, 1.0) ];
  }

let test_batch_epoch_commits_all () =
  let cl = mk_cluster () in
  let proto = Batch.create cl ~name:"test" ~process:all_commit_process () in
  let done_count = ref 0 in
  for i = 0 to 9 do
    proto.Proto.submit (txn ~id:i [ Txn.Read (key 0 i) ]) ~on_done:(fun () ->
        incr done_count)
  done;
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check int) "all done" 10 !done_count;
  Alcotest.(check int) "commits recorded" 10 (Metrics.commits cl.Cluster.metrics)

let test_batch_aborted_retry_next_epoch () =
  let cl = mk_cluster () in
  let first_epoch = ref true in
  let process txns =
    let committed = not !first_epoch in
    first_epoch := false;
    {
      Batch.verdicts =
        Array.map
          (fun _ -> { Batch.committed; single_node = true; remastered = false })
          txns;
      node_busy = [| 10.0; 10.0 |];
      serial_time = 0.0;
      barrier_time = 0.0;
      phase_split = [ (Metrics.Execution, 1.0) ];
    }
  in
  let proto = Batch.create cl ~name:"test" ~process () in
  let done_count = ref 0 in
  proto.Proto.submit (txn [ Txn.Read (key 0 0) ]) ~on_done:(fun () -> incr done_count);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check int) "committed on retry" 1 !done_count;
  Alcotest.(check int) "abort recorded" 1 (Metrics.aborts cl.Cluster.metrics)

let test_batch_duration_scales_with_busy () =
  let cl = mk_cluster () in
  let commit_times = ref [] in
  let process_busy busy txns =
    {
      Batch.verdicts =
        Array.map
          (fun _ -> { Batch.committed = true; single_node = true; remastered = false })
          txns;
      node_busy = [| busy; 0.0 |];
      serial_time = 0.0;
      barrier_time = 0.0;
      phase_split = [ (Metrics.Execution, 1.0) ];
    }
  in
  let proto = Batch.create cl ~name:"t" ~process:(process_busy 1000.0) () in
  proto.Proto.submit (txn [ Txn.Read (key 0 0) ]) ~on_done:(fun () ->
      commit_times := Engine.now cl.Cluster.engine :: !commit_times);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  (* busy 1000 over 2 workers = 500 µs + epoch commit cost. *)
  match !commit_times with
  | [ t ] -> Alcotest.(check bool) "epoch >= exec time" true (t >= 500.0)
  | _ -> Alcotest.fail "expected one commit"

let test_batch_gives_up_after_max_retries () =
  let cl = mk_cluster () in
  let always_abort txns =
    {
      Batch.verdicts =
        Array.map
          (fun _ -> { Batch.committed = false; single_node = true; remastered = false })
          txns;
      node_busy = [| 10.0; 10.0 |];
      serial_time = 0.0;
      barrier_time = 0.0;
      phase_split = [ (Metrics.Execution, 1.0) ];
    }
  in
  let proto = Batch.create cl ~name:"t" ~process:always_abort ~max_retries:3 () in
  let done_count = ref 0 in
  proto.Proto.submit (txn [ Txn.Read (key 0 0) ]) ~on_done:(fun () -> incr done_count);
  Engine.run_until cl.Cluster.engine (Engine.seconds 2.0);
  Alcotest.(check int) "forced commit keeps the loop live" 1 !done_count;
  Alcotest.(check int) "three aborts recorded" 3 (Metrics.aborts cl.Cluster.metrics)

let test_2pc_records_prepare_phase () =
  let cl = mk_cluster () in
  let t = txn [ Txn.Write (key 0 1); Txn.Write (key 1 1) ] in
  ignore (run_txn cl t);
  Alcotest.(check bool) "prepare time recorded" true
    (Metrics.phase_fraction cl.Cluster.metrics Metrics.Prepare > 0.0);
  Alcotest.(check bool) "commit time recorded" true
    (Metrics.phase_fraction cl.Cluster.metrics Metrics.Commit > 0.0)

let test_blocked_partition_delays_execution () =
  let cl = mk_cluster () in
  (* Start a remaster so partition 0 is blocked, then run a transaction
     on it: the commit must land after the block expires. *)
  let target = Placement.secondaries cl.Cluster.placement 0 |> List.hd in
  Alcotest.(check bool) "remaster started" true
    (Cluster.try_begin_remaster cl ~part:0 ~node:target);
  let committed_at = ref 0.0 in
  Exec.run cl ~route:(fun _ -> 0) ~flavor:Exec.plain_2pc
    (txn [ Txn.Write (key 0 5) ])
    ~on_done:(fun () -> committed_at := Engine.now cl.Cluster.engine);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool) "waited for the block" true
    (!committed_at >= Config.default.Config.remaster_delay)

let test_conflict_verdicts_waw () =
  let t0 = txn ~id:0 [ Txn.Write (key 0 5) ] in
  let t1 = txn ~id:1 [ Txn.Write (key 0 5) ] in
  let t2 = txn ~id:2 [ Txn.Write (key 0 6) ] in
  let ok = Batch.conflict_verdicts ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot)) [| t0; t1; t2 |] in
  Alcotest.(check (array bool)) "first wins" [| true; false; true |] ok

let test_conflict_verdicts_raw_only_for_aria () =
  let writer = txn ~id:0 [ Txn.Write (key 0 5) ] in
  let reader = txn ~id:1 [ Txn.Read (key 0 5) ] in
  let waw_only =
    Batch.conflict_verdicts ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot))
      [| writer; reader |]
  in
  Alcotest.(check (array bool)) "reader safe without raw" [| true; true |] waw_only;
  let with_raw =
    Batch.conflict_verdicts ~include_raw:true
      ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot))
      [| writer; reader |]
  in
  Alcotest.(check (array bool)) "raw aborts reader" [| true; false |] with_raw

let test_conflict_granule_coarsening () =
  let t0 = txn ~id:0 [ Txn.Write (key 0 1) ] in
  let t1 = txn ~id:1 [ Txn.Write (key 0 2) ] in
  let fine =
    Batch.conflict_verdicts ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot)) [| t0; t1 |]
  in
  Alcotest.(check (array bool)) "distinct keys fine" [| true; true |] fine;
  let coarse =
    Batch.conflict_verdicts ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot / 16))
      [| t0; t1 |]
  in
  Alcotest.(check (array bool)) "same granule conflicts" [| true; false |] coarse

(* --- baselines' characteristic behaviour --- *)

let drive_protocol ?(cfg = small_cfg) ~make ~gen ~seconds () =
  let cl = Cluster.create ~seed:9 cfg in
  let proto = make cl in
  let engine = cl.Cluster.engine in
  let rec loop () =
    proto.Proto.submit (gen ()) ~on_done:(fun () ->
        Engine.schedule engine ~delay:0.0 loop)
  in
  for _ = 1 to 32 do
    loop ()
  done;
  let rec tick () =
    Engine.schedule engine ~delay:(Engine.seconds 0.5) (fun () ->
        proto.Proto.tick ();
        tick ())
  in
  tick ();
  Engine.run_until engine (Engine.seconds seconds);
  cl

let cross_pair_gen () =
  let i = ref 0 in
  fun () ->
    incr i;
    txn ~id:!i [ Txn.Write (key 0 !i); Txn.Write (key 1 !i) ]

let test_star_routes_cross_to_super_node () =
  let cl =
    drive_protocol ~make:Lion_protocols.Star.create ~gen:(cross_pair_gen ()) ~seconds:1.0 ()
  in
  Alcotest.(check bool) "commits happened" true (Metrics.commits cl.Cluster.metrics > 0);
  (* Every cross transaction is single-node on the super node. *)
  Alcotest.(check int) "all single node"
    (Metrics.commits cl.Cluster.metrics)
    (Metrics.single_node_commits cl.Cluster.metrics)

let test_calvin_no_aborts () =
  let cl =
    drive_protocol ~make:Lion_protocols.Calvin.create ~gen:(cross_pair_gen ()) ~seconds:1.0 ()
  in
  Alcotest.(check int) "deterministic: no aborts" 0 (Metrics.aborts cl.Cluster.metrics);
  Alcotest.(check bool) "commits" true (Metrics.commits cl.Cluster.metrics > 0)

let test_hermes_colocates_recurring_pair () =
  let cl =
    drive_protocol ~make:Lion_protocols.Hermes.create ~gen:(cross_pair_gen ()) ~seconds:2.0 ()
  in
  let total = Metrics.commits cl.Cluster.metrics in
  let single = Metrics.single_node_commits cl.Cluster.metrics in
  Alcotest.(check bool) "commits" true (total > 0);
  Alcotest.(check bool)
    (Printf.sprintf "mostly single-home after migration (%d/%d)" single total)
    true
    (float_of_int single /. float_of_int total > 0.5)

let test_aria_aborts_on_contention () =
  (* Everyone writes the same key: only one transaction per epoch can
     win its reservation. *)
  let gen () = txn [ Txn.Write (key 0 0); Txn.Write (key 1 0) ] in
  let cl = drive_protocol ~make:Lion_protocols.Aria.create ~gen ~seconds:1.0 () in
  Alcotest.(check bool) "aborts under contention" true (Metrics.aborts cl.Cluster.metrics > 0)

let test_lotus_single_home_never_aborts () =
  (* Same-partition contention serializes on the partition executor. *)
  let gen () = txn [ Txn.Write (key 0 0) ] in
  let cl = drive_protocol ~make:Lion_protocols.Lotus.create ~gen ~seconds:1.0 () in
  Alcotest.(check int) "no aborts" 0 (Metrics.aborts cl.Cluster.metrics);
  Alcotest.(check bool) "commits" true (Metrics.commits cl.Cluster.metrics > 0)

let test_unified_commits_in_one_round () =
  let cl = mk_cluster () in
  let t = txn [ Txn.Write (key 0 1); Txn.Write (key 1 1) ] in
  let done_at = ref 0.0 in
  Lion_protocols.Proto.(
    (Lion_protocols.Unified.create cl).submit t ~on_done:(fun () ->
        done_at := Engine.now cl.Cluster.engine));
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool) "committed" true (!done_at > 0.0);
  Alcotest.(check int) "writes installed" 1 (Kvstore.version cl.Cluster.store (key 1 1));
  (* One fewer blocking round than classic 2PC on the same transaction. *)
  let cl2 = mk_cluster () in
  let done_2pc = ref 0.0 in
  Lion_protocols.Proto.(
    (Lion_protocols.Twopc.create cl2).submit t ~on_done:(fun () ->
        done_2pc := Engine.now cl2.Cluster.engine));
  Engine.run_until cl2.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "unified %.0f faster than 2PC %.0f" !done_at !done_2pc)
    true (!done_at < !done_2pc)

let test_clay_acts_only_on_imbalance () =
  (* Balanced cross workload: Clay must not migrate anything. *)
  let cl =
    drive_protocol ~make:(Lion_protocols.Clay.create ?imbalance_threshold:None)
      ~gen:(cross_pair_gen ()) ~seconds:1.5 ()
  in
  Alcotest.(check int) "no migrations when balanced" 0 cl.Cluster.migration_count

(* --- property tests --- *)

let small_txns_gen =
  (* Random batches of single-write transactions over a small key space
     to force conflicts. *)
  QCheck.(
    list_of_size (Gen.int_range 1 50)
      (pair (int_range 0 3) (int_range 0 7)))

let prop_first_writer_always_wins =
  QCheck.Test.make ~name:"first writer of a granule always commits" ~count:200
    small_txns_gen
    (fun specs ->
      let txns =
        Array.of_list
          (List.mapi (fun i (part, slot) -> txn ~id:i [ Txn.Write (key part slot) ]) specs)
      in
      let ok =
        Batch.conflict_verdicts ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot)) txns
      in
      (* For every granule, the earliest writer must have ok = true. *)
      let seen = Hashtbl.create 16 in
      let good = ref true in
      Array.iteri
        (fun i t ->
          List.iter
            (fun k ->
              let g = (k.Kvstore.part, k.Kvstore.slot) in
              if not (Hashtbl.mem seen g) then (
                Hashtbl.add seen g ();
                if not ok.(i) then good := false))
            (Txn.write_keys t))
        txns;
      !good)

let prop_window_reset_allows_later_winners =
  QCheck.Test.make ~name:"per-window reservation: one winner per granule per window"
    ~count:200 small_txns_gen
    (fun specs ->
      let txns =
        Array.of_list
          (List.mapi (fun i (part, slot) -> txn ~id:i [ Txn.Write (key part slot) ]) specs)
      in
      let window = 5 in
      let ok =
        Batch.conflict_verdicts ~window
          ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot))
          txns
      in
      (* Within each window chunk, committed writers of a granule <= 1. *)
      let good = ref true in
      let chunks = (Array.length txns + window - 1) / window in
      for c = 0 to chunks - 1 do
        let winners = Hashtbl.create 8 in
        for i = c * window to Stdlib.min ((c + 1) * window) (Array.length txns) - 1 do
          if ok.(i) then
            List.iter
              (fun k ->
                let g = (k.Kvstore.part, k.Kvstore.slot) in
                if Hashtbl.mem winners g then good := false else Hashtbl.add winners g ())
              (Txn.write_keys txns.(i))
        done
      done;
      !good)

let prop_read_only_batches_never_abort =
  QCheck.Test.make ~name:"read-only batches never abort" ~count:100 small_txns_gen
    (fun specs ->
      let txns =
        Array.of_list
          (List.mapi (fun i (part, slot) -> txn ~id:i [ Txn.Read (key part slot) ]) specs)
      in
      let ok =
        Batch.conflict_verdicts ~include_raw:true
          ~granule:(fun k -> (k.Kvstore.part, k.Kvstore.slot))
          txns
      in
      Array.for_all Fun.id ok)

let () =
  Alcotest.run "lion_protocols"
    [
      ( "proto",
        [
          Alcotest.test_case "join counts" `Quick test_join_counts;
          Alcotest.test_case "join_now zero" `Quick test_join_now_zero;
        ] );
      ( "exec",
        [
          Alcotest.test_case "grouping order" `Quick test_groups_preserve_order;
          Alcotest.test_case "route most primaries" `Quick test_route_most_primaries;
          Alcotest.test_case "single-node commit" `Quick test_single_node_commit_skips_prepare;
          Alcotest.test_case "distributed 2PC" `Quick test_distributed_commit_runs_2pc;
          Alcotest.test_case "conflicts serialize" `Quick test_conflicting_txns_serialize;
          Alcotest.test_case "lion remasters secondary" `Quick
            test_lion_flavor_remasters_secondary;
          Alcotest.test_case "leap migrates" `Quick test_leap_flavor_migrates_everything;
          Alcotest.test_case "abort bookkeeping" `Quick test_abort_retry_records_aborts;
        ] );
      ( "batch",
        [
          Alcotest.test_case "epoch commits all" `Quick test_batch_epoch_commits_all;
          Alcotest.test_case "aborted retry next epoch" `Quick
            test_batch_aborted_retry_next_epoch;
          Alcotest.test_case "duration from busy time" `Quick
            test_batch_duration_scales_with_busy;
          Alcotest.test_case "WAW conflicts" `Quick test_conflict_verdicts_waw;
          Alcotest.test_case "RAW only for Aria" `Quick test_conflict_verdicts_raw_only_for_aria;
          Alcotest.test_case "granule coarsening" `Quick test_conflict_granule_coarsening;
          Alcotest.test_case "give-up after retries" `Quick
            test_batch_gives_up_after_max_retries;
          Alcotest.test_case "2PC prepare phase recorded" `Quick
            test_2pc_records_prepare_phase;
          Alcotest.test_case "blocked partition delays" `Quick
            test_blocked_partition_delays_execution;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "Star super node" `Quick test_star_routes_cross_to_super_node;
          Alcotest.test_case "Calvin no aborts" `Quick test_calvin_no_aborts;
          Alcotest.test_case "Hermes co-locates" `Quick test_hermes_colocates_recurring_pair;
          Alcotest.test_case "Aria aborts on contention" `Quick test_aria_aborts_on_contention;
          Alcotest.test_case "Lotus single-home safe" `Quick
            test_lotus_single_home_never_aborts;
          Alcotest.test_case "Clay needs imbalance" `Quick test_clay_acts_only_on_imbalance;
          Alcotest.test_case "Unified one-round commit" `Quick
            test_unified_commits_in_one_round;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_first_writer_always_wins;
            prop_window_reset_allows_later_winners;
            prop_read_only_batches_never_abort;
          ] );
    ]
