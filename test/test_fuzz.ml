(* Fault-schedule fuzzer tests: corpus cases replay to their recorded
   verdicts (including the re-planted phantom-secondary bug and the
   long-partition resync regression the fuzzer found), generation and
   campaigns are deterministic, the ddmin shrinker reduces a noisy
   failing schedule back to its essential op, JSON round-trips
   byte-for-byte, and the liveness audit flags a wedged run that the
   safety audit alone would pass. *)

module Config = Lion_store.Config
module Fault = Lion_sim.Fault
module Rng = Lion_kernel.Rng
module Fuzz = Lion_audit.Fuzz
module Liveness = Lion_audit.Liveness
module Drive = Lion_audit.Drive
module Nemesis = Lion_audit.Nemesis
module Workloads = Lion_harness.Workloads

let protocols : (string * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list
    =
  [
    ("2pc", fun cl -> Lion_protocols.Twopc.create cl);
    ( "lion",
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ( "lion-batch",
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
  ]

let target : Fuzz.target =
  {
    Fuzz.protos = protocols;
    workload =
      (fun ~cfg ~seed ~skew ~cross -> Workloads.ycsb ~seed ~skew ~cross cfg);
  }

let verdict = Alcotest.testable (Fmt.of_to_string Fuzz.verdict_name) ( = )

(* --- corpus: every committed case replays to its recorded verdict --- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Fuzz.load_file path with
      | Error msg -> Alcotest.failf "%s: unreadable: %s" path msg
      | Ok (case, expect) ->
          let r = Fuzz.run_case ~target case in
          Alcotest.(check verdict)
            (Printf.sprintf "%s replays (signals: %s)" path
               (String.concat " " r.Fuzz.signature))
            expect r.Fuzz.verdict)
    files

(* The two sides of the re-planted bug, pinned explicitly: the same
   minimized crash schedule diverges with the flag on and audits clean
   with it off — the purge in the election callback is load-bearing. *)
let test_phantom_flag_controls_verdict () =
  match Fuzz.load_file "corpus/fuzz-s7-r041-min.json" with
  | Error msg -> Alcotest.failf "corpus case unreadable: %s" msg
  | Ok (case, _) ->
      Alcotest.(check bool) "corpus case has the flag on" true case.Fuzz.phantom;
      let on = Fuzz.run_case ~target case in
      let off = Fuzz.run_case ~target { case with Fuzz.phantom = false } in
      Alcotest.(check verdict) "flag on: divergence" Fuzz.Safety on.Fuzz.verdict;
      Alcotest.(check verdict) "flag off: clean" Fuzz.Clean off.Fuzz.verdict

(* --- determinism --- *)

let test_generate_deterministic () =
  let gen () =
    let rng = Rng.create 99 in
    Fuzz.generate rng ~target ~phantom:false ~name:"g"
  in
  Alcotest.(check bool) "same seed, same case" true (gen () = gen ())

let test_run_case_deterministic () =
  match Fuzz.load_file "corpus/resync-long-partition.json" with
  | Error msg -> Alcotest.failf "corpus case unreadable: %s" msg
  | Ok (case, _) ->
      let a = Fuzz.run_case ~target case in
      let b = Fuzz.run_case ~target case in
      Alcotest.(check (list string))
        "same coverage signature" a.Fuzz.signature b.Fuzz.signature;
      Alcotest.(check verdict) "same verdict" a.Fuzz.verdict b.Fuzz.verdict

let test_campaign_deterministic () =
  let run () =
    let buf = Buffer.create 256 in
    let res =
      Fuzz.campaign ~rounds:2 ~shrink_failures:false
        ~log:(fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        ~seed:11 ~phantom:false ~target ()
    in
    (Buffer.contents buf, res.Fuzz.pool_size, List.length res.Fuzz.failures)
  in
  let la, pa, fa = run () and lb, pb, fb = run () in
  Alcotest.(check string) "same log" la lb;
  Alcotest.(check int) "same pool size" pa pb;
  Alcotest.(check int) "same failures" fa fb

(* --- ddmin shrinker --- *)

let test_shrink_recovers_essential_op () =
  (* The minimized corpus crash plus three irrelevant noise ops: the
     shrinker must strip the noise and keep a <=3-op (here 1-op)
     schedule that still reproduces the divergence. *)
  match Fuzz.load_file "corpus/fuzz-s7-r041-min.json" with
  | Error msg -> Alcotest.failf "corpus case unreadable: %s" msg
  | Ok (case, _) ->
      let noisy =
        {
          case with
          Fuzz.name = "noisy";
          ops =
            case.Fuzz.ops
            @ [
                Fuzz.Lossy { pct = 10; at_us = 200_000; dur_us = 300_000 };
                Fuzz.Straggle
                  { node = 2; factor = 3; at_us = 600_000; dur_us = 400_000 };
                Fuzz.Slow_link
                  { dst = 2; extra_us = 5_000; at_us = 900_000; dur_us = 300_000 };
              ];
        }
      in
      let r = Fuzz.run_case ~target noisy in
      Alcotest.(check verdict) "noisy case still fails" Fuzz.Safety r.Fuzz.verdict;
      let mini, runs = Fuzz.shrink ~target noisy Fuzz.Safety in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d op(s) in %d runs"
           (List.length mini.Fuzz.ops) runs)
        true
        (List.length mini.Fuzz.ops <= 3);
      let r' = Fuzz.run_case ~target mini in
      Alcotest.(check verdict) "minimized case reproduces" Fuzz.Safety
        r'.Fuzz.verdict

(* --- JSON corpus format --- *)

let kitchen_sink =
  {
    Fuzz.name = "kitchen-sink";
    seed = 12345;
    proto = "2pc";
    seconds = 2;
    clients = 5;
    phantom = false;
    overload = true;
    skew_pct = 90;
    cross_pct = 30;
    ops =
      [
        Fuzz.Crash { node = 1; at_us = 100_000; downtime_us = 400_000 };
        Fuzz.Isolate { node = 2; at_us = 200_000; dur_us = 300_000 };
        Fuzz.Straggle { node = 0; factor = 4; at_us = 300_000; dur_us = 200_000 };
        Fuzz.Slow_link { dst = 3; extra_us = 8_000; at_us = 400_000; dur_us = 250_000 };
        Fuzz.Lossy { pct = 15; at_us = 500_000; dur_us = 200_000 };
        Fuzz.Burst { node = 1; at_us = 600_000; dur_us = 300_000 };
        Fuzz.Join { node = 4; at_us = 700_000 };
        Fuzz.Decommission { node = 2; at_us = 800_000 };
        Fuzz.Crash_rejoin { node = 3; at_us = 900_000; cycles = 2 };
      ];
  }

let test_json_round_trip () =
  let s = Fuzz.to_json ~expect:Fuzz.Liveness kitchen_sink in
  match Fuzz.of_json s with
  | Error msg -> Alcotest.failf "of_json failed: %s" msg
  | Ok (case, expect) ->
      Alcotest.(check bool) "case survives" true (case = kitchen_sink);
      Alcotest.(check verdict) "expect survives" Fuzz.Liveness expect;
      Alcotest.(check string) "byte-stable" s (Fuzz.to_json ~expect case)

let test_json_rejects_garbage () =
  let bad s =
    match Fuzz.of_json s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (bad "{nope");
  Alcotest.(check bool) "wrong version" true
    (bad "{\"version\": 2, \"name\": \"x\"}");
  let meteor =
    let s = Fuzz.to_json ~expect:Fuzz.Clean kitchen_sink in
    (* Rename the first op kind to something unknown. *)
    let marker = "\"op\":\"crash\"" in
    match String.index_opt s '[' with
    | None -> s
    | Some _ ->
        let i =
          let rec find i =
            if i + String.length marker > String.length s then -1
            else if String.sub s i (String.length marker) = marker then i
            else find (i + 1)
          in
          find 0
        in
        if i < 0 then s
        else
          String.sub s 0 i ^ "\"op\":\"meteor\""
          ^ String.sub s
              (i + String.length marker)
              (String.length s - i - String.length marker)
  in
  Alcotest.(check bool) "unknown op" true (bad meteor)

(* --- liveness audit --- *)

let test_plan_horizon () =
  Alcotest.(check (float 0.0)) "empty plan" 0.0 (Liveness.plan_horizon []);
  let plan =
    [
      Fault.crash ~node:1 ~at:5.0 ~recover_at:9.0 ();
      Fault.drop ~prob:0.1 ~from_:1.0 ~until:12.0 ();
    ]
  in
  Alcotest.(check (float 0.0)) "latest window" 12.0 (Liveness.plan_horizon plan);
  let plan = [ Fault.crash ~node:1 ~at:7.0 () ] in
  Alcotest.(check (float 0.0)) "unrecovered crash" 7.0
    (Liveness.plan_horizon plan)

let test_healthy_run_is_clean () =
  let cfg = Config.default in
  let o =
    Drive.run ~seed:3 ~clients:4 ~duration:1.0 ~cfg
      ~make:(List.assoc "2pc" protocols)
      ~gen:(Workloads.ycsb ~cross:0.3 cfg)
      ~nemesis:Nemesis.calm ()
  in
  Alcotest.(check bool) "passed" true (Drive.passed o);
  Alcotest.(check bool) "not exhausted" false o.Drive.exhausted;
  Alcotest.(check bool) "liveness clean" true (Liveness.clean o.Drive.liveness);
  Alcotest.(check bool) "healthy" true (Drive.healthy o)

let test_liveness_flags_wedged_run () =
  (* Starve the drain with a tiny event budget: the run stops mid-air
     with admitted transactions unresolved. The safety verdict still
     PASSES — the truncated history is a clean prefix — which is
     exactly the gap the liveness audit closes: the exhaustion and the
     stuck transactions are reported as findings and [healthy] says
     no. The budget only bounds the post-horizon drain, so it must be
     smaller than the in-flight tail at the horizon. *)
  let cfg = Config.default in
  let o =
    Drive.run ~seed:3 ~clients:8 ~duration:1.0 ~max_events:50 ~cfg
      ~make:(List.assoc "2pc" protocols)
      ~gen:(Workloads.ycsb ~cross:0.3 cfg)
      ~nemesis:Nemesis.calm ()
  in
  Alcotest.(check bool) "safety audit alone passes" true (Drive.passed o);
  Alcotest.(check bool) "exhausted" true o.Drive.exhausted;
  Alcotest.(check bool) "pending events reported" true (o.Drive.pending_events > 0);
  let names =
    List.map Liveness.finding_name o.Drive.liveness.Liveness.findings
  in
  Alcotest.(check bool)
    (Printf.sprintf "exhaustion is a liveness finding (got: %s)"
       (String.concat " " names))
    true
    (List.mem "event-budget-exhausted" names);
  Alcotest.(check bool) "stuck txns flagged" true (List.mem "stuck-txns" names);
  Alcotest.(check bool) "not healthy" false (Drive.healthy o)

(* --- satellite: recovery while the node is still partitioned --- *)

let test_recover_inside_partition () =
  (* Crash node 1 at 0.3 s for 0.4 s, under an isolation window that
     runs 0.25 s -> 1.5 s: the node rejoins the cluster while it still
     cannot talk to anyone. The rejoin resync and the post-heal
     anti-entropy must still converge every replica by quiescence. *)
  let case =
    {
      Fuzz.name = "recover-inside-partition";
      seed = 21;
      proto = "lion";
      seconds = 2;
      clients = 6;
      phantom = false;
      overload = false;
      skew_pct = 50;
      cross_pct = 30;
      ops =
        [
          Fuzz.Crash { node = 1; at_us = 300_000; downtime_us = 400_000 };
          Fuzz.Isolate { node = 1; at_us = 250_000; dur_us = 1_250_000 };
        ];
    }
  in
  let r = Fuzz.run_case ~target case in
  Alcotest.(check verdict)
    (Printf.sprintf "clean (signals: %s)" (String.concat " " r.Fuzz.signature))
    Fuzz.Clean r.Fuzz.verdict;
  Alcotest.(check bool) "healthy" true (Drive.healthy r.Fuzz.outcome)

let () =
  Alcotest.run "lion_fuzz"
    [
      ( "corpus",
        [
          Alcotest.test_case "all cases replay" `Quick test_corpus_replays;
          Alcotest.test_case "phantom flag controls verdict" `Quick
            test_phantom_flag_controls_verdict;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "generate" `Quick test_generate_deterministic;
          Alcotest.test_case "run_case" `Quick test_run_case_deterministic;
          Alcotest.test_case "campaign" `Quick test_campaign_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin strips noise ops" `Quick
            test_shrink_recovers_essential_op;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "plan horizon" `Quick test_plan_horizon;
          Alcotest.test_case "healthy run is clean" `Quick
            test_healthy_run_is_clean;
          Alcotest.test_case "wedged run flagged, safety passes" `Quick
            test_liveness_flags_wedged_run;
        ] );
      ( "faults",
        [
          Alcotest.test_case "recover inside active partition" `Quick
            test_recover_inside_partition;
        ] );
    ]
