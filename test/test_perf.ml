(* Tests for the perf subsystem (lib/perf) and the determinism contract
   the engine optimization ships under: the default experiment path
   must produce byte-identical output to the seed engine. *)

module Scenario = Lion_perf.Scenario
module Report = Lion_perf.Report
module Counters = Lion_perf.Counters
module Engine = Lion_sim.Engine

(* --- golden determinism ------------------------------------------- *)

(* The fig6 ablation at a fixed seed and scale, byte-compared against
   its output captured on the seed engine (commit 61f7240, before the
   int-keyed heap / pooled-dispatch optimization). Any change to event
   ordering — a heap that breaks FIFO ties differently, a lossy
   time<->key cast, a reordered network callback — shows up here as a
   diff. This is what licenses the optimization to claim "bit-for-bit
   compatible". *)
(* dune runtest runs this binary from test/; dune exec from the
   workspace root. Accept both. *)
let golden_path =
  let name = "golden_fig6_scale005.txt" in
  if Sys.file_exists name then name else Filename.concat "test" name

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let capture_stdout f =
  let tmp = Filename.temp_file "lion_golden" ".out" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (try f ()
   with e ->
     restore ();
     Sys.remove tmp;
     raise e);
  restore ();
  let out = read_file tmp in
  Sys.remove tmp;
  out

let test_fig6_byte_identical () =
  let got =
    capture_stdout (fun () -> Lion_harness.Experiments.fig6_ablation ~scale:0.05 ())
  in
  let want = read_file golden_path in
  Alcotest.(check string) "fig6 output byte-identical to seed engine" want got

(* --- counters ------------------------------------------------------ *)

let test_counters_accumulate () =
  let e = Engine.create () in
  let c = Counters.create "drain" in
  Counters.start ~engine:e c;
  for i = 1 to 100 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> ())
  done;
  Engine.run_all e ();
  Counters.stop ~engine:e c;
  Alcotest.(check int) "events attributed" 100 (Counters.events c);
  Alcotest.(check int) "one span" 1 (Counters.spans c);
  Alcotest.(check bool) "wall time sampled" true (Counters.wall_seconds c >= 0.0);
  (* a second span adds, reset clears *)
  Counters.start c;
  Counters.stop c;
  Alcotest.(check int) "two spans" 2 (Counters.spans c);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.events c);
  Alcotest.check_raises "unbalanced stop"
    (Invalid_argument "Counters.stop: no open span") (fun () ->
      Counters.stop c)

(* --- report: JSON round-trip -------------------------------------- *)

let sample_result name ~events ~txns ~p50 ~words : Scenario.result =
  {
    Scenario.name;
    descr = "synthetic \"quoted\" descr\nwith newline";
    samples = 30;
    events_per_op = events;
    txns_per_op = txns;
    p50_ns = p50;
    p99_ns = p50 *. 1.4;
    minor_words_per_op = words;
    events_per_sec =
      (if p50 <= 0.0 then 0.0 else float_of_int events *. 1e9 /. p50);
    txns_per_sec = (if p50 <= 0.0 then 0.0 else float_of_int txns *. 1e9 /. p50);
    minor_words_per_event =
      (if events = 0 then 0.0 else words /. float_of_int events);
  }

let test_report_roundtrip () =
  let results =
    [
      sample_result "engine_drain" ~events:400_000 ~txns:0 ~p50:5.2e7 ~words:1.8e6;
      sample_result "ycsb_lion" ~events:250_000 ~txns:31_000 ~p50:5.0e8
        ~words:1.7e8;
    ]
  in
  let tmp = Filename.temp_file "lion_bench" ".json" in
  Report.write ~path:tmp ~date:"20260808" ~quick:false results;
  let back = Report.load tmp in
  Sys.remove tmp;
  Alcotest.(check int) "row count" (List.length results) (List.length back);
  List.iter2
    (fun (a : Scenario.result) (b : Scenario.result) ->
      Alcotest.(check string) "name" a.Scenario.name b.Scenario.name;
      Alcotest.(check string) "descr" a.Scenario.descr b.Scenario.descr;
      Alcotest.(check int) "events" a.Scenario.events_per_op b.Scenario.events_per_op;
      Alcotest.(check (float 1e-9)) "p50" a.Scenario.p50_ns b.Scenario.p50_ns;
      Alcotest.(check (float 1e-9)) "w/ev" a.Scenario.minor_words_per_event
        b.Scenario.minor_words_per_event)
    results back

let test_report_rejects_garbage () =
  let tmp = Filename.temp_file "lion_bench" ".json" in
  let oc = open_out tmp in
  output_string oc "{ \"schema\": \"something-else\", \"scenarios\": [] }";
  close_out oc;
  let raised =
    try
      ignore (Report.load tmp);
      false
    with Report.Parse_error _ -> true
  in
  Sys.remove tmp;
  Alcotest.(check bool) "wrong schema rejected" true raised

(* --- report: gating ------------------------------------------------ *)

let drain_pair ~speedup =
  [
    sample_result "engine_drain" ~events:400_000 ~txns:0
      ~p50:(2.4e8 /. speedup) ~words:1.8e6;
    sample_result "engine_drain_seed" ~events:400_000 ~txns:0 ~p50:2.4e8
      ~words:7.4e6;
  ]

let test_gates_pass_on_self () =
  let results = drain_pair ~speedup:4.0 in
  let _, failures =
    Report.compare_against ~baseline:results ~current:results ~wall_gates:true
  in
  Alcotest.(check (list string)) "self-compare passes" [] failures

let test_gate_catches_alloc_regression () =
  let baseline = drain_pair ~speedup:4.0 in
  let current =
    List.map
      (fun (r : Scenario.result) ->
        if r.Scenario.name = "engine_drain" then
          {
            r with
            Scenario.minor_words_per_op = r.Scenario.minor_words_per_op *. 2.0;
            minor_words_per_event = r.Scenario.minor_words_per_event *. 2.0;
          }
        else r)
      baseline
  in
  let _, failures =
    Report.compare_against ~baseline ~current ~wall_gates:true
  in
  Alcotest.(check bool) "2x minor-words/event fails the gate" true
    (List.exists
       (fun f ->
         String.length f > 0
         && String.sub f 0 (min 12 (String.length f)) = "engine_drain")
       failures)

let test_gate_catches_speedup_loss () =
  let baseline = drain_pair ~speedup:4.0 in
  let current = drain_pair ~speedup:2.0 in
  (* a uniformly 2x-slower drain also trips the calibrated wall gate?
     no: the seed probe is unchanged, so calibration is 1.0 and only
     engine_drain moved. Both the wall gate and the speedup floor
     should fire. *)
  let _, failures =
    Report.compare_against ~baseline ~current ~wall_gates:true
  in
  Alcotest.(check bool) "speedup floor fires" true
    (List.exists
       (fun f ->
         let needle = "speedup" in
         let rec contains i =
           i + String.length needle <= String.length f
           && (String.sub f i (String.length needle) = needle || contains (i + 1))
         in
         contains 0)
       failures)

let test_wall_gate_calibrates_machine_speed () =
  let baseline = drain_pair ~speedup:4.0 in
  (* Same program on a machine 2.5x slower: every scenario's p50 grows
     by the same factor, including the frozen seed probe. The
     calibrated wall gate must NOT fire. *)
  let current =
    List.map
      (fun (r : Scenario.result) ->
        {
          r with
          Scenario.p50_ns = r.Scenario.p50_ns *. 2.5;
          p99_ns = r.Scenario.p99_ns *. 2.5;
          events_per_sec = r.Scenario.events_per_sec /. 2.5;
        })
      baseline
  in
  let _, failures =
    Report.compare_against ~baseline ~current ~wall_gates:true
  in
  Alcotest.(check (list string)) "slow machine alone doesn't fail" [] failures

(* --- scenario measurement smoke ----------------------------------- *)

let test_scenario_measure_smoke () =
  let spec =
    {
      Scenario.name = "smoke";
      descr = "tiny drain";
      run =
        (fun () ->
          let e = Engine.create () in
          for i = 1 to 500 do
            Engine.schedule e ~delay:(float_of_int (i land 31)) (fun () -> ())
          done;
          Engine.run_all e ();
          (Engine.events_processed e, 0));
    }
  in
  let r = Scenario.measure ~quick:true spec in
  Alcotest.(check string) "name" "smoke" r.Scenario.name;
  Alcotest.(check int) "events captured" 500 r.Scenario.events_per_op;
  Alcotest.(check bool) "samples collected" true (r.Scenario.samples > 0);
  Alcotest.(check bool) "p50 positive" true (r.Scenario.p50_ns > 0.0);
  Alcotest.(check bool) "p99 >= p50" true (r.Scenario.p99_ns >= r.Scenario.p50_ns);
  Alcotest.(check bool) "events/sec positive" true (r.Scenario.events_per_sec > 0.0)

let () =
  Alcotest.run "lion_perf"
    [
      ( "golden",
        [
          Alcotest.test_case "fig6 byte-identical to seed engine" `Slow
            test_fig6_byte_identical;
        ] );
      ( "counters",
        [ Alcotest.test_case "accumulate and reset" `Quick test_counters_accumulate ] );
      ( "report",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "wrong schema rejected" `Quick
            test_report_rejects_garbage;
          Alcotest.test_case "self-compare passes" `Quick test_gates_pass_on_self;
          Alcotest.test_case "alloc regression caught" `Quick
            test_gate_catches_alloc_regression;
          Alcotest.test_case "speedup loss caught" `Quick
            test_gate_catches_speedup_loss;
          Alcotest.test_case "machine-speed calibration" `Quick
            test_wall_gate_calibrates_machine_speed;
        ] );
      ( "scenario",
        [ Alcotest.test_case "measure smoke" `Quick test_scenario_measure_smoke ] );
    ]
