(* Tests for the discrete-event engine, servers, network and metrics. *)

open Lion_sim
module Rng = Lion_kernel.Rng

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5.0 (fun () -> log := 5 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.run_all e ();
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run_all e ();
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:10.0 (fun () -> seen := Engine.now e);
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "clock at event" 10.0 !seen

let test_engine_run_until_deadline () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run_until e 5.0;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at deadline" 5.0 (Engine.now e);
  Engine.run_until e 20.0;
  Alcotest.(check int) "rest delivered" 10 !count

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "b" :: !log));
  Engine.run_all e ();
  Alcotest.(check (list string)) "nested fires" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "time accumulated" 2.0 (Engine.now e)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:(-5.0) (fun () -> fired := true);
  Engine.run_all e ();
  Alcotest.(check bool) "fires at now" true !fired;
  Alcotest.(check (float 1e-9)) "clock unchanged" 0.0 (Engine.now e)

let test_engine_at_absolute () =
  let e = Engine.create () in
  let fired_at = ref (-1.0) in
  Engine.at e ~time:25.0 (fun () -> fired_at := Engine.now e);
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "fires at absolute time" 25.0 !fired_at;
  (* A time in the past clamps to now. *)
  let late = ref (-1.0) in
  Engine.at e ~time:1.0 (fun () -> late := Engine.now e);
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "past clamps to now" 25.0 !late

let test_engine_units () =
  Alcotest.(check (float 1e-9)) "1 second" 1e6 (Engine.seconds 1.0);
  Alcotest.(check (float 1e-9)) "1 ms" 1e3 (Engine.ms 1.0)

let test_engine_apply_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  let record (x : int) = log := (x, Engine.now e) :: !log in
  Engine.schedule_apply e ~delay:2.0 record 1;
  Engine.at_apply e ~time:1.0 record 2;
  Engine.run_all e ();
  Alcotest.(check (list (pair int (float 1e-9))))
    "apply events fire in time order with their payloads"
    [ (2, 1.0); (1, 2.0) ] (List.rev !log);
  Alcotest.(check int) "events counted" 2 (Engine.events_processed e)

let test_engine_run_all_exhaustion () =
  let e = Engine.create () in
  (* A self-perpetuating event loop: every execution schedules the
     next, so only the budget can stop the drain. *)
  let rec tick () = Engine.schedule e ~delay:1.0 tick in
  Engine.schedule e ~delay:1.0 tick;
  Engine.run_all e ~max_events:50 ();
  Alcotest.(check bool) "flagged as exhausted" true (Engine.last_run_exhausted e);
  Alcotest.(check int) "stopped at the budget" 50 (Engine.events_processed e);
  Alcotest.(check bool) "events still pending" true (Engine.pending e > 0);
  (* A clean drain resets the flag. *)
  let e2 = Engine.create () in
  Engine.schedule e2 ~delay:1.0 (fun () -> ());
  Engine.run_all e2 ();
  Alcotest.(check bool) "clean drain not exhausted" false
    (Engine.last_run_exhausted e2)

let test_engine_clamp_counting () =
  let e = Engine.create () in
  Alcotest.(check int) "starts at zero" 0 (Engine.clamped_schedules e);
  Engine.schedule e ~delay:10.0 (fun () -> ());
  Engine.run_all e ();
  Alcotest.(check int) "forward schedules don't count" 0
    (Engine.clamped_schedules e);
  Engine.at e ~time:1.0 (fun () -> ());
  (* past-dated *)
  Engine.schedule e ~delay:(-2.0) (fun () -> ());
  (* negative delay *)
  Engine.run_all e ();
  Alcotest.(check int) "one past-dated at + one negative delay" 2
    (Engine.clamped_schedules e);
  (* ...and Metrics surfaces the same count. *)
  let m = Metrics.create e in
  Alcotest.(check int) "metrics surfaces engine clamps" 2
    (Metrics.schedule_clamps m)

(* --- server --- *)

let test_server_serial_queue () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Server.submit s ~work:10.0 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run_all e ();
  Alcotest.(check (list (float 1e-9))) "serialized" [ 10.0; 20.0; 30.0 ] (List.rev !done_at)

let test_server_parallel_capacity () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:3 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Server.submit s ~work:10.0 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run_all e ();
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) "all parallel" 10.0 t)
    !done_at

let test_server_busy_time_accrues () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:2 in
  Server.submit s ~work:5.0 (fun () -> ());
  Server.submit s ~work:7.0 (fun () -> ());
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "busy time" 12.0 (Server.busy_time s);
  Alcotest.(check int) "completed" 2 (Server.completed s)

let test_server_lease_hold_blocks () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  let second_started = ref (-1.0) in
  Server.acquire s (fun lease ->
      (* Hold across a simulated wait. *)
      Engine.schedule e ~delay:50.0 (fun () -> Server.release s lease));
  Server.acquire s (fun lease ->
      second_started := Engine.now e;
      Server.release s lease);
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "second waits for release" 50.0 !second_started

let test_server_lease_busy_time_includes_wait () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  Server.acquire s (fun lease ->
      Engine.schedule e ~delay:30.0 (fun () -> Server.release s lease));
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "hold counted" 30.0 (Server.busy_time s)

let test_server_double_release_raises () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  Server.acquire s (fun lease ->
      Server.release s lease;
      Alcotest.check_raises "double release" (Invalid_argument "Server.release: lease already released")
        (fun () -> Server.release s lease));
  Engine.run_all e ()

let test_server_queue_length () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  Server.submit s ~work:10.0 (fun () -> ());
  Server.submit s ~work:10.0 (fun () -> ());
  Server.submit s ~work:10.0 (fun () -> ());
  Alcotest.(check int) "two queued" 2 (Server.queue_length s);
  Alcotest.(check int) "one busy" 1 (Server.busy s);
  Engine.run_all e ();
  Alcotest.(check int) "drained" 0 (Server.queue_length s)

let test_server_utilization () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:2 in
  Server.submit s ~work:10.0 (fun () -> ());
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "half utilized" 0.5
    (Server.utilization s ~since:0.0 ~now:10.0)

let test_server_utilization_window () =
  (* A lease held across [reset_counters] must charge only its
     post-reset span to the new window — the cross-window attribution
     bug made utilization read above 1. *)
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  let held = ref None in
  Server.acquire s (fun lease -> held := Some lease);
  Engine.schedule e ~delay:10.0 (fun () -> Server.reset_counters s);
  Engine.schedule e ~delay:30.0 (fun () ->
      match !held with Some l -> Server.release s l | None -> ());
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "post-reset span only" 20.0 (Server.busy_time s);
  Alcotest.(check (float 1e-9)) "utilization capped at window" 1.0
    (Server.utilization s ~since:10.0 ~now:30.0)

let test_server_bounded_queue_rejects_newest () =
  let e = Engine.create () in
  let global = ref 0 in
  let s =
    Server.create ~queue_cap:2 ~on_shed:(fun () -> incr global) e ~capacity:1
  in
  let completed = ref 0 and shed = ref 0 in
  for _ = 1 to 5 do
    Server.submit s ~on_shed:(fun () -> incr shed) ~work:10.0 (fun () ->
        incr completed)
  done;
  (* One in service, two admitted to the queue; arrivals 4 and 5 are
     turned away on the spot, not parked. *)
  Alcotest.(check int) "shed at arrival" 2 !shed;
  Engine.run_all e ();
  Alcotest.(check int) "three served" 3 !completed;
  Alcotest.(check int) "station counter" 2 (Server.sheds s);
  Alcotest.(check int) "global hook fired too" 2 !global

let test_server_codel_sheds_standing_queue () =
  let e = Engine.create () in
  let s =
    Server.create ~policy:(Server.Codel { target = 5.0; interval = 10.0 }) e
      ~capacity:1
  in
  let completed = ref 0 and shed = ref 0 in
  let job () =
    Server.submit s ~on_shed:(fun () -> incr shed) ~work:20.0 (fun () ->
        incr completed)
  in
  (* Four arrivals at t=0 build a standing queue; a fifth arrives at
     t=35 so its sojourn is back under the target when the server next
     dequeues (t=40). CoDel must cut the stale heads (jobs 3 and 4,
     40 µs old) and serve the fresh one. *)
  for _ = 1 to 4 do
    job ()
  done;
  Engine.schedule e ~delay:35.0 job;
  Engine.run_all e ();
  Alcotest.(check int) "stale heads cut" 2 !shed;
  Alcotest.(check int) "fresh work served" 3 !completed

let test_server_priority_control_first () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  let order = ref [] in
  Server.submit s ~work:10.0 (fun () -> order := "first" :: !order);
  Server.submit s ~work:10.0 (fun () -> order := "user" :: !order);
  Server.submit s ~prio:Server.High ~work:10.0 (fun () ->
      order := "control" :: !order);
  Engine.run_all e ();
  Alcotest.(check (list string))
    "control traffic jumps the user queue"
    [ "first"; "control"; "user" ]
    (List.rev !order)

let test_server_priority_never_shed () =
  let e = Engine.create () in
  let s = Server.create ~queue_cap:1 e ~capacity:1 in
  let completed = ref 0 and shed = ref 0 in
  Server.submit s ~work:10.0 (fun () -> incr completed);
  Server.submit s ~work:10.0 (fun () -> incr completed);
  (* The normal queue is at its cap; control traffic is still
     admitted. *)
  Server.submit s ~prio:Server.High
    ~on_shed:(fun () -> incr shed)
    ~work:10.0
    (fun () -> incr completed);
  Engine.run_all e ();
  Alcotest.(check int) "not shed" 0 !shed;
  Alcotest.(check int) "all three served" 3 !completed

let test_server_kill_fails_queue_fast () =
  let e = Engine.create () in
  let s = Server.create e ~capacity:1 in
  let shed = ref 0 and ran = ref 0 in
  Server.acquire s (fun lease ->
      Engine.schedule e ~delay:50.0 (fun () -> Server.release s lease));
  Server.submit s ~on_shed:(fun () -> incr shed) ~work:5.0 (fun () -> incr ran);
  Server.submit s ~on_shed:(fun () -> incr shed) ~work:5.0 (fun () -> incr ran);
  Engine.schedule e ~delay:10.0 (fun () ->
      Server.kill s;
      (* Both waiters fail the instant the node dies — no silent wait
         for a grant that will never come. *)
      Alcotest.(check int) "queue drained on death" 2 !shed;
      Alcotest.(check int) "queue empty" 0 (Server.queue_length s);
      (* Work racing in after the crash is refused on arrival. *)
      Server.submit s ~on_shed:(fun () -> incr shed) ~work:5.0 (fun () ->
          incr ran));
  Engine.schedule e ~delay:20.0 (fun () -> Server.revive s);
  Engine.schedule e ~delay:25.0 (fun () ->
      Server.submit s ~work:5.0 (fun () -> incr ran));
  Engine.run_all e ();
  Alcotest.(check int) "three shed in total" 3 !shed;
  Alcotest.(check int) "revived node serves again" 1 !ran

(* --- overload primitives --- *)

let test_overload_token_bucket () =
  let module B = Overload.Token_bucket in
  let b = B.create ~rate_per_s:1_000.0 ~burst:2.0 in
  Alcotest.(check bool) "first" true (B.try_take b ~now:0.0);
  Alcotest.(check bool) "second" true (B.try_take b ~now:0.0);
  Alcotest.(check bool) "burst spent" false (B.try_take b ~now:0.0);
  (* 1000 tokens per simulated second = one per 1000 µs. *)
  Alcotest.(check bool) "half refilled is not one" false (B.try_take b ~now:500.0);
  Alcotest.(check bool) "refilled" true (B.try_take b ~now:1_000.0);
  Alcotest.(check int) "taken" 3 (B.taken b);
  Alcotest.(check int) "denied" 2 (B.denied b)

let test_overload_breaker () =
  let module Br = Overload.Breaker in
  let b = Br.create ~threshold:2 ~cooldown:100.0 in
  Alcotest.(check bool) "closed allows" true (Br.allow b ~now:0.0);
  Br.record_failure b ~now:0.0;
  Alcotest.(check bool) "one failure stays closed" true (Br.allow b ~now:1.0);
  Br.record_failure b ~now:1.0;
  Alcotest.(check bool) "second consecutive failure trips" false
    (Br.allow b ~now:2.0);
  Alcotest.(check int) "one open" 1 (Br.opens b);
  (* Cooldown elapsed: exactly one half-open probe goes through. *)
  Alcotest.(check bool) "probe allowed" true (Br.allow b ~now:150.0);
  Alcotest.(check bool) "surplus caller refused" false (Br.allow b ~now:151.0);
  Br.record_failure b ~now:151.0;
  Alcotest.(check bool) "failed probe re-opens" false (Br.allow b ~now:200.0);
  Alcotest.(check bool) "second probe after cooldown" true (Br.allow b ~now:260.0);
  Br.record_success b;
  Alcotest.(check bool) "probe success closes" true (Br.allow b ~now:261.0);
  Alcotest.(check bool) "and stays closed" true (Br.allow b ~now:262.0);
  Alcotest.(check bool) "rejects counted" true (Br.rejects b > 0)

(* --- network --- *)

let test_network_delay_model () =
  let e = Engine.create () in
  let n = Network.create ~latency:100.0 ~per_byte:0.01 e in
  Alcotest.(check (float 1e-9)) "oneway" 110.0 (Network.oneway_delay n ~bytes:1000);
  Alcotest.(check (float 1e-9)) "roundtrip" 220.0 (Network.roundtrip n ~bytes:1000)

let test_network_send_delivers_at_delay () =
  let e = Engine.create () in
  let n = Network.create ~latency:100.0 ~per_byte:0.0 e in
  let arrived = ref (-1.0) in
  Network.send n ~src:0 ~dst:1 ~bytes:0 (fun () -> arrived := Engine.now e);
  Engine.run_all e ();
  Alcotest.(check (float 1e-9)) "arrival time" 100.0 !arrived

let test_network_local_free () =
  let e = Engine.create () in
  let n = Network.create e in
  Network.send n ~src:2 ~dst:2 ~bytes:100_000 (fun () -> ());
  Engine.run_all e ();
  Alcotest.(check int) "no bytes" 0 (Network.total_bytes n);
  Alcotest.(check int) "no messages" 0 (Network.message_count n)

let test_network_accounting () =
  let e = Engine.create () in
  let n = Network.create e in
  Network.send n ~src:0 ~dst:1 ~bytes:500 (fun () -> ());
  Network.charge n ~bytes:300;
  Engine.run_all e ();
  Alcotest.(check int) "bytes" 800 (Network.total_bytes n);
  Alcotest.(check int) "messages" 2 (Network.message_count n)

let test_network_bytes_series () =
  let e = Engine.create () in
  let n = Network.create e in
  Engine.schedule e ~delay:(Engine.seconds 1.5) (fun () ->
      Network.send n ~src:0 ~dst:1 ~bytes:64 (fun () -> ()));
  Engine.run_all e ();
  let series = Lion_kernel.Timeseries.to_array (Network.bytes_series n) in
  Alcotest.(check (float 1e-9)) "bucket 1 holds bytes" 64.0 series.(1)

(* --- fault layer --- *)

let test_fault_empty_plan_inert () =
  let f = Fault.create ~nodes:4 Fault.none in
  for src = 0 to 3 do
    for dst = 0 to 3 do
      match Fault.link f ~now:12345.0 ~src ~dst with
      | Fault.Deliver extra ->
          Alcotest.(check (float 0.0)) "no extra delay" 0.0 extra
      | _ -> Alcotest.fail "empty plan must deliver"
    done
  done;
  for n = 0 to 3 do
    Alcotest.(check bool) "all up" true (Fault.up f n);
    Alcotest.(check (float 0.0)) "no slowdown" 1.0
      (Fault.slow_factor f ~now:12345.0 n)
  done

let test_fault_partition_windows () =
  let f =
    Fault.create ~nodes:5
      [ Fault.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ~from_:100.0 ~until:200.0 ]
  in
  let blocked ~now ~src ~dst =
    match Fault.link f ~now ~src ~dst with Fault.Blocked -> true | _ -> false
  in
  Alcotest.(check bool) "cross-group blocked" true (blocked ~now:150.0 ~src:0 ~dst:2);
  Alcotest.(check bool) "symmetric" true (blocked ~now:150.0 ~src:3 ~dst:1);
  Alcotest.(check bool) "in-group flows" false (blocked ~now:150.0 ~src:0 ~dst:1);
  Alcotest.(check bool) "unlisted node reaches all" false
    (blocked ~now:150.0 ~src:4 ~dst:0);
  Alcotest.(check bool) "before window" false (blocked ~now:50.0 ~src:0 ~dst:2);
  Alcotest.(check bool) "healed after window" false (blocked ~now:250.0 ~src:0 ~dst:2)

let test_fault_drop_probabilities () =
  let always =
    Fault.create ~nodes:2 [ Fault.drop ~prob:1.0 ~from_:0.0 ~until:100.0 () ]
  in
  (match Fault.link always ~now:50.0 ~src:0 ~dst:1 with
  | Fault.Dropped -> ()
  | _ -> Alcotest.fail "prob 1.0 must drop");
  (match Fault.link always ~now:150.0 ~src:0 ~dst:1 with
  | Fault.Deliver _ -> ()
  | _ -> Alcotest.fail "outside window must deliver");
  let never =
    Fault.create ~nodes:2 [ Fault.drop ~prob:0.0 ~from_:0.0 ~until:100.0 () ]
  in
  for _ = 1 to 20 do
    match Fault.link never ~now:50.0 ~src:0 ~dst:1 with
    | Fault.Deliver _ -> ()
    | _ -> Alcotest.fail "prob 0.0 must deliver"
  done

let test_fault_straggler_window () =
  let f =
    Fault.create ~nodes:3
      [
        Fault.straggler ~node:1 ~factor:4.0 ~from_:100.0 ~until:200.0;
        Fault.straggler ~node:1 ~factor:2.0 ~from_:150.0 ~until:200.0;
      ]
  in
  Alcotest.(check (float 0.0)) "before window" 1.0 (Fault.slow_factor f ~now:50.0 1);
  Alcotest.(check (float 0.0)) "inside window" 4.0 (Fault.slow_factor f ~now:120.0 1);
  Alcotest.(check (float 0.0)) "overlap multiplies" 8.0
    (Fault.slow_factor f ~now:160.0 1);
  Alcotest.(check (float 0.0)) "other node untouched" 1.0
    (Fault.slow_factor f ~now:120.0 0);
  Alcotest.(check (float 0.0)) "after window" 1.0 (Fault.slow_factor f ~now:250.0 1)

let test_fault_dropped_message_still_charged () =
  let e = Engine.create () in
  let f =
    Fault.create ~nodes:2 [ Fault.drop ~prob:1.0 ~from_:0.0 ~until:1e9 () ]
  in
  let n = Network.create ~fault:f e in
  let delivered = ref false and dropped = ref false in
  Network.send n ~src:0 ~dst:1 ~bytes:700
    ~on_drop:(fun () -> dropped := true)
    (fun () -> delivered := true);
  Engine.run_all e ();
  Alcotest.(check bool) "never delivered" false !delivered;
  Alcotest.(check bool) "on_drop fired" true !dropped;
  Alcotest.(check int) "bytes still charged" 700 (Network.total_bytes n);
  Alcotest.(check int) "drop counted" 1 (Network.drops n)

let test_fault_send_to_dead_node_drops () =
  let e = Engine.create () in
  let f = Fault.create ~nodes:2 Fault.none in
  let n = Network.create ~fault:f e in
  Fault.mark_down f 1;
  let delivered = ref false and dropped = ref false in
  Network.send n ~src:0 ~dst:1 ~bytes:64
    ~on_drop:(fun () -> dropped := true)
    (fun () -> delivered := true);
  Engine.run_all e ();
  Alcotest.(check bool) "dead dst never delivers" false !delivered;
  Alcotest.(check bool) "on_drop fired" true !dropped;
  (* A message in flight when the destination dies is also lost. *)
  Fault.mark_up f 1;
  let in_flight_lost = ref false in
  Network.send n ~src:0 ~dst:1 ~bytes:64
    ~on_drop:(fun () -> in_flight_lost := true)
    (fun () -> ());
  Engine.schedule e ~delay:1.0 (fun () -> Fault.mark_down f 1);
  Engine.run_all e ();
  Alcotest.(check bool) "in-flight delivery dropped" true !in_flight_lost

let test_fault_same_seed_replays () =
  let plan =
    [
      Fault.drop ~prob:0.5 ~from_:0.0 ~until:1e9 ();
      Fault.jitter ~extra:25.0 ~from_:0.0 ~until:1e9;
    ]
  in
  let trace f =
    List.init 200 (fun i ->
        match Fault.link f ~now:(float_of_int i) ~src:0 ~dst:1 with
        | Fault.Deliver extra -> Printf.sprintf "d%.6f" extra
        | Fault.Blocked -> "b"
        | Fault.Dropped -> "x")
  in
  let a = trace (Fault.create ~seed:7 ~nodes:2 plan) in
  let b = trace (Fault.create ~seed:7 ~nodes:2 plan) in
  let c = trace (Fault.create ~seed:8 ~nodes:2 plan) in
  Alcotest.(check (list string)) "same seed replays" a b;
  Alcotest.(check bool) "different seed diverges" true (a <> c)

let test_fault_crash_events_sorted () =
  let plan =
    Fault.crash_recover ~node:2 ~at:500.0 ~downtime:100.0
    @ [ Fault.crash ~node:0 ~at:50.0 () ]
  in
  let evs = Fault.crash_events plan in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let times = List.map fst evs in
  Alcotest.(check (list (float 0.0))) "sorted by time" [ 50.0; 500.0; 600.0 ] times;
  match evs with
  | [ (_, `Crash 0); (_, `Crash 2); (_, `Recover 2) ] -> ()
  | _ -> Alcotest.fail "unexpected event shapes"

(* --- metrics --- *)

let test_metrics_counts () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Metrics.record_commit m ~latency:100.0 ~single_node:true ~remastered:false ~phases:[];
  Metrics.record_commit m ~latency:200.0 ~single_node:false ~remastered:true ~phases:[];
  Metrics.record_abort m;
  Alcotest.(check int) "commits" 2 (Metrics.commits m);
  Alcotest.(check int) "aborts" 1 (Metrics.aborts m);
  Alcotest.(check int) "single" 1 (Metrics.single_node_commits m);
  Alcotest.(check int) "remastered" 1 (Metrics.remastered_commits m)

let test_metrics_throughput () =
  let e = Engine.create () in
  let m = Metrics.create e in
  for _ = 1 to 500 do
    Metrics.record_commit m ~latency:1.0 ~single_node:true ~remastered:false ~phases:[]
  done;
  Alcotest.(check (float 1e-6)) "per second" 500.0
    (Metrics.throughput m ~duration:(Engine.seconds 1.0))

let test_metrics_phase_fractions () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Metrics.record_commit m ~latency:10.0 ~single_node:true ~remastered:false
    ~phases:[ (Metrics.Execution, 3.0); (Metrics.Commit, 1.0) ];
  Alcotest.(check (float 1e-9)) "execution fraction" 0.75
    (Metrics.phase_fraction m Metrics.Execution);
  Alcotest.(check (float 1e-9)) "commit fraction" 0.25
    (Metrics.phase_fraction m Metrics.Commit);
  Alcotest.(check (float 1e-9)) "unused phase" 0.0
    (Metrics.phase_fraction m Metrics.Remaster)

let test_metrics_series_buckets_by_time () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Metrics.record_commit m ~latency:1.0 ~single_node:true ~remastered:false ~phases:[];
  Engine.schedule e ~delay:(Engine.seconds 2.5) (fun () ->
      Metrics.record_commit m ~latency:1.0 ~single_node:true ~remastered:false ~phases:[]);
  Engine.run_all e ();
  let series = Metrics.throughput_series m in
  Alcotest.(check (float 1e-9)) "t0 bucket" 1.0 series.(0);
  Alcotest.(check (float 1e-9)) "t2 bucket" 1.0 series.(2)

let test_metrics_reset_window () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Metrics.record_commit m ~latency:50.0 ~single_node:true ~remastered:false ~phases:[];
  Metrics.record_timeout m;
  Metrics.record_retry m;
  Metrics.record_drop m;
  Metrics.reset_window m;
  Alcotest.(check int) "commits cleared" 0 (Metrics.commits m);
  Alcotest.(check (float 0.0)) "latency cleared" 0.0 (Metrics.latency_percentile m 50.0);
  Alcotest.(check int) "timeouts cleared" 0 (Metrics.timeouts m);
  Alcotest.(check int) "retries cleared" 0 (Metrics.retries m);
  Alcotest.(check int) "drops cleared" 0 (Metrics.drops m)

(* An empty latency window — a fresh metrics object, or right after
   [reset_window] before any commit lands — must read as 0 from the
   percentile and mean accessors, never NaN or an exception. *)
let test_metrics_empty_window_no_nan () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Alcotest.(check (float 0.0)) "p50 fresh" 0.0 (Metrics.latency_percentile m 50.0);
  Alcotest.(check (float 0.0)) "mean fresh" 0.0 (Metrics.mean_latency m);
  Metrics.record_commit m ~latency:42.0 ~single_node:true ~remastered:false
    ~phases:[];
  Metrics.reset_window m;
  let p99 = Metrics.latency_percentile m 99.0 in
  let mean = Metrics.mean_latency m in
  Alcotest.(check bool) "no NaN after reset" false
    (Float.is_nan p99 || Float.is_nan mean);
  Alcotest.(check (float 0.0)) "p99 after reset" 0.0 p99;
  Alcotest.(check (float 0.0)) "mean after reset" 0.0 mean

let test_metrics_fault_counters () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Metrics.record_timeout m;
  Metrics.record_retry m;
  Metrics.record_retry m;
  Metrics.record_drop m;
  Metrics.record_drop m;
  Metrics.record_drop m;
  Alcotest.(check int) "timeouts" 1 (Metrics.timeouts m);
  Alcotest.(check int) "retries" 2 (Metrics.retries m);
  Alcotest.(check int) "drops" 3 (Metrics.drops m)

let test_metrics_availability_series () =
  let e = Engine.create () in
  let m = Metrics.create e in
  Metrics.note_availability m ~frac:1.0;
  Engine.schedule e ~delay:(Engine.seconds 1.5) (fun () ->
      Metrics.note_availability m ~frac:0.5);
  Engine.run_all e ();
  let series = Metrics.availability_series m in
  Alcotest.(check (float 1e-9)) "bucket 0" 1.0 series.(0);
  Alcotest.(check (float 1e-9)) "bucket 1" 0.5 series.(1)

let test_metrics_percentiles () =
  let e = Engine.create () in
  let m = Metrics.create e in
  for i = 1 to 100 do
    Metrics.record_commit m ~latency:(float_of_int i) ~single_node:true ~remastered:false
      ~phases:[]
  done;
  let p50 = Metrics.latency_percentile m 50.0 in
  Alcotest.(check bool) "p50 near middle" true (p50 > 45.0 && p50 < 56.0);
  Alcotest.(check (float 1e-6)) "mean" 50.5 (Metrics.mean_latency m)

(* --- property tests --- *)

let prop_server_conserves_work =
  QCheck.Test.make ~name:"server busy time equals total submitted work" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 0 30) (float_range 0.0 50.0)))
    (fun (capacity, works) ->
      let e = Engine.create () in
      let s = Server.create e ~capacity in
      List.iter (fun w -> Server.submit s ~work:w (fun () -> ())) works;
      Engine.run_all e ();
      Server.completed s = List.length works
      && Float.abs (Server.busy_time s -. List.fold_left ( +. ) 0.0 works) < 1e-6)

let prop_engine_delivers_in_order =
  QCheck.Test.make ~name:"engine delivers all events in time order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0.0 1000.0))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired)) delays;
      Engine.run_all e ();
      let order = List.rev !fired in
      List.length order = List.length delays
      && order = List.sort compare delays)

let prop_timeseries_conserves_mass =
  QCheck.Test.make ~name:"timeseries buckets conserve added mass" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0.0 100.0))
    (fun times ->
      let ts = Lion_kernel.Timeseries.create ~interval:7.0 in
      List.iter (fun time -> Lion_kernel.Timeseries.incr ts ~time) times;
      let total = Array.fold_left ( +. ) 0.0 (Lion_kernel.Timeseries.to_array ts) in
      int_of_float total = List.length times)

(* The admission-control contract (docs/OVERLOAD.md): under any seeded
   arrival sequence a bounded queue never grows past its cap, and every
   submitted request resolves exactly one way — completed or shed,
   never both, never neither. *)
let prop_bounded_queue_accounting =
  QCheck.Test.make
    ~name:"bounded queue holds its cap and accounts for every request"
    ~count:200
    QCheck.(
      triple (int_range 1 3) (int_range 1 5)
        (list_of_size (Gen.int_range 0 40)
           (pair (float_range 0.0 50.0) (float_range 0.0 30.0))))
    (fun (capacity, cap, arrivals) ->
      let e = Engine.create () in
      let s = Server.create ~queue_cap:cap e ~capacity in
      let completed = ref 0 and shed = ref 0 and over_cap = ref false in
      List.iter
        (fun (at, work) ->
          Engine.schedule e ~delay:at (fun () ->
              Server.submit s
                ~on_shed:(fun () -> incr shed)
                ~work
                (fun () -> incr completed);
              if Server.queue_length s > cap then over_cap := true))
        arrivals;
      Engine.run_all e ();
      (not !over_cap)
      && Server.max_queue s <= cap
      && !completed + !shed = List.length arrivals
      && !completed = Server.completed s
      && !shed = Server.sheds s)

let () =
  Alcotest.run "lion_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO at equal times" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "run_until respects deadline" `Quick test_engine_run_until_deadline;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "negative delay clamped" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "absolute scheduling" `Quick test_engine_at_absolute;
          Alcotest.test_case "unit helpers" `Quick test_engine_units;
          Alcotest.test_case "apply scheduling" `Quick test_engine_apply_scheduling;
          Alcotest.test_case "run_all exhaustion flagged" `Quick
            test_engine_run_all_exhaustion;
          Alcotest.test_case "past-dated clamps counted" `Quick
            test_engine_clamp_counting;
        ] );
      ( "server",
        [
          Alcotest.test_case "capacity 1 serializes" `Quick test_server_serial_queue;
          Alcotest.test_case "capacity 3 parallelizes" `Quick test_server_parallel_capacity;
          Alcotest.test_case "busy time accrues" `Quick test_server_busy_time_accrues;
          Alcotest.test_case "lease hold blocks next" `Quick test_server_lease_hold_blocks;
          Alcotest.test_case "lease busy time includes wait" `Quick
            test_server_lease_busy_time_includes_wait;
          Alcotest.test_case "double release raises" `Quick test_server_double_release_raises;
          Alcotest.test_case "queue length" `Quick test_server_queue_length;
          Alcotest.test_case "utilization" `Quick test_server_utilization;
          Alcotest.test_case "utilization window attribution" `Quick
            test_server_utilization_window;
          Alcotest.test_case "bounded queue rejects newest" `Quick
            test_server_bounded_queue_rejects_newest;
          Alcotest.test_case "CoDel sheds standing queue" `Quick
            test_server_codel_sheds_standing_queue;
          Alcotest.test_case "control priority first" `Quick
            test_server_priority_control_first;
          Alcotest.test_case "control priority never shed" `Quick
            test_server_priority_never_shed;
          Alcotest.test_case "kill fails queued work fast" `Quick
            test_server_kill_fails_queue_fast;
        ] );
      ( "overload",
        [
          Alcotest.test_case "token bucket" `Quick test_overload_token_bucket;
          Alcotest.test_case "circuit breaker" `Quick test_overload_breaker;
        ] );
      ( "network",
        [
          Alcotest.test_case "delay model" `Quick test_network_delay_model;
          Alcotest.test_case "delivery at delay" `Quick test_network_send_delivers_at_delay;
          Alcotest.test_case "local sends free" `Quick test_network_local_free;
          Alcotest.test_case "byte accounting" `Quick test_network_accounting;
          Alcotest.test_case "bytes series" `Quick test_network_bytes_series;
        ] );
      ( "fault",
        [
          Alcotest.test_case "empty plan inert" `Quick test_fault_empty_plan_inert;
          Alcotest.test_case "partition windows" `Quick test_fault_partition_windows;
          Alcotest.test_case "drop probabilities" `Quick test_fault_drop_probabilities;
          Alcotest.test_case "straggler window" `Quick test_fault_straggler_window;
          Alcotest.test_case "dropped message still charged" `Quick
            test_fault_dropped_message_still_charged;
          Alcotest.test_case "send to dead node drops" `Quick
            test_fault_send_to_dead_node_drops;
          Alcotest.test_case "same seed replays" `Quick test_fault_same_seed_replays;
          Alcotest.test_case "crash events sorted" `Quick test_fault_crash_events_sorted;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "commit/abort counts" `Quick test_metrics_counts;
          Alcotest.test_case "throughput" `Quick test_metrics_throughput;
          Alcotest.test_case "phase fractions" `Quick test_metrics_phase_fractions;
          Alcotest.test_case "series bucketing" `Quick test_metrics_series_buckets_by_time;
          Alcotest.test_case "reset window" `Quick test_metrics_reset_window;
          Alcotest.test_case "empty window reads 0" `Quick
            test_metrics_empty_window_no_nan;
          Alcotest.test_case "fault counters" `Quick test_metrics_fault_counters;
          Alcotest.test_case "availability series" `Quick test_metrics_availability_series;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_server_conserves_work;
            prop_engine_delivers_in_order;
            prop_timeseries_conserves_mass;
            prop_bounded_queue_accounting;
          ] );
    ]
