(* Geo-replication tests (docs/GEO.md): the region topology and its
   link accounting, the min_regions placement constraint — including a
   property over join/decommission/crash/rejoin interleavings — the
   region-aware workload generator, and the epoch-based OCC protocol's
   consistency audits under the crash and partition nemeses. *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Engine = Lion_sim.Engine
module Network = Lion_sim.Network
module Metrics = Lion_sim.Metrics
module Nemesis = Lion_audit.Nemesis
module Drive = Lion_audit.Drive
module Runner = Lion_harness.Runner
module Geo = Lion_harness.Geo
module Workloads = Lion_harness.Workloads
module Txn = Lion_workload.Txn

let geo_cfg = Geo.geo_config ()

(* --- region topology --- *)

let test_region_of_node_blocks () =
  (* 4 nodes, 2 regions: contiguous halves. *)
  Alcotest.(check (list int)) "2 regions over 4 nodes" [ 0; 0; 1; 1 ]
    (List.init 4 (Config.region_of_node geo_cfg));
  (* Region-free default: everything in region 0. *)
  Alcotest.(check (list int)) "region-free" [ 0; 0; 0; 0 ]
    (List.init 4 (Config.region_of_node Config.default));
  (* 3 regions over 6 slots (elastic): blocks of 2. *)
  let c =
    { (Config.with_elastic_defaults Config.default) with Config.regions = 3 }
  in
  Alcotest.(check (list int)) "3 regions over 6 slots" [ 0; 0; 1; 1; 2; 2 ]
    (List.init 6 (Config.region_of_node c))

let test_default_topology_free () =
  (* Default config must build a region-free network: no topology, no
     link accounting — the byte-identical default path. *)
  let cl = Cluster.create ~seed:5 Config.default in
  Alcotest.(check bool) "no topology" true (Network.topology cl.Cluster.network = None);
  Alcotest.(check int) "one region" 1 (Network.regions cl.Cluster.network);
  Network.send cl.Cluster.network ~src:0 ~dst:3 ~bytes:1000 (fun () -> ());
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "no wan msgs" 0 (Metrics.wan_messages cl.Cluster.metrics);
  Alcotest.(check int) "no lan msgs" 0 (Metrics.lan_messages cl.Cluster.metrics)

let test_geo_link_accounting () =
  let cl = Cluster.create ~seed:5 geo_cfg in
  let net = cl.Cluster.network in
  Alcotest.(check int) "two regions" 2 (Network.regions net);
  Alcotest.(check bool) "0-1 intra" false (Network.cross_region net ~src:0 ~dst:1);
  Alcotest.(check bool) "0-2 cross" true (Network.cross_region net ~src:0 ~dst:2);
  (* Cross-region delivery pays the WAN latency class. *)
  Alcotest.(check bool) "wan slower than lan" true
    (Network.link_delay net ~src:0 ~dst:2 ~bytes:128
    > 100.0 *. Network.link_delay net ~src:0 ~dst:1 ~bytes:128);
  Network.send net ~src:0 ~dst:1 ~bytes:100 (fun () -> ());
  Network.send net ~src:0 ~dst:2 ~bytes:200 (fun () -> ());
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "1 lan msg" 1 (Metrics.lan_messages cl.Cluster.metrics);
  Alcotest.(check int) "1 wan msg" 1 (Metrics.wan_messages cl.Cluster.metrics);
  Alcotest.(check int) "lan bytes" 100 (Metrics.lan_bytes cl.Cluster.metrics);
  Alcotest.(check int) "wan bytes" 200 (Metrics.wan_bytes cl.Cluster.metrics)

(* --- min_regions placement --- *)

let spans_ok cl =
  let region_of = Cluster.region_of cl in
  let ok = ref true in
  for part = 0 to Cluster.partition_count cl - 1 do
    ok :=
      !ok
      && Placement.regions_spanned cl.Cluster.placement ~region_of ~part >= 2
  done;
  !ok

let test_spread_at_create () =
  let cl = Cluster.create ~seed:5 geo_cfg in
  Alcotest.(check bool) "every partition spans both regions" true (spans_ok cl)

let prop_geo_membership_interleaving =
  (* Satellite: under min_regions >= 2 no partition ends up with all
     replicas in one region, whatever membership churn happened —
     mirrors the convergence property of test_store, plus the span
     invariant. *)
  QCheck.Test.make
    ~name:"min_regions >= 2 survives join/decommission/crash/rejoin interleavings"
    ~count:40
    QCheck.(
      list_of_size (Gen.int_range 0 10)
        (triple (int_range 0 3) (int_range 0 5) (float_range 0.0 300_000.0)))
    (fun ops ->
      let cfg =
        {
          (Config.with_geo_defaults (Config.with_elastic_defaults Config.default)) with
          Config.rebalance_rate = 200.0;
        }
      in
      let cl = Cluster.create ~seed:5 cfg in
      List.iter
        (fun (kind, node, advance) ->
          (match kind with
          | 0 -> ignore (Cluster.join_node cl node)
          | 1 ->
              if Cluster.member_count cl > cfg.Config.replicas + 1 then
                ignore (Cluster.decommission_node cl node)
          | 2 -> Cluster.fail_node cl node
          | _ -> Cluster.recover_node cl node);
          Engine.run_until cl.Cluster.engine (Engine.now cl.Cluster.engine +. advance))
        ops;
      Array.iteri
        (fun n m -> if m && not (Cluster.alive cl n) then Cluster.recover_node cl n)
        cl.Cluster.member;
      Engine.run_all cl.Cluster.engine ();
      spans_ok cl)

(* --- region-aware generator --- *)

let region_of_part cfg p = Config.region_of_node cfg (p mod cfg.Config.nodes)

let test_gen_cross_ratio () =
  let local = Geo.gen ~seed:3 ~cross:0.0 geo_cfg in
  let wan = Geo.gen ~seed:3 ~cross:1.0 geo_cfg in
  for _ = 1 to 200 do
    let span g =
      let t = g ~time:0.0 in
      List.length
        (List.sort_uniq compare (List.map (region_of_part geo_cfg) t.Txn.parts))
    in
    Alcotest.(check int) "cross 0.0 stays region-local" 1 (span local);
    Alcotest.(check int) "cross 1.0 spans regions" 2 (span wan)
  done

(* --- epoch-based OCC --- *)

let epoch_drive nemesis =
  Drive.run ~seed:3 ~clients:4 ~duration:1.5 ~nemesis_at:0.3 ~cfg:Config.default
    ~make:(fun cl -> Lion_protocols.Epoch.create cl)
    ~gen:(Workloads.ycsb ~cross:0.4 ~skew:0.6 Config.default)
    ~nemesis ()

let test_epoch_audit_crash () =
  let o = epoch_drive (Nemesis.crash ~node:1 ~downtime:400_000.0 ()) in
  Alcotest.(check bool) "some work committed" true (o.Drive.commits > 0);
  Alcotest.(check bool) "audit passed" true (Drive.passed o)

let test_epoch_audit_partition () =
  let o =
    epoch_drive
      (Nemesis.partition_primary_from_majority ~node:0 ~duration:800_000.0 ~nodes:4 ())
  in
  Alcotest.(check bool) "some work committed" true (o.Drive.commits > 0);
  Alcotest.(check bool) "audit passed" true (Drive.passed o)

let test_epoch_geo_commits_over_wan () =
  (* End-to-end: epoch on the geo cluster commits cross-region work and
     its replication rounds show up in the WAN counters. *)
  let captured = ref None in
  let r =
    Runner.run ~seed:7 ~cfg:geo_cfg
      ~make:(fun cl -> Lion_protocols.Epoch.create cl)
      ~setup:(fun cl -> captured := Some cl)
      ~gen:(Geo.gen ~seed:7 ~cross:0.5 geo_cfg)
      { Runner.quick with Runner.warmup = 0.5; duration = 1.0 }
  in
  Alcotest.(check bool) "commits" true (r.Runner.commits > 0);
  match !captured with
  | Some cl ->
      Alcotest.(check bool) "wan traffic" true
        (Metrics.wan_messages cl.Cluster.metrics > 0)
  | None -> Alcotest.fail "setup not called"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "lion_geo"
    [
      ( "topology",
        [
          Alcotest.test_case "region_of_node blocks" `Quick test_region_of_node_blocks;
          Alcotest.test_case "default is region-free" `Quick test_default_topology_free;
          Alcotest.test_case "link accounting" `Quick test_geo_link_accounting;
        ] );
      ( "placement",
        [ Alcotest.test_case "spread at create" `Quick test_spread_at_create ] );
      qsuite "membership" [ prop_geo_membership_interleaving ];
      ( "workload",
        [ Alcotest.test_case "gen cross ratio" `Quick test_gen_cross_ratio ] );
      ( "epoch",
        [
          Alcotest.test_case "audit under crash" `Quick test_epoch_audit_crash;
          Alcotest.test_case "audit under partition" `Quick test_epoch_audit_partition;
          Alcotest.test_case "geo commits over WAN" `Quick test_epoch_geo_commits_over_wan;
        ] );
    ]
