(* Tests for the prediction pipeline: templates, classification,
   forecasting, the wv trigger and pre-replication hints. *)

module Template = Lion_predict.Template
module Classify = Lion_predict.Classify
module Forecaster = Lion_predict.Forecaster
module Predictor = Lion_predict.Predictor
module Txn = Lion_workload.Txn
module Kvstore = Lion_store.Kvstore
module Rng = Lion_kernel.Rng

let sec = Lion_sim.Engine.seconds

(* --- templates --- *)

let test_template_same_parts_same_id () =
  let t = Template.create ~interval:(sec 1.0) () in
  let a = Template.observe t ~time:0.0 ~parts:[ 1; 2 ] in
  let b = Template.observe t ~time:10.0 ~parts:[ 2; 1 ] in
  Alcotest.(check int) "label by partition set" a b;
  Alcotest.(check int) "one template" 1 (Template.template_count t)

let test_template_distinct_parts_distinct_ids () =
  let t = Template.create ~interval:(sec 1.0) () in
  let a = Template.observe t ~time:0.0 ~parts:[ 1; 2 ] in
  let b = Template.observe t ~time:0.0 ~parts:[ 1; 3 ] in
  Alcotest.(check bool) "different ids" true (a <> b)

let test_template_arrival_rate_buckets () =
  let t = Template.create ~interval:(sec 1.0) () in
  let id = Template.observe t ~time:(sec 0.5) ~parts:[ 1 ] in
  ignore (Template.observe t ~time:(sec 0.6) ~parts:[ 1 ]);
  ignore (Template.observe t ~time:(sec 1.5) ~parts:[ 1 ]);
  let ar = Template.arrival_rate t id ~window:2 in
  Alcotest.(check (array (float 1e-9))) "per-bucket counts" [| 2.0; 1.0 |] ar

let test_template_upto_excludes_partial () =
  let t = Template.create ~interval:(sec 1.0) () in
  let id = Template.observe t ~time:(sec 0.1) ~parts:[ 1 ] in
  ignore (Template.observe t ~time:(sec 1.1) ~parts:[ 1 ]);
  let ar = Template.arrival_rate ~upto:1 t id ~window:1 in
  Alcotest.(check (array (float 1e-9))) "only complete bucket" [| 1.0 |] ar

let test_template_eviction_keeps_hot () =
  let t = Template.create ~capacity:2 ~interval:(sec 1.0) () in
  let hot = Template.observe t ~time:0.0 ~parts:[ 1 ] in
  for _ = 1 to 10 do
    ignore (Template.observe t ~time:0.0 ~parts:[ 1 ])
  done;
  ignore (Template.observe t ~time:0.0 ~parts:[ 2 ]);
  ignore (Template.observe t ~time:0.0 ~parts:[ 3 ]);
  Alcotest.(check int) "capacity respected" 2 (Template.template_count t);
  Alcotest.(check (list int)) "hot survives" [ 1 ] (Template.parts_of t hot)

let test_template_hottest_first () =
  let t = Template.create ~interval:(sec 1.0) () in
  ignore (Template.observe t ~time:0.0 ~parts:[ 1 ]);
  let hot = Template.observe t ~time:0.0 ~parts:[ 2 ] in
  ignore (Template.observe t ~time:0.0 ~parts:[ 2 ]);
  Alcotest.(check int) "hottest leads" hot (List.hd (Template.ids t))

(* --- classification --- *)

let observe_series t ~parts ~buckets =
  Array.iteri
    (fun i count ->
      for _ = 1 to count do
        ignore (Template.observe t ~time:(sec (float_of_int i +. 0.5)) ~parts)
      done)
    buckets

let test_classify_merges_correlated () =
  let t = Template.create ~interval:(sec 1.0) () in
  (* Two templates rising together, one flat. *)
  observe_series t ~parts:[ 1; 2 ] ~buckets:[| 1; 2; 4; 8 |];
  observe_series t ~parts:[ 3; 4 ] ~buckets:[| 1; 2; 4; 8 |];
  observe_series t ~parts:[ 5 ] ~buckets:[| 5; 5; 5; 5 |];
  let classes = Classify.classify ~upto:4 t ~window:4 ~beta:0.05 in
  (* The correlated pair must share a class; the flat one is separate. *)
  let class_of parts =
    List.find
      (fun (w : Classify.workload) ->
        List.exists (fun id -> Template.parts_of t id = parts) w.Classify.templates)
      classes
  in
  Alcotest.(check int) "correlated merged"
    (class_of [ 1; 2 ]).Classify.class_id
    (class_of [ 3; 4 ]).Classify.class_id;
  Alcotest.(check bool) "flat separate" true
    ((class_of [ 5 ]).Classify.class_id <> (class_of [ 1; 2 ]).Classify.class_id)

let test_classify_series_sums_members () =
  let t = Template.create ~interval:(sec 1.0) () in
  observe_series t ~parts:[ 1; 2 ] ~buckets:[| 2; 2 |];
  observe_series t ~parts:[ 3; 4 ] ~buckets:[| 2; 2 |];
  let classes = Classify.classify ~upto:2 t ~window:2 ~beta:0.1 in
  let w = List.hd classes in
  Alcotest.(check (array (float 1e-9))) "summed ar" [| 4.0; 4.0 |] w.Classify.series

let test_classify_idle_bucket () =
  let t = Template.create ~interval:(sec 1.0) () in
  observe_series t ~parts:[ 1 ] ~buckets:[| 3; 3 |];
  (* A template seen only long ago: zero in the window. *)
  ignore (Template.observe t ~time:0.0 ~parts:[ 9 ]);
  let classes = Classify.classify ~upto:20 t ~window:2 ~beta:0.1 in
  (* Every template is idle in the distant window -> one idle class. *)
  Alcotest.(check bool) "idle class exists" true (List.length classes >= 1)

let test_sample_templates_weighted () =
  let t = Template.create ~interval:(sec 1.0) () in
  observe_series t ~parts:[ 1; 2 ] ~buckets:[| 50 |];
  observe_series t ~parts:[ 3; 4 ] ~buckets:[| 1 |];
  let classes = Classify.classify ~upto:1 t ~window:1 ~beta:1.0 in
  let w = List.hd classes in
  let sampled = Classify.sample_templates w t ~rng:(Rng.create 3) ~k:1 in
  Alcotest.(check int) "k respected" 1 (List.length sampled)

(* --- forecaster --- *)

let test_forecaster_trend_fallback () =
  let f = Forecaster.create ~use_lstm:false () in
  let pred = Forecaster.forecast f ~key:0 ~series:[| 10.0; 20.0; 30.0 |] ~horizon:1 in
  Alcotest.(check (float 1e-9)) "linear extrapolation" 40.0 pred;
  let pred2 = Forecaster.forecast f ~key:0 ~series:[| 10.0; 20.0; 30.0 |] ~horizon:2 in
  Alcotest.(check (float 1e-9)) "two steps" 50.0 pred2

let test_forecaster_nonnegative () =
  let f = Forecaster.create ~use_lstm:false () in
  let pred = Forecaster.forecast f ~key:0 ~series:[| 30.0; 20.0; 10.0 |] ~horizon:5 in
  Alcotest.(check bool) "clamped at zero" true (pred >= 0.0)

let test_forecaster_short_series_fallback () =
  let f = Forecaster.create ~use_lstm:true ~window:10 () in
  (* Too short for the LSTM path; must fall back, not crash. *)
  let pred = Forecaster.forecast f ~key:1 ~series:[| 5.0 |] ~horizon:1 in
  Alcotest.(check (float 1e-9)) "single point" 5.0 pred;
  Alcotest.(check int) "no models trained" 0 (Forecaster.trained_models f)

let test_forecaster_lstm_trains_once_series_long () =
  let f = Forecaster.create ~use_lstm:true ~window:5 ~epochs:10 () in
  let series = Array.init 30 (fun i -> 100.0 +. (10.0 *. sin (float_of_int i))) in
  let pred = Forecaster.forecast f ~key:7 ~series ~horizon:1 in
  Alcotest.(check bool) "finite forecast" true (Float.is_finite pred);
  Alcotest.(check int) "model trained" 1 (Forecaster.trained_models f);
  Alcotest.(check bool) "retrain counted" true (Forecaster.retrain_count f >= 1)

let test_forecaster_lstm_tracks_level () =
  let f = Forecaster.create ~use_lstm:true ~window:5 ~epochs:60 () in
  let series = Array.make 40 50.0 in
  let pred = Forecaster.forecast f ~key:9 ~series ~horizon:1 in
  Alcotest.(check bool)
    (Printf.sprintf "constant series ~50 (got %.1f)" pred)
    true
    (Float.abs (pred -. 50.0) < 15.0)

(* --- predictor --- *)

let drive predictor ~parts ~from_s ~to_s ~rate =
  for s = from_s to to_s - 1 do
    for i = 0 to rate - 1 do
      let time = sec (float_of_int s +. (float_of_int i /. float_of_int rate)) in
      let ops = List.map (fun p -> Txn.Read (Kvstore.key ~part:p ~slot:0)) parts in
      Predictor.observe predictor ~time (Txn.make ~id:0 ops)
    done
  done

let test_predictor_quiet_on_steady_workload () =
  let p = Predictor.create ~use_lstm:false () in
  drive p ~parts:[ 1; 2 ] ~from_s:0 ~to_s:15 ~rate:50;
  let hints = Predictor.analyze p ~time:(sec 15.0) in
  Alcotest.(check (list (pair (list int) (float 1.0))))
    "no pre-replication on steady load" []
    (List.map (fun h -> (h.Predictor.parts, h.Predictor.weight)) hints);
  Alcotest.(check bool) "wv small" true (Predictor.last_wv p < 0.3)

let test_predictor_fires_on_rising_workload () =
  let p = Predictor.create ~use_lstm:false ~gamma:0.2 () in
  (* Template rising steeply over time. *)
  for s = 0 to 14 do
    let rate = 5 * (s + 1) in
    drive p ~parts:[ 3; 4 ] ~from_s:s ~to_s:(s + 1) ~rate
  done;
  let hints = Predictor.analyze p ~time:(sec 15.0) in
  Alcotest.(check bool) "wv above gamma" true (Predictor.last_wv p > 0.2);
  Alcotest.(check bool) "emits co-access hints" true (hints <> []);
  List.iter
    (fun h ->
      Alcotest.(check (list int)) "hint names the rising pair" [ 3; 4 ] h.Predictor.parts;
      Alcotest.(check bool) "positive weight" true (h.Predictor.weight > 0.0))
    hints

let test_predictor_disabled_when_wp_zero () =
  let p = Predictor.create ~use_lstm:false ~w_p:0.0 () in
  drive p ~parts:[ 1; 2 ] ~from_s:0 ~to_s:5 ~rate:10;
  Alcotest.(check int) "no templates tracked" 0 (Predictor.template_count p);
  Alcotest.(check (list unit)) "no hints" []
    (List.map (fun _ -> ()) (Predictor.analyze p ~time:(sec 5.0)))

let test_predictor_single_partition_templates_skipped () =
  let p = Predictor.create ~use_lstm:false ~gamma:0.0 () in
  for s = 0 to 14 do
    drive p ~parts:[ 7 ] ~from_s:s ~to_s:(s + 1) ~rate:(5 * (s + 1))
  done;
  let hints = Predictor.analyze p ~time:(sec 15.0) in
  Alcotest.(check (list unit)) "single-partition hints filtered" []
    (List.map (fun _ -> ()) hints)

let test_classify_beta_extremes () =
  let t = Template.create ~interval:(sec 1.0) () in
  observe_series t ~parts:[ 1; 2 ] ~buckets:[| 1; 2; 4 |];
  observe_series t ~parts:[ 3; 4 ] ~buckets:[| 4; 2; 1 |];
  (* beta = 1 merges everything (distance can never exceed 1 for
     non-negative rates); beta = 0 keeps distinct shapes apart. *)
  let merged = Classify.classify ~upto:3 t ~window:3 ~beta:1.0 in
  let split = Classify.classify ~upto:3 t ~window:3 ~beta:0.0 in
  Alcotest.(check int) "beta=1 one class" 1 (List.length merged);
  Alcotest.(check bool) "beta=0 separates" true (List.length split >= 2)

let test_forecaster_retrains_on_drift () =
  let f = Forecaster.create ~use_lstm:true ~window:4 ~epochs:10 ~retrain_mse:0.01 () in
  let rising = Array.init 30 (fun i -> float_of_int i) in
  ignore (Forecaster.forecast f ~key:1 ~series:rising ~horizon:1);
  let first = Forecaster.retrain_count f in
  (* A completely different regime on the same key: MSE drifts above
     the threshold, forcing a retrain. *)
  let flipped = Array.init 30 (fun i -> float_of_int (30 - i)) in
  ignore (Forecaster.forecast f ~key:1 ~series:flipped ~horizon:1);
  Alcotest.(check bool) "retrained on drift" true (Forecaster.retrain_count f > first)

let test_predictor_wv_scale_free () =
  (* Same relative shift at 10x the volume must produce a similar
     normalised wv. *)
  let run scale =
    let p = Predictor.create ~use_lstm:false ~gamma:1e9 () in
    for s = 0 to 14 do
      drive p ~parts:[ 1; 2 ] ~from_s:s ~to_s:(s + 1) ~rate:(scale * (s + 1))
    done;
    ignore (Predictor.analyze p ~time:(sec 15.0));
    Predictor.last_wv p
  in
  let small = run 2 and large = run 20 in
  Alcotest.(check bool)
    (Printf.sprintf "wv scale-free (%.3f vs %.3f)" small large)
    true
    (Float.abs (small -. large) < 0.5 *. Stdlib.max small large)

let () =
  Alcotest.run "lion_predict"
    [
      ( "template",
        [
          Alcotest.test_case "same parts same id" `Quick test_template_same_parts_same_id;
          Alcotest.test_case "distinct parts distinct ids" `Quick
            test_template_distinct_parts_distinct_ids;
          Alcotest.test_case "arrival-rate buckets" `Quick test_template_arrival_rate_buckets;
          Alcotest.test_case "upto excludes partial bucket" `Quick
            test_template_upto_excludes_partial;
          Alcotest.test_case "eviction keeps hot" `Quick test_template_eviction_keeps_hot;
          Alcotest.test_case "hottest first" `Quick test_template_hottest_first;
        ] );
      ( "classify",
        [
          Alcotest.test_case "merges correlated" `Quick test_classify_merges_correlated;
          Alcotest.test_case "series sums members" `Quick test_classify_series_sums_members;
          Alcotest.test_case "idle class" `Quick test_classify_idle_bucket;
          Alcotest.test_case "weighted sampling" `Quick test_sample_templates_weighted;
        ] );
      ( "forecaster",
        [
          Alcotest.test_case "trend fallback" `Quick test_forecaster_trend_fallback;
          Alcotest.test_case "non-negative" `Quick test_forecaster_nonnegative;
          Alcotest.test_case "short series fallback" `Quick
            test_forecaster_short_series_fallback;
          Alcotest.test_case "lstm trains" `Slow test_forecaster_lstm_trains_once_series_long;
          Alcotest.test_case "lstm tracks level" `Slow test_forecaster_lstm_tracks_level;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "quiet on steady load" `Quick
            test_predictor_quiet_on_steady_workload;
          Alcotest.test_case "fires on rising load" `Quick
            test_predictor_fires_on_rising_workload;
          Alcotest.test_case "w_p = 0 disables" `Quick test_predictor_disabled_when_wp_zero;
          Alcotest.test_case "single-partition hints skipped" `Quick
            test_predictor_single_partition_templates_skipped;
          Alcotest.test_case "wv scale-free" `Quick test_predictor_wv_scale_free;
        ] );
      ( "classify-extremes",
        [ Alcotest.test_case "beta extremes" `Quick test_classify_beta_extremes ] );
      ( "forecaster-retrain",
        [ Alcotest.test_case "retrains on drift" `Slow test_forecaster_retrains_on_drift ] );
    ]
