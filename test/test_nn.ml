(* Tests for the from-scratch LSTM stack: matrix kernels, gradient
   checking, learning sanity, dataset windowing. *)

module Matrix = Lion_nn.Matrix
module Lstm = Lion_nn.Lstm
module Dataset = Lion_nn.Dataset
module Rng = Lion_kernel.Rng

(* --- matrix --- *)

let test_matvec () =
  let a = Matrix.of_fun 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  (* [[0 1 2];[3 4 5]] · [1;1;1] = [3;12] *)
  Alcotest.(check (array (float 1e-9))) "matvec" [| 3.0; 12.0 |]
    (Matrix.matvec a [| 1.0; 1.0; 1.0 |])

let test_matvec_t () =
  let a = Matrix.of_fun 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  (* Aᵀ·[1;1] = column sums = [3;5;7] *)
  Alcotest.(check (array (float 1e-9))) "matvec_t" [| 3.0; 5.0; 7.0 |]
    (Matrix.matvec_t a [| 1.0; 1.0 |])

let test_outer_acc () =
  let a = Matrix.zeros 2 2 in
  Matrix.outer_acc a [| 1.0; 2.0 |] [| 3.0; 4.0 |];
  Alcotest.(check (float 1e-9)) "a00" 3.0 (Matrix.get a 0 0);
  Alcotest.(check (float 1e-9)) "a01" 4.0 (Matrix.get a 0 1);
  Alcotest.(check (float 1e-9)) "a10" 6.0 (Matrix.get a 1 0);
  Alcotest.(check (float 1e-9)) "a11" 8.0 (Matrix.get a 1 1)

let test_axpy () =
  let y = [| 1.0; 1.0 |] in
  Matrix.axpy 2.0 [| 3.0; 4.0 |] y;
  Alcotest.(check (array (float 1e-9))) "y += 2x" [| 7.0; 9.0 |] y

let test_sigmoid_range () =
  Alcotest.(check (float 1e-9)) "sigmoid 0" 0.5 (Matrix.sigmoid 0.0);
  Alcotest.(check bool) "sigmoid large" true (Matrix.sigmoid 100.0 > 0.999);
  Alcotest.(check bool) "sigmoid small" true (Matrix.sigmoid (-100.0) < 0.001)

let test_derivative_identities () =
  let y = Matrix.sigmoid 0.7 in
  Alcotest.(check (float 1e-9)) "dsigmoid" (y *. (1.0 -. y)) (Matrix.dsigmoid_from_y y);
  let t = tanh 0.3 in
  Alcotest.(check (float 1e-9)) "dtanh" (1.0 -. (t *. t)) (Matrix.dtanh_from_y t)

let test_clip () =
  let x = [| -10.0; 0.5; 10.0 |] in
  Matrix.clip_in 1.0 x;
  Alcotest.(check (array (float 1e-9))) "clipped" [| -1.0; 0.5; 1.0 |] x

let test_xavier_bounds () =
  let rng = Rng.create 1 in
  let m = Matrix.xavier rng 10 10 in
  let bound = sqrt (6.0 /. 20.0) in
  Array.iter
    (fun v -> Alcotest.(check bool) "within glorot bound" true (Float.abs v <= bound))
    m.Matrix.data

(* --- lstm --- *)

let test_lstm_forward_shape () =
  let net = Lstm.create ~layers:2 ~hidden:8 ~input:1 () in
  let seq = Array.init 5 (fun i -> [| float_of_int i |]) in
  let y = Lstm.predict net seq in
  Alcotest.(check bool) "finite output" true (Float.is_finite y);
  Alcotest.(check int) "layers" 2 (Lstm.layers net);
  Alcotest.(check int) "hidden" 8 (Lstm.hidden net)

let test_lstm_deterministic () =
  let mk () = Lstm.create ~seed:9 ~layers:1 ~hidden:4 ~input:1 () in
  let seq = Array.init 4 (fun i -> [| float_of_int i /. 4.0 |]) in
  Alcotest.(check (float 1e-12)) "same init same output" (Lstm.predict (mk ()) seq)
    (Lstm.predict (mk ()) seq)

let test_lstm_learns_constant () =
  let net = Lstm.create ~seed:2 ~layers:1 ~hidden:8 ~input:1 () in
  let seq = Array.init 5 (fun _ -> [| 0.3 |]) in
  let samples = Array.make 8 (seq, 0.7) in
  let final = Lstm.train net samples ~epochs:150 ~lr:0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "converges to constant (mse %.4f)" final)
    true (final < 0.01)

let test_lstm_learns_sign_pattern () =
  (* Rising sequences map to +1, falling to -1. *)
  let rising = Array.init 6 (fun i -> [| float_of_int i /. 6.0 |]) in
  let falling = Array.init 6 (fun i -> [| float_of_int (5 - i) /. 6.0 |]) in
  let samples = [| (rising, 1.0); (falling, -1.0) |] in
  let net = Lstm.create ~seed:4 ~layers:2 ~hidden:10 ~input:1 () in
  let final = Lstm.train net samples ~epochs:300 ~lr:0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "separates directions (mse %.4f)" final)
    true (final < 0.05);
  Alcotest.(check bool) "rising positive" true (Lstm.predict net rising > 0.5);
  Alcotest.(check bool) "falling negative" true (Lstm.predict net falling < -0.5)

let test_lstm_gradient_check () =
  (* Numerical gradient check on the loss wrt one input element: the
     analytic BPTT gradient reaching the input is not exposed, so check
     instead that a training step reduces the loss on the same sample —
     the practical invariant the planner relies on. *)
  let net = Lstm.create ~seed:6 ~layers:2 ~hidden:6 ~input:1 () in
  let seq = Array.init 6 (fun i -> [| sin (float_of_int i) |]) in
  let target = 0.42 in
  let before = (Lstm.predict net seq -. target) ** 2.0 in
  ignore (Lstm.train_sample net ~seq ~target ~lr:0.05);
  ignore (Lstm.train_sample net ~seq ~target ~lr:0.05);
  let after = (Lstm.predict net seq -. target) ** 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%.4f -> %.4f)" before after)
    true (after < before)

let test_lstm_numerical_gradient_check () =
  (* Analytic BPTT gradients must match central finite differences of
     the squared error, parameter by parameter. *)
  let net = Lstm.create ~seed:11 ~layers:2 ~hidden:4 ~input:1 () in
  let seq = Array.init 4 (fun i -> [| sin (float_of_int i +. 0.3) |]) in
  let target = 0.25 in
  let loss () =
    let e = Lstm.predict net seq -. target in
    e *. e
  in
  let analytic = Lstm.For_testing.gradients net ~seq ~target in
  let params = Lstm.For_testing.param_arrays net in
  let eps = 1e-5 in
  let checked = ref 0 and failed = ref 0 in
  List.iter2
    (fun p g ->
      (* Sample a few indices per parameter array. *)
      let n = Array.length p in
      List.iter
        (fun idx ->
          if idx < n then (
            let orig = p.(idx) in
            p.(idx) <- orig +. eps;
            let up = loss () in
            p.(idx) <- orig -. eps;
            let down = loss () in
            p.(idx) <- orig;
            let numeric = (up -. down) /. (2.0 *. eps) in
            let a = g.(idx) in
            let denom = Stdlib.max 1e-4 (Float.abs a +. Float.abs numeric) in
            incr checked;
            if Float.abs (a -. numeric) /. denom > 0.02 then incr failed))
        [ 0; n / 2; n - 1 ])
    params analytic;
  Alcotest.(check bool)
    (Printf.sprintf "gradients agree (%d/%d mismatched)" !failed !checked)
    true (!failed = 0);
  Alcotest.(check bool) "checked many parameters" true (!checked >= 15)

let test_lstm_mse_zero_on_memorized () =
  let net = Lstm.create ~seed:8 ~layers:1 ~hidden:8 ~input:1 () in
  let seq = Array.init 4 (fun _ -> [| 0.5 |]) in
  let samples = [| (seq, 0.2) |] in
  ignore (Lstm.train net samples ~epochs:200 ~lr:0.05);
  Alcotest.(check bool) "near-zero mse" true (Lstm.mse net samples < 0.005)

(* --- rnn baseline --- *)

module Rnn = Lion_nn.Rnn

let test_rnn_forward_finite () =
  let net = Rnn.create ~hidden:8 ~input:1 () in
  let seq = Array.init 6 (fun i -> [| float_of_int i /. 6.0 |]) in
  Alcotest.(check bool) "finite" true (Float.is_finite (Rnn.predict net seq));
  Alcotest.(check int) "hidden" 8 (Rnn.hidden net)

let test_rnn_learns_constant () =
  let net = Rnn.create ~seed:3 ~hidden:8 ~input:1 () in
  let seq = Array.init 5 (fun _ -> [| 0.2 |]) in
  let samples = Array.make 4 (seq, 0.6) in
  let final = Rnn.train net samples ~epochs:200 ~lr:0.02 in
  Alcotest.(check bool) (Printf.sprintf "converges (mse %.4f)" final) true (final < 0.01)

let test_rnn_training_reduces_loss () =
  let net = Rnn.create ~seed:5 ~hidden:6 ~input:1 () in
  let seq = Array.init 6 (fun i -> [| cos (float_of_int i) |]) in
  let before = (Rnn.predict net seq -. 0.3) ** 2.0 in
  for _ = 1 to 20 do
    ignore (Rnn.train_sample net ~seq ~target:0.3 ~lr:0.01)
  done;
  let after = (Rnn.predict net seq -. 0.3) ** 2.0 in
  Alcotest.(check bool) "loss decreased" true (after < before)

(* --- linear regression baseline --- *)

module Linreg = Lion_nn.Linreg

let test_linreg_fits_linear_series () =
  (* Next value of an arithmetic series is a linear function of the
     window: OLS must recover it almost exactly. *)
  let series = Array.init 40 (fun i -> 3.0 +. (2.0 *. float_of_int i)) in
  let samples = Dataset.windows series ~window:4 in
  let model = Linreg.create ~window:4 in
  Linreg.fit model samples;
  Alcotest.(check bool) "near-zero mse" true (Linreg.mse model samples < 1e-3);
  let last, expected = samples.(Array.length samples - 1) in
  Alcotest.(check bool) "prediction close" true
    (Float.abs (Linreg.predict model last -. expected) < 0.1)

let test_linreg_constant_series () =
  let series = Array.make 30 7.0 in
  let samples = Dataset.windows series ~window:3 in
  let model = Linreg.create ~window:3 in
  Linreg.fit model samples;
  Alcotest.(check bool) "predicts the constant" true
    (Float.abs (Linreg.predict model (fst samples.(0)) -. 7.0) < 0.05)

let test_linreg_empty_fit_safe () =
  let model = Linreg.create ~window:3 in
  Linreg.fit model [||];
  (* Degenerate fit must not crash or return NaN. *)
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Linreg.predict model [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |]))

(* --- dataset --- *)

let test_norm_roundtrip () =
  let series = [| 10.0; 20.0; 30.0 |] in
  let norm = Dataset.fit_norm series in
  Array.iter
    (fun x ->
      Alcotest.(check (float 1e-9)) "roundtrip" x
        (Dataset.denormalize norm (Dataset.normalize norm x)))
    series

let test_norm_zero_variance () =
  let norm = Dataset.fit_norm [| 5.0; 5.0; 5.0 |] in
  (* Must not divide by zero. *)
  Alcotest.(check bool) "finite" true (Float.is_finite (Dataset.normalize norm 5.0))

let test_windows_shape () =
  let series = Array.init 10 float_of_int in
  let samples = Dataset.windows series ~window:3 in
  Alcotest.(check int) "count" 7 (Array.length samples);
  let seq, target = samples.(0) in
  Alcotest.(check int) "window length" 3 (Array.length seq);
  Alcotest.(check (float 1e-9)) "first target" 3.0 target;
  let _, last_target = samples.(6) in
  Alcotest.(check (float 1e-9)) "last target" 9.0 last_target

let test_windows_too_short () =
  Alcotest.(check int) "empty when short" 0
    (Array.length (Dataset.windows [| 1.0; 2.0 |] ~window:5))

let test_last_window_padding () =
  let norm = { Dataset.mu = 0.0; sigma = 1.0 } in
  let w = Dataset.last_window [| 7.0 |] ~window:3 norm in
  Alcotest.(check int) "length" 3 (Array.length w);
  Alcotest.(check (float 1e-9)) "padded" 0.0 w.(0).(0);
  Alcotest.(check (float 1e-9)) "real value last" 7.0 w.(2).(0)

let test_windows_normalized_consistent () =
  let series = Array.init 20 (fun i -> float_of_int (i * 10)) in
  let norm, samples = Dataset.windows_normalized series ~window:4 in
  let seq, target = samples.(0) in
  Alcotest.(check (float 1e-9)) "first input normalized" (Dataset.normalize norm 0.0)
    seq.(0).(0);
  Alcotest.(check (float 1e-9)) "target normalized" (Dataset.normalize norm 40.0) target

let () =
  Alcotest.run "lion_nn"
    [
      ( "matrix",
        [
          Alcotest.test_case "matvec" `Quick test_matvec;
          Alcotest.test_case "matvec transpose" `Quick test_matvec_t;
          Alcotest.test_case "outer accumulate" `Quick test_outer_acc;
          Alcotest.test_case "axpy" `Quick test_axpy;
          Alcotest.test_case "sigmoid" `Quick test_sigmoid_range;
          Alcotest.test_case "derivative identities" `Quick test_derivative_identities;
          Alcotest.test_case "clip" `Quick test_clip;
          Alcotest.test_case "xavier bounds" `Quick test_xavier_bounds;
        ] );
      ( "lstm",
        [
          Alcotest.test_case "forward shape" `Quick test_lstm_forward_shape;
          Alcotest.test_case "deterministic init" `Quick test_lstm_deterministic;
          Alcotest.test_case "learns constant" `Slow test_lstm_learns_constant;
          Alcotest.test_case "learns direction" `Slow test_lstm_learns_sign_pattern;
          Alcotest.test_case "training reduces loss" `Quick test_lstm_gradient_check;
          Alcotest.test_case "numerical gradient check" `Quick
            test_lstm_numerical_gradient_check;
          Alcotest.test_case "memorizes one sample" `Slow test_lstm_mse_zero_on_memorized;
        ] );
      ( "rnn",
        [
          Alcotest.test_case "forward finite" `Quick test_rnn_forward_finite;
          Alcotest.test_case "learns constant" `Slow test_rnn_learns_constant;
          Alcotest.test_case "training reduces loss" `Quick test_rnn_training_reduces_loss;
        ] );
      ( "linreg",
        [
          Alcotest.test_case "fits linear series" `Quick test_linreg_fits_linear_series;
          Alcotest.test_case "constant series" `Quick test_linreg_constant_series;
          Alcotest.test_case "empty fit safe" `Quick test_linreg_empty_fit_safe;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "norm roundtrip" `Quick test_norm_roundtrip;
          Alcotest.test_case "zero variance safe" `Quick test_norm_zero_variance;
          Alcotest.test_case "windows shape" `Quick test_windows_shape;
          Alcotest.test_case "short series" `Quick test_windows_too_short;
          Alcotest.test_case "last window pads" `Quick test_last_window_padding;
          Alcotest.test_case "normalized windows" `Quick test_windows_normalized_consistent;
        ] );
    ]
