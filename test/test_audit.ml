(* Consistency-auditor tests: the offline serializability checker
   against hand-built histories with known anomalies, the
   replica-divergence audit against manufactured divergence and a real
   crash-sweep recovery, and the nemesis/drive properties — a seeded
   nemesis replays bit-for-bit, history recording never perturbs a
   run, and every built-in protocol audits clean under faults. *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Kvstore = Lion_store.Kvstore
module History = Lion_store.History
module Replication = Lion_store.Replication
module Engine = Lion_sim.Engine
module Fault = Lion_sim.Fault
module Checker = Lion_audit.Checker
module Divergence = Lion_audit.Divergence
module Nemesis = Lion_audit.Nemesis
module Drive = Lion_audit.Drive
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads

let k slot = Kvstore.key ~part:0 ~slot
let kb slot = Kvstore.key ~part:1 ~slot

let ev = History.event

(* --- checker: hand-built histories --- *)

let test_clean_serial () =
  (* T1 installs k0@1; T2 reads it and installs k0@2 (an RMW).
     Dependencies flow one way: serializable. *)
  let h =
    [
      ev ~txn_id:1 ~writes:[ (k 0, 1) ] ~outcome:History.Committed ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 1) ] ~writes:[ (k 0, 2) ]
        ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  Alcotest.(check bool) "serializable" true (Checker.serializable r);
  Alcotest.(check int) "committed" 2 r.Checker.committed;
  (* ww (v1 -> v2) and wr (T1 -> T2); the rw edge is suppressed because
     the reader installed the next version itself. *)
  Alcotest.(check int) "edges" 2 r.Checker.edges

let test_lost_update () =
  (* Classic lost update: both transactions read k0@0, both overwrote
     it. ww T1 -> T2 (v1 -> v2) plus rw T2 -> T1 (T2 read v0, T1
     installed v1): a two-cycle on one key. *)
  let h =
    [
      ev ~txn_id:1 ~reads:[ (k 0, 0) ] ~writes:[ (k 0, 1) ]
        ~outcome:History.Committed ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 0) ] ~writes:[ (k 0, 2) ]
        ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  match r.Checker.anomalies with
  | [ Checker.Lost_update edges ] ->
      Alcotest.(check int) "two-cycle witness" 2 (List.length edges);
      List.iter
        (fun (e : Checker.edge) ->
          Alcotest.(check int) "pivots on k0" 0 (Kvstore.key_compare e.Checker.key (k 0)))
        edges
  | other ->
      Alcotest.failf "expected exactly one lost-update, got [%s]"
        (String.concat "; " (List.map Checker.anomaly_name other))

let test_g0_write_cycle () =
  (* Write-only cycle across two keys: T1 installed a@1 then b@2, T2
     installed b@1 then a@2 — the installation orders disagree. *)
  let h =
    [
      ev ~txn_id:1 ~writes:[ (k 0, 1); (kb 0, 2) ] ~outcome:History.Committed
        ~seq:0 ();
      ev ~txn_id:2 ~writes:[ (kb 0, 1); (k 0, 2) ] ~outcome:History.Committed
        ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  match r.Checker.anomalies with
  | [ Checker.G0 edges ] ->
      Alcotest.(check int) "two-cycle witness" 2 (List.length edges);
      List.iter
        (fun (e : Checker.edge) ->
          Alcotest.(check string) "ww only" "ww" (Checker.kind_name e.Checker.kind))
        edges
  | other ->
      Alcotest.failf "expected exactly one G0, got [%s]"
        (String.concat "; " (List.map Checker.anomaly_name other))

let test_g1a_aborted_read () =
  (* T1's write was rolled back, yet committed T2 observed it. *)
  let h =
    [
      ev ~txn_id:1 ~writes:[ (k 0, 1) ] ~outcome:History.Aborted ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 1) ] ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  match r.Checker.anomalies with
  | [ Checker.G1a { reader; writer; version; _ } ] ->
      Alcotest.(check int) "reader" 2 reader;
      Alcotest.(check int) "writer" 1 writer;
      Alcotest.(check int) "version" 1 version
  | other ->
      Alcotest.failf "expected exactly one G1a, got [%s]"
        (String.concat "; " (List.map Checker.anomaly_name other))

let test_g1c_circular_flow () =
  (* Circular information flow, no anti-dependency: each transaction
     read the version the other installed. *)
  let h =
    [
      ev ~txn_id:1 ~reads:[ (kb 0, 1) ] ~writes:[ (k 0, 1) ]
        ~outcome:History.Committed ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 1) ] ~writes:[ (kb 0, 1) ]
        ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  match r.Checker.anomalies with
  | [ Checker.G1c edges ] ->
      Alcotest.(check int) "two-cycle witness" 2 (List.length edges);
      List.iter
        (fun (e : Checker.edge) ->
          Alcotest.(check string) "wr only" "wr" (Checker.kind_name e.Checker.kind))
        edges
  | other ->
      Alcotest.failf "expected exactly one G1c, got [%s]"
        (String.concat "; " (List.map Checker.anomaly_name other))

let test_g2_write_skew () =
  (* Textbook write skew: T1 reads b@0 writes a@1, T2 reads a@0 writes
     b@1. Two rw anti-dependencies form the cycle; no ww or wr. *)
  let h =
    [
      ev ~txn_id:1 ~reads:[ (kb 0, 0) ] ~writes:[ (k 0, 1) ]
        ~outcome:History.Committed ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 0) ] ~writes:[ (kb 0, 1) ]
        ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  match r.Checker.anomalies with
  | [ Checker.G2 edges ] ->
      List.iter
        (fun (e : Checker.edge) ->
          Alcotest.(check string) "rw only" "rw" (Checker.kind_name e.Checker.kind))
        edges
  | other ->
      Alcotest.failf "expected exactly one G2, got [%s]"
        (String.concat "; " (List.map Checker.anomaly_name other))

let test_divergent_install () =
  (* Split-brain double execution: two committed transactions both
     claim to have installed k0@1. *)
  let h =
    [
      ev ~txn_id:1 ~writes:[ (k 0, 1) ] ~outcome:History.Committed ~seq:0 ();
      ev ~txn_id:2 ~writes:[ (k 0, 1) ] ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  Alcotest.(check bool) "not serializable" false (Checker.serializable r);
  match
    List.find_opt
      (function Checker.Divergent_install _ -> true | _ -> false)
      r.Checker.anomalies
  with
  | Some (Checker.Divergent_install { writers; version; _ }) ->
      Alcotest.(check (list int)) "both writers named" [ 1; 2 ] writers;
      Alcotest.(check int) "version" 1 version
  | _ -> Alcotest.fail "expected a divergent-install anomaly"

let test_indeterminate_not_in_graph () =
  (* An indeterminate attempt (2PC coordinator lost contact) must not
     create dependencies — its fate is unknown, so the checker can
     neither trust its writes nor flag its reads. *)
  let h =
    [
      ev ~txn_id:1 ~writes:[ (k 0, 1) ] ~outcome:History.Indeterminate ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 1) ] ~outcome:History.Committed ~seq:1 ();
    ]
  in
  let r = Checker.check h in
  Alcotest.(check bool) "serializable" true (Checker.serializable r);
  Alcotest.(check int) "only the committed txn counted" 1 r.Checker.committed

let test_checker_deterministic () =
  let h =
    [
      ev ~txn_id:1 ~reads:[ (k 0, 0) ] ~writes:[ (k 0, 1) ]
        ~outcome:History.Committed ~seq:0 ();
      ev ~txn_id:2 ~reads:[ (k 0, 0) ] ~writes:[ (k 0, 2) ]
        ~outcome:History.Committed ~seq:1 ();
      ev ~txn_id:3 ~writes:[ (kb 0, 1) ] ~outcome:History.Aborted ~seq:2 ();
    ]
  in
  let a = Format.asprintf "%a" Checker.pp_report (Checker.check h) in
  let b = Format.asprintf "%a" Checker.pp_report (Checker.check h) in
  Alcotest.(check string) "same report byte-for-byte" a b

(* --- divergence audit --- *)

let test_divergence_flags_behind_replica () =
  let cl = Cluster.create ~seed:3 Config.default in
  (* Three records land in partition 0's log; only the primary applies
     them. The secondary (node 1 in the default layout) is behind. *)
  for _ = 1 to 3 do
    Replication.append cl.Cluster.replication ~part:0
  done;
  Cluster.note_replica_synced cl ~part:0 ~node:0;
  let r = Divergence.audit cl in
  Alcotest.(check bool) "not clean" false (Divergence.clean r);
  match
    List.find_opt
      (function Divergence.Replica_behind _ -> true | _ -> false)
      r.Divergence.findings
  with
  | Some (Divergence.Replica_behind { part; node; applied; log_len }) ->
      Alcotest.(check int) "partition" 0 part;
      Alcotest.(check int) "lagging node" 1 node;
      Alcotest.(check int) "applied" 0 applied;
      Alcotest.(check int) "log length" 3 log_len
  | _ -> Alcotest.fail "expected a replica-behind finding"

let test_divergence_flags_lost_write () =
  let cl = Cluster.create ~seed:3 Config.default in
  let h = History.create () in
  (* The history says k0 reached version 5, but neither the real store
     nor the shadow ever saw it: a lost write. *)
  History.record h ~txn_id:1 ~attempt:1 ~reads:[] ~writes:[ (k 0, 5) ]
    ~outcome:History.Committed ~ts:0.0;
  let r = Divergence.audit ~history:h cl in
  match
    List.find_opt
      (function Divergence.Lost_write _ -> true | _ -> false)
      r.Divergence.findings
  with
  | Some (Divergence.Lost_write { history_version; store_version; _ }) ->
      Alcotest.(check int) "claimed" 5 history_version;
      Alcotest.(check int) "actual" 0 store_version
  | _ -> Alcotest.fail "expected a lost-write finding"

let test_divergence_clean_after_crash_sweep () =
  (* A real run: Lion under a crash/recover sweep, drained to
     quiescence. Failover elections, the recovery resync and
     anti-entropy must leave every live replica at the log head. *)
  let o =
    Drive.run ~seed:11 ~clients:4 ~duration:1.5 ~nemesis_at:0.3
      ~cfg:Config.default
      ~make:(fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl)
      ~gen:(Workloads.ycsb ~cross:0.4 ~skew:0.6 Config.default)
      ~nemesis:(Nemesis.crash ~node:1 ~downtime:400_000.0 ())
      ()
  in
  Alcotest.(check bool) "some work committed" true (o.Drive.commits > 0);
  Alcotest.(check bool) "divergence clean" true (Divergence.clean o.Drive.divergence);
  Alcotest.(check bool) "serializable" true (Checker.serializable o.Drive.check)

(* --- crash-rejoin: the stale-session divergence and its fix --- *)

(* The same seeded run under the crash-rejoin nemesis, which lands
   delayed log-ship acks and in-flight replica installs after their
   target has crashed and rejoined (docs/MEMBERSHIP.md). Without
   session tagging the stale streams are accepted and the divergence
   audit must catch the corruption; with tagging they are rejected
   (counted) and the audit must be clean. *)
let rejoin_drive cfg =
  Drive.run ~seed:1 ~clients:8 ~duration:4.0 ~nemesis_at:1.0 ~cfg
    ~make:(fun cl ->
      Lion_core.Standard.create ~name:"Lion"
        ~config:{ Lion_core.Planner.default_config with predict = true }
        cl)
    ~gen:(Workloads.ycsb ~seed:1 ~cross:0.4 ~skew:0.6 cfg)
    ~nemesis:(Nemesis.crash_rejoin ())
    ()

let test_crash_rejoin_diverges_untagged () =
  let o = rejoin_drive Config.default in
  Alcotest.(check bool) "some work committed" true (o.Drive.commits > 0);
  Alcotest.(check bool) "stale replica reproduced" true
    (List.exists
       (function Divergence.Stale_replica _ -> true | _ -> false)
       o.Drive.divergence.Divergence.findings);
  Alcotest.(check int) "nothing rejected without tagging" 0 o.Drive.stale_rejections

let test_crash_rejoin_clean_tagged () =
  let o = rejoin_drive { Config.default with Config.session_tagging = true } in
  Alcotest.(check bool) "some work committed" true (o.Drive.commits > 0);
  Alcotest.(check bool) "audit clean" true (Drive.passed o);
  Alcotest.(check bool) "stale streams rejected" true (o.Drive.stale_rejections > 0)

(* --- nemesis / drive properties --- *)

let prop_nemesis_plan_deterministic =
  QCheck.Test.make ~name:"seeded nemesis materialises the same plan every time"
    ~count:50
    QCheck.(pair (int_range 0 10_000) (float_range 0.0 5_000_000.0))
    (fun (seed, at) ->
      let n = Nemesis.adversarial ~seed ~nodes:4 ~events:6 ~window:3_000_000.0 () in
      Nemesis.plan n ~at = Nemesis.plan n ~at)

let prop_recording_off_bit_identical =
  (* History recording must be purely observational: the same seeded
     chaos run with and without a sink lands on identical counters at
     the identical simulated instant. *)
  QCheck.Test.make ~name:"history recording does not perturb the run" ~count:4
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let nemesis = Nemesis.adversarial ~seed ~nodes:4 ~events:3 ~window:800_000.0 () in
      let cfg =
        {
          Config.default with
          Config.fault_plan = Nemesis.plan nemesis ~at:(Engine.seconds 0.3);
        }
      in
      let run history =
        let r =
          Runner.run ~seed ?history ~cfg
            ~make:(fun cl ->
              Lion_core.Standard.create ~name:"Lion"
                ~config:{ Lion_core.Planner.default_config with predict = true }
                cl)
            ~gen:(Workloads.ycsb ~cross:0.4 cfg)
            { Runner.quick with Runner.warmup = 0.2; duration = 0.8 }
        in
        (r.Runner.commits, r.Runner.aborts, r.Runner.timeouts, r.Runner.retries,
         r.Runner.drops, r.Runner.p95)
      in
      run None = run (Some (History.create ())))

let protocols : (string * (Lion_store.Cluster.t -> Lion_protocols.Proto.t)) list =
  [
    ("2pc", fun cl -> Lion_protocols.Twopc.create cl);
    ("leap", fun cl -> Lion_protocols.Leap.create cl);
    ("clay", fun cl -> Lion_protocols.Clay.create cl);
    ( "lion",
      fun cl ->
        Lion_core.Standard.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
    ("star", fun cl -> Lion_protocols.Star.create cl);
    ("calvin", fun cl -> Lion_protocols.Calvin.create cl);
    ("hermes", fun cl -> Lion_protocols.Hermes.create cl);
    ("aria", fun cl -> Lion_protocols.Aria.create cl);
    ("lotus", fun cl -> Lion_protocols.Lotus.create cl);
    ( "lion-batch",
      fun cl ->
        Lion_core.Batch_mode.create ~name:"Lion"
          ~config:{ Lion_core.Planner.default_config with predict = true }
          cl );
  ]

let prop_every_protocol_audits_clean =
  (* Every built-in protocol, audited under a crash nemesis: zero
     serializability anomalies, zero diverged replicas. One qcheck
     case per protocol, seed varied with the index. *)
  QCheck.Test.make ~name:"every built-in protocol audits clean under a crash"
    ~count:(List.length protocols)
    QCheck.(int_range 0 (List.length protocols - 1))
    (fun i ->
      let name, make = List.nth protocols i in
      let o =
        Drive.run ~seed:(41 + i) ~clients:4 ~duration:1.0 ~nemesis_at:0.3
          ~cfg:Config.default ~make
          ~gen:(Workloads.ycsb ~cross:0.4 Config.default)
          ~nemesis:(Nemesis.crash ~node:1 ~downtime:300_000.0 ())
          ()
      in
      if not (Drive.passed o) then
        QCheck.Test.fail_reportf "%s failed the audit:@ %a" name Drive.pp_outcome o;
      o.Drive.commits > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "lion_audit"
    [
      ( "checker",
        [
          Alcotest.test_case "clean serial history" `Quick test_clean_serial;
          Alcotest.test_case "lost update" `Quick test_lost_update;
          Alcotest.test_case "G0 write cycle" `Quick test_g0_write_cycle;
          Alcotest.test_case "G1a aborted read" `Quick test_g1a_aborted_read;
          Alcotest.test_case "G1c circular flow" `Quick test_g1c_circular_flow;
          Alcotest.test_case "G2 write skew" `Quick test_g2_write_skew;
          Alcotest.test_case "divergent install" `Quick test_divergent_install;
          Alcotest.test_case "indeterminate excluded" `Quick
            test_indeterminate_not_in_graph;
          Alcotest.test_case "deterministic report" `Quick test_checker_deterministic;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "flags behind replica" `Quick
            test_divergence_flags_behind_replica;
          Alcotest.test_case "flags lost write" `Quick test_divergence_flags_lost_write;
          Alcotest.test_case "clean after crash sweep" `Quick
            test_divergence_clean_after_crash_sweep;
        ] );
      ( "crash-rejoin",
        [
          Alcotest.test_case "diverges untagged" `Quick
            test_crash_rejoin_diverges_untagged;
          Alcotest.test_case "clean tagged" `Quick test_crash_rejoin_clean_tagged;
        ] );
      qsuite "nemesis-props"
        [ prop_nemesis_plan_deterministic; prop_recording_off_bit_identical ];
      qsuite "audit-props" [ prop_every_protocol_audits_clean ];
    ]
