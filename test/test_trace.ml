(* Tests for the causal tracing subsystem: sampling/retention policies,
   the critical-path invariant (per-phase blame sums to the recorded
   latency), byte-identical Chrome export across identical runs, and
   no perturbation of simulation results when a tracer is attached. *)

module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Workloads = Lion_harness.Workloads
module Trace = Lion_trace.Trace
module Critical_path = Lion_trace.Critical_path
module Chrome = Lion_trace.Chrome

(* ---------------- sampling / retention policies ---------------- *)

let finish_one t ~txn_id ~dur ~aborts =
  match Trace.start_txn t ~ts:0.0 ~txn_id with
  | None -> ()
  | Some _ as ctx ->
      for _ = 1 to aborts do
        Trace.note_abort ~ts:1.0 ctx
      done;
      Trace.finish_txn ~ts:dur ~ok:true ctx

let test_policy_every () =
  let t = Trace.create ~policy:(Trace.Every 3) () in
  for i = 0 to 8 do
    finish_one t ~txn_id:i ~dur:10.0 ~aborts:0
  done;
  Alcotest.(check int) "started" 9 (Trace.started t);
  Alcotest.(check int) "every 3rd sampled" 3 (Trace.sampled t);
  Alcotest.(check int) "all sampled kept" 3 (List.length (Trace.retained t))

let test_policy_slowest () =
  let t = Trace.create ~policy:(Trace.Slowest 2) () in
  List.iteri
    (fun i d -> finish_one t ~txn_id:i ~dur:d ~aborts:0)
    [ 5.0; 50.0; 1.0; 30.0 ];
  let durs =
    List.map (fun (tr : Trace.trace) -> tr.Trace.duration) (Trace.retained t)
    |> List.sort compare
  in
  Alcotest.(check (list (float 0.0))) "two slowest kept" [ 30.0; 50.0 ] durs

let test_policy_on_abort () =
  let t = Trace.create ~policy:Trace.On_abort () in
  finish_one t ~txn_id:0 ~dur:10.0 ~aborts:0;
  finish_one t ~txn_id:1 ~dur:10.0 ~aborts:2;
  match Trace.retained t with
  | [ tr ] ->
      Alcotest.(check int) "the aborted txn" 1 tr.Trace.txn_id;
      Alcotest.(check int) "abort count" 2 tr.Trace.aborts
  | kept -> Alcotest.failf "expected 1 kept trace, got %d" (List.length kept)

let test_span_cap () =
  let t = Trace.create ~policy:Trace.All ~span_cap:3 () in
  let ctx = Trace.start_txn t ~ts:0.0 ~txn_id:0 in
  let c1 = Trace.child ~name:"a" ~ts:1.0 ctx in
  let c2 = Trace.child ~name:"b" ~ts:2.0 ctx in
  let c3 = Trace.child ~name:"c" ~ts:3.0 ctx in
  Alcotest.(check bool) "below cap" true (c1 <> None && c2 <> None);
  Alcotest.(check bool) "capped" true (c3 = None);
  Trace.finish_txn ~ts:10.0 ~ok:true ctx

(* ---------------- critical path on a hand-built trace ---------------- *)

let test_critical_path_hand_built () =
  let t = Trace.create ~policy:Trace.All () in
  let root = Trace.start_txn t ~ts:0.0 ~txn_id:7 in
  (* Two sequential children: A [10,20], B [25,40]. Walking backwards
     from 50, B gates [25,40], A gates [10,20], the root owns the gaps
     [0,10], [20,25] and [40,50]. *)
  let a = Trace.child ~phase:"execution" ~name:"A" ~ts:10.0 root in
  Trace.finish ~ts:20.0 a;
  let b = Trace.child ~phase:"prepare" ~name:"B" ~ts:25.0 root in
  Trace.finish ~ts:40.0 b;
  Trace.finish_txn ~ts:50.0 ~ok:true root;
  let tr = List.hd (Trace.retained t) in
  let segs = Critical_path.segments tr in
  let sum =
    List.fold_left
      (fun acc (s : Critical_path.segment) ->
        Alcotest.(check bool) "segment well-formed" true
          (s.Critical_path.until_ts >= s.Critical_path.from_ts);
        acc +. (s.Critical_path.until_ts -. s.Critical_path.from_ts))
      0.0 segs
  in
  Alcotest.(check (float 1e-9)) "segments partition the root" 50.0 sum;
  let totals = Critical_path.phase_totals tr in
  let blame p = try List.assoc p totals with Not_found -> 0.0 in
  Alcotest.(check (float 1e-9)) "B's window" 15.0 (blame "prepare");
  Alcotest.(check (float 1e-9)) "A's window" 10.0 (blame "execution");
  Alcotest.(check (float 1e-9)) "root gaps" 25.0 (blame "scheduling")

(* ---------------- end-to-end runs ---------------- *)

let small_rc = { Runner.quick with clients = 8; warmup = 0.2; duration = 0.3 }

let run_2pc ?tracer ~seed () =
  let cfg = Config.default in
  Runner.run ~seed ?tracer ~cfg
    ~make:(fun cl -> Lion_protocols.Twopc.create cl)
    ~gen:(Workloads.ycsb ~seed ~cross:0.5 cfg)
    small_rc

let check_sums tracer =
  let traces = Trace.retained tracer in
  Alcotest.(check bool) "retained some traces" true (traces <> []);
  List.iter
    (fun (tr : Trace.trace) ->
      let sum =
        List.fold_left
          (fun acc (_, d) -> acc +. d)
          0.0
          (Critical_path.phase_totals tr)
      in
      Alcotest.(check (float 0.1)) "critical path sums to latency"
        tr.Trace.duration sum)
    traces

let test_sum_standard () =
  let tracer = Trace.create ~policy:(Trace.Slowest 5) () in
  let _ = run_2pc ~tracer ~seed:11 () in
  check_sums tracer

let test_sum_batch () =
  let cfg = Config.default in
  let tracer = Trace.create ~policy:(Trace.Slowest 5) () in
  let _ =
    Runner.run ~seed:11 ~batch:true ~tracer ~cfg
      ~make:(fun cl -> Lion_protocols.Calvin.create cl)
      ~gen:(Workloads.ycsb ~seed:11 ~cross:0.5 cfg)
      { small_rc with clients = 32; duration = 0.5 }
  in
  check_sums tracer

let test_sum_with_queue_phase () =
  (* Saturate the coordinator worker pools (128 closed-loop clients vs
     32 workers, overload preset on) so admission waits open their own
     "queue" spans — the critical path must still partition the root
     exactly, and the new phase must actually show up in it. *)
  let cfg = Config.with_overload_defaults Config.default in
  let tracer = Trace.create ~policy:(Trace.Slowest 16) () in
  let _ =
    Runner.run ~seed:11 ~tracer ~cfg
      ~make:(fun cl -> Lion_protocols.Twopc.create cl)
      ~gen:(Workloads.ycsb ~seed:11 ~cross:0.5 cfg)
      { small_rc with clients = 128; duration = 0.5 }
  in
  check_sums tracer;
  let has_queue =
    List.exists
      (fun (tr : Trace.trace) ->
        List.exists
          (fun (phase, d) -> phase = "queue" && d > 0.0)
          (Critical_path.phase_totals tr))
      (Trace.retained tracer)
  in
  Alcotest.(check bool) "queue phase on some critical path" true has_queue

let test_deterministic_export () =
  let json () =
    let tracer = Trace.create ~policy:(Trace.Slowest 3) () in
    let _ = run_2pc ~tracer ~seed:7 () in
    Chrome.to_json ~label:"det" (Trace.retained tracer)
  in
  let a = json () and b = json () in
  Alcotest.(check bool) "export non-trivial" true (String.length a > 100);
  Alcotest.(check string) "byte-identical across runs" a b

let test_tracer_no_perturbation () =
  let a = run_2pc ~seed:3 () in
  let b = run_2pc ~tracer:(Trace.create ~policy:Trace.All ()) ~seed:3 () in
  Alcotest.(check int) "commits" a.Runner.commits b.Runner.commits;
  Alcotest.(check int) "aborts" a.Runner.aborts b.Runner.aborts;
  Alcotest.(check (float 0.0)) "p95" a.Runner.p95 b.Runner.p95;
  Alcotest.(check (float 0.0)) "mean latency" a.Runner.mean_latency
    b.Runner.mean_latency

let () =
  Alcotest.run "lion_trace"
    [
      ( "policy",
        [
          Alcotest.test_case "every nth" `Quick test_policy_every;
          Alcotest.test_case "slowest k" `Quick test_policy_slowest;
          Alcotest.test_case "on abort" `Quick test_policy_on_abort;
          Alcotest.test_case "span cap" `Quick test_span_cap;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "hand-built walk" `Quick
            test_critical_path_hand_built;
          Alcotest.test_case "sums to latency (2PC)" `Quick test_sum_standard;
          Alcotest.test_case "sums to latency (batch)" `Quick test_sum_batch;
          Alcotest.test_case "sums to latency with queue phase" `Quick
            test_sum_with_queue_phase;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical export" `Quick
            test_deterministic_export;
          Alcotest.test_case "tracer does not perturb" `Quick
            test_tracer_no_perturbation;
        ] );
    ]
